"""Rule plugins; importing this package registers every rule."""

from tools.reprolint.rules import (  # noqa: F401
    r1_lock_discipline,
    r2_error_taxonomy,
    r3_pickle_boundary,
    r4_determinism,
    r5_api_validation,
)
