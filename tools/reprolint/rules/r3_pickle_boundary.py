"""R3: no closures across the process-pool pickle boundary.

``ProcessBackend`` ships tasks to persistent daemon workers by name
("module:function"); lambdas, nested functions, and locally-defined
closures cannot cross the pipe (the PR 7 pipe-era unpicklable-job
failure).  This rule flags lambda/nested-function arguments to the pool
entry points ``map_calls``/``map_jobs``/``submit``/``ensure_shared``.

Names are resolved within the enclosing function: passing ``fn`` where
``fn = lambda ...`` or ``def fn(...)`` was defined locally is flagged
just like an inline lambda.  Module-level functions and bound methods
are fine (the thread/serial backends accept them, and the process
backend routes them through dedicated module-level tasks).
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Finding, ModuleContext, Rule, register

POOL_ENTRY_POINTS = {"map_calls", "map_jobs", "submit", "ensure_shared"}


@register
class PickleBoundaryRule(Rule):
    id = "R3"
    name = "pickle-boundary"
    description = (
        "lambdas, closures, and nested functions must not be passed to "
        "map_calls/map_jobs/submit/ensure_shared"
    )
    scopes = None

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_function(node, ctx))
        return findings

    def _check_function(self, func: ast.FunctionDef,
                        ctx: ModuleContext) -> list[Finding]:
        # Names bound to nested defs/lambdas *directly in this function*.
        local_callables: dict[str, str] = {}
        for stmt in func.body:
            self._scan_locals(stmt, local_callables)

        findings = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            method = (
                callee.attr if isinstance(callee, ast.Attribute)
                else callee.id if isinstance(callee, ast.Name) else None
            )
            if method not in POOL_ENTRY_POINTS:
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            for arg in args:
                findings.extend(self._check_arg(arg, method, local_callables,
                                                ctx))
        return findings

    def _scan_locals(self, stmt: ast.stmt,
                     local_callables: dict[str, str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local_callables[stmt.name] = "nested function"
            return  # do not descend into deeper nesting levels
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Lambda):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    local_callables[target.id] = "lambda"
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._scan_locals(child, local_callables)
            elif isinstance(child, list):
                pass

    def _check_arg(self, arg: ast.expr, entry_point: str,
                   local_callables: dict[str, str],
                   ctx: ModuleContext) -> list[Finding]:
        if isinstance(arg, ast.Lambda):
            return [ctx.finding(
                self.id, arg,
                f"lambda passed to {entry_point}() cannot cross the "
                "process-pool pickle boundary",
            )]
        if isinstance(arg, ast.Name) and arg.id in local_callables:
            kind = local_callables[arg.id]
            return [ctx.finding(
                self.id, arg,
                f"{kind} '{arg.id}' passed to {entry_point}() cannot "
                "cross the process-pool pickle boundary",
            )]
        return []
