"""R2: the typed ``core.errors`` taxonomy at exception boundaries.

Two checks, both scoped to ``src/repro/core``:

* **broad handlers** — ``except Exception``/``except BaseException``/
  bare ``except`` must re-raise somewhere in the handler body (either a
  bare ``raise`` or a conversion into a taxonomy type).  Handlers that
  intentionally swallow (crash detection, reaping, best-effort teardown)
  carry a ``# reprolint: disable=R2`` pragma with a justification.
* **boundary raises** — worker-task functions (``_task_*``, the
  module-level callables shipped to ``ProcessBackend``) and store
  resolver paths may only raise taxonomy types; anything else leaks
  untyped errors across the process/store boundary (the pre-PR 6
  ``struct.error`` leak).
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Finding, ModuleContext, Rule, register

BROAD_EXCEPTION_NAMES = {"Exception", "BaseException"}

#: The complete ``repro.core.errors`` taxonomy.
TAXONOMY = {
    "StoreError", "SegmentNotFoundError", "TransientStoreError",
    "SegmentCorruptionError", "ComputeError", "WorkerCrashedError",
    "WorkerTimeoutError", "WorkerStateError",
}

#: Function-name prefixes for worker-task / store-resolver boundaries.
BOUNDARY_PREFIXES = ("_task_",)
BOUNDARY_NAMES = {"open_field", "open_tiled_field", "load_field"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for t in types:
        if isinstance(t, ast.Name) and t.id in BROAD_EXCEPTION_NAMES:
            return True
    return False


def _contains_raise(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


def _raised_name(node: ast.Raise) -> str | None:
    exc = node.exc
    if exc is None:
        return None  # bare re-raise, always fine
    if isinstance(exc, ast.Call):
        exc = exc.func
    while isinstance(exc, ast.Attribute):
        # errors.WorkerStateError(...) — last attribute is the class
        return exc.attr
    if isinstance(exc, ast.Name):
        return exc.id
    return "?"


@register
class ErrorTaxonomyRule(Rule):
    id = "R2"
    name = "error-taxonomy"
    description = (
        "broad except handlers in core must re-raise or convert to a "
        "core.errors type; boundary functions raise only taxonomy types"
    )
    scopes = ["src/repro/core/*.py"]

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and _is_broad(node):
                if not _contains_raise(node):
                    what = (
                        "bare except" if node.type is None
                        else f"except {ast.unparse(node.type)}"
                    )
                    findings.append(ctx.finding(
                        self.id, node,
                        f"broad handler ({what}) swallows without "
                        "re-raising or converting to a core.errors type",
                    ))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._is_boundary(node.name):
                    findings.extend(self._check_boundary(node, ctx))
        return findings

    @staticmethod
    def _is_boundary(name: str) -> bool:
        return (
            name.startswith(BOUNDARY_PREFIXES) or name in BOUNDARY_NAMES
        )

    def _check_boundary(self, func: ast.FunctionDef,
                        ctx: ModuleContext) -> list[Finding]:
        """Flag non-taxonomy raises that can escape the function.

        A raise inside a ``try`` whose handlers catch that type (and
        typically convert it) is internal control flow, not a boundary
        escape, so it is not flagged.
        """

        findings: list[Finding] = []

        def handler_names(handler: ast.ExceptHandler) -> set[str]:
            if handler.type is None:
                return {"*"}
            types = (
                handler.type.elts if isinstance(handler.type, ast.Tuple)
                else [handler.type]
            )
            names = set()
            for t in types:
                if isinstance(t, ast.Name):
                    names.add(t.id)
                elif isinstance(t, ast.Attribute):
                    names.add(t.attr)
            return names

        def caught_locally(name: str, stack: list[set[str]]) -> bool:
            return any(
                "*" in caught or name in caught
                or "Exception" in caught or "BaseException" in caught
                for caught in stack
            )

        def walk(node: ast.AST, stack: list[set[str]]) -> None:
            if isinstance(node, ast.Try):
                caught = set()
                for h in node.handlers:
                    caught |= handler_names(h)
                for child in node.body:
                    walk(child, stack + [caught])
                for h in node.handlers:
                    for child in h.body:
                        walk(child, stack)
                for child in list(node.orelse) + list(node.finalbody):
                    walk(child, stack)
                return
            if isinstance(node, ast.Raise):
                name = _raised_name(node)
                if (
                    name is not None and name not in TAXONOMY
                    and not caught_locally(name, stack)
                ):
                    findings.append(ctx.finding(
                        self.id, node,
                        f"boundary function '{func.name}' raises {name!r}, "
                        "which is outside the core.errors taxonomy",
                    ))
            for child in ast.iter_child_nodes(node):
                walk(child, stack)

        for stmt in func.body:
            walk(stmt, [])
        return findings
