"""R1: attributes guarded by an instance lock must be accessed under it.

For every class that owns a ``threading.Lock``/``RLock`` instance
attribute, the rule infers the *guarded set* per lock: attributes that
are written (assigned, aug-assigned, subscript-assigned, or mutated via
a known container method) while that lock is held.  Any read or write of
a guarded attribute without the lock is flagged.

"Held" is inferred three ways, in increasing order of reach:

1. textual containment inside ``with self.<lock>:`` (nested functions
   defined inside the block inherit it — they run on the dispatching
   side in this codebase);
2. methods that call ``self.<lock>.acquire(...)`` anywhere are treated
   as holding that lock for their whole body (manual acquire/release
   protocols such as ``ProcessBackend.close`` are too irregular to track
   precisely);
3. caller-holds fixpoint: a private helper (``_name``, not dunder) whose
   every intra-class call site holds the lock is itself treated as
   holding it (``SegmentCache._insert``, ``ProcessBackend._ensure``).

``__init__``/``__new__``/``__del__``/``__getstate__``/``__setstate__``/
``__post_init__`` are exempt: construction, teardown, and pickling run
before/after the object is shared.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from tools.reprolint.core import Finding, ModuleContext, Rule, register

LOCK_FACTORIES = {"threading.Lock", "threading.RLock"}

# Container/collection methods that mutate their receiver in place.
MUTATOR_METHODS = {
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "move_to_end", "pop", "popitem", "popleft", "remove",
    "setdefault", "update",
}

EXEMPT_METHODS = {
    "__init__", "__new__", "__del__", "__getstate__", "__setstate__",
    "__post_init__",
}


@dataclass
class _Event:
    attr: str
    kind: str  # "read" | "write"
    held: frozenset[str]
    method: str
    node: ast.AST


@dataclass
class _MethodInfo:
    name: str
    exempt: bool
    events: list[_Event] = field(default_factory=list)
    # (callee method name, locks textually held at the call site)
    calls: list[tuple[str, frozenset[str]]] = field(default_factory=list)
    acquires: set[str] = field(default_factory=set)


class _MethodScanner(ast.NodeVisitor):
    """Collects self-attribute events for one method body."""

    def __init__(self, locks: set[str], info: _MethodInfo,
                 method_names: set[str], property_names: set[str]):
        self.locks = locks
        self.info = info
        self.method_names = method_names
        self.property_names = property_names
        self.held: frozenset[str] = frozenset()

    # -- helpers --------------------------------------------------------

    @staticmethod
    def _self_attr(node: ast.AST) -> str | None:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _record(self, attr: str, kind: str, node: ast.AST) -> None:
        self.info.events.append(
            _Event(attr=attr, kind=kind, held=self.held,
                   method=self.info.name, node=node)
        )

    def _record_write_target(self, target: ast.AST) -> None:
        attr = self._self_attr(target)
        if attr is not None:
            self._record(attr, "write", target)
            return
        if isinstance(target, ast.Subscript):
            base = self._self_attr(target.value)
            if base is not None:
                self._record(base, "write", target)
            else:
                self.visit(target.value)
            self.visit(target.slice)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_write_target(elt)
            return
        if isinstance(target, ast.Starred):
            self._record_write_target(target.value)
            return
        self.visit(target)

    # -- statements -----------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_write_target(target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = self._self_attr(node.target)
        if attr is not None:
            self._record(attr, "write", node.target)
        else:
            self._record_write_target(node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_write_target(node.target)
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_write_target(target)

    def visit_With(self, node: ast.With) -> None:
        acquired = set()
        for item in node.items:
            attr = self._self_attr(item.context_expr)
            if attr in self.locks:
                acquired.add(attr)
            else:
                self.visit(item.context_expr)
        previous = self.held
        self.held = self.held | frozenset(acquired)
        for stmt in node.body:
            self.visit(stmt)
        self.held = previous

    visit_AsyncWith = visit_With

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver_attr = self._self_attr(func.value)
            if receiver_attr is not None:
                if receiver_attr in self.locks and func.attr == "acquire":
                    self.info.acquires.add(receiver_attr)
                elif receiver_attr in self.locks:
                    pass  # lock.release()/locked() — not a data access
                elif func.attr in MUTATOR_METHODS:
                    self._record(receiver_attr, "write", func.value)
                else:
                    self._record(receiver_attr, "read", func.value)
            else:
                self.visit(func.value)
            method = self._self_attr(func)
            if method is not None and method in self.method_names:
                self.info.calls.append((method, self.held))
        elif isinstance(func, ast.Name) and func.id == "self":
            pass
        else:
            self.visit(func)
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = self._self_attr(node)
        if attr is not None:
            if attr in self.property_names:
                # Property access executes here: a call site for the
                # caller-holds inference.
                self.info.calls.append((attr, self.held))
            elif attr in self.method_names:
                # Bound-method reference — execution is deferred (e.g.
                # pool.submit(self._fn)), so it is NOT a lock-held call
                # site and not a data access either.
                pass
            elif attr not in self.locks:
                self._record(attr, "read", node)
            return
        self.visit(node.value)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested functions keep the textual lock context (they execute on
        # the dispatching side while the lock is held in this codebase).
        for stmt in node.body:
            self.visit(stmt)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.visit(node.body)


def _class_lock_attrs(cls: ast.ClassDef, ctx: ModuleContext) -> set[str]:
    locks: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        qual = ctx.qualified_name(node.value.func)
        if qual not in LOCK_FACTORIES:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                locks.add(target.attr)
    return locks


def _inferred_held(methods: dict[str, _MethodInfo],
                   locks: set[str]) -> dict[str, frozenset[str]]:
    """Caller-holds fixpoint over private helper methods."""

    inferred = {name: frozenset() for name in methods}
    candidates = [
        name for name in methods
        if name.startswith("_") and not name.startswith("__")
    ]
    for _ in range(len(methods) + 1):
        changed = False
        for name in candidates:
            sites: list[frozenset[str]] = []
            for caller in methods.values():
                if caller.exempt:
                    continue
                for callee, held in caller.calls:
                    if callee == name:
                        effective = held | frozenset(caller.acquires)
                        effective |= inferred[caller.name]
                        sites.append(frozenset(l for l in effective
                                               if l in locks))
            if not sites:
                continue
            meet = frozenset.intersection(*sites)
            if meet != inferred[name]:
                inferred[name] = meet
                changed = True
        if not changed:
            break
    return inferred


@register
class LockDisciplineRule(Rule):
    id = "R1"
    name = "lock-discipline"
    description = (
        "attributes written under an instance lock must always be "
        "accessed while holding it"
    )
    scopes = None  # any class owning an instance lock, anywhere

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(node, ctx))
        return findings

    def _check_class(self, cls: ast.ClassDef,
                     ctx: ModuleContext) -> list[Finding]:
        locks = _class_lock_attrs(cls, ctx)
        if not locks:
            return []

        method_nodes = [
            stmt for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        method_names = {m.name for m in method_nodes}
        property_names = {
            m.name for m in method_nodes
            if any(
                (isinstance(d, ast.Name) and d.id == "property")
                or (isinstance(d, ast.Attribute)
                    and d.attr in ("cached_property", "property", "setter",
                                   "getter"))
                for d in m.decorator_list
            )
        }
        methods: dict[str, _MethodInfo] = {}
        for m in method_nodes:
            info = _MethodInfo(name=m.name, exempt=m.name in EXEMPT_METHODS)
            scanner = _MethodScanner(locks, info, method_names,
                                     property_names)
            for stmt in m.body:
                scanner.visit(stmt)
            methods[m.name] = info

        inferred = _inferred_held(methods, locks)

        def effective_held(event: _Event) -> frozenset[str]:
            info = methods[event.method]
            return (event.held | frozenset(info.acquires)
                    | inferred[event.method])

        guarded: dict[str, set[str]] = {lock: set() for lock in locks}
        for info in methods.values():
            if info.exempt:
                continue
            for event in info.events:
                if event.kind != "write":
                    continue
                for lock in effective_held(event):
                    if event.attr not in locks:
                        guarded[lock].add(event.attr)

        findings: list[Finding] = []
        for info in methods.values():
            if info.exempt:
                continue
            for event in info.events:
                guards = {l for l, attrs in guarded.items()
                          if event.attr in attrs}
                if not guards:
                    continue
                if guards & effective_held(event):
                    continue
                lock_desc = " or ".join(f"self.{l}" for l in sorted(guards))
                findings.append(ctx.finding(
                    self.id, event.node,
                    f"'{cls.name}.{event.attr}' is written under "
                    f"{lock_desc} elsewhere but {event.kind} here without "
                    f"holding it",
                ))
        return findings
