"""R5: ``tolerance`` parameters route through the validation helper.

PR 4's planner accepted non-finite tolerances and produced nonsense
plans; validation now lives in ``repro.util.validation.check_tolerance``.
Any public entry point (or underscore-free method) in the scoped modules
that takes a ``tolerance`` parameter must either call the validator or
delegate the parameter wholesale to another call (which is then itself
subject to this rule).

Conversions like ``float(tolerance)`` or ``math.isfinite(tolerance)``
are *not* delegation — that is exactly the inline re-implementation this
rule exists to flag.
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Finding, ModuleContext, Rule, register

VALIDATOR_NAMES = {"check_tolerance", "_check_tolerance"}
PARAM = "tolerance"

#: Calls that transform rather than consume the parameter — passing
#: ``tolerance`` to these does not count as delegation.
NON_DELEGATING = {
    "float", "int", "bool", "str", "abs", "repr", "isinstance", "type",
    "math.isfinite", "math.isnan", "math.isinf",
}


@register
class ApiValidationRule(Rule):
    id = "R5"
    name = "api-validation"
    description = (
        "entry points taking a tolerance parameter must route it through "
        "check_tolerance (or delegate it to a callee that does)"
    )
    scopes = [
        "src/repro/core/planner.py",
        "src/repro/core/reconstruct.py",
        "src/repro/core/tiling.py",
        "src/repro/core/service.py",
    ]

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue  # private helpers receive validated values
            params = {
                a.arg
                for a in (node.args.posonlyargs + node.args.args
                          + node.args.kwonlyargs)
            }
            if PARAM not in params:
                continue
            if not self._validates_or_delegates(node, ctx):
                findings.append(ctx.finding(
                    self.id, node,
                    f"'{node.name}' takes a '{PARAM}' parameter but "
                    "neither calls check_tolerance nor delegates it",
                ))
        return findings

    def _validates_or_delegates(self, func: ast.FunctionDef,
                                ctx: ModuleContext) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            name = (
                callee.attr if isinstance(callee, ast.Attribute)
                else callee.id if isinstance(callee, ast.Name) else None
            )
            if name in VALIDATOR_NAMES:
                return True
            qual = ctx.qualified_name(callee) or name or ""
            if qual in NON_DELEGATING or name in NON_DELEGATING:
                continue
            passed = any(
                isinstance(a, ast.Name) and a.id == PARAM
                for a in node.args
            ) or any(
                isinstance(kw.value, ast.Name) and kw.value.id == PARAM
                for kw in node.keywords
            )
            if passed:
                return True
        return False
