"""R4: codec, chaos-schedule, and decode logic must be seed-deterministic.

The differential byte-identity suites compare outputs across backends;
any unseeded randomness or wall-clock dependence in those paths makes a
mismatch unreproducible.  Flags, inside the scoped modules:

* ``random.Random()`` / ``random.SystemRandom()`` with no seed argument,
* bare module-level ``random.random()/randint/...`` calls (implicitly
  the unseeded global RNG),
* ``numpy.random.default_rng()`` with no seed, and legacy
  ``numpy.random.<dist>()`` calls on the global generator,
* ``time.time()`` — wall-clock values feeding logic.  (``monotonic`` /
  ``perf_counter`` are fine: they are used for deadlines and metrics,
  never for data-dependent decisions.)
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Finding, ModuleContext, Rule, register

GLOBAL_RANDOM_FUNCS = {
    "random.random", "random.randint", "random.randrange", "random.choice",
    "random.shuffle", "random.uniform", "random.sample", "random.gauss",
    "random.getrandbits",
}
SEEDED_FACTORIES = {"random.Random", "random.SystemRandom"}
NUMPY_GLOBAL_PREFIX = "numpy.random."
NUMPY_FACTORY = "numpy.random.default_rng"
WALL_CLOCK = {"time.time", "time.time_ns"}


@register
class DeterminismRule(Rule):
    id = "R4"
    name = "determinism"
    description = (
        "no unseeded RNGs or wall-clock dependence in codec, chaos, and "
        "decode modules"
    )
    scopes = [
        "src/repro/lossless/*.py",
        "src/repro/bitplane/*.py",
        "src/repro/core/faults.py",
        "src/repro/core/reconstruct.py",
        "src/repro/core/tiling.py",
    ]

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualified_name(node.func)
            if qual is None:
                continue
            has_args = bool(node.args or node.keywords)
            if qual in SEEDED_FACTORIES and not has_args:
                findings.append(ctx.finding(
                    self.id, node,
                    f"{qual}() without a seed is nondeterministic; derive "
                    "the seed from the configured chaos/codec seed",
                ))
            elif qual == NUMPY_FACTORY and not has_args:
                findings.append(ctx.finding(
                    self.id, node,
                    "numpy.random.default_rng() without a seed is "
                    "nondeterministic; thread the experiment seed through",
                ))
            elif qual in GLOBAL_RANDOM_FUNCS:
                findings.append(ctx.finding(
                    self.id, node,
                    f"{qual}() uses the process-global unseeded RNG; use a "
                    "random.Random(seed) instance instead",
                ))
            elif (
                qual.startswith(NUMPY_GLOBAL_PREFIX)
                and qual != NUMPY_FACTORY
                and qual.rsplit(".", 1)[-1][0:1].islower()
            ):
                findings.append(ctx.finding(
                    self.id, node,
                    f"{qual}() draws from numpy's global generator; use a "
                    "seeded default_rng(seed) instance instead",
                ))
            elif qual in WALL_CLOCK:
                findings.append(ctx.finding(
                    self.id, node,
                    f"{qual}() wall-clock value in a determinism-scoped "
                    "module; use monotonic clocks for timing and seeds for "
                    "variability",
                ))
        return findings
