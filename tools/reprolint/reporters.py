"""Human-readable and JSON output for lint runs."""

from __future__ import annotations

import json

from tools.reprolint.baseline import BaselineSplit
from tools.reprolint.core import Finding, LintResult


def _finding_dict(finding: Finding) -> dict:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col + 1,
        "message": finding.message,
        "snippet": finding.snippet,
    }


def render_json(result: LintResult, split: BaselineSplit) -> str:
    payload = {
        "findings": [_finding_dict(f) for f in split.new],
        "baselined": [_finding_dict(f) for f in split.baselined],
        "suppressed": len(result.suppressed),
        "stale_baseline_entries": split.stale,
        "errors": result.errors,
        "summary": {
            "new": len(split.new),
            "baselined": len(split.baselined),
            "suppressed": len(result.suppressed),
        },
    }
    return json.dumps(payload, indent=2)


def render_human(result: LintResult, split: BaselineSplit, verbose: bool) -> str:
    out: list[str] = []
    for err in result.errors:
        out.append(f"error: {err}")
    for finding in split.new:
        out.append(f"{finding.location()}: {finding.rule}: {finding.message}")
        out.append(f"    {finding.snippet}")
    if verbose and split.baselined:
        out.append(f"-- {len(split.baselined)} baselined finding(s):")
        for finding in split.baselined:
            out.append(f"   {finding.location()}: {finding.rule}: {finding.message}")
    if split.stale:
        out.append(
            f"note: {len(split.stale)} stale baseline entr"
            f"{'y' if len(split.stale) == 1 else 'ies'} "
            "(fixed in code; prune with --update-baseline)"
        )
    summary = (
        f"reprolint: {len(split.new)} new, {len(split.baselined)} baselined, "
        f"{len(result.suppressed)} pragma-suppressed"
    )
    out.append(summary)
    return "\n".join(out)
