"""Shared framework for reprolint rules.

Every rule operates on a :class:`ModuleContext` — one parsed module plus
the derived metadata all rules need:

* the repo-relative posix path (used for rule scoping and baselines),
* an import map so rules can resolve ``Lock`` back to ``threading.Lock``,
* the ``# reprolint: disable=RULE`` pragma table (parsed from comment
  tokens, so pragmas inside string literals are ignored),
* function spans, so a pragma on a ``def`` line suppresses the whole body.

Rules are registered via :func:`register` and produce :class:`Finding`
objects.  Findings carry a line-number-independent fingerprint — rule id,
path, the stripped source line, and an occurrence index — so baselines
survive unrelated edits that shift code up or down.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*disable(?:=(?P<rules>[A-Za-z0-9_,\s]+?))?\s*(?:--.*)?$"
)

#: Sentinel meaning "suppress every rule on this line".
ALL_RULES = "*"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"


def fingerprint(finding: Finding, occurrence: int) -> str:
    """Line-number independent identity used by the baseline.

    ``occurrence`` disambiguates identical snippets flagged by the same
    rule in the same file (k-th occurrence in line order).
    """

    return f"{finding.rule}|{finding.path}|{finding.snippet}|{occurrence}"


def fingerprints(findings: Iterable[Finding]) -> list[str]:
    counts: dict[tuple[str, str, str], int] = {}
    out = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        key = (f.rule, f.path, f.snippet)
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        out.append(fingerprint(f, occurrence))
    return out


class ModuleContext:
    """A parsed module plus the metadata shared by all rules."""

    def __init__(self, source: str, path: str):
        self.source = source
        self.path = Path(path).as_posix()
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.pragmas = self._parse_pragmas(source)
        self.imports = self._collect_imports(self.tree)
        self._function_spans = self._collect_function_spans(self.tree)

    # -- construction helpers -------------------------------------------

    @staticmethod
    def _parse_pragmas(source: str) -> dict[int, set[str]]:
        """Map line number -> set of suppressed rule ids (or ALL_RULES)."""

        pragmas: dict[int, set[str]] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # Fall back to a plain line scan; good enough for fixtures.
            comments = [
                (i, line[line.index("#"):])
                for i, line in enumerate(source.splitlines(), start=1)
                if "#" in line
            ]
        for lineno, text in comments:
            match = _PRAGMA_RE.search(text)
            if not match:
                continue
            rules = match.group("rules")
            if rules is None:
                pragmas.setdefault(lineno, set()).add(ALL_RULES)
            else:
                names = {r.strip() for r in rules.split(",") if r.strip()}
                pragmas.setdefault(lineno, set()).update(names)
        return pragmas

    @staticmethod
    def _collect_imports(tree: ast.Module) -> dict[str, str]:
        """Alias -> fully qualified name (``np`` -> ``numpy``)."""

        imports: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        imports[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        return imports

    @staticmethod
    def _collect_function_spans(tree: ast.Module) -> list[tuple[int, int]]:
        spans = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                spans.append((node.lineno, node.end_lineno or node.lineno))
        return spans

    # -- services for rules ---------------------------------------------

    def qualified_name(self, node: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain to a dotted name via imports.

        ``Random`` (from ``from random import Random``) resolves to
        ``random.Random``; ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng``.  Returns None for non-name nodes.
        """

        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=self.path,
            line=lineno,
            col=col,
            message=message,
            snippet=self.snippet(lineno),
        )

    def is_suppressed(self, finding: Finding) -> bool:
        """True when a pragma covers the finding.

        A pragma suppresses a finding when it sits on the flagged line,
        on a comment-only line immediately above it, or on the ``def``
        line (or comment line above it) of any enclosing function.
        """

        if self._pragma_matches(finding.rule, finding.line):
            return True
        if self._comment_pragma_matches(finding.rule, finding.line - 1):
            return True
        for start, end in self._function_spans:
            if start <= finding.line <= end:
                if self._pragma_matches(finding.rule, start):
                    return True
                if self._comment_pragma_matches(finding.rule, start - 1):
                    return True
        return False

    def _pragma_matches(self, rule: str, lineno: int) -> bool:
        rules = self.pragmas.get(lineno)
        return bool(rules) and (rule in rules or ALL_RULES in rules)

    def _comment_pragma_matches(self, rule: str, lineno: int) -> bool:
        if not self._pragma_matches(rule, lineno):
            return False
        if not (1 <= lineno <= len(self.lines)):
            return False
        return self.lines[lineno - 1].lstrip().startswith("#")


class Rule:
    """Base class for reprolint rules.

    ``scopes`` is a list of fnmatch patterns over repo-relative posix
    paths; ``None`` means the rule applies everywhere.  Subclasses
    implement :meth:`check`.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    scopes: list[str] | None = None

    def applies_to(self, path: str) -> bool:
        if self.scopes is None:
            return True
        posix = Path(path).as_posix()
        return any(fnmatch.fnmatch(posix, pat) for pat in self.scopes)

    def check(self, ctx: ModuleContext) -> list[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> dict[str, Rule]:
    # Import for side effects: rule modules self-register on import.
    from tools.reprolint import rules  # noqa: F401

    return dict(_REGISTRY)


@dataclass
class LintResult:
    """Findings for a set of files, split by suppression state."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)


def lint_source(
    source: str,
    path: str,
    rules: Iterable[Rule] | None = None,
    respect_scopes: bool = True,
) -> LintResult:
    """Lint one in-memory module.  The entry point used by the tests."""

    result = LintResult()
    try:
        ctx = ModuleContext(source, path)
    except SyntaxError as exc:
        result.errors.append(f"{path}: syntax error: {exc.msg} (line {exc.lineno})")
        return result
    selected = list(rules) if rules is not None else list(all_rules().values())
    for rule in selected:
        if respect_scopes and not rule.applies_to(ctx.path):
            continue
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding):
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    result.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result


def iter_python_files(paths: Iterable[str], root: Path) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if not p.is_absolute():
            p = root / p
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py" and p.exists():
            files.append(p)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return files


def lint_paths(
    paths: Iterable[str],
    root: Path,
    rules: Iterable[Rule] | None = None,
) -> LintResult:
    """Lint files/directories; paths in findings are relative to ``root``."""

    combined = LintResult()
    for file in iter_python_files(paths, root):
        try:
            rel = file.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = file.as_posix()
        try:
            source = file.read_text(encoding="utf-8")
        except OSError as exc:
            combined.errors.append(f"{rel}: unreadable: {exc}")
            continue
        result = lint_source(source, rel, rules=rules)
        combined.findings.extend(result.findings)
        combined.suppressed.extend(result.suppressed)
        combined.errors.extend(result.errors)
    combined.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return combined
