"""reprolint: AST-based invariant checks for the repro codebase.

Five rules enforce the concurrency/fault-tolerance invariants the test
suite can only probe statistically:

* **R1 lock-discipline** — attributes written under an instance lock are
  always accessed under it.
* **R2 error-taxonomy** — broad handlers in ``src/repro/core`` re-raise
  or convert to ``core.errors`` types; boundary functions raise only
  taxonomy types.
* **R3 pickle-boundary** — no lambdas/closures into
  ``map_calls``/``map_jobs``/``submit``/``ensure_shared``.
* **R4 determinism** — no unseeded RNGs or wall-clock logic in codec,
  chaos, and decode modules.
* **R5 api-validation** — ``tolerance`` parameters route through
  ``repro.util.validation.check_tolerance``.

CLI: ``python -m tools.reprolint src/repro`` (exit 0 clean, 1 findings,
2 usage error).  See ``docs/static_analysis.md``.
"""

from tools.reprolint.core import (  # noqa: F401
    Finding,
    LintResult,
    ModuleContext,
    Rule,
    all_rules,
    fingerprints,
    lint_paths,
    lint_source,
)
