"""CLI entry point: ``python -m tools.reprolint [paths...]``.

Exit codes: 0 — clean (no non-baselined findings), 1 — new findings or
unparseable targets, 2 — usage error (unknown rule, missing path, bad
baseline file).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.reprolint import baseline as baseline_mod
from tools.reprolint.baseline import BaselineError
from tools.reprolint.core import all_rules, lint_paths
from tools.reprolint.reporters import render_human, render_json

REPO_ROOT = Path(__file__).resolve().parents[2]


def _parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Project-specific AST lint for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--rules", metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument("--list-rules", action="store_true",
                        help="list available rules and exit")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit machine-readable JSON")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="baseline file (default: tools/reprolint/baseline.json "
             "when it exists; pass 'none' to disable)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument("--verbose", action="store_true",
                        help="also print baselined findings")
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    registry = all_rules()

    if args.list_rules:
        for rule in sorted(registry.values(), key=lambda r: r.id):
            print(f"{rule.id}  {rule.name}: {rule.description}")
        return 0

    rules = None
    if args.rules:
        wanted = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in wanted if r not in registry]
        if unknown:
            print(f"error: unknown rule id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        rules = [registry[r] for r in wanted]

    if args.baseline and args.baseline.lower() == "none":
        baseline_path = None
    elif args.baseline:
        baseline_path = Path(args.baseline)
    elif baseline_mod.DEFAULT_BASELINE.exists() or args.update_baseline:
        baseline_path = baseline_mod.DEFAULT_BASELINE
    else:
        baseline_path = None

    try:
        result = lint_paths(args.paths, REPO_ROOT, rules=rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        if baseline_path is None:
            print("error: --update-baseline needs a baseline path",
                  file=sys.stderr)
            return 2
        baseline_mod.save(baseline_path, result.findings)
        print(f"baseline written: {baseline_path} "
              f"({len(result.findings)} finding(s))")
        return 0

    known: set[str] = set()
    if baseline_path is not None:
        try:
            known = baseline_mod.load(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    split = baseline_mod.apply(result.findings, known)
    if args.as_json:
        print(render_json(result, split))
    else:
        print(render_human(result, split, verbose=args.verbose))
    return 1 if (split.new or result.errors) else 0


if __name__ == "__main__":
    sys.exit(main())
