"""Checked-in baseline of grandfathered findings.

The baseline stores fingerprints (rule | path | stripped line |
occurrence index) rather than line numbers, so unrelated edits that
shift code do not invalidate it.  ``apply`` splits current findings into
*new* (fail the build) and *baselined* (tolerated), and reports *stale*
entries whose code has since been fixed so they can be pruned with
``--update-baseline``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from tools.reprolint.core import Finding, fingerprints

BASELINE_VERSION = 1
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


class BaselineError(ValueError):
    """Raised when a baseline file is malformed."""


@dataclass
class BaselineSplit:
    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[str] = field(default_factory=list)


def load(path: Path) -> set[str]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported format (expected version "
            f"{BASELINE_VERSION})"
        )
    entries = data.get("fingerprints")
    if not isinstance(entries, list) or not all(
        isinstance(e, str) for e in entries
    ):
        raise BaselineError(f"baseline {path}: 'fingerprints' must be strings")
    return set(entries)


def save(path: Path, findings: Iterable[Finding]) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Grandfathered reprolint findings. Regenerate with "
            "`python -m tools.reprolint src/repro --update-baseline`. "
            "Entries under src/repro/core must stay empty."
        ),
        "fingerprints": sorted(fingerprints(findings)),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply(findings: list[Finding], baseline: set[str]) -> BaselineSplit:
    split = BaselineSplit()
    prints = fingerprints(findings)
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
    seen = set()
    for finding, print_ in zip(ordered, prints):
        seen.add(print_)
        if print_ in baseline:
            split.baselined.append(finding)
        else:
            split.new.append(finding)
    split.stale = sorted(baseline - seen)
    return split
