#!/usr/bin/env python3
"""Write-once / read-many-times workflow with a file-backed store.

Models the paper's motivating scenario on a LETKF-like weather field:
a simulation campaign refactors its output once into a directory of
small segment files; later, different analyses retrieve at different
precisions, each reading only the segments its tolerance requires.
The I/O accounting shows the many-small-files effect the paper
discusses in its Fig. 14 analysis.

Run:  python examples/climate_store_workflow.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import Reconstructor, refactor
from repro.core.store import DirectoryStore, open_field, store_field
from repro.data.generators import letkf_field


def main() -> None:
    dims = (32, 96, 96)
    print(f"Simulating a {dims} LETKF-like assimilation field ...")
    data = letkf_field(dims, seed=3, dtype=np.float32)

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "campaign"
        store = DirectoryStore(root, file_open_latency_s=2e-4)

        print("Refactoring and writing segments ...")
        field = refactor(data, name="temperature")
        store_field(store, field)
        n_segments = len(store.keys()) - 1
        print(f"  wrote {n_segments} segment files, "
              f"{store.total_bytes() / 1e6:.2f} MB total")

        # Three downstream consumers with different precision needs.
        analyses = [
            ("visualization", 1e-2),
            ("feature tracking", 1e-4),
            ("restart-grade", 1e-6),
        ]
        print(f"\n{'analysis':>18} {'tolerance':>10} {'segments':>9} "
              f"{'bytes read':>11} {'modeled I/O':>12} {'max error':>10}")
        for name, tol in analyses:
            # Open lazily: planning runs on index metadata, and the
            # reconstruction fetches exactly the plane groups its
            # tolerance requires — no probe load, no second pass.
            lazy = open_field(store, "temperature")
            store.reads = store.bytes_read = 0
            out = Reconstructor(lazy).reconstruct(tolerance=tol,
                                                  relative=True)
            actual = float(np.max(np.abs(
                out.data.astype(np.float64) - data.astype(np.float64))))
            io_t = store.io_time_estimate(bandwidth_gbps=2.0)
            print(f"{name:>18} {tol:>10.0e} {store.reads:>9} "
                  f"{store.bytes_read / 1e6:>9.2f}MB {io_t * 1e3:>10.2f}ms "
                  f"{actual:>10.2e}")
            assert actual <= tol * lazy.value_range
            assert store.bytes_read == out.incremental_bytes

        print("\nEach analysis read only what its precision demanded; "
              "per-file open latency is the dominant I/O cost for the "
              "coarse readers — the small-files effect of Fig. 14.")


if __name__ == "__main__":
    main()
