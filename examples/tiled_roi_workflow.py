#!/usr/bin/env python3
"""Tiled store + region-of-interest progressive retrieval (paper Fig. 4).

A simulation campaign writes a domain larger than any consumer wants to
read: the field is refactored tile by tile (in parallel — tiles are
independent streams) into a sharded directory store, and analysts then
retrieve *regions*, not domains. Only the tiles a region overlaps are
opened, fetched, and decoded; walking a tolerance staircase over the
region refines each touched tile incrementally.

Run:  python examples/tiled_roi_workflow.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.service import RetrievalService
from repro.core.store import ShardedDirectoryStore, store_tiled_field
from repro.core.tiling import TiledRefactorer
from repro.data.generators import letkf_field


def main() -> None:
    dims = (48, 96, 96)
    tile = (24, 32, 32)
    print(f"Simulating a {dims} LETKF-like assimilation field ...")
    data = letkf_field(dims, seed=5, dtype=np.float32)

    with tempfile.TemporaryDirectory() as tmp:
        store = ShardedDirectoryStore(Path(tmp) / "campaign",
                                      num_shards=16)

        print(f"Refactoring {tile} tiles in parallel and storing ...")
        with TiledRefactorer(tile, num_workers=4) as refac:
            tiled = refac.refactor(data, name="temperature")
        store_tiled_field(store, tiled)
        print(f"  {tiled.num_tiles} tiles, {len(store.keys())} segment "
              f"files, {store.total_bytes() / 1e6:.2f} MB stored, "
              f"{store.manifest_writes} manifest flush")

        # An analyst tracks one storm system: a hyperslab covering a
        # fraction of the domain, retrieved at tightening tolerances.
        service = RetrievalService(store, cache_bytes=64 << 20)
        region = (slice(12, 36), (32, 64), (48, 80))
        slices = (slice(12, 36), slice(32, 64), slice(48, 80))
        region_elems = int(np.prod([s.stop - s.start for s in slices]))
        print(f"\nRegion of interest {[(s.start, s.stop) for s in slices]}"
              f" = {region_elems / data.size:.1%} of the domain")
        print(f"{'rel tol':>9} {'tiles':>6} {'store reads':>12} "
              f"{'bytes read':>11} {'max error':>10}")
        with service.tiled_session("temperature") as session:
            for tol in (1e-1, 1e-2, 1e-3, 1e-4):
                reads0, bytes0 = store.reads, store.bytes_read
                out, bound = session.reconstruct(
                    tolerance=tol, relative=True, region=region
                )
                err = float(np.max(np.abs(
                    out.astype(np.float64)
                    - data[slices].astype(np.float64)
                )))
                print(f"{tol:>9.0e} "
                      f"{session.tiles_touched:>3}/{tiled.num_tiles:<2} "
                      f"{store.reads - reads0:>12} "
                      f"{(store.bytes_read - bytes0) / 1e3:>9.1f}kB "
                      f"{err:>10.2e}")
            stats = session.stats()

        full_bytes = store.total_bytes()
        print(f"\nRegion staircase fetched {stats['fetched_bytes'] / 1e3:.1f}"
              f"kB of payload; the full-domain store holds "
              f"{full_bytes / 1e6:.2f} MB "
              f"({stats['fetched_bytes'] / full_bytes:.1%}).")
        print(f"Retained incremental decode state: "
              f"{stats['decode_state_bytes'] / 1e3:.1f} kB across "
              f"{stats['tiles_touched']} touched tiles.")
        service.close()


if __name__ == "__main__":
    main()
