#!/usr/bin/env python3
"""HP-MDR vs the multi-component progressive baselines (paper Fig. 11).

Refactors a Miranda-like field with HP-MDR, the MDR baseline, and the
multi-component framework over SZ3-like / MGARD / ZFP backends, then
retrieves everything at a ladder of relative tolerances and compares
the bytes each approach had to move.

Run:  python examples/compare_baselines.py
"""

import numpy as np

from repro import Reconstructor, refactor
from repro.baselines import (
    MdrCpuBaseline,
    MultiComponentProgressive,
    MgardLossyCodec,
    Sz3Codec,
    ZfpCodec,
)
from repro.data.generators import interface_field


def main() -> None:
    dims = (32, 48, 48)
    print(f"Generating a {dims} Miranda-like interface field ...")
    data = interface_field(dims, seed=5).astype(np.float64)
    value_range = float(np.ptp(data))
    tolerances = [1e-1, 1e-2, 1e-3, 1e-4]

    print("Refactoring with every approach (write path) ...")
    hp_field = refactor(data, name="density")
    hp_recon = Reconstructor(hp_field)
    mdr = MdrCpuBaseline(data.shape)
    mdr_field = mdr.refactor(data)
    multicomponent = {
        "M-SZ3": MultiComponentProgressive(Sz3Codec(), num_components=7),
        "M-MGARD": MultiComponentProgressive(MgardLossyCodec(),
                                             num_components=7),
        "M-ZFP-CPU": MultiComponentProgressive(
            ZfpCodec(mode="fixed_accuracy"), num_components=7),
    }
    mc_streams = {
        name: mc.refactor(data) for name, mc in multicomponent.items()
    }

    print(f"\nIncremental retrieval bytes (MB) per relative tolerance "
          f"(raw data: {data.nbytes / 1e6:.2f} MB)\n")
    header = f"{'approach':>12}" + "".join(
        f"{t:>10.0e}" for t in tolerances)
    print(header)

    row = f"{'HP-MDR':>12}"
    for tol in tolerances:
        r = hp_recon.reconstruct(tolerance=tol, relative=True)
        row += f"{r.fetched_bytes / 1e6:>10.3f}"
    print(row)

    row = f"{'MDR':>12}"
    mdr_recon = Reconstructor(mdr_field)
    for tol in tolerances:
        r = mdr_recon.reconstruct(tolerance=tol * value_range)
        row += f"{r.fetched_bytes / 1e6:>10.3f}"
    print(row)

    for name, mc in multicomponent.items():
        row = f"{name:>12}"
        for tol in tolerances:
            _, fetched, achieved = mc.retrieve(
                mc_streams[name], tol * value_range)
            marker = "" if achieved <= tol * value_range else "*"
            row += f"{fetched / 1e6:>9.3f}{marker or ' '}"
        print(row)

    print("\n(*) tolerance unreachable within the component stack — all "
          "components fetched.\nThe multi-component baselines pay for "
          "residual incompressibility at tight tolerances; the MDR-style "
          "bitplane approaches reuse everything already fetched.")


if __name__ == "__main__":
    main()
