#!/usr/bin/env python3
"""Weak-scaling projection on the two evaluation systems (paper Fig. 10).

Derives one GPU's pipeline stage costs from a real refactoring of an
NYX-like sub-domain (codec mix, compressed size), then projects node
throughput as GPUs are added, with host-link contention and barrier
overheads — the mechanisms behind the paper's 95% / 89% efficiencies.

Run:  python examples/multigpu_weak_scaling.py
"""

import numpy as np

from repro.bitplane import encode_bitplanes
from repro.data.generators import lognormal_density
from repro.gpu.hdem import HostDeviceModel
from repro.lossless.hybrid import HybridConfig, compress_planes
from repro.pipeline.multigpu import (
    FRONTIER_NODE,
    TALAPAS_NODE,
    weak_scaling,
)
from repro.pipeline.scheduler import refactor_stage_costs

SUBDOMAIN_ELEMENTS = 1 << 26  # 256 MB fp32 per sub-domain
NUM_SUBDOMAINS = 8


def main() -> None:
    print("Profiling one sub-domain's codec mix on NYX-like data ...")
    data = lognormal_density((32, 32, 32), seed=1)
    planes = encode_bitplanes(data.ravel(), 32).planes
    groups = compress_planes(planes, HybridConfig(cr_threshold=2.0))
    mix: dict[str, int] = {}
    for g in groups:
        mix[g.method] = mix.get(g.method, 0) + g.original_size
    scale = SUBDOMAIN_ELEMENTS / data.size
    mix = {k: int(v * scale) for k, v in mix.items()}
    compressed = int(sum(g.compressed_size for g in groups) * scale)
    shares = {k: v / sum(mix.values()) for k, v in mix.items()}
    print("  codec mix:", {k: f"{v:.0%}" for k, v in shares.items()})

    for node in (TALAPAS_NODE, FRONTIER_NODE):
        model = HostDeviceModel(node.device)
        stages = [refactor_stage_costs(
            model, SUBDOMAIN_ELEMENTS, 4, 3, 5, 32, compressed, mix,
        )] * NUM_SUBDOMAINS
        points = weak_scaling(
            node, stages, NUM_SUBDOMAINS * SUBDOMAIN_ELEMENTS * 4)
        print(f"\n{node.name} (up to {node.max_gpus} GPUs):")
        print(f"{'gpus':>6} {'agg GB/s':>10} {'speedup':>9} "
              f"{'efficiency':>11}")
        for p in points:
            print(f"{p.num_gpus:>6} {p.throughput_gbps:>10.1f} "
                  f"{p.speedup:>9.2f} {p.efficiency:>10.1%}")

    print("\nEfficiency losses emerge from host-link contention and the "
          "per-step barrier — no scaling numbers are hard-coded.")


if __name__ == "__main__":
    main()
