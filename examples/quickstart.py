#!/usr/bin/env python3
"""Quickstart: refactor once, retrieve progressively at many precisions.

Demonstrates the core HP-MDR workflow on a synthetic turbulence field:
the data is refactored into a portable multi-precision stream, then
reconstructed at a ladder of tolerances. Each step fetches only the
*incremental* bitplane groups — the defining win of progressive
retrieval over single-error-bound compression.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Reconstructor, refactor
from repro.data import generators as gen


def main() -> None:
    dims = (64, 64, 64)
    print(f"Generating a {dims} Kolmogorov turbulence field ...")
    data = gen.gaussian_random_field(dims, -5.0 / 3.0, seed=7,
                                     dtype=np.float32)
    raw_bytes = data.nbytes

    print("Refactoring (decompose -> bitplanes -> hybrid lossless) ...")
    field = refactor(data, name="velocity")
    print(f"  stored size : {field.total_bytes() / 1e6:7.2f} MB "
          f"({field.total_bytes() / raw_bytes:5.1%} of raw, near-lossless)")
    print(f"  levels      : {len(field.levels)} "
          f"(weights {['%.2f' % w for w in field.level_weights]})")

    recon = Reconstructor(field)
    tolerances = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5]
    print(f"\n{'tolerance':>10} {'bound':>10} {'actual':>10} "
          f"{'incr. fetch':>12} {'cum. bitrate':>12}")
    for tol in tolerances:
        result = recon.reconstruct(tolerance=tol)
        actual = float(np.max(np.abs(
            result.data.astype(np.float64) - data.astype(np.float64))))
        assert actual <= tol, "error-control guarantee violated!"
        print(f"{tol:>10.0e} {result.error_bound:>10.2e} {actual:>10.2e} "
              f"{result.incremental_bytes / 1e6:>10.2f}MB "
              f"{result.bitrate:>10.2f}bpe")

    print("\nEvery reconstruction met its requested tolerance, and each "
          "refinement fetched only the increment.")


if __name__ == "__main__":
    main()
