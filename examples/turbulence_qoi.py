#!/usr/bin/env python3
"""QoI-controlled retrieval on turbulence velocity fields (paper §7.3).

A scientist wants the velocity magnitude ``V_total = sqrt(Vx²+Vy²+Vz²)``
accurate to a tolerance — not the raw components. Algorithm 3 fetches
just enough bitplanes of each component, comparing the three
error-bound estimation strategies (CP / MA / MAPE) on bitrate and
iteration count, and validates the Fig. 13 invariant:

    max actual QoI error  <=  max estimated QoI error  <=  tolerance.

Run:  python examples/turbulence_qoi.py
"""

import numpy as np

from repro import refactor
from repro.data import generators as gen
from repro.qoi import actual_qoi_error, retrieve_qoi, v_total


def main() -> None:
    dims = (32, 32, 32)
    print(f"Generating {dims} velocity fields (JHTDB-like spectra) ...")
    vx, vy, vz = gen.turbulence_velocity(dims, seed=11, dtype=np.float64)
    original = {"vx": vx, "vy": vy, "vz": vz}

    print("Refactoring the three components ...")
    fields = {k: refactor(v, name=k) for k, v in original.items()}
    qoi = v_total()

    tol = 1e-3
    print(f"\nRetrieving V_total to tolerance {tol:.0e} with each "
          f"EB-estimation method:\n")
    print(f"{'method':>12} {'iters':>6} {'bitrate':>9} {'estimated':>11} "
          f"{'actual':>11}")
    for method in ("cp", "ma", "mape"):
        result = retrieve_qoi(fields, qoi, tol, method=method)
        actual = actual_qoi_error(qoi, original, result.values)
        assert actual <= result.estimated_error <= tol, \
            "QoI error-control invariant violated!"
        print(f"{method.upper():>12} {result.iterations:>6} "
              f"{result.bitrate:>8.2f}b {result.estimated_error:>11.3e} "
              f"{actual:>11.3e}")

    print("\nSweep of tolerances with MAPE(c=10) — the Fig. 13 check:")
    print(f"{'tolerance':>11} {'estimated':>11} {'actual':>11} "
          f"{'guarantee':>10}")
    for tol in (1e-1, 1e-2, 1e-3, 1e-4):
        result = retrieve_qoi(fields, qoi, tol, method="mape",
                              switch_threshold=10.0)
        actual = actual_qoi_error(qoi, original, result.values)
        ok = actual <= result.estimated_error <= tol
        print(f"{tol:>11.0e} {result.estimated_error:>11.3e} "
              f"{actual:>11.3e} {'  OK' if ok else 'FAIL':>10}")
        assert ok
    print("\nGuaranteed QoI error control held at every tolerance.")


if __name__ == "__main__":
    main()
