#!/usr/bin/env python3
"""Many analysts, one service: shared-cache progressive retrieval.

Models the serving scenario the lazy retrieval layer exists for: a
campaign's refactored output sits in a sharded directory store, and a
retrieval service answers many concurrent tolerance queries over it.
Each session fetches only the plane groups its tolerance staircase
needs (lazy, per-segment), and all sessions share one byte-budgeted
segment cache — so the store is paid once per segment no matter how
many analysts ask.

Run:  python examples/service_sessions.py
"""

import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro import RetrievalService, refactor
from repro.core.store import ShardedDirectoryStore, store_field
from repro.data.generators import gaussian_random_field


def main() -> None:
    dims = (48, 48, 48)
    print(f"Simulating a {dims} turbulence field ...")
    data = gaussian_random_field(dims, -5.0 / 3.0, seed=21,
                                 dtype=np.float32)

    with tempfile.TemporaryDirectory() as tmp:
        store = ShardedDirectoryStore(Path(tmp) / "campaign",
                                      num_shards=16)
        print("Refactoring and writing segments (one manifest flush) ...")
        store_field(store, refactor(data, name="vel"))
        print(f"  {len(store.keys()) - 1} segments across "
              f"{store.num_shards} shards, "
              f"{store.total_bytes() / 1e6:.2f} MB, "
              f"{store.manifest_writes} manifest write(s)")

        service = RetrievalService(store, cache_bytes=64 << 20,
                                   prefetch=True)
        staircase = [1e-1, 1e-2, 1e-3]

        def analyst(i: int) -> tuple[int, int, int]:
            with service.session("vel") as session:
                cold = hit = 0
                for tol in staircase:
                    r = session.reconstruct(tolerance=tol, relative=True)
                    cold += r.cold_bytes
                    hit += r.cache_hit_bytes
                return i, cold, hit

        n_analysts = 8
        print(f"\nServing {n_analysts} concurrent sessions at relative "
              f"tolerances {staircase}:")
        print(f"{'session':>8} {'cold bytes':>11} {'cache-hit bytes':>16}")
        with ThreadPoolExecutor(max_workers=n_analysts) as pool:
            for i, cold, hit in pool.map(analyst, range(n_analysts)):
                print(f"{i:>8} {cold:>11} {hit:>16}")

        stats = service.stats()
        cache = stats["cache"]
        print(f"\nshared cache: {cache['entries']} entries, "
              f"{cache['current_bytes'] / 1e6:.2f} MB resident, "
              f"hit rate {cache['hit_rate']:.1%} "
              f"({cache['evictions']} evictions, "
              f"{stats['prefetch_requests']} prefetches)")
        print(f"backing store paid: {stats['store_bytes_read'] / 1e6:.2f} MB "
              f"for {n_analysts * len(staircase)} tolerance queries")
        service.close()

        print("\nEvery session after the first was served (almost) "
              "entirely from the shared segment cache — the store is "
              "paid per segment, not per analyst.")


if __name__ == "__main__":
    main()
