"""Pipelined retrieval benchmark: fetch/decode/recompose overlap.

The paper's pipelining claim (Fig. 4/9) is that sub-domain stages
overlap until end-to-end time approaches the slowest stage, not the
stage sum. PR 10 wires that discipline into the real tiled retrieval
stack (:mod:`repro.pipeline.retrieval`); this benchmark measures the
claim on a latency-injected store and checks the overhead on a fast
one:

* **Latency-bound ROI staircase.** A progressive tolerance staircase
  over a 36-tile region, sequential vs pipelined, on a
  :class:`~repro.core.faults.FaultInjectingStore` whose per-``get``
  sleep is calibrated so the staircase's total injected fetch latency
  ≈ its decode wall (fetch ≈ decode — the regime the paper pipelines
  for). The recorded ``speedup_pipelined_roi`` must stay ≥ 1.4× and is
  guarded by ``check_regression.py`` like every other speedup.
* **Fast-store overhead.** The same staircase on the plain directory
  store: the pipeline must cost ≈ nothing when there is no latency to
  hide (overhead ≤ 5 %; ``speedup_pipelined_fast_store`` ≈ 1.0 joins
  the regression gate).
* **Overlap quality.** An instrumented pipelined run records per-tile
  stage walls; ``pipeline_efficiency`` is the ratio of that run's
  ideal pipelined wall — ``max(fetch_sum / fetch_workers, decode_sum +
  commit_sum)``, the bottleneck stage at perfect overlap — to the same
  run's measured wall, so the ratio lands in (0, 1] by construction
  (1.0 = the runtime hid everything it could).
* **Model vs measured.** The same per-tile stage walls feed
  :func:`repro.pipeline.scheduler.pipeline_speedup` as
  :class:`~repro.pipeline.scheduler.StageCosts` (fetch → input,
  decode → kernel, commit → output), so the seed Fig. 9 scheduler
  predicts a pipelined-vs-serial ratio for *this* workload from its
  DAG; ``model_predicted_ratio`` and ``model_vs_measured_delta`` are
  recorded (not "speedup"-named — the delta is diagnostic, not a
  guarded ratio).

Every timed run is bit-identity-checked against the sequential
fast-store reference — the benchmark refuses to report a speedup for
wrong answers.

Writes ``BENCH_pipeline.json`` at the repo root.

Run standalone (writes the JSON):

    PYTHONPATH=src python benchmarks/bench_pipeline.py

``--smoke`` runs tiny sizes, keeps the bit-identity assertions, and
writes nothing — the CI mode. Or through pytest (the ``bench`` marker
keeps it out of the default test run):

    PYTHONPATH=src python -m pytest benchmarks/bench_pipeline.py -o addopts= -s
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.faults import FaultInjectingStore
from repro.core.store import DirectoryStore, open_tiled_field, store_tiled_field
from repro.core.tiling import TiledReconstructor, TiledRefactorer
from repro.data import generators as gen
from repro.gpu.device import H100
from repro.gpu.hdem import HostDeviceModel
from repro.pipeline.scheduler import StageCosts, pipeline_speedup

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_pipeline.json"

DIMS = (64, 64, 64)
TILE = (16, 16, 16)
#: ROI hyperslab: tiles 0–2 on the first two axes, all of the third —
#: 36 of the 64 tiles, so the staircase exercises region selection too.
ROI = (slice(4, 44), slice(4, 44), None)
TOLERANCES = [1e-1, 3e-2, 1e-2, 3e-3]  # relative staircase
REPEATS = 5
WINDOW = 8
FETCH_WORKERS = 4

#: Calibrated per-``get`` sleep is clamped to this range: the floor
#: keeps the overlap measurable when decode is very fast, the ceiling
#: bounds the benchmark's wall time.
LATENCY_FLOOR_S = 2e-4
LATENCY_CEIL_S = 5e-3

#: Acceptance floor for the latency-bound staircase (ISSUE 10:
#: pipelined wall ≤ 0.7x sequential).
MIN_LATENCY_SPEEDUP = 1.4
#: Acceptance ceiling for pipeline overhead on a fast store.
MAX_FAST_STORE_OVERHEAD = 0.05


def _build_store(root: Path, dims: tuple[int, ...], tile) -> DirectoryStore:
    data = gen.gaussian_random_field(dims, -5.0 / 3.0, seed=13,
                                     dtype=np.float32)
    store = DirectoryStore(root)
    store_tiled_field(store, TiledRefactorer(tile).refactor(data, name="rho"))
    return store


def _best_walls(fns, repeats: int) -> list[float]:
    """Best-of-*repeats* wall for each callable, rounds interleaved.

    Interleaving (A, B, A, B, ...) instead of blocking (A×N then B×N)
    cancels slow machine-state drift — CPU frequency, page cache,
    background load — out of A-vs-B ratios: both variants sample the
    same drift profile.
    """
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def _instrument(recon: TiledReconstructor, stage_seconds: dict) -> None:
    """Wrap the per-tile pipeline stages with wall-clock probes.

    ``_decode_tiles_pipelined`` binds the stage callables off the
    instance, so instance-attribute wrappers installed before
    ``reconstruct`` see every call. The fetch probe fires on the fetch
    pool's threads — ``list.append`` is atomic, and the per-stage lists
    are only read after the run completes.
    """
    for stage, name in (("fetch", "_pipeline_fetch_tile"),
                        ("decode", "_pipeline_decode_tile"),
                        ("commit", "_pipeline_commit_tile")):
        inner = getattr(recon, name)

        def timed(*args, _inner=inner, _sink=stage_seconds[stage], **kwargs):
            t0 = time.perf_counter()
            out = _inner(*args, **kwargs)
            _sink.append(time.perf_counter() - t0)
            return out

        setattr(recon, name, timed)


def _staircase(store, tolerances, region, pipelined: bool,
               stage_seconds: dict | None = None) -> np.ndarray:
    recon = TiledReconstructor(
        open_tiled_field(store, "rho"),
        pipelined=pipelined,
        pipeline_window=WINDOW,
        fetch_workers=FETCH_WORKERS,
    )
    if stage_seconds is not None:
        _instrument(recon, stage_seconds)
    try:
        out = None
        for tol in tolerances:
            out = recon.reconstruct(tolerance=tol, relative=True,
                                    region=region).data
        return out
    finally:
        recon.close()


def _calibrate_latency(store, tolerances, region,
                       wall_decode_s: float) -> tuple[float, int]:
    """Per-``get`` sleep so total injected latency ≈ the decode wall.

    Counts the staircase's store accesses through a zero-latency
    :class:`FaultInjectingStore`, then splits the sequential decode
    wall evenly across them — the fetch ≈ decode regime where
    pipelining's win is ≈ 2x and anything sequential pays the sum.
    """
    meter = FaultInjectingStore(store, seed=0)
    _staircase(meter, tolerances, region, pipelined=False)
    reads = meter.reads
    latency = wall_decode_s / reads if reads else LATENCY_FLOOR_S
    return min(max(latency, LATENCY_FLOOR_S), LATENCY_CEIL_S), reads


def _model_prediction(stage_seconds: dict) -> dict:
    """Seed Fig. 9 scheduler's pipelined-vs-serial ratio for this run.

    Each tile-step becomes a sub-domain whose measured fetch/decode/
    commit walls map onto ``StageCosts`` input/kernel/output — decode
    is bitplane decode + recomposition, Fig. 4's ``R``; there is no
    exclusive host-side lossless stage (``X`` costs 0, so the model's
    ``X_{i-1} → I_i`` rule degenerates to back-to-back prefetch, the
    window the real runtime schedules). The HDEM DAG schedule then
    predicts the overlap the dependency rules allow for exactly this
    stage profile.
    """
    stages = [
        StageCosts(input_s=f, kernel_s=d, lossless_s=0.0,
                   serialize_s=0.0, output_s=c)
        for f, d, c in zip(sorted(stage_seconds["fetch"], reverse=True),
                           sorted(stage_seconds["decode"], reverse=True),
                           sorted(stage_seconds["commit"], reverse=True))
    ]
    serial_s, pipelined_s, ratio = pipeline_speedup(
        HostDeviceModel(H100), stages, "reconstruct")
    return {
        "model_serial_s": serial_s,
        "model_pipelined_s": pipelined_s,
        "model_predicted_ratio": ratio,
    }


def _bench_roi_staircase(store, tolerances, region, repeats: int) -> dict:
    """Sequential vs pipelined staircase, fast store and latency store."""
    reference = _staircase(store, tolerances, region, pipelined=False)

    wall_seq_fast, wall_pip_fast = _best_walls(
        [lambda: _staircase(store, tolerances, region, pipelined=False),
         lambda: _staircase(store, tolerances, region, pipelined=True)],
        repeats)
    fast_identical = bool(np.array_equal(
        _staircase(store, tolerances, region, pipelined=True), reference))

    latency_s, reads = _calibrate_latency(store, tolerances, region,
                                          wall_seq_fast)

    def slow_store():
        return FaultInjectingStore(store, seed=0, latency_s=latency_s,
                                   sleep=time.sleep)

    wall_seq_slow, wall_pip_slow = _best_walls(
        [lambda: _staircase(slow_store(), tolerances, region,
                            pipelined=False),
         lambda: _staircase(slow_store(), tolerances, region,
                            pipelined=True)],
        repeats)
    slow_identical = bool(np.array_equal(
        _staircase(slow_store(), tolerances, region, pipelined=True),
        reference))

    stage_seconds: dict = {"fetch": [], "decode": [], "commit": []}
    t0 = time.perf_counter()
    instrumented = _staircase(slow_store(), tolerances, region,
                              pipelined=True, stage_seconds=stage_seconds)
    wall_instrumented = time.perf_counter() - t0
    slow_identical = slow_identical and bool(
        np.array_equal(instrumented, reference))

    fetch_sum = float(sum(stage_seconds["fetch"]))
    decode_sum = float(sum(stage_seconds["decode"]))
    commit_sum = float(sum(stage_seconds["commit"]))
    # Efficiency compares the instrumented run against its OWN ideal:
    # at most FETCH_WORKERS fetches overlap and decode+commit share the
    # caller thread, so ideal <= wall structurally and the ratio lands
    # in (0, 1] regardless of machine noise between runs.
    ideal_wall = max(fetch_sum / FETCH_WORKERS, decode_sum + commit_sum)

    measured = wall_seq_slow / wall_pip_slow if wall_pip_slow else 0.0
    model = _model_prediction(stage_seconds)
    return {
        "tiles_in_region": len(stage_seconds["fetch"]) // len(tolerances),
        "tolerances_relative": list(tolerances),
        "window": WINDOW,
        "fetch_workers": FETCH_WORKERS,
        "segment_reads_per_staircase": reads,
        "injected_latency_per_get_s": latency_s,
        "wall_sequential_fast_s": wall_seq_fast,
        "wall_pipelined_fast_s": wall_pip_fast,
        "fast_store_overhead_fraction": (
            (wall_pip_fast - wall_seq_fast) / wall_seq_fast
            if wall_seq_fast else 0.0
        ),
        # Guarded ratio: ~1.0 when the pipeline is free on a fast
        # store; a drop below 0.8x the recorded value fails
        # check_regression.
        "speedup_pipelined_fast_store": (
            wall_seq_fast / wall_pip_fast if wall_pip_fast else 0.0
        ),
        "wall_sequential_latency_s": wall_seq_slow,
        "wall_pipelined_latency_s": wall_pip_slow,
        # The headline guarded ratio (acceptance: >= 1.4).
        "speedup_pipelined_roi": measured,
        "stage_sums_s": {
            "fetch": fetch_sum,
            "decode": decode_sum,
            "commit": commit_sum,
        },
        "wall_instrumented_s": wall_instrumented,
        "ideal_pipelined_wall_s": ideal_wall,
        "pipeline_efficiency": (
            ideal_wall / wall_instrumented if wall_instrumented else 0.0
        ),
        **model,
        "model_vs_measured_delta": model["model_predicted_ratio"] - measured,
        "bit_identical_fast": fast_identical,
        "bit_identical_latency": slow_identical,
    }


def run(dims: tuple[int, ...] = DIMS,
        tile=TILE,
        tolerances: list[float] = TOLERANCES,
        region=ROI,
        repeats: int = REPEATS) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        store = _build_store(Path(tmp) / "campaign", dims, tile)
        roi = _bench_roi_staircase(store, tolerances, region, repeats)
        return {
            "config": {
                "dims": list(dims),
                "tile": list(tile),
                "dtype": "float32",
                "repeats_best_of": repeats,
                "stored_bytes": store.total_bytes(),
                "platform": platform.platform(),
                "numpy": np.__version__,
            },
            "roi_staircase": roi,
        }


def _report(results: dict) -> None:
    r = results["roi_staircase"]
    print(f"\n== pipelined ROI staircase ({r['tiles_in_region']} tiles, "
          f"window {r['window']}, {r['fetch_workers']} fetch workers, "
          f"best-of-{results['config']['repeats_best_of']}) ==")
    print(f"fast store : sequential {r['wall_sequential_fast_s']*1e3:8.1f}ms"
          f"   pipelined {r['wall_pipelined_fast_s']*1e3:8.1f}ms   "
          f"overhead {r['fast_store_overhead_fraction']:+.1%}")
    print(f"slow store : sequential "
          f"{r['wall_sequential_latency_s']*1e3:8.1f}ms   pipelined "
          f"{r['wall_pipelined_latency_s']*1e3:8.1f}ms   speedup "
          f"{r['speedup_pipelined_roi']:.2f}x "
          f"({r['injected_latency_per_get_s']*1e3:.2f}ms/get x "
          f"{r['segment_reads_per_staircase']} reads)")
    s = r["stage_sums_s"]
    print(f"stage sums : fetch {s['fetch']*1e3:8.1f}ms   "
          f"decode {s['decode']*1e3:8.1f}ms   "
          f"commit {s['commit']*1e3:8.1f}ms   "
          f"efficiency {r['pipeline_efficiency']:.2f}")
    print(f"Fig.9 model: predicted {r['model_predicted_ratio']:.2f}x   "
          f"measured {r['speedup_pipelined_roi']:.2f}x   "
          f"delta {r['model_vs_measured_delta']:+.2f}")
    print(f"bit-identical: fast {r['bit_identical_fast']}, "
          f"latency {r['bit_identical_latency']}")


def test_pipeline_benchmark() -> None:
    """Pytest entry point — enforces the overlap floor and overhead
    ceiling."""
    results = run()
    RESULT_PATH.write_text(json.dumps(results, indent=2))
    _report(results)
    r = results["roi_staircase"]
    assert r["bit_identical_fast"]
    assert r["bit_identical_latency"]
    assert r["speedup_pipelined_roi"] >= MIN_LATENCY_SPEEDUP
    assert r["fast_store_overhead_fraction"] <= MAX_FAST_STORE_OVERHEAD
    assert r["model_predicted_ratio"] > 1.0


def main(argv: list[str] | None = None) -> None:
    args = sys.argv[1:] if argv is None else argv
    if "--smoke" in args:
        results = run(dims=(24, 24, 24), tile=(12, 12, 12),
                      tolerances=[1e-1, 1e-2],
                      region=(slice(2, 22), None, None),
                      repeats=1)
        r = results["roi_staircase"]
        assert r["bit_identical_fast"]
        assert r["bit_identical_latency"]
        assert r["speedup_pipelined_roi"] > 0
        assert r["stage_sums_s"]["fetch"] > 0
        print("bench_pipeline smoke ok (tiny sizes, no speedup floor, "
              "nothing written)")
        return
    results = run()
    RESULT_PATH.write_text(json.dumps(results, indent=2))
    _report(results)
    print(f"\nwrote {RESULT_PATH}")


if __name__ == "__main__":
    main()
