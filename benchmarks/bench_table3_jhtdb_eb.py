"""Table 3: bitrate of the EB-estimation methods on mini-JHTDB.

Same protocol as Table 2 on the JHTDB-like isotropic turbulence triple
(the paper crops JHTDB to fit one GPU; we use the generator at a
fit-in-CI size with the same k^-5/3 spectrum).
"""

import numpy as np
import pytest

from _helpers import BENCH_DIMS, format_series, write_result
from repro.core.refactor import refactor
from repro.data.registry import load_velocity_fields
from repro.qoi import retrieve_qoi, v_total

TOLERANCES = [1e-1, 5e-2, 1e-2, 5e-3, 1e-3, 5e-4, 1e-4, 5e-5, 1e-5]

METHODS = [
    ("CP", dict(method="cp")),
    ("MA", dict(method="ma")),
    ("MAPE(c=2)", dict(method="mape", switch_threshold=2.0)),
    ("MAPE(c=10)", dict(method="mape", switch_threshold=10.0)),
]


@pytest.fixture(scope="module")
def jhtdb_fields():
    vx, vy, vz = load_velocity_fields("JHTDB", dims=(24, 32, 32), seed=7)
    triple = {"vx": vx.astype(np.float64), "vy": vy.astype(np.float64),
              "vz": vz.astype(np.float64)}
    return {k: refactor(v, name=k) for k, v in triple.items()}


def test_table3_bitrates(benchmark, jhtdb_fields):
    def compute():
        table = {}
        iters = {}
        for label, kwargs in METHODS:
            bitrates, iterations = [], []
            for tol in TOLERANCES:
                result = retrieve_qoi(jhtdb_fields, v_total(), tol,
                                      **kwargs)
                assert result.estimated_error <= tol
                bitrates.append(result.bitrate)
                iterations.append(result.iterations)
            table[label] = bitrates
            iters[label] = iterations
        return table, iters

    table, iters = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        (label, *[round(b, 2) for b in table[label]])
        for label, _ in METHODS
    ]
    rows += [
        (f"iters {label}", *iters[label]) for label, _ in METHODS
    ]
    text = format_series(
        "Table 3 — bitrate (bits/point) of EB estimation methods, "
        "mini-JHTDB (+ iteration counts)",
        ["method", *[f"{t:.0e}" for t in TOLERANCES]],
        rows,
        note="Paper shape: MA best bitrates / most iterations; CP "
             "fastest convergence / worst bitrates; MAPE(c=10) the "
             "best tradeoff.",
    )
    write_result("table3_jhtdb_eb", text)

    ma = np.array(table["MA"])
    cp = np.array(table["CP"])
    assert np.all(ma <= cp + 1e-9)
    # Iteration ordering: CP converges in no more steps than MA.
    assert np.mean(iters["CP"]) <= np.mean(iters["MA"])
    assert np.mean(iters["MAPE(c=10)"]) <= np.mean(iters["MA"])
