"""Figure 8: lossless strategies — (a) (de)compression throughput and
(b) incremental retrieval size vs error tolerance.

Strategies: Huffman on every group, RLE on every group, and the hybrid
with rc ∈ {1.0, 2.0, 4.0}. Retrieval sizes (panel b) are *real* —
measured from our refactored streams; throughput (panel a) combines
real wall-clock with the modeled device throughput, where the hybrid's
number emerges from the byte mix Algorithm 2 actually chose.
"""

import time

import numpy as np
import pytest

from _helpers import (
    SMALL_DATASETS,
    bench_dataset,
    format_series,
    hybrid_method_mix,
    write_result,
)
from repro.bitplane import encode_bitplanes
from repro.core import Reconstructor
from repro.core.refactor import RefactorConfig, refactor
from repro.gpu.costmodel import CostModel
from repro.gpu.device import H100
from repro.lossless.hybrid import HybridConfig, compress_planes, decompress_groups

TOLERANCES = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6]

STRATEGIES = {
    "Huffman": HybridConfig(group_size=4, size_threshold=0,
                            cr_threshold=1e-9),
    "RLE": None,  # handled specially below (force RLE)
    "Hybrid-1.0": HybridConfig(cr_threshold=1.0),
    "Hybrid-2.0": HybridConfig(cr_threshold=2.0),
    "Hybrid-4.0": HybridConfig(cr_threshold=4.0),
}


def _force_rle_groups(planes):
    from repro.lossless.hybrid import CompressedGroup
    from repro.lossless.rle import rle_encode

    groups = []
    for start in range(0, len(planes), 4):
        members = planes[start:start + 4]
        merged = np.concatenate([p.reshape(-1) for p in members])
        groups.append(CompressedGroup(
            method="rle", payload=rle_encode(merged),
            plane_sizes=tuple(int(p.size) for p in members),
            first_plane=start))
    return groups


@pytest.fixture(scope="module")
def planes():
    data = bench_dataset("NYX")
    return encode_bitplanes(data.ravel(), 32).planes


def test_fig8a_real_hybrid_compress(benchmark, planes):
    groups = benchmark(compress_planes, planes, HybridConfig())
    assert groups


def test_fig8a_real_hybrid_decompress(benchmark, planes):
    groups = compress_planes(planes, HybridConfig())
    out = benchmark(decompress_groups, groups)
    assert len(out) == len(planes)


def test_fig8a_throughput_table(benchmark, planes):
    def compute():
        model = CostModel(H100)
        total_bytes = sum(int(p.size) for p in planes)
        rows = []
        for name, config in STRATEGIES.items():
            if name == "RLE":
                groups = _force_rle_groups(planes)
            else:
                groups = compress_planes(planes, config)
            mix = hybrid_method_mix(groups)
            comp = model.lossless_mix(mix, "compress")
            decomp = model.lossless_mix(mix, "decompress")
            t0 = time.perf_counter()
            decompress_groups(groups)
            wall = time.perf_counter() - t0
            rows.append((
                name,
                round(total_bytes / comp.seconds / 1e9, 1),
                round(total_bytes / decomp.seconds / 1e9, 1),
                round(total_bytes / wall / 1e6, 1),
                round(sum(g.compressed_size for g in groups) / 1e6, 3),
            ))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_series(
        "Fig 8a — lossless strategy throughput "
        "(modeled H100 GB/s; real decompress MB/s; compressed MB)",
        ["strategy", "comp GB/s", "decomp GB/s", "real MB/s", "size MB"],
        rows,
        note="Paper (H100): Huffman 5.7/4.8 GB/s; RLE 44.4/6.4; hybrid "
             "rc=1/2/4 -> 15.5/20.8/22.4 comp, 14.1/94.9/99.8 decomp.",
    )
    write_result("fig8a_lossless_throughput", text)
    by_name = {r[0]: r for r in rows}
    # Hybrid compresses faster than all-Huffman; looser rc is faster.
    assert by_name["Hybrid-1.0"][1] > by_name["Huffman"][1]
    assert by_name["Hybrid-4.0"][1] >= by_name["Hybrid-1.0"][1]


def test_fig8b_retrieval_sizes(benchmark):
    def compute():
        rows = []
        ratios = {}
        for ds in SMALL_DATASETS:
            data = bench_dataset(ds).astype(np.float64)
            fields = {}
            for name, config in STRATEGIES.items():
                if name == "RLE":
                    continue  # panel (b) uses the codable strategies
                fields[name] = refactor(
                    data, RefactorConfig(hybrid=config), name=ds
                )
            for name, field in fields.items():
                recon = Reconstructor(field)
                sizes = [
                    recon.reconstruct(tolerance=t, relative=True)
                    .incremental_bytes / 1e6
                    for t in TOLERANCES
                ]
                total = recon.fetched_bytes
                ratios.setdefault(name, []).append(total)
                rows.append((ds, name, *[round(s, 4) for s in sizes]))
        return rows, ratios

    rows, ratios = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_series(
        "Fig 8b — incremental retrieval size per tolerance (MB, real)",
        ["dataset", "strategy", *[f"{t:.0e}" for t in TOLERANCES]],
        rows,
        note="Paper: hybrid rc=1.0 needs ~8% more retrieval than "
             "all-Huffman on average; rc=2.0 ~70%, rc=4.0 ~93%.",
    )
    write_result("fig8b_retrieval_sizes", text)

    huff = np.array(ratios["Huffman"], dtype=float)
    overheads = []
    for rc_name in ("Hybrid-1.0", "Hybrid-2.0", "Hybrid-4.0"):
        hyb = np.array(ratios[rc_name], dtype=float)
        overheads.append(float(np.mean(hyb / huff)) - 1.0)
    # Retrieval overhead versus all-Huffman grows monotonically with
    # the rc threshold (the paper's 8% / 70% / 93% ordering); absolute
    # values depend on how compressible the deep planes are.
    assert overheads[0] <= overheads[1] <= overheads[2]
    assert overheads[0] >= -0.10
