"""Retrieval-service benchmark: N concurrent sessions vs. eager loading.

Measures bytes fetched from the backing store and wall-clock latency for
N concurrent progressive sessions walking a staircase of tolerances,
comparing:

* **eager** — each session calls ``load_field`` (every segment of every
  level up front) and reconstructs, the seed read path;
* **service cold** — sessions run through a fresh
  :class:`~repro.core.service.RetrievalService`: lazy per-segment
  fetches through one shared byte-budgeted cache;
* **service warm** — a second wave of sessions at the same tolerances
  against the now-populated cache, reporting the cache hit rate (the PR
  acceptance criterion: ≥ 90 % of warm traffic served from cache).

Writes ``BENCH_service.json`` at the repo root.

Run standalone (writes the JSON):

    PYTHONPATH=src python benchmarks/bench_service.py

``--smoke`` runs a tiny grid with two sessions, keeps the lazy-beats-
eager byte assertion, and writes nothing — the CI mode. Or through
pytest (the ``bench`` marker keeps it out of the default
test run; ``benchmarks/run_all.sh`` clears the marker filter):

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -o addopts= -s
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.core.reconstruct import Reconstructor
from repro.core.refactor import refactor
from repro.core.service import RetrievalService
from repro.core.store import DirectoryStore, load_field, store_field
from repro.data import generators as gen

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_service.json"

DIMS = (48, 48, 48)
N_SESSIONS = 6
TOLERANCES = [1e-1, 1e-2, 1e-3]  # relative staircase
CACHE_BYTES = 64 << 20

#: Acceptance floor for this PR (ISSUE 2): fraction of second-wave
#: traffic served from the shared segment cache.
MIN_WARM_HIT_RATE = 0.90


def _build_store(
    root: Path, dims: tuple[int, ...]
) -> tuple[DirectoryStore, np.ndarray]:
    data = gen.gaussian_random_field(dims, -5.0 / 3.0, seed=13,
                                     dtype=np.float32)
    store = DirectoryStore(root, file_open_latency_s=2e-4)
    field = refactor(data, name="vel")
    store_field(store, field)
    return store, data


def _staircase_eager(store: DirectoryStore, tolerances) -> None:
    """Seed read path: materialize everything, then reconstruct."""
    field = load_field(store, "vel")
    recon = Reconstructor(field)
    for tol in tolerances:
        recon.reconstruct(tolerance=tol, relative=True)


def _run_eager(store: DirectoryStore, n_sessions, tolerances) -> dict:
    store.reads = store.bytes_read = 0
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=n_sessions) as pool:
        list(pool.map(lambda _: _staircase_eager(store, tolerances),
                      range(n_sessions)))
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "store_reads": store.reads,
        "store_bytes_read": store.bytes_read,
        "modeled_io_s": store.io_time_estimate(),
    }


def _staircase_service(service: RetrievalService, tolerances) -> None:
    with service.session("vel") as session:
        for tol in tolerances:
            session.reconstruct(tolerance=tol, relative=True)


def _run_service_wave(service: RetrievalService, store: DirectoryStore,
                      n_sessions, tolerances) -> dict:
    reads0, bytes0 = store.reads, store.bytes_read
    hits0, misses0 = service.cache.hits, service.cache.misses
    hit_b0, miss_b0 = service.cache.hit_bytes, service.cache.miss_bytes
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=n_sessions) as pool:
        list(pool.map(lambda _: _staircase_service(service, tolerances),
                      range(n_sessions)))
    wall = time.perf_counter() - t0
    hit_bytes = service.cache.hit_bytes - hit_b0
    miss_bytes = service.cache.miss_bytes - miss_b0
    hits = service.cache.hits - hits0
    misses = service.cache.misses - misses0
    total = hit_bytes + miss_bytes
    return {
        "wall_s": wall,
        "store_reads": store.reads - reads0,
        "store_bytes_read": store.bytes_read - bytes0,
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_bytes": hit_bytes,
        "cold_bytes": miss_bytes,
        "hit_rate_bytes": hit_bytes / total if total else 0.0,
        "hit_rate_requests": hits / (hits + misses) if hits + misses else 0.0,
    }


def run(
    dims: tuple[int, ...] = DIMS,
    n_sessions: int = N_SESSIONS,
    tolerances: list[float] = TOLERANCES,
    cache_bytes: int = CACHE_BYTES,
) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        store, _ = _build_store(Path(tmp) / "campaign", dims)
        total_stored = store.total_bytes()

        eager = _run_eager(store, n_sessions, tolerances)

        service = RetrievalService(store, cache_bytes=cache_bytes)
        cold = _run_service_wave(service, store, n_sessions, tolerances)
        warm = _run_service_wave(service, store, n_sessions, tolerances)
        service.close()

        results = {
            "config": {
                "dims": list(dims),
                "dtype": "float32",
                "n_sessions": n_sessions,
                "tolerances_relative": tolerances,
                "cache_bytes": cache_bytes,
                "stored_bytes": total_stored,
                "platform": platform.platform(),
                "numpy": np.__version__,
            },
            "eager_load_field": eager,
            "service_cold_wave": cold,
            "service_warm_wave": warm,
            "derived": {
                "bytes_saved_vs_eager": (
                    eager["store_bytes_read"] - cold["store_bytes_read"]
                ),
                "cold_bytes_fraction_of_eager": (
                    cold["store_bytes_read"] / eager["store_bytes_read"]
                    if eager["store_bytes_read"] else 0.0
                ),
                "warm_hit_rate": warm["hit_rate_bytes"],
                "speedup_cold_vs_eager": (
                    eager["wall_s"] / cold["wall_s"]
                    if cold["wall_s"] else 0.0
                ),
            },
        }
    return results


def _report(results: dict) -> None:
    eager = results["eager_load_field"]
    cold = results["service_cold_wave"]
    warm = results["service_warm_wave"]
    d = results["derived"]
    print(f"\n== retrieval service vs eager load_field "
          f"({results['config']['n_sessions']} concurrent sessions, "
          f"tolerances {results['config']['tolerances_relative']}) ==")
    print(f"{'path':>16} {'store reads':>12} {'store bytes':>12} "
          f"{'wall':>9}")
    for label, row in (("eager", eager), ("service cold", cold),
                       ("service warm", warm)):
        print(f"{label:>16} {row['store_reads']:>12} "
              f"{row['store_bytes_read']:>12} {row['wall_s']*1e3:>7.1f}ms")
    print(f"cold wave reads {d['cold_bytes_fraction_of_eager']:.1%} of the "
          f"bytes the eager path pays; warm wave hit rate "
          f"{d['warm_hit_rate']:.1%}")


def test_service_benchmark() -> None:
    """Pytest entry point — also enforces the warm hit-rate floor."""
    results = run()
    RESULT_PATH.write_text(json.dumps(results, indent=2))
    _report(results)
    assert (results["service_cold_wave"]["store_bytes_read"]
            < results["eager_load_field"]["store_bytes_read"])
    assert results["derived"]["warm_hit_rate"] >= MIN_WARM_HIT_RATE


def main(argv: list[str] | None = None) -> None:
    args = sys.argv[1:] if argv is None else argv
    if "--smoke" in args:
        results = run(dims=(16, 16, 16), n_sessions=2,
                      tolerances=[1e-1, 1e-2], cache_bytes=4 << 20)
        assert (results["service_cold_wave"]["store_bytes_read"]
                < results["eager_load_field"]["store_bytes_read"])
        print("bench_service smoke ok (tiny sizes, no hit-rate floor, "
              "nothing written)")
        return
    results = run()
    RESULT_PATH.write_text(json.dumps(results, indent=2))
    _report(results)
    print(f"\nwrote {RESULT_PATH}")


if __name__ == "__main__":
    main()
