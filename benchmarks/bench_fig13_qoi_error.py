"""Figure 13: requested tolerance vs max estimated vs max actual
V_total error during progressive retrieval (NYX-like and mini-JHTDB).

Entirely real computation — the invariant the paper demonstrates is

    max actual error  <  max estimated error  <=  requested tolerance

at every tolerance, on both datasets.
"""

import numpy as np
import pytest

from _helpers import format_series, write_result
from repro.core.refactor import refactor
from repro.data import generators as gen
from repro.qoi import actual_qoi_error, retrieve_qoi, v_total

TOLERANCES = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5]
DIMS = (24, 24, 24)


@pytest.fixture(scope="module")
def datasets():
    out = {}
    for name, seed in (("NYX", 101), ("mini-JHTDB", 77)):
        vx, vy, vz = gen.turbulence_velocity(DIMS, seed=seed,
                                             dtype=np.float64)
        original = {"vx": vx, "vy": vy, "vz": vz}
        fields = {k: refactor(v, name=k) for k, v in original.items()}
        out[name] = (original, fields)
    return out


def test_fig13_error_control(benchmark, datasets):
    def compute():
        rows = []
        for ds_name, (original, fields) in datasets.items():
            for tol in TOLERANCES:
                result = retrieve_qoi(fields, v_total(), tol,
                                      method="mape",
                                      switch_threshold=10.0)
                actual = actual_qoi_error(v_total(), original,
                                          result.values)
                rows.append((ds_name, tol, result.estimated_error,
                             actual))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_series(
        "Fig 13 — requested vs estimated vs actual V_total error (real)",
        ["dataset", "requested", "max estimated", "max actual"],
        rows,
        note="Invariant: actual < estimated <= requested, at every "
             "tolerance on both datasets (the paper's guarantee).",
    )
    write_result("fig13_qoi_error", text)

    for _, requested, estimated, actual in rows:
        assert actual <= estimated <= requested
