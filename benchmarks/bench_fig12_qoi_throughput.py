"""Figure 12: overall kernel throughput of the EB-estimation methods
during QoI-controlled retrieval (NYX-like and mini-JHTDB-like).

Kernel time per Algorithm 3 run = Σ over iterations of (recompose +
bitplane decode + lossless decompress + QoI error estimation), modeled
on the MI250X (the paper runs this study on Frontier) with the *real*
iteration counts and fetch sizes our driver produced. Paper shape: CP
highest throughput (fewest iterations), MA lowest, MAPE in between.
"""

import numpy as np
import pytest

from _helpers import format_series, write_result
from repro.core.refactor import refactor
from repro.data import generators as gen
from repro.gpu.costmodel import CostModel
from repro.gpu.device import MI250X
from repro.qoi import retrieve_qoi, v_total

TOLERANCES = [1e-1, 1e-2, 1e-3, 1e-4]
DIMS = (24, 24, 24)
VIRTUAL_ELEMENTS = 512 ** 3 // 4  # paper's 1.5 GB NYX velocity subset

METHODS = [
    ("CP", dict(method="cp")),
    ("MA", dict(method="ma")),
    ("MAPE(c=10)", dict(method="mape", switch_threshold=10.0)),
]


@pytest.fixture(scope="module")
def datasets():
    out = {}
    for name, seed in (("NYX", 101), ("mini-JHTDB", 77)):
        vx, vy, vz = gen.turbulence_velocity(DIMS, seed=seed,
                                             dtype=np.float64)
        out[name] = {k: refactor(v, name=k)
                     for k, v in (("vx", vx), ("vy", vy), ("vz", vz))}
    return out


def _kernel_seconds(model: CostModel, result, num_levels: int) -> float:
    """Modeled per-run kernel time from real iteration telemetry."""
    n = VIRTUAL_ELEMENTS
    t = 0.0
    prev_fetched = 0
    for record in result.history:
        # Each iteration recomposes all three variables and runs the
        # QoI estimation kernel; decompression scales with the bytes
        # newly fetched this iteration.
        t += 3 * model.recompose(n, 4, 3, num_levels).seconds
        t += 3 * model.bitplane_decode(n, 32,
                                       design="register_block").seconds
        new_bytes = record.fetched_bytes - prev_fetched
        prev_fetched = record.fetched_bytes
        scale = new_bytes / max(result.fetched_bytes, 1)
        t += model.lossless(
            "huffman", int(scale * n * 4 * 0.3), "decompress").seconds
        t += model.lossless(
            "direct", int(scale * n * 4 * 0.7), "decompress").seconds
        t += model.qoi_error_estimate(n, 3).seconds
    return t


def test_fig12_kernel_throughput(benchmark, datasets):
    def compute():
        model = CostModel(MI250X)
        rows = []
        tp_by_method: dict[str, list[float]] = {}
        for ds_name, fields in datasets.items():
            num_levels = fields["vx"].num_levels
            for label, kwargs in METHODS:
                tps = []
                for tol in TOLERANCES:
                    result = retrieve_qoi(fields, v_total(), tol, **kwargs)
                    seconds = _kernel_seconds(model, result, num_levels)
                    raw = VIRTUAL_ELEMENTS * 4 * 3
                    tps.append(raw / seconds / 1e9)
                tp_by_method.setdefault(label, []).extend(tps)
                rows.append((ds_name, label,
                             *[round(t, 2) for t in tps]))
        return rows, tp_by_method

    rows, tp_by_method = benchmark.pedantic(compute, rounds=1,
                                            iterations=1)
    text = format_series(
        "Fig 12 — QoI retrieval kernel throughput (GB/s, modeled "
        "MI250X, real iteration counts)",
        ["dataset", "method", *[f"{t:.0e}" for t in TOLERANCES]],
        rows,
        note="Paper shape: CP highest throughput (fewest iterations), "
             "MA lowest, MAPE(c=10) the tradeoff.",
    )
    write_result("fig12_qoi_throughput", text)

    cp = float(np.mean(tp_by_method["CP"]))
    ma = float(np.mean(tp_by_method["MA"]))
    mape = float(np.mean(tp_by_method["MAPE(c=10)"]))
    assert cp >= ma - 1e-9
    assert ma - 1e-9 <= mape <= cp + 1e-9
