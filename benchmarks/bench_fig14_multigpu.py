"""Figure 14: full-node QoI retrieval on JHTDB — 8 MI250X GCDs vs the
64-core host CPU: kernel throughput and end-to-end retrieval time.

Each GPU handles a 6 GB shard, each CPU core 0.75 GB (the paper's
setup). GPU kernel times come from the MI250X cost model with the real
fetch fraction and per-variable segment counts measured from a
shard-scale run of our pipeline; the CPU runs the same MDR pipeline at
the calibrated 64-core aggregate pass rate. End-to-end adds the
storage model, where HP-MDR's many small segment files pay a
metadata-server-serialized open latency — the overhead the paper
identifies as the reason the ~10.4× kernel advantage shrinks to ~4.2×
end to end.
"""

import numpy as np
import pytest

from _helpers import format_series, write_result
from repro.core import Reconstructor
from repro.core.refactor import refactor
from repro.data.registry import load_velocity_fields
from repro.gpu.costmodel import CostModel
from repro.gpu.device import MI250X
from repro.pipeline.multigpu import FRONTIER_NODE, effective_link_gbps

DIMS = (24, 32, 32)
PER_GPU_BYTES = 6 * 10 ** 9  # 6 GB shard per GCD (paper)
NUM_GPUS = 8
TOL = 1e-3

#: 64-core EPYC aggregate throughput of one full MDR reconstruction
#: pass (decompress + decode + recompose), calibrated to published
#: multithreaded CPU-MDR rates.
CPU_MDR_PASS_GBPS = 4.3

#: Storage model: per-file open latency (serialized at the metadata
#: server — why many small files hurt) + node-aggregate stream rate
#: (Frontier's Orion delivers tens of GB/s to one node for large reads).
FILE_OPEN_LATENCY_S = 6e-4
STORAGE_READ_GBPS = 20.0
SUBDOMAIN_BYTES = 512 * 10 ** 6
GPU_ALLOC_OVERHEAD_S = 0.35  # the paper's "particular overhead in GPUs"


@pytest.fixture(scope="module")
def retrieval_stats():
    """Real fetch fraction + fetched segments per variable-subdomain."""
    vx, vy, vz = load_velocity_fields("JHTDB", dims=DIMS, seed=5)
    fields = {k: refactor(v.astype(np.float64), name=k)
              for k, v in (("vx", vx), ("vy", vy), ("vz", vz))}
    fetched = 0
    raw = 0
    segment_counts = []
    for f in fields.values():
        recon = Reconstructor(f)
        r = recon.reconstruct(tolerance=TOL, relative=True)
        fetched += r.fetched_bytes
        raw += int(np.prod(f.shape)) * 4
        segment_counts.append(sum(r.plan.groups_per_level))
    return fetched / raw, float(np.mean(segment_counts))


def _gpu_kernel_seconds(model: CostModel, num_elements: int,
                        fetch_fraction: float) -> float:
    t = 3 * model.recompose(num_elements, 4, 3, 5).seconds
    t += 3 * model.bitplane_decode(num_elements, 32,
                                   design="register_block").seconds
    plane_bytes = int(num_elements * 4 * fetch_fraction)
    t += model.lossless(
        "huffman", int(plane_bytes * 0.3), "decompress").seconds
    t += model.lossless(
        "direct", int(plane_bytes * 0.7), "decompress").seconds
    t += model.qoi_error_estimate(num_elements, 3).seconds
    return t


def test_fig14_node_comparison(benchmark, retrieval_stats):
    fetch_fraction, segments_per_var_subdomain = retrieval_stats

    def compute():
        total_bytes = PER_GPU_BYTES * NUM_GPUS  # 48 GB JHTDB
        fetched = total_bytes * fetch_fraction

        # --- kernels -------------------------------------------------
        gpu_model = CostModel(MI250X)
        gpu_kernel = _gpu_kernel_seconds(
            gpu_model, PER_GPU_BYTES // 4, fetch_fraction)
        cpu_kernel = total_bytes / (CPU_MDR_PASS_GBPS * 1e9)

        # --- data movement --------------------------------------------
        link = effective_link_gbps(FRONTIER_NODE, NUM_GPUS)
        gpu_dma = PER_GPU_BYTES * fetch_fraction / (link * 1e9)

        # --- storage ---------------------------------------------------
        n_subdomains = total_bytes // 3 // SUBDOMAIN_BYTES
        n_files = int(3 * n_subdomains * segments_per_var_subdomain)
        io_gpu = (n_files * FILE_OPEN_LATENCY_S
                  + fetched / (STORAGE_READ_GBPS * 1e9))
        io_cpu = (64 * FILE_OPEN_LATENCY_S
                  + fetched / (STORAGE_READ_GBPS * 1e9))

        gpu_end = gpu_kernel + gpu_dma + io_gpu + GPU_ALLOC_OVERHEAD_S
        cpu_end = cpu_kernel + io_cpu
        gpu_tp = total_bytes / gpu_kernel / 1e9
        cpu_tp = total_bytes / cpu_kernel / 1e9
        return gpu_tp, cpu_tp, gpu_end, cpu_end, n_files

    gpu_tp, cpu_tp, gpu_end, cpu_end, n_files = benchmark.pedantic(
        compute, rounds=1, iterations=1)
    kernel_speedup = gpu_tp / cpu_tp
    end_speedup = cpu_end / gpu_end
    rows = [
        ("8x MI250X", round(gpu_tp, 1), round(gpu_end, 2)),
        ("64-core CPU", round(cpu_tp, 1), round(cpu_end, 2)),
        ("speedup", round(kernel_speedup, 2), round(end_speedup, 2)),
    ]
    text = format_series(
        "Fig 14 — JHTDB (48 GB) full-node retrieval: kernel GB/s and "
        "end-to-end seconds (modeled, real fetch stats; "
        f"{n_files} segment files)",
        ["configuration", "kernel GB/s", "end-to-end s"],
        rows,
        note="Paper: 10.36x kernel speedup shrinking to 4.18x end to "
             "end (small-file I/O + GPU allocation overhead).",
    )
    write_result("fig14_multigpu", text)

    assert 7.0 <= kernel_speedup <= 14.0  # paper: 10.36x
    assert 2.5 <= end_speedup <= 6.5  # paper: 4.18x
    assert end_speedup < kernel_speedup  # the gap the paper explains
