"""Guard the recorded bench speedups: fail loudly on >20% regressions.

``benchmarks/run_all.sh`` snapshots each ``BENCH_*.json`` before
regenerating it, then calls::

    python benchmarks/check_regression.py <old.json> <new.json>

Every numeric value whose key contains ``speedup`` (at any nesting
depth) is compared; if the fresh measurement falls below 80% of the
recorded one, the script prints the offending paths and exits nonzero,
failing the ``set -eu`` runner. Speedups are same-run ratios against the
retained reference implementations, so they are comparable across
machines — absolute milliseconds and MB/s are not, and are ignored.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: A fresh speedup below this fraction of the recorded one is a failure.
ALLOWED_FRACTION = 0.80


def collect_speedups(node, prefix: str = "") -> dict[str, float]:
    """Flatten every numeric ``*speedup*`` entry to ``path -> value``."""
    found: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (int, float)) and "speedup" in str(key):
                found[path] = float(value)
            else:
                found.update(collect_speedups(value, path))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            found.update(collect_speedups(value, f"{prefix}[{i}]"))
    return found


def compare(old: dict, new: dict) -> list[str]:
    """Regression messages for every recorded speedup the new run lost."""
    old_speedups = collect_speedups(old)
    new_speedups = collect_speedups(new)
    problems = []
    for path, recorded in sorted(old_speedups.items()):
        fresh = new_speedups.get(path)
        if fresh is None:
            problems.append(
                f"{path}: recorded speedup {recorded:.2f}x disappeared "
                "from the regenerated results"
            )
        elif fresh < ALLOWED_FRACTION * recorded:
            problems.append(
                f"{path}: {fresh:.2f}x is a >20% regression from the "
                f"recorded {recorded:.2f}x"
            )
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print("usage: check_regression.py <old.json> <new.json>",
              file=sys.stderr)
        return 2
    old_path, new_path = Path(argv[1]), Path(argv[2])
    if not old_path.exists():
        print(f"no recorded baseline at {old_path}; nothing to compare")
        return 0
    old = json.loads(old_path.read_text())
    new = json.loads(new_path.read_text())
    problems = compare(old, new)
    if problems:
        print(f"PERF REGRESSION ({new_path.name}):", file=sys.stderr)
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        return 1
    n = len(collect_speedups(old))
    print(f"{new_path.name}: {n} recorded speedup(s) held (>=80%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
