"""Shared infrastructure for the per-figure benchmark harnesses.

Every benchmark regenerates one table or figure of the paper: it runs
the *real* kernels under pytest-benchmark for wall-clock numbers, and
evaluates the device cost model for the GPU-shaped series. Each harness
writes its reproduced rows/series to ``benchmarks/results/<exp>.txt``
(and echoes them to stdout, visible with ``pytest -s``); EXPERIMENTS.md
summarizes paper-vs-measured from those files.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.data.registry import DATASETS, load_dataset

RESULTS_DIR = Path(__file__).parent / "results"

#: The four "small" datasets the paper uses for Figs 8, 9, 11.
SMALL_DATASETS = ("NYX", "LETKF", "Miranda", "ISABEL")

#: Bench-scale dims keep each harness in seconds, not minutes.
BENCH_DIMS = {
    "NYX": (32, 32, 32),
    "LETKF": (16, 48, 48),
    "Miranda": (24, 32, 32),
    "ISABEL": (16, 40, 40),
    "JHTDB": (32, 48, 48),
}


def bench_dataset(name: str, seed: int = 0) -> np.ndarray:
    """Load a dataset at benchmark-scale dimensions."""
    return load_dataset(name, dims=BENCH_DIMS[name], seed=seed)


def write_result(exp_id: str, text: str) -> Path:
    """Persist a reproduced table/figure and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{exp_id}.txt"
    path.write_text(text)
    print(f"\n=== {exp_id} ===")
    print(text)
    return path


def format_series(
    title: str,
    columns: list[str],
    rows: list[tuple],
    note: str = "",
) -> str:
    """Fixed-width table formatting shared by all harnesses."""
    widths = [max(len(c), 12) for c in columns]
    lines = [title, ""]
    lines.append(" ".join(c.rjust(w) for c, w in zip(columns, widths)))
    for row in rows:
        cells = []
        for value, w in zip(row, widths):
            if isinstance(value, float):
                cells.append(f"{value:>{w}.4g}")
            else:
                cells.append(str(value).rjust(w))
        lines.append(" ".join(cells))
    if note:
        lines += ["", note]
    return "\n".join(lines) + "\n"


def hybrid_method_mix(groups) -> dict[str, int]:
    """Bytes per lossless method actually chosen by Algorithm 2 —
    feeds the cost model's emergent hybrid throughput."""
    mix: dict[str, int] = {"huffman": 0, "rle": 0, "direct": 0}
    for g in groups:
        mix[g.method] += g.original_size
    return mix
