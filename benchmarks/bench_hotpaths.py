"""Hot-path wall-clock benchmarks: transpose, bitplane codec, Huffman, RLE.

Times the vectorized fast paths against the retained seed reference
implementations at 1M+ elements, in the same process and run, and writes
the measurements to ``BENCH_hotpaths.json`` at the repo root — the perf
baseline all subsequent performance PRs compare against.

Run standalone (writes the JSON):

    PYTHONPATH=src python benchmarks/bench_hotpaths.py

``--smoke`` runs tiny sizes, keeps the fast-vs-reference equality
assertions, skips the speedup floors, and writes nothing — the CI mode.
Or through pytest (the ``bench`` marker keeps it out of the default
test run; ``benchmarks/run_all.sh`` clears the marker filter):

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpaths.py -o addopts= -s
"""

from __future__ import annotations

import json
import math
import platform
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bitplane.align import AlignedFixedPoint
from repro.bitplane.encoding import (
    decode_bitplanes,
    encode_bitplanes,
    extract_planes,
    extract_planes_reference,
    inject_planes,
    inject_planes_reference,
)
from repro.lossless.huffman import HuffmanCodec
from repro.lossless.rle import rle_decode, rle_encode

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_hotpaths.json"

N_ELEMENTS = 1 << 20
NUM_BITPLANES = 32
REPS = 7

#: Acceptance floors for ISSUE 1: combined encode+decode and Huffman
#: decode speedups at 1M elements versus the seed paths.
MIN_CODEC_SPEEDUP = 5.0
MIN_HUFFMAN_SPEEDUP = 3.0
#: Acceptance floor for ISSUE 3: word-packed Huffman encode versus the
#: retained per-bit reference packer, measured in the same run.
MIN_HUFFMAN_ENCODE_SPEEDUP = 5.0


# ---------------------------------------------------------------------
# Faithful seed pipeline, built on the retained reference kernels
# ---------------------------------------------------------------------
def _seed_tile_permutation(
    num_elements: int, num_bitplanes: int, warp_size: int = 32
) -> np.ndarray:
    """Seed register-block permutation: rebuilt on every call (no cache)."""
    tile = warp_size * num_bitplanes
    n_full = (num_elements // tile) * tile
    perm = np.arange(num_elements)
    if n_full:
        base = np.arange(num_bitplanes * warp_size).reshape(
            num_bitplanes, warp_size
        ).T.ravel()
        tiles = np.arange(0, n_full, tile)[:, None] + base[None, :]
        perm[:n_full] = tiles.ravel()
    return perm


def _seed_encode(data: np.ndarray, num_bitplanes: int):
    """Seed encode_bitplanes: per-plane transpose, per-call permutation."""
    flat = np.ascontiguousarray(data).reshape(-1)
    if flat.size and not np.isfinite(flat).all():
        raise ValueError("non-finite input")
    abs_vals = np.abs(flat.astype(np.float64, copy=False))
    max_abs = float(abs_vals.max()) if flat.size else 0.0
    exponent = 0 if max_abs == 0.0 else math.frexp(max_abs)[1]
    scale = math.ldexp(1.0, num_bitplanes - exponent)
    mags = np.floor(abs_vals * scale).astype(np.uint64)
    np.minimum(mags, np.uint64((1 << num_bitplanes) - 1), out=mags)
    signs = np.signbit(flat).astype(np.uint8)
    perm = _seed_tile_permutation(flat.size, num_bitplanes)
    planes = extract_planes_reference(signs[perm], mags[perm], num_bitplanes)
    return planes, (exponent, max_abs, flat.size)


def _seed_decode(planes, meta, num_bitplanes: int, dtype) -> np.ndarray:
    """Seed decode_bitplanes: per-plane inject, per-call inverse perm."""
    exponent, max_abs, n = meta
    signs, mags = inject_planes_reference(planes, n, num_bitplanes)
    perm = _seed_tile_permutation(n, num_bitplanes)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(n)
    signs = signs[inv]
    mags = mags[inv]
    scale = math.ldexp(1.0, exponent - num_bitplanes)
    values = mags.astype(np.float64) * scale
    values[signs.astype(bool)] *= -1.0
    return values.astype(dtype, copy=False)


# ---------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------
def _best_time(fn, reps: int = REPS):
    """Best-of-reps wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_benchmarks(
    n: int = N_ELEMENTS, num_bitplanes: int = NUM_BITPLANES, reps: int = REPS
) -> dict:
    """Measure all hot paths; returns the BENCH_hotpaths payload."""
    rng = np.random.default_rng(0)
    data = rng.standard_normal(n).astype(np.float32)

    # -- bitplane transpose stage (the inner hot loop) ------------------
    signs = rng.integers(0, 2, n).astype(np.uint8)
    mags = rng.integers(0, 1 << num_bitplanes, n).astype(np.uint64)
    t_ext_ref, planes_ref = _best_time(
        lambda: extract_planes_reference(signs, mags, num_bitplanes), reps
    )
    t_ext, planes_fast = _best_time(
        lambda: extract_planes(signs, mags, num_bitplanes), reps
    )
    assert all(
        a.tobytes() == b.tobytes() for a, b in zip(planes_ref, planes_fast)
    ), "fast extract diverged from reference"
    t_inj_ref, im_ref = _best_time(
        lambda: inject_planes_reference(planes_ref, n, num_bitplanes), reps
    )
    t_inj, im_fast = _best_time(
        lambda: inject_planes(planes_fast, n, num_bitplanes), reps
    )
    assert np.array_equal(im_ref[0], im_fast[0])
    assert np.array_equal(im_ref[1], im_fast[1])

    # -- end-to-end encode/decode (register_block, the paper default) ---
    t_enc_seed, (seed_planes, seed_meta) = _best_time(
        lambda: _seed_encode(data, num_bitplanes), reps
    )
    t_enc, stream = _best_time(
        lambda: encode_bitplanes(data, num_bitplanes), reps
    )
    t_dec_seed, rec_seed = _best_time(
        lambda: _seed_decode(seed_planes, seed_meta, num_bitplanes,
                             np.float32),
        reps,
    )
    t_dec, rec_fast = _best_time(lambda: decode_bitplanes(stream), reps)
    assert np.array_equal(rec_seed, rec_fast), \
        "fast codec decoded different values than the seed pipeline"

    # -- Huffman ---------------------------------------------------------
    codec = HuffmanCodec()
    hdata = (rng.standard_normal(n) * 6).astype(np.int64).astype(np.uint8)
    t_henc_ref, blob_ref = _best_time(
        lambda: codec.encode_reference(hdata), reps
    )
    t_henc, blob = _best_time(lambda: codec.encode(hdata), reps)
    assert blob == blob_ref, \
        "word-packed encode diverged from the per-bit reference encoder"
    t_hdec_ref, out_ref = _best_time(
        lambda: codec.decode_reference(blob), reps
    )
    t_hdec, out_fast = _best_time(lambda: codec.decode(blob), reps)
    assert np.array_equal(out_ref, out_fast)
    assert np.array_equal(out_fast, hdata)

    # -- RLE -------------------------------------------------------------
    rdata = np.repeat(
        rng.integers(0, 4, n // 64).astype(np.uint8), 64
    )[:n]
    t_renc, rblob = _best_time(lambda: rle_encode(rdata), reps)
    t_rdec, rout = _best_time(lambda: rle_decode(rblob), reps)
    assert np.array_equal(rout, rdata)

    mb = n / 1e6
    return {
        "benchmark": "hotpaths",
        "generated_unix": time.time(),
        "numpy": np.__version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "config": {
            "num_elements": n,
            "num_bitplanes": num_bitplanes,
            "reps": reps,
        },
        "bitplane_transpose": {
            "extract_reference_ms": t_ext_ref * 1e3,
            "extract_fast_ms": t_ext * 1e3,
            "extract_speedup": t_ext_ref / t_ext,
            "inject_reference_ms": t_inj_ref * 1e3,
            "inject_fast_ms": t_inj * 1e3,
            "inject_speedup": t_inj_ref / t_inj,
            "combined_speedup": (t_ext_ref + t_inj_ref) / (t_ext + t_inj),
        },
        "bitplane_codec": {
            "encode_seed_ms": t_enc_seed * 1e3,
            "encode_fast_ms": t_enc * 1e3,
            "encode_speedup": t_enc_seed / t_enc,
            "decode_seed_ms": t_dec_seed * 1e3,
            "decode_fast_ms": t_dec * 1e3,
            "decode_speedup": t_dec_seed / t_dec,
            "combined_speedup": (t_enc_seed + t_dec_seed) / (t_enc + t_dec),
            "encode_throughput_meps": mb / t_enc,
            "decode_throughput_meps": mb / t_dec,
        },
        "huffman": {
            "encode_reference_ms": t_henc_ref * 1e3,
            "encode_ms": t_henc * 1e3,
            "encode_speedup": t_henc_ref / t_henc,
            "decode_reference_ms": t_hdec_ref * 1e3,
            "decode_fast_ms": t_hdec * 1e3,
            "decode_speedup": t_hdec_ref / t_hdec,
            "encode_throughput_mbps": mb / t_henc,
            "decode_throughput_mbps": mb / t_hdec,
        },
        "rle": {
            "encode_ms": t_renc * 1e3,
            "decode_ms": t_rdec * 1e3,
            "encode_throughput_mbps": mb / t_renc,
            "decode_throughput_mbps": mb / t_rdec,
        },
    }


def write_results(results: dict, path: Path = RESULT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


# ---------------------------------------------------------------------
# pytest entry points (opt-in via the `bench` marker)
# ---------------------------------------------------------------------
def test_hotpaths_meet_speedup_floors():
    """Fast paths beat the seed paths by the PR's acceptance margins."""
    results = run_benchmarks()
    write_results(results)
    codec = results["bitplane_codec"]
    huff = results["huffman"]
    assert codec["combined_speedup"] >= MIN_CODEC_SPEEDUP, codec
    assert huff["decode_speedup"] >= MIN_HUFFMAN_SPEEDUP, huff
    assert huff["encode_speedup"] >= MIN_HUFFMAN_ENCODE_SPEEDUP, huff


def main(argv: list[str] | None = None) -> None:
    args = sys.argv[1:] if argv is None else argv
    if "--smoke" in args:
        # Tiny sizes: the equality assertions inside run_benchmarks
        # still exercise every fast-vs-reference pair; no floors, no
        # baseline overwrite.
        run_benchmarks(n=1 << 14, reps=1)
        print("bench_hotpaths smoke ok (tiny sizes, no floors, "
              "nothing written)")
        return
    results = run_benchmarks()
    path = write_results(results)
    print(f"wrote {path}")
    codec = results["bitplane_codec"]
    tr = results["bitplane_transpose"]
    huff = results["huffman"]
    print(
        f"transpose: extract {tr['extract_speedup']:.1f}x, "
        f"inject {tr['inject_speedup']:.1f}x "
        f"(combined {tr['combined_speedup']:.1f}x)"
    )
    print(
        f"bitplane codec: encode {codec['encode_speedup']:.1f}x, "
        f"decode {codec['decode_speedup']:.1f}x "
        f"(combined {codec['combined_speedup']:.1f}x)"
    )
    print(
        f"huffman: encode {huff['encode_speedup']:.1f}x, "
        f"decode {huff['decode_speedup']:.1f}x"
    )
    print(
        f"rle: encode {results['rle']['encode_throughput_mbps']:.0f} MB/s, "
        f"decode {results['rle']['decode_throughput_mbps']:.0f} MB/s"
    )


if __name__ == "__main__":
    main()
