"""Table 1: the evaluation dataset inventory.

Regenerates the dataset table (paper dims and sizes, plus this
reproduction's scaled defaults) and benchmarks the synthetic generator
throughput for the substitution datasets.
"""

import numpy as np

from _helpers import bench_dataset, format_series, write_result
from repro.data.registry import DATASETS


def test_table1_inventory(benchmark):
    benchmark(bench_dataset, "NYX")
    rows = []
    for name, spec in DATASETS.items():
        rows.append((
            name,
            spec.num_variables,
            "x".join(map(str, spec.paper_dims)),
            spec.dtype.name,
            f"{spec.paper_size_gb:.2f} GB",
            "x".join(map(str, spec.default_dims)),
        ))
    text = format_series(
        "Table 1 — datasets (paper inventory + reproduction defaults)",
        ["dataset", "n_vars", "paper dims", "dtype", "paper size",
         "repro dims"],
        rows,
        note="Synthetic generators stand in for the production data; "
             "see DESIGN.md substitutions.",
    )
    write_result("table1_datasets", text)
    assert len(rows) == 5


def test_generators_deterministic():
    a = bench_dataset("Miranda")
    b = bench_dataset("Miranda")
    np.testing.assert_array_equal(a, b)
