"""Figure 11: HP-MDR vs state-of-the-art progressive retrieval
frameworks — end-to-end throughput and additional-retrieval ratio.

Baselines: MDR (CPU), and the multi-component framework with ZFP-GPU
(fixed-rate), MGARD, SZ3, ZFP-CPU (fixed-accuracy) backends, all built
in this repository.

Methodology: retrieval *sizes* are measured from our real streams at
bench scale; end-to-end *time* is modeled at the paper's data scale
(fetch fractions carried over) as storage-read time plus kernel time —
HP-MDR and M-ZFP-GPU on the H100 cost model, CPU baselines as
multi-threaded passes at calibrated raw-data throughputs (one full
pass per fetched component; the multi-component framework's structural
cost). The additional-retrieval ratio is (fetched − best) / raw, the
paper's normalization.

Paper headline: HP-MDR ~11.9 GB/s average vs ~1.8 GB/s for the best
baseline (M-MGARD), up to 6.61×; HP-MDR's extra retrieval is
competitive but not the smallest (Miranda: 4.36% vs best 2.19%,
baseline average 5.55%).
"""

import numpy as np
import pytest

from _helpers import (
    SMALL_DATASETS,
    bench_dataset,
    format_series,
    write_result,
)
from repro.baselines import (
    MdrCpuBaseline,
    MgardLossyCodec,
    MultiComponentProgressive,
    Sz3Codec,
    ZfpCodec,
)
from repro.core import Reconstructor
from repro.core.refactor import refactor
from repro.gpu.costmodel import CostModel
from repro.gpu.device import H100

TOLERANCES = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6]

#: Virtual evaluation scale (the paper's NYX-class domain).
VIRTUAL_ELEMENTS = 512 ** 3
#: Parallel-filesystem read bandwidth for the end-to-end model.
STORAGE_READ_GBPS = 3.0
#: Host memory bandwidth charged for the multi-component framework's
#: CPU-side residual accumulation (read+add+write per component).
HOST_ACCUM_GBPS = 50.0

#: Raw-data kernel throughput of one full decompression pass for the
#: CPU backends (32 OpenMP threads, calibrated to published CPU codec
#: rates); the multi-component framework pays one pass per component.
CPU_PASS_GBPS = {
    "MDR": 2.2,
    "M-MGARD": 4.0,
    "M-SZ3": 2.5,
    "M-ZFP-CPU": 6.0,
    "M-ZFP-GPU": 120.0,  # GPU backend: kernels fast, I/O dominates
}


def _hp_kernel_seconds(field, fetch_fraction: float) -> float:
    """HP-MDR reconstruction kernels on H100 at virtual scale."""
    model = CostModel(H100)
    n = VIRTUAL_ELEMENTS
    t = model.recompose(n, 4, 3, field.num_levels).seconds
    t += model.bitplane_decode(n, 32, design="register_block").seconds
    mix: dict[str, int] = {}
    for lv in field.levels:
        for g in lv.groups:
            mix[g.method] = mix.get(g.method, 0) + g.original_size
    total_planes = max(sum(mix.values()), 1)
    scale = n * 4 * 33 / 32 / total_planes * fetch_fraction
    mix = {k: int(v * scale) for k, v in mix.items()}
    t += model.lossless_mix(mix, "decompress").seconds
    return t


def _end_to_end_gbps(kernel_s: float, fetch_fraction: float) -> float:
    raw = VIRTUAL_ELEMENTS * 4
    io_s = raw * fetch_fraction / (STORAGE_READ_GBPS * 1e9)
    return raw / (kernel_s + io_s) / 1e9


@pytest.fixture(scope="module")
def setups():
    out = {}
    for ds in SMALL_DATASETS:
        data = bench_dataset(ds).astype(np.float64)
        rng = float(np.ptp(data))
        hp = refactor(data, name=ds)
        mdr = MdrCpuBaseline(data.shape)
        mdr_field = mdr.refactor(data)
        mc = {
            "M-ZFP-GPU": MultiComponentProgressive(
                ZfpCodec(mode="fixed_rate")),
            "M-MGARD": MultiComponentProgressive(
                MgardLossyCodec(), num_components=7),
            "M-SZ3": MultiComponentProgressive(
                Sz3Codec(), num_components=7),
            "M-ZFP-CPU": MultiComponentProgressive(
                ZfpCodec(mode="fixed_accuracy"), num_components=7),
        }
        streams = {}
        for name, framework in mc.items():
            if name == "M-ZFP-GPU":
                streams[name] = framework.refactor(
                    data.astype(np.float32),
                    rate_schedule=[2, 4, 8, 12, 16, 24, 32])
            else:
                streams[name] = framework.refactor(data)
        out[ds] = (data, rng, hp, mdr_field, mc, streams)
    return out


def test_fig11_comparison(benchmark, setups):
    def compute():
        rows = []
        tp_all: dict[str, list] = {}
        extra_all: dict[str, list] = {}
        for ds, (data, rng, hp, mdr_field, mc, streams) in setups.items():
            raw = data.nbytes
            hp_recon = Reconstructor(hp)
            mdr_recon = Reconstructor(mdr_field)
            fetches: dict[str, list[float]] = {}
            tps: dict[str, list[float]] = {}
            for tol in TOLERANCES:
                r = hp_recon.reconstruct(tolerance=tol, relative=True)
                frac = r.fetched_bytes / raw
                fetches.setdefault("HP-MDR", []).append(frac)
                tps.setdefault("HP-MDR", []).append(
                    _end_to_end_gbps(_hp_kernel_seconds(hp, frac), frac))

                r = mdr_recon.reconstruct(tolerance=tol * rng)
                frac = r.fetched_bytes / raw
                kernel = VIRTUAL_ELEMENTS * 4 / (
                    CPU_PASS_GBPS["MDR"] * 1e9)
                fetches.setdefault("MDR", []).append(frac)
                tps.setdefault("MDR", []).append(
                    _end_to_end_gbps(kernel, frac))

                for name, framework in mc.items():
                    stream = streams[name]
                    _, fetched, _ = framework.retrieve(stream, tol * rng)
                    k = next(
                        (i + 1 for i, c in enumerate(stream.components)
                         if c.error_bound <= tol * rng),
                        len(stream.components),
                    )
                    frac = fetched / raw
                    virtual_raw = VIRTUAL_ELEMENTS * 4
                    kernel = k * virtual_raw / (
                        CPU_PASS_GBPS[name] * 1e9)
                    # CPU-side residual accumulation: one read+add+write
                    # sweep per component; GPU backends additionally
                    # round-trip each component over the host link.
                    kernel += k * virtual_raw * 3 / (HOST_ACCUM_GBPS * 1e9)
                    if name == "M-ZFP-GPU":
                        kernel += k * virtual_raw / (55.0 * 1e9)
                    fetches.setdefault(name, []).append(frac)
                    tps.setdefault(name, []).append(
                        _end_to_end_gbps(kernel, frac))
            best = [min(v[i] for v in fetches.values())
                    for i in range(len(TOLERANCES))]
            for approach in fetches:
                extra = float(np.mean(
                    [f - b for f, b in zip(fetches[approach], best)]))
                mean_tp = float(np.mean(tps[approach]))
                tp_all.setdefault(approach, []).append(mean_tp)
                extra_all.setdefault(approach, []).append(extra)
                rows.append((ds, approach, round(mean_tp, 2),
                             round(100 * extra, 2)))
        return rows, tp_all, extra_all

    rows, tp_all, extra_all = benchmark.pedantic(compute, rounds=1,
                                                 iterations=1)
    text = format_series(
        "Fig 11 — HP-MDR vs progressive baselines "
        "(mean end-to-end GB/s modeled at 512^3 scale; "
        "mean extra retrieval as % of raw)",
        ["dataset", "approach", "mean GB/s", "extra % of raw"],
        rows,
        note="Paper: HP-MDR ~11.9 GB/s vs best baseline ~1.8 GB/s (up "
             "to 6.61x); HP-MDR extra retrieval competitive, not "
             "smallest (Miranda 4.36% vs best 2.19%, avg 5.55%).",
    )
    write_result("fig11_baselines", text)

    hp_tp = float(np.mean(tp_all["HP-MDR"]))
    best_other = max(float(np.mean(v)) for k, v in tp_all.items()
                     if k != "HP-MDR")
    assert hp_tp > 2.5 * best_other  # paper: up to 6.6x
    # HP-MDR extra retrieval stays in the competitive few-percent band.
    assert float(np.mean(extra_all["HP-MDR"])) < 0.25
