"""Figure 9: end-to-end throughput with vs without pipeline optimization.

For each dataset, the stage costs of each sub-domain come from the
kernel cost model *plus* the real compressed sizes and codec mix our
hybrid chose for that sub-domain's planes; the HDEM scheduler then
yields pipelined and serial makespans. Paper averages: refactoring
1.43× (H100) / 1.41× (MI250X); reconstruction 1.83× / 1.43×.
"""

import numpy as np
import pytest

from _helpers import (
    SMALL_DATASETS,
    bench_dataset,
    format_series,
    hybrid_method_mix,
    write_result,
)
from repro.bitplane import encode_bitplanes
from repro.gpu.device import H100, MI250X
from repro.gpu.hdem import HostDeviceModel
from repro.lossless.hybrid import HybridConfig, compress_planes
from repro.pipeline.scheduler import (
    pipeline_speedup,
    reconstruct_stage_costs,
    refactor_stage_costs,
)

NUM_SUBDOMAINS = 16
#: Modeled sub-domain size (elements); real plane statistics from the
#: bench-scale dataset are scaled up to it.
SUBDOMAIN_ELEMENTS = 1 << 26


def _stage_profiles(data):
    """Real codec mix + compressed fraction for one dataset."""
    planes = encode_bitplanes(data.ravel(), 32).planes
    groups = compress_planes(planes, HybridConfig(cr_threshold=2.0))
    mix = hybrid_method_mix(groups)
    plane_bytes = sum(mix.values())
    compressed = sum(g.compressed_size for g in groups)
    scale = SUBDOMAIN_ELEMENTS / data.size
    mix_scaled = {k: int(v * scale) for k, v in mix.items()}
    return mix_scaled, int(compressed * scale), plane_bytes * scale


@pytest.fixture(scope="module")
def profiles():
    out = {}
    for ds in SMALL_DATASETS:
        out[ds] = _stage_profiles(bench_dataset(ds))
    return out


def test_fig9_speedups(benchmark, profiles):
    def compute():
        rows = []
        speedups = {}
        for device in (H100, MI250X):
            model = HostDeviceModel(device)
            for ds, (mix, compressed, _) in profiles.items():
                stages_r = [refactor_stage_costs(
                    model, SUBDOMAIN_ELEMENTS, 4, 3, 5, 32,
                    compressed, mix)] * NUM_SUBDOMAINS
                stages_c = [reconstruct_stage_costs(
                    model, SUBDOMAIN_ELEMENTS, 4, 3, 5, 32,
                    compressed, mix)] * NUM_SUBDOMAINS
                raw = NUM_SUBDOMAINS * SUBDOMAIN_ELEMENTS * 4
                for direction, stages in (("refactor", stages_r),
                                          ("reconstruct", stages_c)):
                    serial, pipe, sp = pipeline_speedup(
                        model, stages, direction)
                    speedups.setdefault(
                        (device.name, direction), []).append(sp)
                    rows.append((
                        device.name, ds, direction,
                        round(raw / serial / 1e9, 2),
                        round(raw / pipe / 1e9, 2),
                        round(sp, 2),
                    ))
        return rows, speedups

    rows, speedups = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_series(
        "Fig 9 — end-to-end throughput with/without pipeline "
        "optimization (GB/s, modeled; real codec mixes)",
        ["device", "dataset", "direction", "serial GB/s",
         "pipelined GB/s", "speedup"],
        rows,
        note="Paper averages: refactor 1.43x (H100), 1.41x (MI250X); "
             "reconstruct 1.83x (H100), 1.43x (MI250X).",
    )
    write_result("fig9_pipeline", text)

    for key, values in speedups.items():
        avg = float(np.mean(values))
        assert 1.15 <= avg <= 2.2, (key, avg)
