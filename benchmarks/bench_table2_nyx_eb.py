"""Table 2: bitrate of the EB-estimation methods on NYX velocities.

Runs Algorithm 3 with CP, MA, MAPE(c=2), MAPE(c=10) across the paper's
tolerance ladder on the NYX-like velocity triple and reports the real
fetched bitrate (bits per grid point, summed over the three variables).
Paper shape: MA achieves the best (lowest) bitrates at most tolerances;
CP the worst; MAPE in between, with many exact ties at tolerances where
group granularity rounds all methods to the same fetch.
"""

import numpy as np
import pytest

from _helpers import format_series, write_result
from repro.core.refactor import refactor
from repro.data import generators as gen
from repro.qoi import retrieve_qoi, v_total

TOLERANCES = [1e-1, 5e-2, 1e-2, 5e-3, 1e-3, 5e-4, 1e-4, 5e-5, 1e-5]

METHODS = [
    ("CP", dict(method="cp")),
    ("MA", dict(method="ma")),
    ("MAPE(c=2)", dict(method="mape", switch_threshold=2.0)),
    ("MAPE(c=10)", dict(method="mape", switch_threshold=10.0)),
]

DIMS = (24, 24, 24)


@pytest.fixture(scope="module")
def nyx_fields():
    vx, vy, vz = gen.turbulence_velocity(DIMS, seed=101, dtype=np.float64)
    return {k: refactor(v, name=k)
            for k, v in (("vx", vx), ("vy", vy), ("vz", vz))}


def test_table2_bitrates(benchmark, nyx_fields):
    def compute():
        table = {}
        for label, kwargs in METHODS:
            bitrates = []
            for tol in TOLERANCES:
                result = retrieve_qoi(nyx_fields, v_total(), tol, **kwargs)
                assert result.estimated_error <= tol
                bitrates.append(result.bitrate)
            table[label] = bitrates
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        (label, *[round(b, 2) for b in table[label]])
        for label, _ in METHODS
    ]
    text = format_series(
        "Table 2 — bitrate (bits/point) of EB estimation methods, "
        "NYX-like velocities",
        ["method", *[f"{t:.0e}" for t in TOLERANCES]],
        rows,
        note="Paper shape: MA best bitrate at most tolerances, CP "
             "worst, MAPE between; ties common at tolerances where "
             "plane-group granularity coincides.",
    )
    write_result("table2_nyx_eb", text)

    ma = np.array(table["MA"])
    cp = np.array(table["CP"])
    mape10 = np.array(table["MAPE(c=10)"])
    assert np.all(ma <= cp + 1e-9)
    assert np.mean(mape10) <= np.mean(cp) + 1e-9
    assert np.all(np.diff(ma) >= -1e-9)  # tighter tolerance, more bits
