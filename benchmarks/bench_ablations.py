"""Ablations beyond the paper's figures — the design knobs DESIGN.md
calls out, each isolated with everything else fixed:

* bitplane group size ``m`` (retrieval granularity vs codec efficiency);
* hybrid thresholds ``T_s`` / ``T_cr``;
* greedy vs round-robin retrieval planning;
* sign-magnitude vs negabinary coefficient encoding;
* hierarchical vs MGARD (L2-corrected) decomposition.
"""

import numpy as np
import pytest

from _helpers import bench_dataset, format_series, write_result
from repro.core import Reconstructor
from repro.core.planner import plan_greedy, plan_round_robin
from repro.core.refactor import RefactorConfig, refactor
from repro.lossless.hybrid import HybridConfig

TOLERANCES = [1e-2, 1e-4, 1e-6]


@pytest.fixture(scope="module")
def data():
    return bench_dataset("NYX").astype(np.float64)


def _sizes_at_tolerances(field):
    recon = Reconstructor(field)
    return [
        recon.reconstruct(tolerance=t, relative=True).fetched_bytes
        for t in TOLERANCES
    ]


def test_ablation_group_size(benchmark, data):
    """Group size m: small m = finer retrieval granularity but more
    per-group headers; large m = coarser fetches."""
    def compute():
        rows = []
        for m in (1, 2, 4, 8, 16):
            field = refactor(
                data, RefactorConfig(hybrid=HybridConfig(group_size=m)))
            sizes = _sizes_at_tolerances(field)
            rows.append((m, field.total_bytes(),
                         *[round(s / 1e3, 1) for s in sizes]))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_series(
        "Ablation — bitplane group size m (stored bytes; fetched KB per "
        "tolerance)",
        ["m", "stored B", *[f"{t:.0e}" for t in TOLERANCES]],
        rows,
        note="Paper default m=4 balances granularity and header "
             "overhead.",
    )
    write_result("ablation_group_size", text)
    stored = {r[0]: r[1] for r in rows}
    # m=1 pays the most header overhead in total storage.
    assert stored[1] >= stored[4]


def test_ablation_hybrid_thresholds(benchmark, data):
    def compute():
        rows = []
        for ts, tcr in ((0, 1.0), (1024, 1.0), (1024, 2.0), (1024, 4.0),
                        (1 << 20, 1.0)):
            field = refactor(
                data,
                RefactorConfig(hybrid=HybridConfig(
                    size_threshold=ts, cr_threshold=tcr)),
            )
            methods = {}
            for lv in field.levels:
                for g in lv.groups:
                    methods[g.method] = methods.get(g.method, 0) + 1
            rows.append((
                ts, tcr, field.total_bytes(),
                methods.get("huffman", 0), methods.get("rle", 0),
                methods.get("direct", 0),
            ))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_series(
        "Ablation — hybrid thresholds T_s / T_cr (stored bytes; groups "
        "per codec)",
        ["T_s", "T_cr", "stored B", "huffman", "rle", "direct"],
        rows,
        note="Raising either threshold shifts groups toward Direct "
             "Copy: larger streams, faster codecs.",
    )
    write_result("ablation_hybrid_thresholds", text)
    # A huge size threshold forces everything to Direct Copy.
    forced_dc = rows[-1]
    assert forced_dc[3] == 0 and forced_dc[4] == 0


def test_ablation_planner(benchmark, data):
    """Greedy error-per-byte vs round-robin group selection."""
    def compute():
        field = refactor(data)
        rows = []
        for tol in TOLERANCES:
            abs_tol = tol * field.value_range
            g = plan_greedy(field, abs_tol)
            rr = plan_round_robin(field, abs_tol)
            rows.append((f"{tol:.0e}", g.fetched_bytes, rr.fetched_bytes,
                         round(rr.fetched_bytes / max(g.fetched_bytes, 1),
                               3)))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_series(
        "Ablation — greedy vs round-robin retrieval planning "
        "(fetched bytes)",
        ["tolerance", "greedy", "round-robin", "rr/greedy"],
        rows,
        note="Greedy never fetches more; round-robin overshoots where "
             "level error contributions are uneven.",
    )
    write_result("ablation_planner", text)
    for _, g_bytes, rr_bytes, _ in rows:
        assert g_bytes <= rr_bytes


def test_ablation_signed_encoding(benchmark, data):
    def compute():
        rows = []
        for enc in ("sign_magnitude", "negabinary"):
            field = refactor(data, RefactorConfig(signed_encoding=enc))
            sizes = _sizes_at_tolerances(field)
            rows.append((enc, field.total_bytes(),
                         *[round(s / 1e3, 1) for s in sizes]))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_series(
        "Ablation — signed-coefficient encoding (stored bytes; fetched "
        "KB per tolerance)",
        ["encoding", "stored B", *[f"{t:.0e}" for t in TOLERANCES]],
        rows,
        note="Negabinary folds signs into the digit planes (two extra "
             "planes, no sign plane); both meet identical tolerances.",
    )
    write_result("ablation_signed_encoding", text)
    assert len(rows) == 2


def test_ablation_decomposition_mode(benchmark, data):
    def compute():
        rows = []
        for mode in ("hierarchical", "mgard"):
            field = refactor(data, RefactorConfig(mode=mode))
            sizes = _sizes_at_tolerances(field)
            rows.append((mode, round(max(field.level_weights), 2),
                         *[round(s / 1e3, 1) for s in sizes]))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_series(
        "Ablation — decomposition mode (max level weight; fetched KB "
        "per tolerance)",
        ["mode", "max weight", *[f"{t:.0e}" for t in TOLERANCES]],
        rows,
        note="The MGARD L2 correction improves coefficient decay but "
             "carries looser (rigorous) error weights.",
    )
    write_result("ablation_decomposition_mode", text)
    assert len(rows) == 2
