#!/usr/bin/env sh
# Run the benchmark suites and refresh the repo-root perf baselines.
#
#   benchmarks/run_all.sh            # hot-path + service suites (refresh BENCH_hotpaths.json, BENCH_service.json)
#   benchmarks/run_all.sh --figures  # additionally re-run the per-figure paper harnesses
#
# The hot-path and service suites are the perf trajectories every
# performance PR checks against; the figure harnesses regenerate
# benchmarks/results/*.txt.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$REPO_ROOT"
PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== hot-path suite (writes BENCH_hotpaths.json) =="
python benchmarks/bench_hotpaths.py

echo "== retrieval-service suite (writes BENCH_service.json) =="
python benchmarks/bench_service.py

if [ "${1:-}" = "--figures" ]; then
    echo "== per-figure harnesses =="
    # `-o addopts=` clears the default `-m "not bench"` filter.
    python -m pytest benchmarks -o addopts= -q -s
fi
