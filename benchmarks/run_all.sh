#!/usr/bin/env sh
# Run the benchmark suites and refresh the repo-root perf baselines.
#
#   benchmarks/run_all.sh            # hot-path + refactor + service +
#                                    # progressive + tiles + resilience +
#                                    # pipeline suites (refresh
#                                    #  BENCH_hotpaths.json, BENCH_refactor.json,
#                                    #  BENCH_service.json, BENCH_progressive.json,
#                                    #  BENCH_tiles.json, BENCH_resilience.json,
#                                    #  BENCH_pipeline.json)
#   benchmarks/run_all.sh --figures  # additionally re-run the per-figure paper harnesses
#   benchmarks/run_all.sh --smoke    # every suite in --smoke mode plus the
#                                    # Fig. 9 pipeline-model harness — the CI
#                                    # pass (tiny sizes, correctness
#                                    # assertions only, nothing written)
#
# Each bench script also takes --smoke (tiny sizes, correctness
# assertions only, nothing written) — CI runs that mode on every PR so
# the benchmark code paths stay exercised.
#
# The hot-path, refactor/store, and service suites are the perf
# trajectories every performance PR checks against; the figure harnesses
# regenerate benchmarks/results/*.txt. After each suite the recorded
# *speedups* (same-run fast-vs-reference ratios, so machine-portable —
# currently in the hot-path and service JSONs; BENCH_refactor.json
# records absolute wall times only and has none yet) are compared
# against the pre-run baseline JSON (benchmarks/check_regression.py):
# any speedup that regresses by more than 20% fails the run loudly.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$REPO_ROOT"
PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

if [ "${1:-}" = "--smoke" ]; then
    for suite in hotpaths refactor_store service progressive tiles \
                 resilience pipeline; do
        echo "== bench_$suite --smoke =="
        python "benchmarks/bench_$suite.py" --smoke
    done
    echo "== Fig. 9 pipeline-model harness =="
    # `-o addopts=` clears the default `-m "not bench"` filter; the
    # harness's speedup-band assertions are the smoke check.
    python -m pytest benchmarks/bench_fig9_pipeline.py -o addopts= -q
    exit 0
fi

SNAPSHOT_DIR=$(mktemp -d)
trap 'rm -rf "$SNAPSHOT_DIR"' EXIT

snapshot() {
    # Keep the pre-run baseline so regressions are caught after regen.
    if [ -f "$1" ]; then
        cp "$1" "$SNAPSHOT_DIR/$1"
    fi
}

check() {
    python benchmarks/check_regression.py "$SNAPSHOT_DIR/$1" "$1"
}

snapshot BENCH_hotpaths.json
snapshot BENCH_refactor.json
snapshot BENCH_service.json
snapshot BENCH_progressive.json
snapshot BENCH_tiles.json
snapshot BENCH_resilience.json
snapshot BENCH_pipeline.json

echo "== hot-path suite (writes BENCH_hotpaths.json) =="
python benchmarks/bench_hotpaths.py
check BENCH_hotpaths.json

echo "== refactor/store round-trip suite (writes BENCH_refactor.json) =="
python benchmarks/bench_refactor_store.py
check BENCH_refactor.json

echo "== retrieval-service suite (writes BENCH_service.json) =="
python benchmarks/bench_service.py
check BENCH_service.json

echo "== progressive-refinement suite (writes BENCH_progressive.json) =="
python benchmarks/bench_progressive.py
check BENCH_progressive.json

echo "== tiled streaming / ROI suite (writes BENCH_tiles.json) =="
python benchmarks/bench_tiles.py
check BENCH_tiles.json

echo "== resilience suite (writes BENCH_resilience.json) =="
python benchmarks/bench_resilience.py
check BENCH_resilience.json

echo "== pipelined-retrieval suite (writes BENCH_pipeline.json) =="
python benchmarks/bench_pipeline.py
check BENCH_pipeline.json

if [ "${1:-}" = "--figures" ]; then
    echo "== per-figure harnesses =="
    # `-o addopts=` clears the default `-m "not bench"` filter.
    python -m pytest benchmarks -o addopts= -q -s
fi
