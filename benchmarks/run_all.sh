#!/usr/bin/env sh
# Run the benchmark suites and refresh the repo-root perf baselines.
#
#   benchmarks/run_all.sh            # hot-path suite only (fast, refreshes BENCH_hotpaths.json)
#   benchmarks/run_all.sh --figures  # additionally re-run the per-figure paper harnesses
#
# The hot-path suite is the perf trajectory every performance PR checks
# against; the figure harnesses regenerate benchmarks/results/*.txt.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$REPO_ROOT"
PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== hot-path suite (writes BENCH_hotpaths.json) =="
python benchmarks/bench_hotpaths.py

if [ "${1:-}" = "--figures" ]; then
    echo "== per-figure harnesses =="
    # `-o addopts=` clears the default `-m "not bench"` filter.
    python -m pytest benchmarks -o addopts= -q -s
fi
