"""Figure 10: single-node multi-GPU weak scaling.

Weak-scales the pipelined refactoring workload to 4 H100s (Talapas)
and 8 MI250X GCDs (Frontier). Paper: 95% and 89% of ideal speedup on
average. Efficiency losses emerge from host-link contention and the
barrier term — no scaling numbers are hard-coded.
"""

import numpy as np
import pytest

from _helpers import (
    bench_dataset,
    format_series,
    hybrid_method_mix,
    write_result,
)
from repro.bitplane import encode_bitplanes
from repro.gpu.hdem import HostDeviceModel
from repro.lossless.hybrid import HybridConfig, compress_planes
from repro.pipeline.multigpu import (
    FRONTIER_NODE,
    TALAPAS_NODE,
    weak_scaling,
)
from repro.pipeline.scheduler import refactor_stage_costs

SUBDOMAIN_ELEMENTS = 1 << 26
NUM_SUBDOMAINS = 8


@pytest.fixture(scope="module")
def stages_for():
    data = bench_dataset("NYX")
    planes = encode_bitplanes(data.ravel(), 32).planes
    groups = compress_planes(planes, HybridConfig(cr_threshold=2.0))
    mix = hybrid_method_mix(groups)
    scale = SUBDOMAIN_ELEMENTS / data.size
    mix = {k: int(v * scale) for k, v in mix.items()}
    compressed = int(sum(g.compressed_size for g in groups) * scale)

    def build(node):
        model = HostDeviceModel(node.device)
        return [refactor_stage_costs(
            model, SUBDOMAIN_ELEMENTS, 4, 3, 5, 32, compressed, mix,
        )] * NUM_SUBDOMAINS

    return build


def test_fig10_weak_scaling(benchmark, stages_for):
    def compute():
        rows = []
        efficiencies = {}
        for node in (TALAPAS_NODE, FRONTIER_NODE):
            stages = stages_for(node)
            per_gpu_bytes = NUM_SUBDOMAINS * SUBDOMAIN_ELEMENTS * 4
            points = weak_scaling(node, stages, per_gpu_bytes)
            for p in points:
                rows.append((
                    node.name, p.num_gpus,
                    round(p.throughput_gbps, 1),
                    round(p.speedup, 2),
                    round(100 * p.efficiency, 1),
                ))
            efficiencies[node.name] = points[-1].efficiency
        return rows, efficiencies

    rows, efficiencies = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_series(
        "Fig 10 — weak scaling on single-node multi-GPU (modeled)",
        ["node", "gpus", "agg GB/s", "speedup", "efficiency %"],
        rows,
        note="Paper: ~95% of ideal on 4x H100, ~89% on 8x MI250X.",
    )
    write_result("fig10_weak_scaling", text)

    assert 0.85 <= efficiencies["Talapas-H100"] <= 1.0
    assert 0.80 <= efficiencies["Frontier-MI250X"] <= 0.97
    assert efficiencies["Frontier-MI250X"] <= efficiencies["Talapas-H100"]
