"""Progressive-refinement benchmark: incremental vs full re-decode.

Walks one warm progressive session down a staircase of relative
tolerances at 1M elements and measures each step's wall time for:

* **full** — ``Reconstructor(..., incremental=False)``: the pre-PR-4
  reference path that re-decodes every fetched plane group of every
  level from plane 0 on every step;
* **incremental** — the PR 4 engine, which retains per-level integer
  partials and decodes only the plane groups newly planned since the
  previous step.

Both paths run in the same process on the same field; their outputs are
asserted bit-identical at every step, and the instrumented decode
counters are asserted to show that each incremental refinement step
decompressed exactly the newly planned groups. The headline number is
``speedup_refinement_total`` — total refinement wall (all steps after
the first) of the full path over the incremental path — with the
acceptance floor ``MIN_REFINEMENT_SPEEDUP``.

Writes ``BENCH_progressive.json`` at the repo root.

Run standalone (writes the JSON):

    PYTHONPATH=src python benchmarks/bench_progressive.py

``--smoke`` runs a tiny staircase, keeps the bit-identity and
only-the-increment assertions, skips the refinement-speedup floor, and
writes nothing — the CI mode. Or through pytest (the ``bench`` marker keeps it out of the default
test run; ``benchmarks/run_all.sh`` clears the marker filter):

    PYTHONPATH=src python -m pytest benchmarks/bench_progressive.py -o addopts= -s
"""

from __future__ import annotations

import gc
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.reconstruct import Reconstructor
from repro.core.refactor import refactor
from repro.data import generators as gen

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_progressive.json"

DIMS = (100, 100, 100)  # 1M elements
TOLERANCES = [1e-1, 3e-2, 1e-2, 3e-3, 1e-3, 3e-4, 1e-4]  # relative
REPEATS = 3

#: Acceptance floor for this PR (ISSUE 4): refinement-step wall time
#: (everything after the cold first step) must improve at least this
#: much over the pre-PR full re-decode path measured in the same run.
MIN_REFINEMENT_SPEEDUP = 2.0


def _build_field(dims):
    data = gen.gaussian_random_field(dims, -5.0 / 3.0, seed=7,
                                     dtype=np.float64)
    return refactor(data, name="vel"), data


def _walk_verify(field, data, tolerances):
    """One staircase on both engines, checking the correctness gates."""
    inc = Reconstructor(field)
    full = Reconstructor(field, incremental=False)
    prev_groups = [0] * len(field.levels)
    identical = only_increment = True
    inc_results = []
    err = float("inf")
    for tol in tolerances:
        ri = inc.reconstruct(tolerance=tol, relative=True)
        rf = full.reconstruct(tolerance=tol, relative=True)
        identical &= bool(np.array_equal(ri.data, rf.data))
        new_groups = sum(
            g - p for g, p in zip(ri.plan.groups_per_level, prev_groups)
        )
        only_increment &= ri.decoded_groups == new_groups
        prev_groups = ri.plan.groups_per_level
        err = float(np.max(np.abs(ri.data - data)))
        ri.data = rf.data = None  # keep metadata, release the arrays
        inc_results.append(ri)
    return identical, only_increment, err, inc_results, inc


def _walk_timed(field, tolerances, incremental: bool) -> list[float]:
    """One cold session down the staircase; per-step wall times.

    Results are dropped step by step (and the allocator settled with a
    collect up front) so the timings measure the engines, not garbage
    from earlier walks.
    """
    gc.collect()
    recon = Reconstructor(field, incremental=incremental)
    walls = []
    for tol in tolerances:
        t0 = time.perf_counter()
        recon.reconstruct(tolerance=tol, relative=True)
        walls.append(time.perf_counter() - t0)
    return walls


def run(
    dims: tuple[int, ...] = DIMS,
    tolerances: list[float] = TOLERANCES,
    repeats: int = REPEATS,
) -> dict:
    field, data = _build_field(dims)

    # Correctness gates first (bit-identity + counters), then timing.
    identical, only_increment, err, inc_results, recon = _walk_verify(
        field, data, tolerances
    )
    best_full = [float("inf")] * len(tolerances)
    best_inc = [float("inf")] * len(tolerances)
    for _ in range(repeats):
        walls_f = _walk_timed(field, tolerances, incremental=False)
        walls_i = _walk_timed(field, tolerances, incremental=True)
        best_full = [min(a, b) for a, b in zip(best_full, walls_f)]
        best_inc = [min(a, b) for a, b in zip(best_inc, walls_i)]

    full_refine = sum(best_full[1:])
    inc_refine = sum(best_inc[1:])
    steps = []
    for i, tol in enumerate(tolerances):
        steps.append({
            "relative_tolerance": tol,
            "full_ms": best_full[i] * 1e3,
            "incremental_ms": best_inc[i] * 1e3,
            "step_ratio": best_full[i] / best_inc[i],
            "decoded_groups": inc_results[i].decoded_groups,
            "decoded_planes": inc_results[i].decoded_planes,
            "incremental_bytes": inc_results[i].incremental_bytes,
        })
    return {
        "config": {
            "dims": list(dims),
            "dtype": "float64",
            "elements": int(np.prod(dims)),
            "tolerances_relative": tolerances,
            "repeats": repeats,
            "platform": platform.platform(),
            "numpy": np.__version__,
        },
        "steps": steps,
        "checks": {
            "bit_identical_every_step": identical,
            "refinements_decode_only_increment": only_increment,
            "final_error": err,
            "final_error_bound": inc_results[-1].error_bound,
            "decode_state_bytes": recon.decode_state_bytes(),
            "final_error_within_bound": (
                err <= inc_results[-1].error_bound
            ),
        },
        "derived": {
            "first_step_full_ms": best_full[0] * 1e3,
            "first_step_incremental_ms": best_inc[0] * 1e3,
            "refinement_total_full_ms": full_refine * 1e3,
            "refinement_total_incremental_ms": inc_refine * 1e3,
            "speedup_refinement_total": full_refine / inc_refine,
        },
    }


def _report(results: dict) -> None:
    cfg = results["config"]
    print(f"\n== progressive refinement: incremental vs full re-decode "
          f"({cfg['elements']} elements, staircase "
          f"{cfg['tolerances_relative']}) ==")
    print(f"{'rel tol':>9} {'full':>9} {'incremental':>12} {'ratio':>7} "
          f"{'new groups':>11}")
    for s in results["steps"]:
        print(f"{s['relative_tolerance']:>9g} {s['full_ms']:>7.1f}ms "
              f"{s['incremental_ms']:>10.1f}ms {s['step_ratio']:>6.2f}x "
              f"{s['decoded_groups']:>11}")
    d = results["derived"]
    print(f"refinement total: {d['refinement_total_full_ms']:.1f}ms full vs "
          f"{d['refinement_total_incremental_ms']:.1f}ms incremental "
          f"({d['speedup_refinement_total']:.2f}x)")


def test_progressive_benchmark() -> None:
    """Pytest entry point — also enforces the acceptance criteria."""
    results = run()
    RESULT_PATH.write_text(json.dumps(results, indent=2))
    _report(results)
    assert results["checks"]["bit_identical_every_step"]
    assert results["checks"]["refinements_decode_only_increment"]
    assert (results["checks"]["final_error"]
            <= results["checks"]["final_error_bound"])
    assert (results["derived"]["speedup_refinement_total"]
            >= MIN_REFINEMENT_SPEEDUP)


def main(argv: list[str] | None = None) -> None:
    args = sys.argv[1:] if argv is None else argv
    if "--smoke" in args:
        results = run(dims=(16, 16, 16), tolerances=[1e-1, 1e-3],
                      repeats=1)
        assert results["checks"]["bit_identical_every_step"]
        assert results["checks"]["refinements_decode_only_increment"]
        assert (results["checks"]["final_error"]
                <= results["checks"]["final_error_bound"])
        print("bench_progressive smoke ok (tiny sizes, no speedup "
              "floor, nothing written)")
        return
    results = run()
    RESULT_PATH.write_text(json.dumps(results, indent=2))
    _report(results)
    print(f"\nwrote {RESULT_PATH}")


if __name__ == "__main__":
    main()
