"""Resilience benchmark: checksum overhead and faulty-store recovery.

Two questions the fault-tolerance subsystem must answer with numbers:

* **What does integrity cost when nothing is wrong?** The clean
  cold-read path — open a directory-backed field, fetch every segment,
  decode to the tightest staircase tolerance — with CRC32 verification
  on vs off, best-of-N walls. The acceptance criterion is overhead
  ≤ 5 %; the recorded ``speedup_verified_vs_unverified`` ratio is
  guarded by ``check_regression.py`` like every other speedup.
* **What does recovery cost when things go wrong?** A progressive
  tolerance staircase through a 10 %-transient store behind
  :class:`~repro.core.faults.ResilientReader` (zero-backoff policy, so
  the wall measures retry machinery, not sleeps), compared with the
  same staircase on the clean store — plus the injected-fault and
  retry counts, and a bit-identity check that recovery never changed
  an answer.

Writes ``BENCH_resilience.json`` at the repo root.

Run standalone (writes the JSON):

    PYTHONPATH=src python benchmarks/bench_resilience.py

``--smoke`` runs tiny sizes, keeps the bit-identity assertions, and
writes nothing — the CI mode. Or through pytest (the ``bench`` marker
keeps it out of the default test run):

    PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py -o addopts= -s
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.faults import FaultInjectingStore, ResilientReader, RetryPolicy
from repro.core.reconstruct import Reconstructor
from repro.core.refactor import refactor
from repro.core.store import DirectoryStore, open_field, store_field
from repro.data import generators as gen

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_resilience.json"

DIMS = (48, 48, 48)
REPEATS = 5
TOLERANCES = [1e-1, 1e-2, 1e-3]  # relative staircase
TRANSIENT_RATE = 0.10
CHAOS_SEED = 7

#: Acceptance ceiling: verification may cost at most this fraction of
#: the unverified clean cold-read wall.
MAX_CHECKSUM_OVERHEAD = 0.05


def _build_store(root: Path, dims: tuple[int, ...]) -> DirectoryStore:
    data = gen.gaussian_random_field(dims, -5.0 / 3.0, seed=13,
                                     dtype=np.float32)
    store = DirectoryStore(root)
    store_field(store, refactor(data, name="vel"))
    return store


def _best_wall(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _cold_read(store, tight_tol: float, verify: bool) -> np.ndarray:
    """One clean cold read: open, fetch every needed segment, decode."""
    recon = Reconstructor(open_field(store, "vel", verify=verify))
    return recon.reconstruct(tolerance=tight_tol, relative=True).data


def _bench_checksum_overhead(store: DirectoryStore, tight_tol: float,
                             repeats: int) -> dict:
    """Cold read+decode, verification on vs off (best-of-*repeats*)."""
    wall_plain = _best_wall(
        lambda: _cold_read(store, tight_tol, verify=False), repeats
    )
    wall_verified = _best_wall(
        lambda: _cold_read(store, tight_tol, verify=True), repeats
    )
    overhead = (wall_verified - wall_plain) / wall_plain if wall_plain else 0.0
    return {
        "wall_unverified_s": wall_plain,
        "wall_verified_s": wall_verified,
        "checksum_overhead_fraction": overhead,
        # Guarded ratio: ~1.0 when verification is effectively free;
        # a drop below 0.8x the recorded value fails check_regression.
        "speedup_verified_vs_unverified": (
            wall_plain / wall_verified if wall_verified else 0.0
        ),
    }


def _staircase(reader, tolerances) -> np.ndarray:
    recon = Reconstructor(open_field(reader, "vel"))
    out = None
    for tol in tolerances:
        out = recon.reconstruct(tolerance=tol, relative=True).data
    return out


def _bench_recovery(store: MemoryStore, tolerances, repeats: int) -> dict:
    """Staircase walls: clean store vs 10%-transient store with retries."""
    wall_clean = _best_wall(lambda: _staircase(store, tolerances), repeats)
    reference = _staircase(store, tolerances)

    flaky = FaultInjectingStore(store, seed=CHAOS_SEED,
                                transient_rate=TRANSIENT_RATE,
                                sleep=lambda _: None)
    policy = RetryPolicy(max_attempts=8, base_delay_s=0.0, jitter=0.0,
                         sleep=lambda _: None)
    reader = ResilientReader(flaky, policy)
    t0 = time.perf_counter()
    recovered = _staircase(reader, tolerances)
    wall_faulty = time.perf_counter() - t0

    bit_identical = bool(np.array_equal(recovered, reference))
    return {
        "wall_clean_s": wall_clean,
        "wall_faulty_s": wall_faulty,
        "recovery_overhead_fraction": (
            (wall_faulty - wall_clean) / wall_clean if wall_clean else 0.0
        ),
        "transient_rate": TRANSIENT_RATE,
        "injected_transients": flaky.injected_transients,
        "store_reads": flaky.reads,
        "retry_attempts": policy.attempts,
        "retries": policy.retries,
        "giveups": policy.giveups,
        "recovered_bit_identical": bit_identical,
    }


def run(dims: tuple[int, ...] = DIMS,
        tolerances: list[float] = TOLERANCES,
        repeats: int = REPEATS) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        store = _build_store(Path(tmp) / "campaign", dims)
        overhead = _bench_checksum_overhead(store, tolerances[-1], repeats)
        recovery = _bench_recovery(store, tolerances, repeats)
        return {
            "config": {
                "dims": list(dims),
                "dtype": "float32",
                "tolerances_relative": tolerances,
                "repeats_best_of": repeats,
                "stored_bytes": store.total_bytes(),
                "platform": platform.platform(),
                "numpy": np.__version__,
            },
            "checksum_overhead": overhead,
            "recovery": recovery,
        }


def _report(results: dict) -> None:
    o = results["checksum_overhead"]
    r = results["recovery"]
    print("\n== checksum overhead (clean cold read+decode, best-of-"
          f"{results['config']['repeats_best_of']}) ==")
    print(f"unverified {o['wall_unverified_s']*1e3:8.1f}ms   "
          f"verified {o['wall_verified_s']*1e3:8.1f}ms   "
          f"overhead {o['checksum_overhead_fraction']:+.1%}")
    print(f"\n== recovery under {r['transient_rate']:.0%}-transient store "
          "(staircase, zero-backoff retries) ==")
    print(f"clean {r['wall_clean_s']*1e3:8.1f}ms   "
          f"faulty {r['wall_faulty_s']*1e3:8.1f}ms   "
          f"overhead {r['recovery_overhead_fraction']:+.1%}")
    print(f"injected transients {r['injected_transients']}, "
          f"retries {r['retries']}, giveups {r['giveups']}, "
          f"bit-identical {r['recovered_bit_identical']}")


def test_resilience_benchmark() -> None:
    """Pytest entry point — enforces the checksum-overhead ceiling."""
    results = run()
    RESULT_PATH.write_text(json.dumps(results, indent=2))
    _report(results)
    assert results["recovery"]["recovered_bit_identical"]
    assert results["recovery"]["giveups"] == 0
    assert (results["checksum_overhead"]["checksum_overhead_fraction"]
            <= MAX_CHECKSUM_OVERHEAD)


def main(argv: list[str] | None = None) -> None:
    args = sys.argv[1:] if argv is None else argv
    if "--smoke" in args:
        results = run(dims=(16, 16, 16), tolerances=[1e-1, 1e-2],
                      repeats=2)
        assert results["recovery"]["recovered_bit_identical"]
        assert results["recovery"]["injected_transients"] > 0
        assert results["recovery"]["giveups"] == 0
        print("bench_resilience smoke ok (tiny sizes, no overhead "
              "ceiling, nothing written)")
        return
    results = run()
    RESULT_PATH.write_text(json.dumps(results, indent=2))
    _report(results)
    print(f"\nwrote {RESULT_PATH}")


if __name__ == "__main__":
    main()
