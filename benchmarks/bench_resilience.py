"""Resilience benchmark: checksum overhead and faulty-store recovery.

Three questions the fault-tolerance subsystem must answer with numbers:

* **What does integrity cost when nothing is wrong?** The clean
  cold-read path — open a directory-backed field, fetch every segment,
  decode to the tightest staircase tolerance — with CRC32 verification
  on vs off, best-of-N walls. The acceptance criterion is overhead
  ≤ 5 %; the recorded ``speedup_verified_vs_unverified`` ratio is
  guarded by ``check_regression.py`` like every other speedup.
* **What does recovery cost when things go wrong?** A progressive
  tolerance staircase through a 10 %-transient store behind
  :class:`~repro.core.faults.ResilientReader` (zero-backoff policy, so
  the wall measures retry machinery, not sleeps), compared with the
  same staircase on the clean store — plus the injected-fault and
  retry counts, and a bit-identity check that recovery never changed
  an answer.
* **What does losing a worker cost?** The same tiled staircase on the
  process backend with one seeded mid-run worker kill
  (:class:`~repro.core.faults.WorkerChaos`) vs the clean parallel run.
  The self-healing pool respawns the dead worker and retries its task;
  the acceptance criterion is a recovered wall within 1.5× of the
  clean wall, and the recorded ``speedup_crash_recovery`` ratio joins
  the regression gate.

Writes ``BENCH_resilience.json`` at the repo root.

Run standalone (writes the JSON):

    PYTHONPATH=src python benchmarks/bench_resilience.py

``--smoke`` runs tiny sizes, keeps the bit-identity assertions, and
writes nothing — the CI mode. Or through pytest (the ``bench`` marker
keeps it out of the default test run):

    PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py -o addopts= -s
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.backends import shared_process_backend
from repro.core.faults import (
    FaultInjectingStore,
    ResilientReader,
    RetryPolicy,
    WorkerChaos,
)
from repro.core.reconstruct import Reconstructor
from repro.core.refactor import refactor
from repro.core.store import (
    DirectoryStore,
    open_field,
    open_tiled_field,
    store_field,
    store_tiled_field,
)
from repro.core.tiling import TiledReconstructor, TiledRefactorer
from repro.data import generators as gen

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_resilience.json"

DIMS = (48, 48, 48)
REPEATS = 5
TOLERANCES = [1e-1, 1e-2, 1e-3]  # relative staircase
#: Crash-recovery staircase: deeper, so the one-time kill cost (respawn
#: + re-decode of the dead worker's resident tile state) is measured
#: against a realistic progressive session rather than dominating it.
CRASH_TOLERANCES = [1e-1, 3e-2, 1e-2, 3e-3, 1e-3]
TRANSIENT_RATE = 0.10
CHAOS_SEED = 7

#: Acceptance ceiling: verification may cost at most this fraction of
#: the unverified clean cold-read wall.
MAX_CHECKSUM_OVERHEAD = 0.05

#: Acceptance ceiling: one worker kill (respawn + task retry + tile
#: re-ship) may cost at most this fraction of the clean parallel wall —
#: i.e. the recovered staircase stays within 1.5x.
MAX_CRASH_OVERHEAD = 0.5


def _build_store(root: Path, dims: tuple[int, ...]) -> DirectoryStore:
    data = gen.gaussian_random_field(dims, -5.0 / 3.0, seed=13,
                                     dtype=np.float32)
    store = DirectoryStore(root)
    store_field(store, refactor(data, name="vel"))
    return store


def _best_wall(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _cold_read(store, tight_tol: float, verify: bool) -> np.ndarray:
    """One clean cold read: open, fetch every needed segment, decode."""
    recon = Reconstructor(open_field(store, "vel", verify=verify))
    return recon.reconstruct(tolerance=tight_tol, relative=True).data


def _bench_checksum_overhead(store: DirectoryStore, tight_tol: float,
                             repeats: int) -> dict:
    """Cold read+decode, verification on vs off (best-of-*repeats*)."""
    wall_plain = _best_wall(
        lambda: _cold_read(store, tight_tol, verify=False), repeats
    )
    wall_verified = _best_wall(
        lambda: _cold_read(store, tight_tol, verify=True), repeats
    )
    overhead = (wall_verified - wall_plain) / wall_plain if wall_plain else 0.0
    return {
        "wall_unverified_s": wall_plain,
        "wall_verified_s": wall_verified,
        "checksum_overhead_fraction": overhead,
        # Guarded ratio: ~1.0 when verification is effectively free;
        # a drop below 0.8x the recorded value fails check_regression.
        "speedup_verified_vs_unverified": (
            wall_plain / wall_verified if wall_verified else 0.0
        ),
    }


def _staircase(reader, tolerances) -> np.ndarray:
    recon = Reconstructor(open_field(reader, "vel"))
    out = None
    for tol in tolerances:
        out = recon.reconstruct(tolerance=tol, relative=True).data
    return out


def _bench_recovery(store: MemoryStore, tolerances, repeats: int) -> dict:
    """Staircase walls: clean store vs 10%-transient store with retries."""
    wall_clean = _best_wall(lambda: _staircase(store, tolerances), repeats)
    reference = _staircase(store, tolerances)

    flaky = FaultInjectingStore(store, seed=CHAOS_SEED,
                                transient_rate=TRANSIENT_RATE,
                                sleep=lambda _: None)
    policy = RetryPolicy(max_attempts=8, base_delay_s=0.0, jitter=0.0,
                         sleep=lambda _: None)
    reader = ResilientReader(flaky, policy)
    t0 = time.perf_counter()
    recovered = _staircase(reader, tolerances)
    wall_faulty = time.perf_counter() - t0

    bit_identical = bool(np.array_equal(recovered, reference))
    return {
        "wall_clean_s": wall_clean,
        "wall_faulty_s": wall_faulty,
        "recovery_overhead_fraction": (
            (wall_faulty - wall_clean) / wall_clean if wall_clean else 0.0
        ),
        "transient_rate": TRANSIENT_RATE,
        "injected_transients": flaky.injected_transients,
        "store_reads": flaky.reads,
        "retry_attempts": policy.attempts,
        "retries": policy.retries,
        "giveups": policy.giveups,
        "recovered_bit_identical": bit_identical,
    }


def _tiled_staircase(store, tolerances, num_workers=0, backend=None):
    recon = TiledReconstructor(open_tiled_field(store, "rho"),
                               num_workers=num_workers, backend=backend)
    try:
        out = None
        for tol in tolerances:
            out = recon.reconstruct(tolerance=tol, relative=True).data
        return out
    finally:
        recon.close()


def _bench_crash_recovery(tmp: Path, dims: tuple[int, ...],
                          tolerances, repeats: int) -> dict:
    """Tiled staircase on the process backend, one seeded worker kill.

    Clean parallel wall vs the wall with a mid-run
    ``WorkerChaos.single_kill`` (``os._exit``, no cleanup): the pool
    respawns the dead worker, retries its task, and re-ships the lost
    tile sources. Each crashed repeat gets a fresh marker directory so
    the kill fires every time, and every recovered staircase is checked
    bit-identical against the serial reference.
    """
    data = gen.gaussian_random_field(dims, -5.0 / 3.0, seed=29,
                                     dtype=np.float32)
    tile = tuple(max(1, d // 2) for d in dims)
    store = DirectoryStore(tmp / "tiled")
    tiled = TiledRefactorer(tile).refactor(data, name="rho")
    store_tiled_field(store, tiled)
    num_tiles = len(tiled.tiles)

    reference = _tiled_staircase(store, tolerances)
    wall_clean = _best_wall(
        lambda: _tiled_staircase(store, tolerances,
                                 num_workers=2, backend="processes:2"),
        repeats,
    )

    backend = shared_process_backend(2)
    respawns_before = backend.health()["respawns"]
    wall_crashed = float("inf")
    kills_fired = 0
    bit_identical = True
    for i in range(repeats):
        scratch = tmp / f"chaos-{i}"
        scratch.mkdir()
        chaos = WorkerChaos.single_kill(CHAOS_SEED, num_tiles, scratch)
        backend.install_chaos(chaos)
        try:
            t0 = time.perf_counter()
            recovered = _tiled_staircase(store, tolerances,
                                         num_workers=2,
                                         backend="processes:2")
            wall_crashed = min(wall_crashed, time.perf_counter() - t0)
        finally:
            backend.clear_chaos()
        kills_fired += chaos.total_fired()
        bit_identical = bit_identical and bool(
            np.array_equal(recovered, reference)
        )
    respawns = backend.health()["respawns"] - respawns_before

    return {
        "num_tiles": num_tiles,
        "tolerances_relative": list(tolerances),
        "wall_clean_s": wall_clean,
        "wall_crashed_s": wall_crashed,
        "crash_overhead_fraction": (
            (wall_crashed - wall_clean) / wall_clean if wall_clean else 0.0
        ),
        # Guarded ratio: ~1.0 when recovery is effectively free; a drop
        # below 0.8x the recorded value fails check_regression.
        "speedup_crash_recovery": (
            wall_clean / wall_crashed if wall_crashed else 0.0
        ),
        "kills_fired": kills_fired,
        "worker_respawns": respawns,
        "recovered_bit_identical": bit_identical,
    }


def run(dims: tuple[int, ...] = DIMS,
        tolerances: list[float] = TOLERANCES,
        repeats: int = REPEATS) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        store = _build_store(Path(tmp) / "campaign", dims)
        overhead = _bench_checksum_overhead(store, tolerances[-1], repeats)
        recovery = _bench_recovery(store, tolerances, repeats)
        crash_tols = (tolerances if len(tolerances) < 3
                      else CRASH_TOLERANCES)
        crash = _bench_crash_recovery(Path(tmp), dims, crash_tols, repeats)
        return {
            "config": {
                "dims": list(dims),
                "dtype": "float32",
                "tolerances_relative": tolerances,
                "repeats_best_of": repeats,
                "stored_bytes": store.total_bytes(),
                "platform": platform.platform(),
                "numpy": np.__version__,
            },
            "checksum_overhead": overhead,
            "recovery": recovery,
            "crash_recovery": crash,
        }


def _report(results: dict) -> None:
    o = results["checksum_overhead"]
    r = results["recovery"]
    print("\n== checksum overhead (clean cold read+decode, best-of-"
          f"{results['config']['repeats_best_of']}) ==")
    print(f"unverified {o['wall_unverified_s']*1e3:8.1f}ms   "
          f"verified {o['wall_verified_s']*1e3:8.1f}ms   "
          f"overhead {o['checksum_overhead_fraction']:+.1%}")
    print(f"\n== recovery under {r['transient_rate']:.0%}-transient store "
          "(staircase, zero-backoff retries) ==")
    print(f"clean {r['wall_clean_s']*1e3:8.1f}ms   "
          f"faulty {r['wall_faulty_s']*1e3:8.1f}ms   "
          f"overhead {r['recovery_overhead_fraction']:+.1%}")
    print(f"injected transients {r['injected_transients']}, "
          f"retries {r['retries']}, giveups {r['giveups']}, "
          f"bit-identical {r['recovered_bit_identical']}")
    c = results["crash_recovery"]
    print(f"\n== crash recovery (tiled staircase, {c['num_tiles']} tiles "
          "on processes:2, one seeded worker kill per run) ==")
    print(f"clean {c['wall_clean_s']*1e3:8.1f}ms   "
          f"crashed {c['wall_crashed_s']*1e3:8.1f}ms   "
          f"overhead {c['crash_overhead_fraction']:+.1%}")
    print(f"kills fired {c['kills_fired']}, "
          f"worker respawns {c['worker_respawns']}, "
          f"bit-identical {c['recovered_bit_identical']}")


def test_resilience_benchmark() -> None:
    """Pytest entry point — enforces the overhead ceilings."""
    results = run()
    RESULT_PATH.write_text(json.dumps(results, indent=2))
    _report(results)
    assert results["recovery"]["recovered_bit_identical"]
    assert results["recovery"]["giveups"] == 0
    assert (results["checksum_overhead"]["checksum_overhead_fraction"]
            <= MAX_CHECKSUM_OVERHEAD)
    crash = results["crash_recovery"]
    assert crash["recovered_bit_identical"]
    assert crash["kills_fired"] >= 1
    assert crash["worker_respawns"] >= 1
    assert crash["crash_overhead_fraction"] <= MAX_CRASH_OVERHEAD


def main(argv: list[str] | None = None) -> None:
    args = sys.argv[1:] if argv is None else argv
    if "--smoke" in args:
        results = run(dims=(16, 16, 16), tolerances=[1e-1, 1e-2],
                      repeats=2)
        assert results["recovery"]["recovered_bit_identical"]
        assert results["recovery"]["injected_transients"] > 0
        assert results["recovery"]["giveups"] == 0
        assert results["crash_recovery"]["recovered_bit_identical"]
        assert results["crash_recovery"]["kills_fired"] > 0
        print("bench_resilience smoke ok (tiny sizes, no overhead "
              "ceiling, nothing written)")
        return
    results = run()
    RESULT_PATH.write_text(json.dumps(results, indent=2))
    _report(results)
    print(f"\nwrote {RESULT_PATH}")


if __name__ == "__main__":
    main()
