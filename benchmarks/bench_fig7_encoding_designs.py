"""Figure 7: throughput of the three bitplane-encoding designs
(locality block, register shuffling, register block) for encode and
decode on both GPUs across input sizes.

Real kernels are benchmarked for wall-clock; the figure series come
from the cost model. Headline shape: register block ≈2.1× locality
block encode (≈4.7×/8.3× decode on H100/MI250X); locality ≈1.4× the
shuffle design on encode.
"""

import numpy as np
import pytest

from _helpers import format_series, write_result
from repro.bitplane import DESIGNS, decode_bitplanes, encode_bitplanes
from repro.gpu.costmodel import CostModel
from repro.gpu.device import H100, MI250X

SIZES = [1 << e for e in range(16, 27, 2)]


@pytest.fixture(scope="module")
def sample():
    rng = np.random.default_rng(1)
    return rng.standard_normal(1 << 20).astype(np.float32)


@pytest.mark.parametrize("design", DESIGNS)
def test_fig7_real_encode(benchmark, sample, design):
    stream = benchmark(encode_bitplanes, sample, 32, design)
    assert stream.num_elements == sample.size


@pytest.mark.parametrize("design", DESIGNS)
def test_fig7_real_decode(benchmark, sample, design):
    stream = encode_bitplanes(sample, 32, design=design)
    decoded = benchmark(decode_bitplanes, stream)
    assert decoded.size == sample.size


def test_fig7_modeled_series(benchmark):
    def compute():
        rows = []
        for device in (H100, MI250X):
            model = CostModel(device)
            for design in DESIGNS:
                for direction in ("encode", "decode"):
                    fn = (model.bitplane_encode if direction == "encode"
                          else model.bitplane_decode)
                    tps = [fn(n, 32, design=design).throughput_gbps
                           for n in SIZES]
                    rows.append((device.name, design, direction,
                                 *[round(t, 1) for t in tps]))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_series(
        "Fig 7 — encoding-design throughput (GB/s, modeled)",
        ["device", "design", "dir",
         *[f"2^{int(np.log2(n))}" for n in SIZES]],
        rows,
        note="Paper ratios at saturation: register block / locality = "
             "2.1x (enc), 4.7x (dec H100), 8.3x (dec MI250X); locality "
             "/ shuffle = 1.4x (enc), 3.2x/6.6x (dec).",
    )
    write_result("fig7_encoding_designs", text)

    big = SIZES[-1]
    for device, dec_ratio in ((H100, 4.7), (MI250X, 8.3)):
        model = CostModel(device)
        rb_e = model.bitplane_encode(big, 32, design="register_block")
        lb_e = model.bitplane_encode(big, 32, design="locality_block")
        ratio_e = rb_e.throughput_gbps / lb_e.throughput_gbps
        assert 2.1 * 0.65 <= ratio_e <= 2.1 * 1.35
        rb_d = model.bitplane_decode(big, 32, design="register_block")
        lb_d = model.bitplane_decode(big, 32, design="locality_block")
        ratio_d = rb_d.throughput_gbps / lb_d.throughput_gbps
        assert dec_ratio * 0.6 <= ratio_d <= dec_ratio * 1.4
