"""Benchmark-suite pytest plumbing.

CI installs only numpy/pytest/hypothesis, so the ``pytest-benchmark``
plugin is absent there; the per-figure harnesses that take its
``benchmark`` fixture still need to run in the smoke step (they carry
correctness assertions, not just timings). When the plugin is missing,
provide a minimal stand-in that just calls the benched function once
and returns its result. When the plugin is present, this module defines
nothing and the real fixture wins.
"""

import pytest

try:
    import pytest_benchmark  # noqa: F401
except ImportError:

    class _BenchmarkShim:
        """One-shot stand-in for the pytest-benchmark fixture."""

        def __call__(self, fn, *args, **kwargs):
            return fn(*args, **kwargs)

        def pedantic(self, fn, args=(), kwargs=None, rounds=1,
                     iterations=1, warmup_rounds=0, setup=None):
            if setup is not None:
                prepared = setup()
                if prepared is not None:
                    args, kwargs = prepared
            return fn(*args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _BenchmarkShim()
