"""Figure 6: bitplane encoding throughput of the register-shuffle
instruction variants on H100 and MI250X across input sizes.

The real kernel (our vectorized shuffle-design encoder) is timed with
pytest-benchmark; the figure's series come from the device cost model,
which reproduces the paper's findings: reduce-add wins on H100 (~15%
over ballot, hardware reduction unit), ballot wins on MI250X (fewest
instructions) but degrades with input size (communication contention),
and reduce-add is absent on AMD.
"""

import numpy as np
import pytest

from _helpers import format_series, write_result
from repro.bitplane import encode_bitplanes
from repro.gpu.costmodel import CostModel
from repro.gpu.device import H100, MI250X

SIZES = [1 << e for e in range(16, 27, 2)]


@pytest.fixture(scope="module")
def sample():
    rng = np.random.default_rng(0)
    return rng.standard_normal(1 << 20).astype(np.float32)


def test_fig6_real_shuffle_encode(benchmark, sample):
    """Wall-clock of the functional shuffle-design encoder."""
    stream = benchmark(encode_bitplanes, sample, 32, "register_shuffle")
    assert stream.num_planes == 33


def test_fig6_modeled_series(benchmark):
    def compute():
        rows = []
        for device in (H100, MI250X):
            model = CostModel(device)
            variants = ["ballot", "shift", "match_any"]
            if device.has_reduce_unit:
                variants.append("reduce_add")
            for variant in variants:
                for direction in ("encode", "decode"):
                    fn = (model.bitplane_encode if direction == "encode"
                          else model.bitplane_decode)
                    tps = [
                        fn(n, 32, design="register_shuffle",
                           variant=variant).throughput_gbps
                        for n in SIZES
                    ]
                    rows.append((device.name, variant, direction,
                                 *[round(t, 1) for t in tps]))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_series(
        "Fig 6 — register-shuffle variant throughput (GB/s, modeled)",
        ["device", "variant", "dir",
         *[f"2^{int(np.log2(n))}" for n in SIZES]],
        rows,
        note="Paper: reduce-add best on H100 (~15% over ballot); ballot "
             "best on MI250X with degradation at large inputs; "
             "reduce-add unavailable on AMD.",
    )
    write_result("fig6_register_shuffle", text)

    # Shape assertions mirroring the paper's claims.
    h100 = CostModel(H100)
    big = SIZES[-1]
    ballot = h100.bitplane_encode(big, 32, design="register_shuffle",
                                  variant="ballot").throughput_gbps
    reduce_add = h100.bitplane_encode(
        big, 32, design="register_shuffle", variant="reduce_add"
    ).throughput_gbps
    assert 1.05 <= reduce_add / ballot <= 1.35

    mi = CostModel(MI250X)
    small_tp = mi.bitplane_encode(1 << 22, 32, design="register_shuffle",
                                  variant="ballot").throughput_gbps
    big_tp = mi.bitplane_encode(1 << 26, 32, design="register_shuffle",
                                variant="ballot").throughput_gbps
    assert big_tp < small_tp
