"""Tiled streaming benchmark: parallel fan-out + region-of-interest I/O.

Two sections, both on the tiled engine (``repro.core.tiling``):

* **parallel vs sequential tiled refactor** — the same multi-tile field
  refactored by one :class:`~repro.core.tiling.TiledRefactorer` with a
  worker pool (tiles fan out across threads; the NumPy kernels release
  the GIL) and one without, asserted byte-identical stream for stream.
  The recorded ``speedup_parallel_refactor`` is wall-clock, so it only
  expresses real parallelism: the ≥2× acceptance floor is enforced on
  machines with at least 2 CPUs, while on a single-core machine the
  floor degrades to "threading must not regress the sequential path"
  (the measurement is recorded either way and guarded by
  ``check_regression.py``).
* **region-of-interest vs full-domain retrieval** — a tiled field
  stored via :func:`~repro.core.store.store_tiled_field` on a
  :class:`~repro.core.store.DirectoryStore`, walked down a tolerance
  staircase twice through :func:`~repro.core.store.open_tiled_field`:
  once full-domain, once restricted to a small hyperslab. The region
  walk must read at most ``MAX_ROI_BYTES_FRACTION`` of the full walk's
  backing-store bytes while matching the full reconstruction on that
  slab bit for bit at every step (``speedup_roi_fetch_bytes`` is the
  guarded bytes ratio).

Writes ``BENCH_tiles.json`` at the repo root.

Run standalone (writes the JSON):

    PYTHONPATH=src python benchmarks/bench_tiles.py

``--smoke`` runs tiny sizes, keeps every correctness assertion, skips
the timing floors, and writes nothing — the CI path that exercises the
benchmark code on every PR. Or through pytest (the ``bench`` marker
keeps it out of the default test run; ``benchmarks/run_all.sh`` clears
the marker filter):

    PYTHONPATH=src python -m pytest benchmarks/bench_tiles.py -o addopts= -s
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.store import (
    DirectoryStore,
    open_tiled_field,
    store_tiled_field,
)
from repro.core.tiling import (
    TiledReconstructor,
    TiledRefactorer,
    normalize_region,
)
from repro.data import generators as gen

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_tiles.json"

# -- parallel-refactor section ----------------------------------------
DIMS = (96, 96, 96)
TILE = (48, 48, 48)  # 8 tiles
PAR_WORKERS = 4
REPS = 3

# -- region-of-interest section ---------------------------------------
ROI_DIMS = (64, 64, 64)
ROI_TILE = (16, 16, 16)  # 64 tiles
#: A 16³ hyperslab (1/64 of the domain) deliberately straddling tile
#: boundaries on every axis, so it overlaps 8 of the 64 tiles.
ROI_REGION = ((8, 24), (8, 24), (8, 24))
ROI_TOLERANCES = [1e-1, 1e-2, 1e-3]  # relative staircase

#: Acceptance floors for ISSUE 5. The parallel floor applies on
#: machines where a thread pool *can* help (>= 2 CPUs); single-core
#: machines instead require that threading does not badly regress the
#: sequential path.
MIN_PARALLEL_SPEEDUP = 2.0
MIN_SINGLE_CORE_RATIO = 0.7
MAX_ROI_BYTES_FRACTION = 0.25


def _best_time(fn, reps: int):
    """Best-of-reps wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _bench_parallel_refactor(
    dims: tuple[int, ...], tile: tuple[int, ...], reps: int,
    par_workers: int,
) -> dict:
    data = gen.gaussian_random_field(dims, -5.0 / 3.0, seed=21,
                                     dtype=np.float32)
    seq = TiledRefactorer(tile)
    par = TiledRefactorer(tile, num_workers=par_workers)
    # One untimed pass each warms the shared per-shape refactorers,
    # permutation caches, and the worker pool, so the timed reps
    # compare engines rather than first-touch costs.
    tiled_seq = seq.refactor(data, name="par")
    tiled_par = par.refactor(data, name="par")
    identical = all(
        a.to_bytes() == b.to_bytes()
        for a, b in zip(tiled_seq.fields, tiled_par.fields)
    )
    t_seq, tiled_seq = _best_time(
        lambda: seq.refactor(data, name="par"), reps
    )
    t_par, _ = _best_time(lambda: par.refactor(data, name="par"), reps)
    par.close()
    return {
        "num_tiles": tiled_seq.num_tiles,
        "tile_shape": list(tile),
        "workers": par_workers,
        "sequential_ms": t_seq * 1e3,
        "parallel_ms": t_par * 1e3,
        "speedup_parallel_refactor": t_seq / t_par,
        "parallel_matches_sequential": identical,
        "stored_bytes": tiled_seq.total_bytes(),
    }


def _bench_roi_retrieval(
    dims: tuple[int, ...], tile: tuple[int, ...], region,
    tolerances: list[float],
) -> dict:
    data = gen.gaussian_random_field(dims, -5.0 / 3.0, seed=22,
                                     dtype=np.float32)
    tiled = TiledRefactorer(tile).refactor(data, name="roi")
    region_slices = normalize_region(region, tiled.shape)
    region_elems = int(np.prod([s.stop - s.start for s in region_slices]))
    tmp = Path(tempfile.mkdtemp(prefix="bench_tiles_"))
    try:
        store = DirectoryStore(tmp / "campaign", file_open_latency_s=2e-4)
        store_tiled_field(store, tiled)

        def walk(recon, use_region):
            outs = []
            for tol in tolerances:
                outs.append(recon.reconstruct(
                    tolerance=tol, relative=True,
                    region=region if use_region else None,
                ))
            return outs

        full_recon = TiledReconstructor(open_tiled_field(store, "roi"))
        reads0, bytes0 = store.reads, store.bytes_read
        t0 = time.perf_counter()
        full_steps = walk(full_recon, use_region=False)
        wall_full = time.perf_counter() - t0
        full_reads = store.reads - reads0
        full_bytes = store.bytes_read - bytes0

        roi_recon = TiledReconstructor(open_tiled_field(store, "roi"))
        reads0, bytes0 = store.reads, store.bytes_read
        t0 = time.perf_counter()
        roi_steps = walk(roi_recon, use_region=True)
        wall_roi = time.perf_counter() - t0
        roi_reads = store.reads - reads0
        roi_bytes = store.bytes_read - bytes0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    identical = all(
        np.array_equal(r_out, f_out[region_slices])
        and r_bound <= f_bound
        for (r_out, r_bound), (f_out, f_bound)
        in zip(roi_steps, full_steps)
    )
    final_err = float(np.max(np.abs(
        roi_steps[-1][0] - data[region_slices]
    )))
    return {
        "num_tiles": tiled.num_tiles,
        "tile_shape": list(tile),
        "region": [[s.start, s.stop] for s in region_slices],
        "region_fraction_of_domain": region_elems / data.size,
        "tiles_touched": len(roi_recon.touched_tiles),
        "tolerances_relative": tolerances,
        "full_store_reads": full_reads,
        "full_store_bytes": full_bytes,
        "full_wall_ms": wall_full * 1e3,
        "roi_store_reads": roi_reads,
        "roi_store_bytes": roi_bytes,
        "roi_wall_ms": wall_roi * 1e3,
        "roi_bytes_fraction": roi_bytes / full_bytes,
        "speedup_roi_fetch_bytes": full_bytes / roi_bytes,
        "roi_bit_identical_every_step": identical,
        "final_roi_error": final_err,
        "final_roi_error_bound": roi_steps[-1][1],
    }


def run(
    dims: tuple[int, ...] = DIMS,
    tile: tuple[int, ...] = TILE,
    reps: int = REPS,
    par_workers: int = PAR_WORKERS,
    roi_dims: tuple[int, ...] = ROI_DIMS,
    roi_tile: tuple[int, ...] = ROI_TILE,
    roi_region=ROI_REGION,
    roi_tolerances: list[float] = ROI_TOLERANCES,
) -> dict:
    return {
        "benchmark": "tiles",
        "generated_unix": time.time(),
        "numpy": np.__version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "config": {
            "dims": list(dims),
            "roi_dims": list(roi_dims),
            "dtype": "float32",
            "reps": reps,
            "cpu_count": os.cpu_count() or 1,
        },
        "parallel_refactor": _bench_parallel_refactor(
            dims, tile, reps, par_workers
        ),
        "roi_retrieval": _bench_roi_retrieval(
            roi_dims, roi_tile, roi_region, roi_tolerances
        ),
    }


SMOKE_KWARGS = dict(
    dims=(24, 24, 24), tile=(12, 12, 12), reps=1, par_workers=2,
    roi_dims=(16, 16, 16), roi_tile=(8, 8, 8),
    roi_region=((0, 8), (0, 8), (4, 12)), roi_tolerances=[1e-1, 1e-2],
)


def _check_correctness(results: dict) -> None:
    """Gates that hold on any machine, smoke or full size."""
    par = results["parallel_refactor"]
    roi = results["roi_retrieval"]
    assert par["parallel_matches_sequential"], \
        "parallel tiled refactor diverged from the sequential streams"
    assert roi["roi_bit_identical_every_step"], \
        "ROI reconstruction diverged from the full-domain slice"
    assert roi["final_roi_error"] <= roi["final_roi_error_bound"]
    assert roi["region_fraction_of_domain"] <= 1.0 / 8.0


def _check_floors(results: dict) -> None:
    """The ISSUE 5 acceptance floors (full-size runs only)."""
    par = results["parallel_refactor"]
    roi = results["roi_retrieval"]
    assert roi["roi_bytes_fraction"] <= MAX_ROI_BYTES_FRACTION, roi
    if results["config"]["cpu_count"] >= 2:
        assert (par["speedup_parallel_refactor"]
                >= MIN_PARALLEL_SPEEDUP), par
    else:
        # A thread pool cannot beat wall clock on one core; require it
        # not to badly regress the sequential path instead.
        assert (par["speedup_parallel_refactor"]
                >= MIN_SINGLE_CORE_RATIO), par


def _report(results: dict) -> None:
    par = results["parallel_refactor"]
    roi = results["roi_retrieval"]
    print(f"\n== tiled refactor: {par['num_tiles']} tiles, "
          f"{par['workers']} workers (cpu_count="
          f"{results['config']['cpu_count']}) ==")
    print(f"sequential {par['sequential_ms']:.1f}ms, parallel "
          f"{par['parallel_ms']:.1f}ms "
          f"({par['speedup_parallel_refactor']:.2f}x)")
    print(f"\n== ROI retrieval: region {roi['region']} "
          f"({roi['region_fraction_of_domain']:.1%} of domain, "
          f"{roi['tiles_touched']}/{roi['num_tiles']} tiles) ==")
    print(f"full walk {roi['full_store_bytes']} B "
          f"({roi['full_wall_ms']:.1f}ms), ROI walk "
          f"{roi['roi_store_bytes']} B ({roi['roi_wall_ms']:.1f}ms): "
          f"{roi['roi_bytes_fraction']:.1%} of full-domain bytes")


def _full_run() -> dict:
    """Full-size run: record the baseline and enforce every gate."""
    results = run()
    RESULT_PATH.write_text(json.dumps(results, indent=2))
    _report(results)
    _check_correctness(results)
    _check_floors(results)
    return results


def test_tiles_benchmark() -> None:
    """Pytest entry point — also enforces the acceptance floors."""
    _full_run()


def main(argv: list[str] | None = None) -> None:
    args = sys.argv[1:] if argv is None else argv
    if "--smoke" in args:
        results = run(**SMOKE_KWARGS)
        _check_correctness(results)
        print("bench_tiles smoke ok (tiny sizes, no timing floors, "
              "nothing written)")
        return
    _full_run()
    print(f"\nwrote {RESULT_PATH}")


if __name__ == "__main__":
    main()
