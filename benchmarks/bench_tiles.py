"""Tiled streaming benchmark: parallel fan-out + region-of-interest I/O.

Two sections, both on the tiled engine (``repro.core.tiling``):

* **parallel vs sequential tiled refactor** — the same multi-tile field
  refactored by one :class:`~repro.core.tiling.TiledRefactorer` with a
  worker pool (tiles fan out across threads; the NumPy kernels release
  the GIL) and one without, asserted byte-identical stream for stream.
  The recorded ``speedup_parallel_refactor`` is wall-clock, so it only
  expresses real parallelism: the ≥2× acceptance floor is enforced on
  machines with at least 2 CPUs, while on a single-core machine the
  floor degrades to "threading must not regress the sequential path"
  (the measurement is recorded either way and guarded by
  ``check_regression.py``).
* **region-of-interest vs full-domain retrieval** — a tiled field
  stored via :func:`~repro.core.store.store_tiled_field` on a
  :class:`~repro.core.store.DirectoryStore`, walked down a tolerance
  staircase twice through :func:`~repro.core.store.open_tiled_field`:
  once full-domain, once restricted to a small hyperslab. The region
  walk must read at most ``MAX_ROI_BYTES_FRACTION`` of the full walk's
  backing-store bytes while matching the full reconstruction on that
  slab bit for bit at every step (``speedup_roi_fetch_bytes`` is the
  guarded bytes ratio).
* **parallel vs serial ROI decode** — the same store-backed ROI
  staircase decoded serially and under each parallel execution backend
  (threads and true-parallel processes; see ``repro.core.backends``),
  asserted bit-identical step for step. The headline
  ``speedup_parallel_*`` keys record the best backend, so on a machine
  where the GIL nullifies threads the process backend carries the
  floor, and the per-backend ``ratio_vs_serial_*`` entries record each
  engine honestly without being regression-guarded.

Writes ``BENCH_tiles.json`` at the repo root.

Run standalone (writes the JSON):

    PYTHONPATH=src python benchmarks/bench_tiles.py

``--smoke`` runs tiny sizes, keeps every correctness assertion, skips
the timing floors, and writes nothing — the CI path that exercises the
benchmark code on every PR. Or through pytest (the ``bench`` marker
keeps it out of the default test run; ``benchmarks/run_all.sh`` clears
the marker filter):

    PYTHONPATH=src python -m pytest benchmarks/bench_tiles.py -o addopts= -s
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.store import (
    DirectoryStore,
    open_tiled_field,
    store_tiled_field,
)
from repro.core.tiling import (
    TiledReconstructor,
    TiledRefactorer,
    normalize_region,
)
from repro.data import generators as gen

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_tiles.json"

# -- parallel-refactor section ----------------------------------------
DIMS = (96, 96, 96)
TILE = (48, 48, 48)  # 8 tiles
PAR_WORKERS = 4
REPS = 3
#: Parallel execution backends measured against the serial engine; the
#: best of them backs the guarded headline speedups. Bare kinds are
#: sized with the section's worker count.
BACKENDS = ("threads", "processes")

# -- region-of-interest section ---------------------------------------
ROI_DIMS = (64, 64, 64)
ROI_TILE = (16, 16, 16)  # 64 tiles
#: A 16³ hyperslab (1/64 of the domain) deliberately straddling tile
#: boundaries on every axis, so it overlaps 8 of the 64 tiles.
ROI_REGION = ((8, 24), (8, 24), (8, 24))
ROI_TOLERANCES = [1e-1, 1e-2, 1e-3]  # relative staircase

#: Acceptance floors for ISSUE 5. The parallel floor applies on
#: machines where a thread pool *can* help (>= 2 CPUs); single-core
#: machines instead require that threading does not badly regress the
#: sequential path.
MIN_PARALLEL_SPEEDUP = 2.0
MIN_SINGLE_CORE_RATIO = 0.7
MAX_ROI_BYTES_FRACTION = 0.25


def _best_time(fn, reps: int):
    """Best-of-reps wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _sized_specs(backends, workers: int) -> list[str]:
    """Size bare backend kinds with the section's worker count."""
    return [b if ":" in b else f"{b}:{workers}" for b in backends]


def _bench_parallel_refactor(
    dims: tuple[int, ...], tile: tuple[int, ...], reps: int,
    par_workers: int, backends,
) -> dict:
    data = gen.gaussian_random_field(dims, -5.0 / 3.0, seed=21,
                                     dtype=np.float32)
    seq = TiledRefactorer(tile)
    # One untimed pass warms the shared per-shape refactorers and
    # permutation caches, so the timed reps compare engines rather
    # than first-touch costs; each backend gets the same warm pass
    # (pool spin-up, worker-side config shipping) below.
    tiled_seq = seq.refactor(data, name="par")
    t_seq, tiled_seq = _best_time(
        lambda: seq.refactor(data, name="par"), reps
    )
    out = {
        "num_tiles": tiled_seq.num_tiles,
        "tile_shape": list(tile),
        "workers": par_workers,
        "backends": _sized_specs(backends, par_workers),
        "sequential_ms": t_seq * 1e3,
        "stored_bytes": tiled_seq.total_bytes(),
    }
    identical = True
    best_kind, best_t = None, float("inf")
    for spec in _sized_specs(backends, par_workers):
        kind = spec.split(":")[0]
        par = TiledRefactorer(tile, num_workers=par_workers, backend=spec)
        tiled_par = par.refactor(data, name="par")  # warm pass
        identical = identical and all(
            a.to_bytes() == b.to_bytes()
            for a, b in zip(tiled_seq.fields, tiled_par.fields)
        )
        t_par, _ = _best_time(
            lambda: par.refactor(data, name="par"), reps
        )
        par.close()
        out[f"parallel_ms_{kind}"] = t_par * 1e3
        out[f"ratio_vs_serial_{kind}"] = t_seq / t_par
        if t_par < best_t:
            best_kind, best_t = kind, t_par
    out["parallel_ms"] = best_t * 1e3
    out["parallel_backend"] = best_kind
    out["speedup_parallel_refactor"] = t_seq / best_t
    out["parallel_matches_sequential"] = identical
    return out


def _bench_parallel_roi_decode(
    dims: tuple[int, ...], tile: tuple[int, ...], region,
    tolerances: list[float], reps: int, par_workers: int, backends,
) -> dict:
    data = gen.gaussian_random_field(dims, -5.0 / 3.0, seed=23,
                                     dtype=np.float32)
    tiled = TiledRefactorer(tile).refactor(data, name="pardec")
    tmp = Path(tempfile.mkdtemp(prefix="bench_tiles_pardec_"))
    try:
        store = DirectoryStore(tmp / "campaign", file_open_latency_s=2e-4)
        store_tiled_field(store, tiled)

        def walk(num_workers=0, backend=None):
            recon = TiledReconstructor(
                open_tiled_field(store, "pardec"),
                num_workers=num_workers, backend=backend,
            )
            try:
                return [
                    recon.reconstruct(tolerance=t, relative=True,
                                      region=region)
                    for t in tolerances
                ], len(recon.touched_tiles)
            finally:
                recon.close()

        walk()  # warm the OS page cache before timing anything
        t_serial, (serial_steps, tiles_touched) = _best_time(
            lambda: walk(), reps
        )
        out = {
            "num_tiles": tiled.num_tiles,
            "tile_shape": list(tile),
            "tiles_touched": tiles_touched,
            "workers": par_workers,
            "backends": _sized_specs(backends, par_workers),
            "tolerances_relative": tolerances,
            "serial_ms": t_serial * 1e3,
        }
        identical = True
        best_kind, best_t = None, float("inf")
        for spec in _sized_specs(backends, par_workers):
            kind = spec.split(":")[0]
            walk(num_workers=par_workers, backend=spec)  # warm pass
            t_par, (par_steps, _) = _best_time(
                lambda: walk(num_workers=par_workers, backend=spec), reps
            )
            identical = identical and all(
                np.array_equal(s_out, p_out) and s_bound == p_bound
                for (s_out, s_bound), (p_out, p_bound)
                in zip(serial_steps, par_steps)
            )
            out[f"parallel_ms_{kind}"] = t_par * 1e3
            out[f"ratio_vs_serial_{kind}"] = t_serial / t_par
            if t_par < best_t:
                best_kind, best_t = kind, t_par
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    out["parallel_ms"] = best_t * 1e3
    out["parallel_backend"] = best_kind
    out["speedup_parallel_roi_decode"] = t_serial / best_t
    out["parallel_matches_serial"] = identical
    return out


def _bench_roi_retrieval(
    dims: tuple[int, ...], tile: tuple[int, ...], region,
    tolerances: list[float],
) -> dict:
    data = gen.gaussian_random_field(dims, -5.0 / 3.0, seed=22,
                                     dtype=np.float32)
    tiled = TiledRefactorer(tile).refactor(data, name="roi")
    region_slices = normalize_region(region, tiled.shape)
    region_elems = int(np.prod([s.stop - s.start for s in region_slices]))
    tmp = Path(tempfile.mkdtemp(prefix="bench_tiles_"))
    try:
        store = DirectoryStore(tmp / "campaign", file_open_latency_s=2e-4)
        store_tiled_field(store, tiled)

        def walk(recon, use_region):
            outs = []
            for tol in tolerances:
                outs.append(recon.reconstruct(
                    tolerance=tol, relative=True,
                    region=region if use_region else None,
                ))
            return outs

        full_recon = TiledReconstructor(open_tiled_field(store, "roi"))
        reads0, bytes0 = store.reads, store.bytes_read
        t0 = time.perf_counter()
        full_steps = walk(full_recon, use_region=False)
        wall_full = time.perf_counter() - t0
        full_reads = store.reads - reads0
        full_bytes = store.bytes_read - bytes0

        roi_recon = TiledReconstructor(open_tiled_field(store, "roi"))
        reads0, bytes0 = store.reads, store.bytes_read
        t0 = time.perf_counter()
        roi_steps = walk(roi_recon, use_region=True)
        wall_roi = time.perf_counter() - t0
        roi_reads = store.reads - reads0
        roi_bytes = store.bytes_read - bytes0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    identical = all(
        np.array_equal(r_out, f_out[region_slices])
        and r_bound <= f_bound
        for (r_out, r_bound), (f_out, f_bound)
        in zip(roi_steps, full_steps)
    )
    final_err = float(np.max(np.abs(
        roi_steps[-1][0] - data[region_slices]
    )))
    return {
        "num_tiles": tiled.num_tiles,
        "tile_shape": list(tile),
        "region": [[s.start, s.stop] for s in region_slices],
        "region_fraction_of_domain": region_elems / data.size,
        "tiles_touched": len(roi_recon.touched_tiles),
        "tolerances_relative": tolerances,
        "full_store_reads": full_reads,
        "full_store_bytes": full_bytes,
        "full_wall_ms": wall_full * 1e3,
        "roi_store_reads": roi_reads,
        "roi_store_bytes": roi_bytes,
        "roi_wall_ms": wall_roi * 1e3,
        "roi_bytes_fraction": roi_bytes / full_bytes,
        "speedup_roi_fetch_bytes": full_bytes / roi_bytes,
        "roi_bit_identical_every_step": identical,
        "final_roi_error": final_err,
        "final_roi_error_bound": roi_steps[-1][1],
    }


def run(
    dims: tuple[int, ...] = DIMS,
    tile: tuple[int, ...] = TILE,
    reps: int = REPS,
    par_workers: int = PAR_WORKERS,
    roi_dims: tuple[int, ...] = ROI_DIMS,
    roi_tile: tuple[int, ...] = ROI_TILE,
    roi_region=ROI_REGION,
    roi_tolerances: list[float] = ROI_TOLERANCES,
    backends=BACKENDS,
) -> dict:
    return {
        "benchmark": "tiles",
        "generated_unix": time.time(),
        "numpy": np.__version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "config": {
            "dims": list(dims),
            "roi_dims": list(roi_dims),
            "dtype": "float32",
            "reps": reps,
            "cpu_count": os.cpu_count() or 1,
            "backends": list(backends),
        },
        "parallel_refactor": _bench_parallel_refactor(
            dims, tile, reps, par_workers, backends
        ),
        "roi_retrieval": _bench_roi_retrieval(
            roi_dims, roi_tile, roi_region, roi_tolerances
        ),
        "parallel_roi_decode": _bench_parallel_roi_decode(
            roi_dims, roi_tile, roi_region, roi_tolerances, reps,
            par_workers, backends
        ),
    }


SMOKE_KWARGS = dict(
    dims=(24, 24, 24), tile=(12, 12, 12), reps=1, par_workers=2,
    roi_dims=(16, 16, 16), roi_tile=(8, 8, 8),
    roi_region=((0, 8), (0, 8), (4, 12)), roi_tolerances=[1e-1, 1e-2],
)


def _check_correctness(results: dict) -> None:
    """Gates that hold on any machine, smoke or full size."""
    par = results["parallel_refactor"]
    roi = results["roi_retrieval"]
    dec = results["parallel_roi_decode"]
    assert par["parallel_matches_sequential"], \
        "parallel tiled refactor diverged from the sequential streams"
    assert roi["roi_bit_identical_every_step"], \
        "ROI reconstruction diverged from the full-domain slice"
    assert dec["parallel_matches_serial"], \
        "parallel ROI decode diverged from the serial staircase"
    assert roi["final_roi_error"] <= roi["final_roi_error_bound"]
    assert roi["region_fraction_of_domain"] <= 1.0 / 8.0


def _check_floors(results: dict) -> None:
    """The ISSUE 5/7 acceptance floors (full-size runs only)."""
    par = results["parallel_refactor"]
    roi = results["roi_retrieval"]
    dec = results["parallel_roi_decode"]
    assert roi["roi_bytes_fraction"] <= MAX_ROI_BYTES_FRACTION, roi
    if results["config"]["cpu_count"] >= 2:
        # With >= 2 CPUs the best backend (the process pool where the
        # GIL defeats threads) must buy real wall-clock parallelism.
        assert (par["speedup_parallel_refactor"]
                >= MIN_PARALLEL_SPEEDUP), par
        assert (dec["speedup_parallel_roi_decode"]
                >= MIN_PARALLEL_SPEEDUP), dec
    else:
        # No backend can beat wall clock on one core; require the
        # refactor pool not to badly regress the sequential path, and
        # record the decode ratios honestly without failing.
        assert (par["speedup_parallel_refactor"]
                >= MIN_SINGLE_CORE_RATIO), par


def _report(results: dict) -> None:
    par = results["parallel_refactor"]
    roi = results["roi_retrieval"]
    print(f"\n== tiled refactor: {par['num_tiles']} tiles, "
          f"{par['workers']} workers (cpu_count="
          f"{results['config']['cpu_count']}) ==")
    print(f"sequential {par['sequential_ms']:.1f}ms, parallel "
          f"{par['parallel_ms']:.1f}ms "
          f"({par['speedup_parallel_refactor']:.2f}x)")
    print(f"\n== ROI retrieval: region {roi['region']} "
          f"({roi['region_fraction_of_domain']:.1%} of domain, "
          f"{roi['tiles_touched']}/{roi['num_tiles']} tiles) ==")
    print(f"full walk {roi['full_store_bytes']} B "
          f"({roi['full_wall_ms']:.1f}ms), ROI walk "
          f"{roi['roi_store_bytes']} B ({roi['roi_wall_ms']:.1f}ms): "
          f"{roi['roi_bytes_fraction']:.1%} of full-domain bytes")
    dec = results["parallel_roi_decode"]
    ratios = ", ".join(
        f"{key.removeprefix('ratio_vs_serial_')} "
        f"{dec[key]:.2f}x"
        for key in sorted(dec) if key.startswith("ratio_vs_serial_")
    )
    print(f"\n== parallel ROI decode: {dec['tiles_touched']}/"
          f"{dec['num_tiles']} tiles, {dec['workers']} workers ==")
    print(f"serial {dec['serial_ms']:.1f}ms; {ratios}; best "
          f"{dec['parallel_backend']} "
          f"({dec['speedup_parallel_roi_decode']:.2f}x)")


def _full_run() -> dict:
    """Full-size run: record the baseline and enforce every gate."""
    results = run()
    RESULT_PATH.write_text(json.dumps(results, indent=2))
    _report(results)
    _check_correctness(results)
    _check_floors(results)
    return results


def test_tiles_benchmark() -> None:
    """Pytest entry point — also enforces the acceptance floors."""
    _full_run()


def _parse_backends(args: list[str]):
    """``--backend KIND[:N]`` (repeatable) restricts the measured
    parallel backends; default is every kind in ``BACKENDS``."""
    picked = []
    skip = False
    for i, arg in enumerate(args):
        if skip:
            skip = False
            continue
        if arg == "--backend":
            if i + 1 >= len(args):
                raise SystemExit("--backend needs a value, e.g. "
                                 "--backend processes:2")
            picked.append(args[i + 1])
            skip = True
        elif arg.startswith("--backend="):
            picked.append(arg.split("=", 1)[1])
    return tuple(picked) or BACKENDS


def main(argv: list[str] | None = None) -> None:
    args = sys.argv[1:] if argv is None else argv
    backends = _parse_backends(args)
    if "--smoke" in args:
        results = run(**SMOKE_KWARGS, backends=backends)
        _check_correctness(results)
        print(f"bench_tiles smoke ok (tiny sizes, backends "
              f"{list(results['config']['backends'])}, no timing "
              f"floors, nothing written)")
        return
    results = run(backends=backends)
    RESULT_PATH.write_text(json.dumps(results, indent=2))
    _report(results)
    _check_correctness(results)
    _check_floors(results)
    print(f"\nwrote {RESULT_PATH}")


if __name__ == "__main__":
    main()
