"""End-to-end write/read path benchmark: refactor → store → open → reconstruct.

PR 1 and PR 3 measured the kernels (``BENCH_hotpaths.json``); this suite
measures the pipeline those kernels serve, at a production-shaped grain:

* **refactor** — ``Refactorer.refactor`` wall time (decompose + bitplane
  encode + hybrid lossless compression), the write path the word-packed
  Huffman encode engine accelerates;
* **store** — ``store_field`` into a :class:`DirectoryStore` (one file
  per plane-group segment, single manifest flush);
* **open + reconstruct** — ``open_field`` then a near-lossless
  :class:`Reconstructor` pass, the read path.

Writes ``BENCH_refactor.json`` at the repo root. ``benchmarks/run_all.sh``
runs it alongside the other suites; note the >20% regression guard
(``benchmarks/check_regression.py``) only compares same-run *speedup*
ratios, and this suite records absolute wall times and MB/s — those are
machine-dependent, so they are tracked for trajectory, not gated.

Run standalone (writes the JSON):

    PYTHONPATH=src python benchmarks/bench_refactor_store.py

``--smoke`` runs a tiny grid, keeps the round-trip bound assertion,
and writes nothing — the CI mode. Or through pytest (the ``bench``
marker keeps it out of the default test run; ``benchmarks/run_all.sh``
clears the marker filter):

    PYTHONPATH=src python -m pytest benchmarks/bench_refactor_store.py -o addopts= -s
"""

from __future__ import annotations

import json
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.reconstruct import Reconstructor
from repro.core.refactor import Refactorer
from repro.core.store import DirectoryStore, open_field, store_field
from repro.data import generators as gen

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_refactor.json"

DIMS = (96, 96, 96)
TOLERANCE = 1e-6  # near-lossless: the read path touches every group
REPS = 5


def _best_time(fn, reps: int = REPS):
    """Best-of-reps wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_benchmarks(
    dims: tuple[int, ...] = DIMS, reps: int = REPS
) -> dict:
    """Measure the full refactor/store/retrieve path; returns the payload."""
    data = gen.gaussian_random_field(dims, -5.0 / 3.0, seed=13,
                                     dtype=np.float32)
    mb = data.nbytes / 1e6
    refactorer = Refactorer(data.shape)

    t_refactor, field = _best_time(lambda: refactorer.refactor(data, "vel"),
                                   reps)

    tmp = Path(tempfile.mkdtemp(prefix="bench_refactor_"))
    try:
        def do_store():
            # A fresh directory per rep: re-writing over warm files would
            # understate the many-small-files effect the paper measures.
            root = tmp / f"store_{time.monotonic_ns()}"
            store = DirectoryStore(root, file_open_latency_s=0.0)
            store_field(store, field)
            return store

        t_store, store = _best_time(do_store, reps)
        n_segments = len(store.keys())
        stored_bytes = store.total_bytes()

        def do_read():
            lazy = open_field(store, "vel")
            recon = Reconstructor(lazy)
            return recon.reconstruct(tolerance=TOLERANCE, relative=True)

        t_read, result = _best_time(do_read, reps)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    err = float(np.max(np.abs(result.data - data)))
    assert err <= result.error_bound, \
        "round-trip error exceeded the reported bound"

    t_roundtrip = t_refactor + t_store + t_read
    return {
        "benchmark": "refactor_store",
        "generated_unix": time.time(),
        "numpy": np.__version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "config": {
            "dims": list(dims),
            "dtype": "float32",
            "tolerance": TOLERANCE,
            "reps": reps,
        },
        "write_path": {
            "refactor_ms": t_refactor * 1e3,
            "store_ms": t_store * 1e3,
            "refactor_throughput_mbps": mb / t_refactor,
            "num_segments": n_segments,
            "stored_bytes": stored_bytes,
            "compression_ratio": data.nbytes / stored_bytes,
        },
        "read_path": {
            "open_reconstruct_ms": t_read * 1e3,
            "read_throughput_mbps": mb / t_read,
            "fetched_bytes": result.fetched_bytes,
            "max_abs_error": err,
            "error_bound": result.error_bound,
        },
        "roundtrip": {
            "total_ms": t_roundtrip * 1e3,
            "throughput_mbps": mb / t_roundtrip,
        },
    }


def write_results(results: dict, path: Path = RESULT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


# ---------------------------------------------------------------------
# pytest entry point (opt-in via the `bench` marker)
# ---------------------------------------------------------------------
def test_refactor_store_roundtrip():
    """The full pipeline round-trips within its bound and is recorded."""
    results = run_benchmarks()
    write_results(results)
    read = results["read_path"]
    assert read["max_abs_error"] <= read["error_bound"]
    assert results["write_path"]["compression_ratio"] > 1.0


def main(argv: list[str] | None = None) -> None:
    args = sys.argv[1:] if argv is None else argv
    if "--smoke" in args:
        # The round-trip bound assertion inside run_benchmarks still
        # runs; no baseline overwrite at smoke sizes.
        run_benchmarks(dims=(16, 16, 16), reps=1)
        print("bench_refactor_store smoke ok (tiny sizes, "
              "nothing written)")
        return
    results = run_benchmarks()
    path = write_results(results)
    print(f"wrote {path}")
    w, r, rt = (results["write_path"], results["read_path"],
                results["roundtrip"])
    print(
        f"refactor {w['refactor_ms']:.1f} ms "
        f"({w['refactor_throughput_mbps']:.1f} MB/s), "
        f"store {w['store_ms']:.1f} ms ({w['num_segments']} segments, "
        f"CR {w['compression_ratio']:.2f})"
    )
    print(
        f"open+reconstruct {r['open_reconstruct_ms']:.1f} ms "
        f"({r['read_throughput_mbps']:.1f} MB/s)"
    )
    print(
        f"roundtrip {rt['total_ms']:.1f} ms "
        f"({rt['throughput_mbps']:.1f} MB/s)"
    )


if __name__ == "__main__":
    main()
