"""Retrieval planning: which plane groups to fetch for a tolerance.

Given per-level error weights ``w_ℓ`` and the per-level bound as a
function of fetched groups, the planner minimizes fetched bytes subject
to ``Σ_ℓ w_ℓ · bound_ℓ(g_ℓ) ≤ τ``. The default greedy strategy fetches,
at each step, the group with the best error-reduction-per-byte — MDR's
adaptive retrieval. A round-robin strategy (one group per level per
round, coarse to fine) is provided as the ablation baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stream import RefactoredField
from repro.util.validation import check_tolerance


@dataclass
class RetrievalPlan:
    """Per-level group counts plus the resulting guarantees."""

    groups_per_level: list[int]
    error_bound: float
    fetched_bytes: int

    def covers(self, other: "RetrievalPlan") -> bool:
        """True if this plan fetches at least everything *other* does."""
        return all(
            a >= b
            for a, b in zip(self.groups_per_level, other.groups_per_level)
        )


def _composed_bound(field: RefactoredField, groups: list[int]) -> float:
    return sum(
        w * lv.error_bound_for_groups(g)
        for w, lv, g in zip(field.level_weights, field.levels, groups)
    )


def _fetched_bytes(field: RefactoredField, groups: list[int]) -> int:
    return sum(
        lv.bytes_for_groups(g) for lv, g in zip(field.levels, groups)
    )


def _finalize(field: RefactoredField, groups: list[int]) -> RetrievalPlan:
    return RetrievalPlan(
        groups_per_level=groups,
        error_bound=_composed_bound(field, groups),
        fetched_bytes=_fetched_bytes(field, groups),
    )


def plan_greedy(
    field: RefactoredField,
    tolerance: float,
    start: list[int] | None = None,
) -> RetrievalPlan:
    """Greedy error-per-byte retrieval plan (the HP-MDR default).

    ``start`` seeds the plan with already-fetched group counts so
    progressive refinement only pays for the increment. If the tolerance
    is below the near-lossless floor, the full stream is planned (the
    best achievable) — callers can compare ``error_bound`` to what they
    asked for.
    """
    tolerance = check_tolerance(tolerance)
    groups = list(start) if start is not None else [0] * len(field.levels)
    if len(groups) != len(field.levels):
        raise ValueError("start must have one entry per level")
    for g, lv in zip(groups, field.levels):
        if not 0 <= g <= lv.num_groups:
            raise ValueError("start group count out of range")

    per_level = [
        w * lv.error_bound_for_groups(g)
        for w, lv, g in zip(field.level_weights, field.levels, groups)
    ]
    total = sum(per_level)
    while total > tolerance:
        best_idx, best_score, best_new = -1, 0.0, 0.0
        for idx, lv in enumerate(field.levels):
            g = groups[idx]
            if g >= lv.num_groups:
                continue
            new_err = field.level_weights[idx] * lv.error_bound_for_groups(
                g + 1
            )
            gain = per_level[idx] - new_err
            cost = lv.bytes_for_groups(g + 1) - lv.bytes_for_groups(g)
            score = gain / max(cost, 1)
            if best_idx < 0 or score > best_score:
                best_idx, best_score, best_new = idx, score, new_err
        if best_idx < 0:
            break  # everything fetched; tolerance below lossless floor
        groups[best_idx] += 1
        total += best_new - per_level[best_idx]
        per_level[best_idx] = best_new
    return _finalize(field, groups)


def plan_round_robin(
    field: RefactoredField,
    tolerance: float,
    start: list[int] | None = None,
) -> RetrievalPlan:
    """Fetch one group per level per round until the bound is met.

    The simple baseline the greedy planner is measured against in the
    ablation benchmarks.
    """
    tolerance = check_tolerance(tolerance)
    groups = list(start) if start is not None else [0] * len(field.levels)
    if len(groups) != len(field.levels):
        raise ValueError("start must have one entry per level")
    while _composed_bound(field, groups) > tolerance:
        advanced = False
        for idx, lv in enumerate(field.levels):
            if groups[idx] < lv.num_groups:
                groups[idx] += 1
                advanced = True
                if _composed_bound(field, groups) <= tolerance:
                    break
        if not advanced:
            break
    return _finalize(field, groups)


def plan_full(field: RefactoredField) -> RetrievalPlan:
    """Plan fetching every stored group (near-lossless retrieval)."""
    return _finalize(field, field.max_groups())


def plan_for_planes(
    field: RefactoredField, planes_per_level: list[int]
) -> RetrievalPlan:
    """Plan covering at least the requested bitplane count per level."""
    if len(planes_per_level) != len(field.levels):
        raise ValueError("planes_per_level must have one entry per level")
    groups = []
    for lv, want in zip(field.levels, planes_per_level):
        g = 0
        while g < lv.num_groups and lv.planes_in_groups(g) < want:
            g += 1
        groups.append(g)
    return _finalize(field, groups)
