"""Progressive reconstruction: stream + tolerance → field.

The :class:`Reconstructor` is stateful: it remembers which plane groups
it already "fetched", so successive calls at tighter tolerances only pay
for the increment — the defining behaviour of progressive retrieval.
Every result carries a rigorous L∞ ``error_bound`` that the actual error
provably does not exceed (tested property).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitplane.encoding import decode_bitplanes
from repro.core._pool import WorkerPoolMixin
from repro.core.planner import RetrievalPlan, plan_full, plan_greedy
from repro.core.stream import RefactoredField
from repro.decompose import MultilevelTransform


@dataclass
class ReconstructionResult:
    """One progressive retrieval step's output.

    ``cold_bytes`` / ``cache_hit_bytes`` split this step's actual segment
    traffic into backing-store reads versus shared-cache hits. They are
    populated only for store-backed lazy fields (see
    :func:`repro.core.store.open_field`); for in-memory eager fields the
    data never crosses an I/O boundary and both stay 0.
    """

    data: np.ndarray
    error_bound: float
    tolerance: float
    fetched_bytes: int  # cumulative bytes fetched so far
    incremental_bytes: int  # bytes newly fetched by this step
    plan: RetrievalPlan
    cold_bytes: int = 0  # this step's bytes read from the backing store
    cache_hit_bytes: int = 0  # this step's bytes served by a shared cache

    @property
    def bitrate(self) -> float:
        """Cumulative bits per element — the retrieval-efficiency metric."""
        return 8.0 * self.fetched_bytes / self.data.size


class Reconstructor(WorkerPoolMixin):
    """Tolerance-driven, incremental reconstruction of one variable.

    ``num_workers > 1`` decodes the independent per-level streams
    through a thread pool shared across this instance's calls —
    created lazily on first use, reused by every subsequent
    :meth:`reconstruct`/:meth:`progressive` step, and torn down with
    the instance (NumPy releases the GIL on the big
    decompression/transpose kernels). The default is serial.
    """

    def __init__(
        self, field: RefactoredField, num_workers: int = 0
    ) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        self.field = field
        self.num_workers = int(num_workers)
        self.transform = MultilevelTransform(
            field.shape,
            num_levels=field.num_levels,
            mode=field.mode,
            min_size=field.min_size,
        )
        self._fetched = [0] * len(field.levels)
        self._fetched_bytes = 0

    def _pool_size(self) -> int:
        return self.num_workers

    @property
    def fetched_groups(self) -> list[int]:
        """Cumulative per-level group counts fetched so far."""
        return list(self._fetched)

    @property
    def fetched_bytes(self) -> int:
        return self._fetched_bytes

    def reconstruct(
        self,
        tolerance: float | None = None,
        relative: bool = False,
        plan: RetrievalPlan | None = None,
    ) -> ReconstructionResult:
        """Reconstruct to *tolerance* (L∞), fetching only the increment.

        ``relative=True`` interprets the tolerance as a fraction of the
        original value range (the SZ/MGARD convention used in the
        paper's evaluation). ``tolerance=None`` retrieves everything
        (near-lossless). An explicit ``plan`` overrides planning.
        """
        # Store-backed lazy fields track actual segment traffic; snapshot
        # before planning (a pre-metadata index can force fetches there)
        # to report this step's cold vs. cached split.
        io = getattr(self.field, "io_counters", None)
        io_before = io.snapshot() if io is not None else None
        if plan is None:
            if tolerance is None:
                plan = plan_full(self.field)
            else:
                tol = float(tolerance)
                if relative:
                    tol *= self.field.value_range
                plan = plan_greedy(self.field, tol, start=self._fetched)
        # Progressive: never un-fetch; merge with what we already have.
        groups = [
            max(have, want)
            for have, want in zip(self._fetched, plan.groups_per_level)
        ]
        incremental = sum(
            lv.bytes_for_groups(g) - lv.bytes_for_groups(have)
            for lv, g, have in zip(self.field.levels, groups, self._fetched)
        )
        self._fetched = groups
        self._fetched_bytes += incremental

        def decode_level(job: tuple) -> np.ndarray:
            lv, g = job
            return decode_bitplanes(
                lv.to_bitplane_stream(g, np.dtype(np.float64),
                                      self.field.design),
                lv.planes_in_groups(g),
            )

        jobs = list(zip(self.field.levels, groups))
        if self.num_workers > 1 and len(jobs) > 1:
            level_values = list(self._worker_pool().map(decode_level, jobs))
        else:
            level_values = [decode_level(job) for job in jobs]
        coeffs = self.transform.assemble_levels(
            [v.astype(np.float64) for v in level_values]
        )
        data = self.transform.recompose(coeffs).astype(self.field.dtype)
        bound = sum(
            w * lv.error_bound_for_groups(g)
            for w, lv, g in zip(
                self.field.level_weights, self.field.levels, groups
            )
        )
        requested = (
            float("nan") if tolerance is None else float(tolerance)
        )
        if io_before is not None:
            io_step = self.field.io_counters.since(io_before)
            cold_bytes = io_step.cold_bytes
            cache_hit_bytes = io_step.cache_hit_bytes
        else:
            cold_bytes = cache_hit_bytes = 0
        return ReconstructionResult(
            data=data,
            error_bound=bound,
            tolerance=requested,
            fetched_bytes=self._fetched_bytes,
            incremental_bytes=incremental,
            cold_bytes=cold_bytes,
            cache_hit_bytes=cache_hit_bytes,
            plan=RetrievalPlan(
                groups_per_level=groups,
                error_bound=bound,
                fetched_bytes=sum(
                    lv.bytes_for_groups(g)
                    for lv, g in zip(self.field.levels, groups)
                ),
            ),
        )

    def progressive(
        self, tolerances: list[float], relative: bool = False
    ) -> list[ReconstructionResult]:
        """Reconstruct at a decreasing tolerance schedule.

        Returns one result per tolerance; ``incremental_bytes`` of each
        step is the extra data movement that step required — the series
        plotted in Fig. 8(b).
        """
        return [
            self.reconstruct(tolerance=t, relative=relative)
            for t in tolerances
        ]


def reconstruct(
    field: RefactoredField,
    tolerance: float | None = None,
    relative: bool = False,
    num_workers: int = 0,
) -> ReconstructionResult:
    """One-shot convenience wrapper around :class:`Reconstructor`."""
    return Reconstructor(field, num_workers=num_workers).reconstruct(
        tolerance, relative=relative
    )
