"""Progressive reconstruction: stream + tolerance → field.

The :class:`Reconstructor` is stateful: it remembers which plane groups
it already "fetched", so successive calls at tighter tolerances only pay
for the increment — the defining behaviour of progressive retrieval.
Since PR 4 that statefulness extends to *compute*: each level's decoded
integer partials are retained between steps
(:class:`~repro.bitplane.encoding.PartialDecodeState`), so a refinement
step decompresses and injects only the plane groups added since the
previous step instead of re-decoding everything from plane 0 (the
incremental-decode behaviour of HPDR, arXiv:2503.06322). Every result
carries a rigorous L∞ ``error_bound`` that the actual error provably
does not exceed (tested property).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitplane.encoding import (
    BitplaneStream,
    PartialDecodeState,
    apply_planes,
    begin_decode_state,
    decode_bitplanes,
    finalize_decode,
)
from repro.core._pool import WorkerPoolMixin
from repro.core.backends import parse_backend_spec, task_name
from repro.core.errors import ComputeError, StoreError
from repro.core.planner import RetrievalPlan, plan_full, plan_greedy
from repro.core.stream import RefactoredField
from repro.decompose import MultilevelTransform
from repro.util.validation import check_tolerance
from repro.lossless.hybrid import CompressedGroup, decompress_groups


@dataclass
class ReconstructionResult:
    """One progressive retrieval step's output.

    ``tolerance`` is always the *absolute* L∞ tolerance the step
    resolved to (NaN for near-lossless ``tolerance=None`` retrieval);
    when the step was requested with ``relative=True`` the original
    fraction is kept in ``relative_tolerance``, so
    ``error_bound <= tolerance`` is a meaningful check either way.

    ``cold_bytes`` / ``cache_hit_bytes`` split this step's actual segment
    traffic into backing-store reads versus shared-cache hits. They are
    populated only for store-backed lazy fields (see
    :func:`repro.core.store.open_field`); for in-memory eager fields the
    data never crosses an I/O boundary and both stay 0.

    ``decoded_groups`` / ``decoded_planes`` count the plane groups and
    bitplanes this step actually decompressed and injected — on the
    incremental engine a refinement step reports only the increment.

    ``degraded`` marks a step answered from the session's last
    *committed* refinement because the storage tier faulted and the
    caller asked for ``on_fault="degrade"``; ``failed_groups`` then
    records the per-level group counts the aborted plan wanted, and
    ``error_bound``/``plan`` describe what was actually returned. A
    follow-up call retries exactly the missing increment (session
    state never committed the failed step).
    """

    data: np.ndarray
    error_bound: float
    tolerance: float
    fetched_bytes: int  # cumulative bytes fetched so far
    incremental_bytes: int  # bytes newly fetched by this step
    plan: RetrievalPlan
    cold_bytes: int = 0  # this step's bytes read from the backing store
    cache_hit_bytes: int = 0  # this step's bytes served by a shared cache
    relative_tolerance: float | None = None  # requested fraction, if any
    decoded_groups: int = 0  # plane groups decompressed by this step
    decoded_planes: int = 0  # bitplanes injected by this step
    degraded: bool = False  # answered from the last committed refinement
    failed_groups: list[int] | None = None  # aborted plan's group counts

    @property
    def bitrate(self) -> float:
        """Cumulative bits per element — the retrieval-efficiency metric."""
        return 8.0 * self.fetched_bytes / self.data.size


@dataclass
class StepPlan:
    """One progressive step's resolved plan, before any decode work.

    Produced by :meth:`Reconstructor.plan_step` from pure metadata
    (tolerance resolution + planner output merged with the session's
    committed fetch progress); consumed by
    :meth:`Reconstructor.fetch_step` (which resolves exactly the
    segments the step needs, in the sequential path's access order) and
    :meth:`Reconstructor.decode_step` (which runs the decode pass and
    commits). Splitting the phases is what lets the pipelined runtime
    (:mod:`repro.pipeline.retrieval`) overlap one tile's fetch with
    another's decode while staying bit-identical to
    :meth:`Reconstructor.reconstruct`, which is now literally
    ``plan_step`` + ``decode_step``.

    ``io_before`` snapshots the field's I/O counters at plan time, so a
    step whose fetch stage ran ahead on another thread still reports
    the whole step's cold/cached traffic in its result.
    """

    tolerance: float | None  # resolved absolute tolerance (None = all)
    relative_tolerance: float | None  # requested fraction, if any
    groups: list[int]  # per-level targets, merged with fetch progress
    incremental_bytes: int  # payload bytes the step newly requires
    io_before: object | None = None  # IOCounters snapshot at plan time


@dataclass
class DecodeCounters:
    """Cumulative decode-work accounting of one :class:`Reconstructor`.

    The instrumentation behind the incremental-decode guarantee: tests
    and benchmarks assert that a refinement step's deltas cover only the
    newly planned plane groups.
    """

    groups_decoded: int = 0
    planes_decoded: int = 0
    level_decodes: int = 0  # level decode jobs that did any work
    level_reuses: int = 0  # levels served verbatim from cached values

    def snapshot(self) -> "DecodeCounters":
        return DecodeCounters(
            self.groups_decoded, self.planes_decoded,
            self.level_decodes, self.level_reuses,
        )

    def since(self, earlier: "DecodeCounters") -> "DecodeCounters":
        """Counter deltas accumulated after *earlier* was snapshotted."""
        return DecodeCounters(
            self.groups_decoded - earlier.groups_decoded,
            self.planes_decoded - earlier.planes_decoded,
            self.level_decodes - earlier.level_decodes,
            self.level_reuses - earlier.level_reuses,
        )


def _level_decode_meta(lv) -> dict:
    """Stream metadata a worker needs to rebuild decode state/streams.

    Mirrors the keyword set of
    :func:`~repro.bitplane.encoding.begin_decode_state` (minus
    ``dtype``) and :class:`~repro.bitplane.encoding.BitplaneStream`
    (minus ``dtype``/``design``/``planes``), so it splats into either.
    """
    return {
        "num_elements": lv.num_elements,
        "num_bitplanes": lv.num_bitplanes,
        "exponent": lv.exponent,
        "max_abs": lv.max_abs,
        "layout": lv.layout,
        "warp_size": lv.warp_size,
        "signed_encoding": lv.signed_encoding,
    }


def _task_apply_level_increment(state, meta, pstate, blobs):
    """Process-backend task: inject shipped plane groups into *pstate*.

    The worker half of the incremental engine's split: the parent
    fetched the serialized groups (so I/O accounting, caching, and
    fault policy stayed parent-side) and this runs exactly the compute
    the serial path runs — decompress, ``apply_planes`` at the state's
    own cursor, finalize. Returns ``(values, advanced_state, planes)``
    for the parent to commit.
    """
    groups = [CompressedGroup.from_bytes(blob) for blob in blobs]
    planes = decompress_groups(groups)
    if pstate is None:
        pstate = begin_decode_state(dtype=np.dtype(np.float64), **meta)
    pstate = apply_planes(pstate, planes, pstate.planes_applied)
    return finalize_decode(pstate), pstate, len(planes)


def _task_decode_level_full(state, meta, design, blobs, num_planes):
    """Process-backend task: full re-decode of one level's groups."""
    groups = [CompressedGroup.from_bytes(blob) for blob in blobs]
    stream = BitplaneStream(
        planes=decompress_groups(groups),
        dtype=np.dtype(np.float64),
        design=design,
        **meta,
    )
    return decode_bitplanes(stream, num_planes)


class Reconstructor(WorkerPoolMixin):
    """Tolerance-driven, incremental reconstruction of one variable.

    ``incremental=True`` (the default) retains each level's partial
    integer coefficients between steps and decodes only newly planned
    plane groups; ``incremental=False`` keeps the full re-decode of
    every fetched group on every step — the pre-incremental reference
    path, retained for equivalence tests and as the benchmark baseline
    (both paths are bit-identical at every step of a staircase).

    ``num_workers > 1`` decodes the independent per-level streams
    through a thread pool shared across this instance's calls —
    created lazily on first use, reused by every subsequent
    :meth:`reconstruct`/:meth:`progressive` step, and torn down with
    the instance (NumPy releases the GIL on the big
    decompression/transpose kernels). The default is serial.

    ``transform`` lets a caller managing many same-geometry fields
    (the tiled engine: hundreds of identical-shape tiles) share one
    :class:`~repro.decompose.MultilevelTransform` across their
    reconstructors instead of rebuilding the grid geometry per field;
    it must match the field's shape/levels/mode. The transform is
    read-only during reconstruction, so sharing it is safe even when
    tiles decode concurrently.
    """

    def __init__(
        self,
        field: RefactoredField,
        num_workers: int = 0,
        incremental: bool = True,
        transform: MultilevelTransform | None = None,
        backend: str | None = None,
    ) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        self.field = field
        self.num_workers = int(num_workers)
        if backend is not None:
            parse_backend_spec(backend)  # validates, raises on junk
        self.backend = backend
        self.incremental = bool(incremental)
        if transform is None:
            transform = MultilevelTransform(
                field.shape,
                num_levels=field.num_levels,
                mode=field.mode,
                min_size=field.min_size,
            )
        elif (
            transform.shape != tuple(field.shape)
            or transform.num_levels != field.num_levels
            or transform.mode != field.mode
            or transform.geometry.min_size != field.min_size
        ):
            raise ValueError(
                f"shared transform geometry (shape={transform.shape}, "
                f"num_levels={transform.num_levels}, "
                f"mode={transform.mode!r}, "
                f"min_size={transform.geometry.min_size}) does not match "
                f"the field (shape={tuple(field.shape)}, "
                f"num_levels={field.num_levels}, mode={field.mode!r}, "
                f"min_size={field.min_size})"
            )
        self.transform = transform
        self._fetched = [0] * len(field.levels)
        self._fetched_bytes = 0
        # Per-level retained decode state: integer partials + the last
        # finalized float values. Committed only after a whole step
        # succeeds, so a failed fetch/decode leaves the session able to
        # retry the same increment.
        self._states: list[PartialDecodeState | None] = (
            [None] * len(field.levels)
        )
        self._values: list[np.ndarray | None] = [None] * len(field.levels)
        self.decode_counters = DecodeCounters()

    def _pool_size(self) -> int:
        return self.num_workers

    @property
    def fetched_groups(self) -> list[int]:
        """Cumulative per-level group counts fetched so far."""
        return list(self._fetched)

    @property
    def fetched_bytes(self) -> int:
        return self._fetched_bytes

    def decode_state_bytes(self) -> int:
        """Resident bytes of retained per-level decode state.

        Counts the integer partials (magnitude/negabinary words + sign
        bits) and the cached finalized level values the incremental
        engine keeps between steps; 0 until the first step (and always
        for ``incremental=False`` sessions).
        """
        total = 0
        for state in self._states:
            if state is not None:
                total += state.nbytes
        for values in self._values:
            if values is not None:
                total += int(values.nbytes)
        return total

    def _validate_plan(self, plan: RetrievalPlan) -> None:
        """Reject malformed explicit plans at the API boundary.

        A wrong-length ``groups_per_level`` previously zip-truncated
        silently (too long) or died deep in ``assemble_levels`` (too
        short); out-of-range group counts failed inside the codec.
        """
        groups = plan.groups_per_level
        levels = self.field.levels
        if len(groups) != len(levels):
            raise ValueError(
                f"plan has {len(groups)} per-level group counts but the "
                f"field has {len(levels)} levels"
            )
        for idx, (g, lv) in enumerate(zip(groups, levels)):
            if not 0 <= int(g) <= lv.num_groups:
                raise ValueError(
                    f"plan group count {g} for level {idx} is outside "
                    f"[0, {lv.num_groups}]"
                )

    def reconstruct(
        self,
        tolerance: float | None = None,
        relative: bool = False,
        plan: RetrievalPlan | None = None,
        on_fault: str = "raise",
    ) -> ReconstructionResult:
        """Reconstruct to *tolerance* (L∞), fetching only the increment.

        ``relative=True`` interprets the tolerance as a fraction of the
        original value range (the SZ/MGARD convention used in the
        paper's evaluation); on a constant field (``value_range == 0``)
        any fraction resolves to 0, so the call short-circuits to the
        documented near-lossless path instead of silently demanding an
        unreachable bound. ``tolerance=None`` retrieves everything
        (near-lossless). An explicit ``plan`` overrides planning. Session
        state (fetch progress and retained decode partials) commits only
        after the whole step decodes successfully, so a failed lazy-store
        fetch can simply be retried.

        ``on_fault`` controls what a storage-tier failure
        (:class:`~repro.core.errors.StoreError` — a missing segment,
        exhausted retries, persistent corruption) does: ``"raise"``
        (default) propagates it; ``"degrade"`` falls back to the
        session's last committed refinement — the result carries
        ``degraded=True``, ``failed_groups`` (the aborted plan), and
        the honest (looser) ``error_bound`` of what was returned.
        Because the failed step never committed, simply calling again
        resumes exactly where the fault hit.
        """
        if on_fault not in ("raise", "degrade"):
            raise ValueError(
                f"on_fault must be 'raise' or 'degrade', got {on_fault!r}"
            )
        step = self.plan_step(tolerance, relative=relative, plan=plan)
        return self.decode_step(step, on_fault=on_fault)

    def plan_step(
        self,
        tolerance: float | None = None,
        relative: bool = False,
        plan: RetrievalPlan | None = None,
    ) -> StepPlan:
        """Resolve one step's tolerance and per-level group targets.

        Pure metadata: tolerance resolution, planning, and the merge
        with the session's committed fetch progress touch no segment
        payloads (lazy fields plan from :class:`~repro.core.stream.
        SegmentRef` sizes alone). The returned :class:`StepPlan` feeds
        :meth:`fetch_step`/:meth:`decode_step`; calling
        :meth:`decode_step` directly is exactly :meth:`reconstruct`.
        """
        # Store-backed lazy fields track actual segment traffic; snapshot
        # before planning (a pre-metadata index can force fetches there)
        # to report this step's cold vs. cached split.
        io = getattr(self.field, "io_counters", None)
        io_before = io.snapshot() if io is not None else None
        requested = check_tolerance(tolerance, allow_none=True)
        relative_requested = requested if relative else None
        resolved = requested
        if relative and requested is not None:
            resolved = requested * self.field.value_range
        if plan is not None:
            self._validate_plan(plan)
        elif requested is None:
            plan = plan_full(self.field)
        elif relative and self.field.value_range == 0.0:
            # Constant field: value_range is 0, so every relative
            # fraction resolves to absolute 0 — fetch everything
            # deliberately (the documented near-lossless path) rather
            # than silently asking the planner for an unreachable bound.
            plan = plan_full(self.field)
        else:
            plan = plan_greedy(self.field, resolved, start=self._fetched)
        # Progressive: never un-fetch; merge with what we already have.
        groups = [
            max(have, int(want))
            for have, want in zip(self._fetched, plan.groups_per_level)
        ]
        incremental = sum(
            lv.bytes_for_groups(g) - lv.bytes_for_groups(have)
            for lv, g, have in zip(self.field.levels, groups, self._fetched)
        )
        return StepPlan(
            tolerance=resolved,
            relative_tolerance=relative_requested,
            groups=groups,
            incremental_bytes=incremental,
            io_before=io_before,
        )

    def fetch_level_groups(self, idx: int, want: int) -> None:
        """Resolve level *idx*'s segments up to *want* groups.

        Touches the (possibly lazy) group sequence in ascending group
        order over ``[committed, want)`` — exactly the order and key
        set the sequential decode pass resolves, and stopping at the
        first :class:`~repro.core.errors.StoreError` exactly where it
        would. Successful fetches memoize on the field, so the decode
        stage later finds them resident without touching the store;
        a partial fetch before a fault stays memoized, matching the
        sequential path's partial progress. Eager in-memory fields
        no-op (plain list indexing).
        """
        groups = self.field.levels[idx].groups
        for g in range(self._fetched[idx], want):
            groups[g]  # memoizing touch; lazy sequences fetch here

    def fetch_step(self, step: StepPlan) -> None:
        """Fetch stage of one step: resolve every segment it needs.

        Walks levels ascending, groups ascending within each — the
        sequential decode order — so a seeded fault schedule
        (:class:`~repro.core.faults.FaultInjectingStore` keys its
        deterministic draws on per-key access counts) replays
        identically whether fetch runs inline or on a pipeline's fetch
        stage. Raises :class:`~repro.core.errors.StoreError` at the
        first failing segment; the caller hands that error to
        :meth:`decode_step` (as ``fetch_error``) rather than retrying,
        which would shift access counts.
        """
        for idx, want in enumerate(step.groups):
            self.fetch_level_groups(idx, want)

    def step_segment_keys(self, step: StepPlan) -> list[str]:
        """Store keys :meth:`fetch_step` would resolve, in fetch order.

        Empty for eager fields (no store behind them). The service
        layer uses this to cancel queued speculative prefetches the
        pipeline window is about to fetch inline anyway.
        """
        keys: list[str] = []
        for idx, want in enumerate(step.groups):
            refs = getattr(self.field.levels[idx], "refs", None)
            if refs is None:
                continue
            for g in range(self._fetched[idx], want):
                keys.append(refs[g].key)
        return keys

    def decode_step(
        self,
        step: StepPlan,
        on_fault: str = "raise",
        fetch_error: BaseException | None = None,
        level_runner=None,
    ) -> ReconstructionResult:
        """Decode/recompose/commit one planned step.

        The decode phase of :meth:`reconstruct`: runs the per-level
        decode pass over ``step.groups`` (any segment not already
        memoized by :meth:`fetch_step` is fetched here, exactly as the
        sequential path does), assembles and recomposes, and commits
        session state. ``fetch_error`` is a
        :class:`~repro.core.errors.StoreError` captured by a separated
        fetch stage: it is re-raised at decode time so ``on_fault``
        handles it exactly like an inline fetch fault — ``"degrade"``
        falls back to the committed refinement without touching the
        store. ``level_runner(jobs, decode_level)``, when given,
        replaces the backend fan-out for the first decode attempt (the
        pipelined level window); the degrade fallback always runs the
        plain local pass, which is store-free by construction.
        """
        if on_fault not in ("raise", "degrade"):
            raise ValueError(
                f"on_fault must be 'raise' or 'degrade', got {on_fault!r}"
            )
        resolved = step.tolerance
        relative_requested = step.relative_tolerance
        io_before = step.io_before
        groups = list(step.groups)
        incremental = step.incremental_bytes

        decode_level = (
            self._decode_level_incremental if self.incremental
            else self._decode_level_full
        )
        spec = self._backend_spec()
        use_processes = spec.kind == "processes" and spec.workers > 1

        def run_step(jobs: list[tuple], runner=None) -> list[tuple]:
            if runner is not None:
                return runner(jobs, decode_level)
            if use_processes and len(jobs) > 1:
                return self._decode_levels_processes(jobs)
            return self.map_jobs(decode_level, jobs)

        jobs = [
            (idx, lv, want)
            for idx, (lv, want) in enumerate(zip(self.field.levels, groups))
        ]
        degraded = False
        failed_groups: list[int] | None = None
        try:
            if fetch_error is not None:
                raise fetch_error
            outcomes = run_step(jobs, level_runner)
        except (StoreError, ComputeError):
            if on_fault != "degrade":
                raise
            # Fall back to the last committed refinement: every group in
            # [0, have) is already memoized in the (lazy) field and every
            # committed level value is cached, so this decode pass
            # touches no store and cannot fault again. ComputeError
            # (a quarantined poison task, a deadline kill the backend
            # could not heal) degrades the same way: level commits are
            # parent-side, so recovery state is intact.
            degraded = True
            failed_groups = groups
            groups = list(self._fetched)
            incremental = 0
            jobs = [
                (idx, lv, want)
                for idx, (lv, want) in enumerate(
                    zip(self.field.levels, groups)
                )
            ]
            outcomes = run_step(jobs)

        level_values = [values for _, values, _, _ in outcomes]
        coeffs = self.transform.assemble_levels(level_values)
        # assemble_levels only reads the level arrays and returns a fresh
        # owned float64 buffer, so the cached values survive the step and
        # the recompose can run in place on the assembly (and the result
        # is ours to hand out without a defensive copy).
        data = self.transform.recompose(coeffs, overwrite=True).astype(
            self.field.dtype, copy=False
        )
        bound = sum(
            w * lv.error_bound_for_groups(g)
            for w, lv, g in zip(
                self.field.level_weights, self.field.levels, groups
            )
        )
        # Commit session state only now that every level decoded: a
        # failed fetch/decode above leaves fetch progress and retained
        # partials exactly as before the call (tested property).
        step_groups = step_planes = 0
        for idx, values, state, decoded in outcomes:
            if state is not None:
                self._states[idx] = state
                self._values[idx] = values
            d_groups, d_planes = decoded
            step_groups += d_groups
            step_planes += d_planes
            if d_groups or d_planes:
                self.decode_counters.level_decodes += 1
            else:
                self.decode_counters.level_reuses += 1
        self.decode_counters.groups_decoded += step_groups
        self.decode_counters.planes_decoded += step_planes
        self._fetched = groups
        self._fetched_bytes += incremental

        if io_before is not None:
            io_step = self.field.io_counters.since(io_before)
            cold_bytes = io_step.cold_bytes
            cache_hit_bytes = io_step.cache_hit_bytes
        else:
            cold_bytes = cache_hit_bytes = 0
        return ReconstructionResult(
            data=data,
            error_bound=bound,
            tolerance=float("nan") if resolved is None else float(resolved),
            fetched_bytes=self._fetched_bytes,
            incremental_bytes=incremental,
            cold_bytes=cold_bytes,
            cache_hit_bytes=cache_hit_bytes,
            relative_tolerance=relative_requested,
            decoded_groups=step_groups,
            decoded_planes=step_planes,
            degraded=degraded,
            failed_groups=failed_groups,
            plan=RetrievalPlan(
                groups_per_level=groups,
                error_bound=bound,
                fetched_bytes=sum(
                    lv.bytes_for_groups(g)
                    for lv, g in zip(self.field.levels, groups)
                ),
            ),
        )

    # -- per-level decode engines -----------------------------------------
    def _decode_level_incremental(
        self, job: tuple
    ) -> tuple[int, np.ndarray, PartialDecodeState | None, tuple[int, int]]:
        """Decode only groups ``[have, want)`` into the retained state.

        Reads (but never mutates) the session's committed state, so a
        failure anywhere in the step leaves it retryable; returns the
        advanced state for the caller to commit.
        """
        idx, lv, want = job
        state = self._states[idx]
        if state is None:
            state = lv.empty_decode_state(np.dtype(np.float64))
        have = self._fetched[idx]
        if want > have:
            planes = lv.decompress_group_range(have, want)
            state = apply_planes(state, planes, state.planes_applied)
            return idx, finalize_decode(state), state, (
                want - have, len(planes)
            )
        values = self._values[idx]
        if values is None:  # first step and this level planned 0 groups
            values = finalize_decode(state)
        return idx, values, state, (0, 0)

    def _decode_level_full(
        self, job: tuple
    ) -> tuple[int, np.ndarray, None, tuple[int, int]]:
        """Pre-incremental reference: re-decode every fetched group."""
        idx, lv, want = job
        values = decode_bitplanes(
            lv.to_bitplane_stream(
                want, np.dtype(np.float64), self.field.design
            ),
            lv.planes_in_groups(want),
        )
        return idx, values, None, (want, lv.planes_in_groups(want))

    def _decode_levels_processes(self, jobs: list[tuple]) -> list[tuple]:
        """Per-level decodes on worker processes; fetch stays parent-side.

        The parent materializes each level's serialized plane groups
        through the field's (possibly lazy) group sequence — so
        ``IOCounters``, the shared segment cache, retry policy, and
        :class:`~repro.core.errors.StoreError` propagation are exactly
        the serial path's — and ships only compute (decompress, plane
        injection, finalize) to the workers. ``PartialDecodeState``
        travels out and back; commits stay parent-side, preserving the
        retry-after-failure contract. Levels whose step needs no new
        groups are served from cache locally without a round-trip.
        """
        backend = self._process_backend()
        calls: list[tuple] = []
        placement: list[tuple[int, int, tuple[int, int]]] = []
        outcomes: list[tuple | None] = [None] * len(jobs)
        for j, (idx, lv, want) in enumerate(jobs):
            if self.incremental:
                have = self._fetched[idx]
                if want <= have:
                    outcomes[j] = self._decode_level_incremental(
                        (idx, lv, want)
                    )
                    continue
                blobs = [lv.groups[g].to_bytes() for g in range(have, want)]
                calls.append((
                    task_name(_task_apply_level_increment),
                    (_level_decode_meta(lv), self._states[idx], blobs),
                    None,
                ))
                placement.append((j, idx, (want - have, -1)))
            else:
                blobs = [lv.groups[g].to_bytes() for g in range(want)]
                num_planes = lv.planes_in_groups(want)
                calls.append((
                    task_name(_task_decode_level_full),
                    (
                        _level_decode_meta(lv), self.field.design,
                        blobs, num_planes,
                    ),
                    None,
                ))
                placement.append((j, idx, (want, num_planes)))
        if calls:
            results = backend.map_calls(calls)
            for (j, idx, decoded), result in zip(placement, results):
                if self.incremental:
                    values, state, num_planes = result
                    outcomes[j] = (
                        idx, values, state, (decoded[0], num_planes)
                    )
                else:
                    outcomes[j] = (idx, result, None, decoded)
        return outcomes

    def progressive(
        self,
        tolerances: list[float],
        relative: bool = False,
        on_fault: str = "raise",
    ) -> list[ReconstructionResult]:
        """Reconstruct at a decreasing tolerance schedule.

        Returns one result per tolerance; ``incremental_bytes`` of each
        step is the extra data movement that step required — the series
        plotted in Fig. 8(b). ``on_fault="degrade"`` lets a faulting
        staircase keep walking: failed steps return the last committed
        refinement (marked ``degraded``) and later steps retry the
        missing increments.
        """
        return [
            self.reconstruct(tolerance=t, relative=relative,
                             on_fault=on_fault)
            for t in tolerances
        ]


def reconstruct(
    field: RefactoredField,
    tolerance: float | None = None,
    relative: bool = False,
    num_workers: int = 0,
    backend: str | None = None,
) -> ReconstructionResult:
    """One-shot convenience wrapper around :class:`Reconstructor`."""
    return Reconstructor(
        field, num_workers=num_workers, backend=backend
    ).reconstruct(tolerance, relative=relative)
