"""Sub-domain (tile) processing for fields larger than device memory.

Section 6.1's premise: large datasets are split into sub-domains that
stream through the device and parallelize across devices (Fig. 4). This
module is that scale path — split an n-D field into tiles, refactor each
independently (optionally fanning tiles out across a worker pool), and
reconstruct/stitch with a global tolerance. Tiles partition the domain,
so the global L∞ guarantee is simply the max of the per-tile guarantees.

Three behaviours make tiling the production path rather than a toy:

* **Parallel tile fan-out** — :class:`TiledRefactorer` /
  :class:`TiledReconstructor` accept ``num_workers`` and run per-tile
  work through the shared :class:`~repro.core._pool.WorkerPoolMixin`
  thread pool (the NumPy kernels release the GIL, so tiles overlap
  across cores). Per-shape :class:`~repro.core.refactor.Refactorer`
  instances and per-geometry transforms are still shared — boundary
  tiles reuse the interior tiles' geometry.
* **Lazy everything** — :class:`TiledReconstructor` builds a tile's
  :class:`~repro.core.reconstruct.Reconstructor` (and through it the
  retained incremental decode state) only when a reconstruction first
  touches that tile, so opening a 1000-tile field costs nothing until
  tiles are used. :class:`LazyTiledField` extends the same economics to
  the store: per-tile sub-fields resolve through
  :func:`~repro.core.store.open_tiled_field` on first touch.
* **Region-of-interest retrieval** — ``reconstruct(region=...)``
  decodes only the tiles overlapping the requested hyperslab; bytes
  fetched and planes decoded scale with the region, not the domain, and
  each touched tile's :class:`~repro.bitplane.encoding.PartialDecodeState`
  is reused across staircase steps exactly as in the untiled engine.
"""

from __future__ import annotations

import functools
import math
import threading
import uuid
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.core._pool import WorkerPoolMixin
from repro.core.backends import (
    attach_shared_block,
    parse_backend_spec,
    share_array,
    task_name,
    worker_shared,
)
from repro.core.errors import ComputeError, StoreError, WorkerStateError
from repro.core.reconstruct import DecodeCounters, Reconstructor
from repro.core.refactor import RefactorConfig, Refactorer
from repro.core.stream import IOCounters, RefactoredField
from repro.decompose import MultilevelTransform
from repro.util.validation import check_dtype_floating, check_tolerance


@dataclass(frozen=True)
class TileSpec:
    """Placement of one tile within the global domain."""

    index: tuple[int, ...]
    offset: tuple[int, ...]
    shape: tuple[int, ...]

    def slices(self) -> tuple[slice, ...]:
        return tuple(
            slice(o, o + s) for o, s in zip(self.offset, self.shape)
        )

    def intersection(
        self, region: tuple[slice, ...]
    ) -> tuple[tuple[slice, ...], tuple[slice, ...]] | None:
        """Overlap of this tile with *region* (normalized global slices).

        Returns ``(tile_local, region_local)`` slice tuples addressing
        the overlap within the tile's block and within the region's
        output array respectively, or ``None`` when they are disjoint.
        """
        tile_local = []
        region_local = []
        for o, s, r in zip(self.offset, self.shape, region):
            lo = max(o, r.start)
            hi = min(o + s, r.stop)
            if lo >= hi:
                return None
            tile_local.append(slice(lo - o, hi - o))
            region_local.append(slice(lo - r.start, hi - r.start))
        return tuple(tile_local), tuple(region_local)


def plan_tiles(
    shape: tuple[int, ...], tile_shape: tuple[int, ...]
) -> list[TileSpec]:
    """Cover *shape* with tiles of at most *tile_shape* extents."""
    shape = tuple(int(s) for s in shape)
    tile_shape = tuple(int(t) for t in tile_shape)
    if len(tile_shape) != len(shape):
        raise ValueError("tile_shape rank must match data rank")
    if any(t < 1 for t in tile_shape):
        raise ValueError("tile extents must be >= 1")
    counts = [-(-s // t) for s, t in zip(shape, tile_shape)]
    tiles = []
    for index in product(*(range(c) for c in counts)):
        offset = tuple(i * t for i, t in zip(index, tile_shape))
        extent = tuple(
            min(t, s - o) for t, s, o in zip(tile_shape, shape, offset)
        )
        tiles.append(TileSpec(index=index, offset=offset, shape=extent))
    return tiles


def normalize_region(
    region: Sequence, shape: tuple[int, ...]
) -> tuple[slice, ...]:
    """Validate a region-of-interest request against a domain *shape*.

    *region* must have one entry per axis; each entry is a ``slice``
    (with unit step), a ``(start, stop)`` pair, or ``None`` for the full
    axis. Bounds must satisfy ``0 <= start <= stop <= extent`` — regions
    are hyperslabs in global coordinates, not fancy indexing.
    """
    if len(region) != len(shape):
        raise ValueError(
            f"region rank {len(region)} must match data rank {len(shape)}"
        )
    out = []
    for axis, (entry, extent) in enumerate(zip(region, shape)):
        if entry is None:
            out.append(slice(0, extent))
            continue
        if isinstance(entry, slice):
            if entry.step not in (None, 1):
                raise ValueError(
                    f"region axis {axis}: only unit-step slices supported"
                )
            start = 0 if entry.start is None else int(entry.start)
            stop = extent if entry.stop is None else int(entry.stop)
        else:
            start, stop = (int(v) for v in entry)
        if not 0 <= start <= stop <= extent:
            raise ValueError(
                f"region axis {axis}: [{start}, {stop}) outside "
                f"[0, {extent}]"
            )
        out.append(slice(start, stop))
    return tuple(out)


@dataclass
class TiledField:
    """A refactored field stored as independent sub-domain streams."""

    shape: tuple[int, ...]
    dtype: np.dtype
    tiles: list[TileSpec]
    fields: Sequence[RefactoredField]
    value_range: float
    name: str = "var"

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    def total_bytes(self) -> int:
        return sum(f.total_bytes() for f in self.fields)

    def tiles_overlapping(
        self, region: tuple[slice, ...]
    ) -> list[tuple[int, TileSpec, tuple[tuple[slice, ...],
                                         tuple[slice, ...]]]]:
        """``(tile_position, spec, (tile_local, region_local))`` per
        tile intersecting *region* (normalized slices)."""
        hits = []
        for i, tile in enumerate(self.tiles):
            overlap = tile.intersection(region)
            if overlap is not None:
                hits.append((i, tile, overlap))
        return hits


class _LazyTileFields(Sequence):
    """Per-tile sub-fields resolved from a store on first touch.

    Opened fields are memoized per instance, so a region-of-interest
    session touching the same tiles across staircase steps opens each
    tile (and fetches its index segment) exactly once; untouched tiles
    cost nothing.
    """

    def __init__(
        self,
        names: list[str],
        opener: Callable[[str], RefactoredField],
    ) -> None:
        self._names = names
        self._opener = opener
        self._fields: dict[int, RefactoredField] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._names)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        with self._lock:
            field = self._fields.get(index)
        if field is None:
            # Open outside the lock: the opener does store I/O, and
            # concurrent first touches of *different* tiles (the
            # parallel reconstruct fan-out) must overlap. A racing
            # duplicate open of the same tile is possible but harmless —
            # setdefault keeps exactly one winner.
            field = self._opener(self._names[index])
            with self._lock:
                field = self._fields.setdefault(index, field)
        return field

    @property
    def opened_indices(self) -> list[int]:
        """Tile positions opened so far — testing/telemetry hook."""
        with self._lock:
            return sorted(self._fields)


class LazyTiledField(TiledField):
    """A :class:`TiledField` whose per-tile sub-fields open on demand.

    Built by :func:`~repro.core.store.open_tiled_field` from the tiled
    index record alone: construction fetches nothing beyond that index,
    and touching ``fields[i]`` opens tile *i* lazily (its own index
    segment plus, later, exactly the plane groups a decode needs).
    ``tile_bytes`` — the per-tile stored sizes recorded at write time —
    lets :meth:`total_bytes` answer without opening a single tile.
    """

    def __init__(
        self,
        *,
        shape: tuple[int, ...],
        dtype: np.dtype,
        tiles: list[TileSpec],
        tile_field_names: list[str],
        tile_bytes: list[int],
        value_range: float,
        name: str,
        opener: Callable[[str], RefactoredField],
    ) -> None:
        if not (len(tiles) == len(tile_field_names) == len(tile_bytes)):
            raise ValueError(
                "tiles, tile_field_names, and tile_bytes must align"
            )
        super().__init__(
            shape=tuple(shape),
            dtype=np.dtype(dtype),
            tiles=tiles,
            fields=_LazyTileFields(tile_field_names, opener),
            value_range=float(value_range),
            name=name,
        )
        self.tile_field_names = list(tile_field_names)
        self.tile_bytes = [int(b) for b in tile_bytes]

    def total_bytes(self) -> int:
        """Stored payload size of every tile — served from the index."""
        return sum(self.tile_bytes)

    @property
    def opened_tiles(self) -> list[int]:
        """Tile positions whose sub-fields have been opened so far."""
        return self.fields.opened_indices

    def io_counters(self) -> IOCounters:
        """Aggregate segment traffic of every opened tile sub-field."""
        return IOCounters.total([
            self.fields[i].io_counters
            for i in self.opened_tiles
            if getattr(self.fields[i], "io_counters", None) is not None
        ])


def _task_refactor_tile(
    state, token, shm_name, shape, dtype_str, offset, extent, tile_name
):
    """Process-backend task: refactor one tile out of shared memory.

    The tile block is copied out of the parent's shared-memory segment
    (never pickled through the pipe); the
    :class:`~repro.core.refactor.RefactorConfig` arrived once per worker
    under *token*, and the per-shape :class:`Refactorer` built from it
    stays warm in the worker across calls — boundary tiles of the same
    shape reuse it exactly as the serial engine's per-shape cache does.
    Returns the serialized field, whose byte layout is the cross-backend
    identity contract.
    """
    config = worker_shared(state, token)
    cache = state.setdefault(("tile-refactorers", token), {})
    key = tuple(int(e) for e in extent)
    refactorer = cache.get(key)
    if refactorer is None:
        refactorer = Refactorer(key, config)
        refactorer.transform.level_indices()
        cache[key] = refactorer
    block = attach_shared_block(shm_name, shape, dtype_str, offset, extent)
    return refactorer.refactor(block, name=tile_name).to_bytes()


class TiledRefactorer(WorkerPoolMixin):
    """Refactor large fields tile by tile (the streaming write path).

    ``num_workers > 1`` refactors independent tiles concurrently through
    the instance's shared thread pool — the within-device pipeline of
    Fig. 4, with per-shape :class:`~repro.core.refactor.Refactorer`
    instances (transform geometry, error weights) still shared across
    tiles. Resolving to the ``processes`` backend (``backend=`` /
    ``REPRO_BACKEND``) instead publishes the field in a shared-memory
    segment and fans tiles out across worker processes — true
    parallelism, with the config pickled once per worker and warm
    per-shape refactorers reused across calls. The tile order — and
    every tile's serialized bytes — of the result is identical under
    all three backends.
    """

    def __init__(
        self,
        tile_shape: tuple[int, ...],
        config: RefactorConfig | None = None,
        num_workers: int = 0,
        backend: str | None = None,
    ) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        self.tile_shape = tuple(int(t) for t in tile_shape)
        self.config = config or RefactorConfig()
        self.num_workers = int(num_workers)
        if backend is not None:
            parse_backend_spec(backend)  # validates, raises on junk
        self.backend = backend
        self._refactorers: dict[tuple[int, ...], Refactorer] = {}
        # ensure_shared token for shipping the config once per worker;
        # a fresh UUID so recycled ids can never alias a stale config.
        self._config_token = f"tiled-refactor-config:{uuid.uuid4().hex}"

    def _pool_size(self) -> int:
        return self.num_workers

    def close(self) -> None:
        """Shut down this instance's pool *and* the cached per-shape
        refactorers' pools (idempotent) — a pooled config
        (``num_workers > 1``) gives each cached :class:`Refactorer` its
        own executor, which must not outlive the ``with`` block."""
        try:
            for refactorer in self._refactorers.values():
                refactorer.close()
        finally:
            super().close()

    def _refactorer_for(self, shape: tuple[int, ...]) -> Refactorer:
        # Boundary tiles share geometry; cache per distinct shape. The
        # transform's lazily-built level indices are warmed here so the
        # shared instance is read-only by the time tiles fan out across
        # worker threads.
        if shape not in self._refactorers:
            refactorer = Refactorer(shape, self.config)
            refactorer.transform.level_indices()
            self._refactorers[shape] = refactorer
        return self._refactorers[shape]

    def refactor(self, data: np.ndarray, name: str = "var") -> TiledField:
        data = np.asarray(data)
        check_dtype_floating(data)
        if data.size:
            value_range = float(np.max(data) - np.min(data))
            if not math.isfinite(value_range):
                raise ValueError(
                    "data contains non-finite values; the tiled field's "
                    "value_range would be non-finite and every relative-"
                    "tolerance retrieval over it would silently fail"
                )
        else:
            value_range = 0.0
        tiles = plan_tiles(data.shape, self.tile_shape)
        spec = self._backend_spec()
        if (
            spec.kind == "processes" and spec.workers > 1
            and len(tiles) > 1 and data.size
        ):
            fields = self._refactor_tiles_processes(data, tiles, name)
            return TiledField(
                shape=data.shape,
                dtype=data.dtype,
                tiles=tiles,
                fields=fields,
                value_range=value_range,
                name=name,
            )
        for tile in tiles:  # materialize shared state before the fan-out
            self._refactorer_for(tile.shape)

        def refactor_tile(tile: TileSpec) -> RefactoredField:
            block = np.ascontiguousarray(data[tile.slices()])
            tile_name = f"{name}.T" + "_".join(map(str, tile.index))
            return self._refactorers[tile.shape].refactor(
                block, name=tile_name
            )

        # reprolint: disable=R3 -- serial/threads path: map_jobs probes picklability and runs closures host-side under processes
        fields = self.map_jobs(refactor_tile, tiles)
        return TiledField(
            shape=data.shape,
            dtype=data.dtype,
            tiles=tiles,
            fields=fields,
            value_range=value_range,
            name=name,
        )

    def _refactor_tiles_processes(
        self, data: np.ndarray, tiles: list[TileSpec], name: str
    ) -> list[RefactoredField]:
        """Fan tile refactors out across the process backend.

        The whole field is published once in a shared-memory segment;
        each call ships only coordinates, and each worker copies out
        exactly its tile's block. Results come back as serialized
        fields (the byte-identity contract), deserialized in tile
        order. The segment is unlinked as soon as the calls settle.
        """
        backend = self._process_backend()
        backend.ensure_shared(self._config_token, self.config)
        arr = np.ascontiguousarray(data)
        shm = share_array(arr)
        try:
            refactor_name = task_name(_task_refactor_tile)
            blobs = backend.map_calls([
                (
                    refactor_name,
                    (
                        self._config_token, shm.name, arr.shape,
                        arr.dtype.str, tile.offset, tile.shape,
                        f"{name}.T" + "_".join(map(str, tile.index)),
                    ),
                    None,
                )
                for tile in tiles
            ])
        finally:
            shm.close()
            shm.unlink()
        return [RefactoredField.from_bytes(blob) for blob in blobs]


class TiledReconstructionResult(tuple):
    """``(data, error_bound)`` plus degraded-step metadata.

    A ``tuple`` subclass, so every existing
    ``out, bound = recon.reconstruct(...)`` unpacking (and indexing)
    keeps working; steps run with ``on_fault="degrade"`` additionally
    report which tiles faulted:

    * ``degraded`` — any tile answered from its last committed
      refinement (or, never having been opened, as zeros);
    * ``failed_tiles`` — their tile positions, sorted;
    * ``failed_groups`` — per failed position, the per-level group
      counts the aborted plan wanted (``None`` for tiles that faulted
      before opening);
    * ``error_bound`` is the honest global bound of what was returned —
      ``inf`` when an unopened tile contributed zeros with no guarantee.
    """

    def __new__(
        cls,
        data: np.ndarray,
        error_bound: float,
        *,
        degraded: bool = False,
        failed_tiles: Sequence[int] = (),
        failed_groups: dict[int, list[int] | None] | None = None,
    ) -> "TiledReconstructionResult":
        self = super().__new__(cls, (data, error_bound))
        self.degraded = bool(degraded)
        self.failed_tiles = sorted(failed_tiles)
        self.failed_groups = dict(failed_groups or {})
        return self

    @property
    def data(self) -> np.ndarray:
        return self[0]

    @property
    def error_bound(self) -> float:
        return self[1]


def _task_decode_tile(
    state, session, store_token, pos, src, incremental, tol, on_fault,
    window,
):
    """Process-backend task: one tile's progressive reconstruction step.

    The worker owns the tile's full progressive state — a warm
    :class:`~repro.core.reconstruct.Reconstructor` (retained decode
    partials, fetch progress, counters) kept resident under the
    session's key and reused across staircase steps; sticky dispatch
    guarantees the same tile always lands on the same worker. *src*
    rides along only on the tile's first touch (or after a backend
    restart): either the serialized field bytes (eager fields) or the
    stored tile name to open against the session's shipped store.
    Same-geometry tiles share one transform per worker. A lazy tile
    whose open faults under ``on_fault="degrade"`` reports
    ``"unopened"`` (and is retried on the next call) — mirroring the
    serial engine's zeros-with-inf-bound fallback, which stays
    parent-side.
    """
    sess = state.setdefault(
        ("tiled-session", session),
        {"recons": {}, "sources": {}, "transforms": {}},
    )
    if src is not None:
        # A redundant ship (the parent re-shipping conservatively after
        # a respawn elsewhere in the pool) must not destroy this
        # worker's warm state: keep the resident reconstructor and only
        # refresh the source — the serial engine likewise reuses one
        # reconstructor across retries. A worker that actually died has
        # nothing resident, so the rebuild below happens naturally.
        sess["sources"][pos] = src
    recon = sess["recons"].get(pos)
    if recon is None:
        try:
            kind, payload = sess["sources"][pos]
        except KeyError:
            # Typed so the parent engine can distinguish "this worker
            # was respawned and lost my tile" (heal: re-ship + retry)
            # from a real decode failure.
            raise WorkerStateError(
                f"tile {pos} source not resident on this worker "
                "(worker respawned or backend restarted mid-step?)"
            ) from None
        try:
            if kind == "bytes":
                field = RefactoredField.from_bytes(payload)
            else:
                from repro.core.store import open_field

                store, verify = worker_shared(state, store_token)
                field = open_field(store, payload, verify=verify)
        except StoreError:
            if on_fault != "degrade":
                raise
            return {"status": "unopened"}
        key = (
            tuple(field.shape), field.num_levels, field.mode,
            field.min_size,
        )
        transform = sess["transforms"].get(key)
        if transform is None:
            transform = MultilevelTransform(
                field.shape,
                num_levels=field.num_levels,
                mode=field.mode,
                min_size=field.min_size,
            )
            transform.level_indices()
            sess["transforms"][key] = transform
        recon = Reconstructor(
            field, incremental=incremental, transform=transform
        )
        sess["recons"][pos] = recon
    result = recon.reconstruct(tolerance=tol, on_fault=on_fault)
    tile_local = tuple(slice(lo, hi) for lo, hi in window)
    io = getattr(recon.field, "io_counters", None)
    counters = recon.decode_counters
    return {
        "status": "ok",
        "block": np.ascontiguousarray(result.data[tile_local]),
        "error_bound": result.error_bound,
        "degraded": result.degraded,
        "failed_groups": result.failed_groups,
        "fetched_bytes": recon.fetched_bytes,
        "fetched_groups": recon.fetched_groups,
        "decode_state_bytes": recon.decode_state_bytes(),
        "decode_counters": (
            counters.groups_decoded, counters.planes_decoded,
            counters.level_decodes, counters.level_reuses,
        ),
        "io": None if io is None else (
            io.segment_reads, io.bytes_fetched,
            io.cold_bytes, io.cache_hit_bytes,
        ),
    }


class TiledReconstructor(WorkerPoolMixin):
    """Progressive reconstruction of a tiled field with a global bound.

    Per-tile :class:`~repro.core.reconstruct.Reconstructor` instances —
    and through them the retained incremental decode state — are built
    lazily on first touch, so wrapping a 1000-tile field costs nothing
    until a reconstruction actually needs a tile. Same-geometry tiles
    share one :class:`~repro.decompose.MultilevelTransform`.

    ``num_workers > 1`` decodes the selected tiles concurrently through
    the instance's shared thread pool. Per-tile reconstructors are kept
    serial (their own ``num_workers=0``) so tile jobs never nest pool
    work inside pool work.

    ``pipelined=True`` overlaps each tile's segment *fetch* with other
    tiles' *decode* through a bounded
    :class:`~repro.pipeline.retrieval.RetrievalPipeline` window — the
    paper's Fig. 4 stage overlap on the real retrieval stack. On a
    latency-bearing store a staircase step then pays ≈max(fetch,
    decode) instead of their sum, with bit-identical results, counters,
    and fault semantics (each tile's store accesses stay one sequential
    chain in the sequential path's exact order). The process backend
    ignores the flag: its worker-resident sessions already overlap
    store I/O across workers, and tile state must live in exactly one
    place.
    """

    def __init__(
        self,
        tiled: TiledField,
        num_workers: int = 0,
        incremental: bool = True,
        backend: str | None = None,
        pipelined: bool = False,
        pipeline_window: int = 4,
        fetch_workers: int = 2,
    ) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if pipeline_window < 1:
            raise ValueError("pipeline_window must be >= 1")
        if fetch_workers < 1:
            raise ValueError("fetch_workers must be >= 1")
        self.tiled = tiled
        self.num_workers = int(num_workers)
        self.incremental = bool(incremental)
        if backend is not None:
            parse_backend_spec(backend)  # validates, raises on junk
        self.backend = backend
        self.pipelined = bool(pipelined)
        self.pipeline_window = int(pipeline_window)
        self.fetch_workers = int(fetch_workers)
        self._pipeline = None
        self._recons: dict[int, Reconstructor] = {}
        self._transforms: dict[tuple, MultilevelTransform] = {}
        self._state_lock = threading.Lock()
        # Process-backend session bookkeeping: the worker-resident state
        # is addressed by this token; ``_shipped`` records the backend
        # ``(uid, slot generation)`` each tile's source was last shipped
        # under (the tile's sticky worker being respawned bumps its
        # slot stamp, and a pool restart or *replacement* — e.g. the
        # shared backend growing — changes every stamp or the uid, so
        # any of them forces a re-ship), and ``_shadow`` mirrors
        # each remote tile's accounting after its latest step so the
        # aggregate properties answer without a round-trip.
        self._session_token = f"tiled-session:{uuid.uuid4().hex}"
        self._shipped: dict[int, tuple[str, int]] = {}
        self._shadow: dict[int, dict] = {}

    def _pool_size(self) -> int:
        return self.num_workers

    def _transform_for(self, field: RefactoredField) -> MultilevelTransform:
        key = (tuple(field.shape), field.num_levels, field.mode,
               field.min_size)
        with self._state_lock:
            transform = self._transforms.get(key)
        if transform is None:
            transform = MultilevelTransform(
                field.shape,
                num_levels=field.num_levels,
                mode=field.mode,
                min_size=field.min_size,
            )
            transform.level_indices()  # warm before any concurrent use
            with self._state_lock:
                transform = self._transforms.setdefault(key, transform)
        return transform

    def _reconstructor_for(self, position: int) -> Reconstructor:
        """Tile *position*'s reconstructor, built on first touch.

        Touching a lazily-opened tiled field here also opens the tile's
        sub-field (one index fetch); untouched tiles stay unopened.
        Runs inside the per-tile decode jobs, so first-touch opens of
        different tiles — store I/O on a lazy field — overlap across
        the worker pool instead of serializing up front. Construction
        happens outside the memo lock; positions are unique per step,
        so duplicate construction cannot arise within one call.
        """
        with self._state_lock:
            recon = self._recons.get(position)
        if recon is None:
            field = self.tiled.fields[position]
            recon = Reconstructor(
                field,
                incremental=self.incremental,
                transform=self._transform_for(field),
            )
            with self._state_lock:
                recon = self._recons.setdefault(position, recon)
        return recon

    @property
    def touched_tiles(self) -> list[int]:
        """Tile positions with progressive state, local or remote."""
        with self._state_lock:
            return sorted(set(self._recons) | set(self._shadow))

    def touched_reconstructors(self) -> list[Reconstructor]:
        """Touched tiles' reconstructors, in tile-position order.

        The public window onto per-tile progressive state (fields,
        fetch progress, decode counters) — e.g. the service layer walks
        it to prefetch each touched tile's next planned plane group.
        """
        with self._state_lock:
            recons = dict(self._recons)
        return [recons[i] for i in sorted(recons)]

    def _shadow_values(self) -> list[dict]:
        with self._state_lock:
            return list(self._shadow.values())

    @property
    def fetched_bytes(self) -> int:
        """Cumulative payload bytes fetched across touched tiles.

        Covers both parent-side reconstructors and (under the process
        backend) the worker-resident ones, whose accounting is mirrored
        back after every step.
        """
        return sum(
            r.fetched_bytes for r in self.touched_reconstructors()
        ) + sum(s["fetched_bytes"] for s in self._shadow_values())

    def decode_state_bytes(self) -> int:
        """Resident bytes of retained decode state across touched tiles."""
        return sum(
            r.decode_state_bytes() for r in self.touched_reconstructors()
        ) + sum(s["decode_state_bytes"] for s in self._shadow_values())

    def aggregate_decode_counters(self) -> DecodeCounters:
        """Summed :class:`~repro.core.reconstruct.DecodeCounters` of every
        touched tile, local or worker-resident — the backend-independent
        decode-work total the differential suite compares."""
        total = DecodeCounters()
        for recon in self.touched_reconstructors():
            counters = recon.decode_counters
            total.groups_decoded += counters.groups_decoded
            total.planes_decoded += counters.planes_decoded
            total.level_decodes += counters.level_decodes
            total.level_reuses += counters.level_reuses
        for shadow in self._shadow_values():
            groups, planes, decodes, reuses = shadow["decode_counters"]
            total.groups_decoded += groups
            total.planes_decoded += planes
            total.level_decodes += decodes
            total.level_reuses += reuses
        return total

    def aggregate_io_counters(self) -> IOCounters:
        """Summed segment traffic of every touched tile, local or remote.

        Serial/thread sessions read through the parent's lazy tile
        fields; process sessions read store-side in the workers, whose
        counters are mirrored back after every step. Eager (in-memory)
        fields contribute zeros either way.
        """
        parts = []
        tiled_io = getattr(self.tiled, "io_counters", None)
        if callable(tiled_io):
            parts.append(tiled_io())
        for shadow in self._shadow_values():
            if shadow.get("io") is not None:
                parts.append(IOCounters(*shadow["io"]))
        return IOCounters.total(parts)

    def _retrieval_pipeline(self):
        """The instance's lazily-built retrieval pipeline runtime."""
        # Local import: repro.pipeline hosts optional accelerator
        # modules; core must not import it at module load.
        from repro.pipeline.retrieval import RetrievalPipeline

        with self._state_lock:
            if self._pipeline is None:
                self._pipeline = RetrievalPipeline(
                    window=self.pipeline_window,
                    fetch_workers=self.fetch_workers,
                )
            return self._pipeline

    def reconstruct(
        self,
        tolerance: float | None = None,
        relative: bool = False,
        region: Sequence | None = None,
        on_fault: str = "raise",
        pipelined: bool | None = None,
    ) -> "TiledReconstructionResult":
        """(stitched data, achieved global L∞ bound) at *tolerance*.

        Tiles partition the domain, so the global bound is the max of
        per-tile bounds; each touched tile fetches and decodes only its
        own increment. ``relative=True`` interprets the tolerance as a
        fraction of the *global* value range (per-tile ranges would
        weaken the guarantee on quiet tiles); combining it with
        ``tolerance=None`` is rejected — near-lossless retrieval has no
        fraction to scale. On a constant field (``value_range == 0``)
        relative requests short-circuit to the documented near-lossless
        path, matching :meth:`Reconstructor.reconstruct`.

        ``region`` restricts retrieval to a hyperslab (per-axis
        ``slice``/``(start, stop)``/``None`` entries, global
        coordinates): only overlapping tiles are touched, the returned
        array has the region's extents, and the bound covers exactly
        those tiles. Tiles keep their progressive state across calls,
        so walking a staircase over a region refines incrementally and
        later widening the region only pays for the new tiles.

        ``on_fault="degrade"`` turns store faults into a degraded
        answer instead of an exception: a tile whose fetch fails is
        answered from its last committed refinement (see
        :meth:`Reconstructor.reconstruct`); a tile that faults before
        it ever opened contributes zeros and an ``inf`` bound. The
        returned :class:`TiledReconstructionResult` unpacks like the
        usual ``(data, error_bound)`` pair and records ``degraded`` /
        ``failed_tiles`` / ``failed_groups``; a later call at the same
        tolerance retries exactly the failed increments.

        ``pipelined`` overrides the instance's ``pipelined`` flag for
        this call (``None`` keeps the instance setting): fetch/decode/
        commit overlap through the bounded pipeline window, with
        results, counters, and fault handling bit-identical to the
        sequential path. Inert under the process backend and for
        single-tile steps.
        """
        if on_fault not in ("raise", "degrade"):
            raise ValueError(
                f'on_fault must be "raise" or "degrade", got {on_fault!r}'
            )
        if relative and tolerance is None:
            raise ValueError(
                "relative=True requires a tolerance; near-lossless "
                "retrieval (tolerance=None) has no value range to scale"
            )
        tol = check_tolerance(tolerance, allow_none=True)
        if tol is not None:
            if relative:
                if self.tiled.value_range == 0.0:
                    # Constant field: any fraction of a zero range is 0;
                    # fetch everything deliberately (near-lossless).
                    tol = None
                else:
                    tol = tol * self.tiled.value_range
        if region is None:
            region_slices = tuple(slice(0, s) for s in self.tiled.shape)
        else:
            region_slices = normalize_region(region, self.tiled.shape)
        out_shape = tuple(s.stop - s.start for s in region_slices)
        out = np.empty(out_shape, dtype=self.tiled.dtype)
        selected = self.tiled.tiles_overlapping(region_slices)
        jobs = [(pos, overlap) for pos, _, overlap in selected]

        def decode_tile(job):
            # First-touch construction happens here, inside the fan-out:
            # on a store-backed field the per-tile index fetches overlap
            # across workers instead of serializing before the decode.
            position, (tile_local, region_local) = job
            try:
                recon = self._reconstructor_for(position)
            except StoreError:
                if on_fault != "degrade":
                    raise
                # The tile never opened: nothing is committed, so there
                # is no stale answer to fall back on — fill with zeros
                # and report an unbounded error for this step.
                shape = tuple(
                    loc.stop - loc.start for loc in tile_local
                )
                block = np.zeros(shape, dtype=self.tiled.dtype)
                return position, region_local, block, math.inf, True, None
            result = recon.reconstruct(tolerance=tol, on_fault=on_fault)
            return (
                position,
                region_local,
                result.data[tile_local],
                result.error_bound,
                result.degraded,
                result.failed_groups,
            )

        use_pipeline = self.pipelined if pipelined is None else bool(
            pipelined
        )
        spec = self._backend_spec()
        if spec.kind == "processes" and spec.workers > 1:
            # Worker-resident tile state: always route through the
            # backend once resolved to it (even single-tile steps), so
            # a tile's progressive state lives in exactly one place.
            # ``pipelined`` is inert here — the workers already fetch
            # their own segments store-side, overlapping I/O across the
            # pool, and tile state must live in exactly one place.
            outcomes = self._decode_tiles_processes(jobs, tol, on_fault)
        elif use_pipeline and len(jobs) > 1:
            outcomes = self._decode_tiles_pipelined(
                jobs, tol, on_fault, spec, out
            )
        else:
            # reprolint: disable=R3 -- serial/threads path: the processes case above ships _task_decode_tile by name
            outcomes = self.map_jobs(decode_tile, jobs)
        worst = 0.0
        degraded = False
        failed_tiles: list[int] = []
        failed_groups: dict[int, list[int] | None] = {}
        for outcome in outcomes:
            position, region_local, block, bound, tile_degraded, groups = (
                outcome
            )
            if block is not None:  # pipelined commits wrote in-stream
                out[region_local] = block
            worst = max(worst, bound)
            if tile_degraded:
                degraded = True
                failed_tiles.append(position)
                failed_groups[position] = groups
        return TiledReconstructionResult(
            out,
            worst,
            degraded=degraded,
            failed_tiles=failed_tiles,
            failed_groups=failed_groups,
        )

    def _decode_tiles_pipelined(
        self,
        jobs: list[tuple],
        tol: float | None,
        on_fault: str,
        spec,
        out: np.ndarray,
    ) -> list[tuple]:
        """One step of the selected tiles with stage overlap (Fig. 4).

        Fetch (store I/O through the tile's lazy resolver, on the
        pipeline's fetch pool) runs up to ``pipeline_window`` tiles
        ahead of decode (plane-group decompress + inject, on the caller
        thread or — under the threads backend — the instance's worker
        pool); each decoded block commits into the stitched output
        in-stream, on the caller thread, and is released immediately so
        resident decoded-but-unstitched data stays O(window). Results
        are bit-identical to the sequential fan-out: each tile's store
        accesses remain one sequential chain in the same key order, and
        a stage failure drains the window, then surfaces (or degrades)
        exactly where the sequential path would.
        """
        pipeline = self._retrieval_pipeline()
        decode_pool = None
        decode_workers = 1
        if spec.kind == "threads" and spec.workers > 1:
            decode_pool = self._worker_pool()
            decode_workers = spec.workers
        fetch = functools.partial(
            self._pipeline_fetch_tile, tol=tol, on_fault=on_fault
        )
        decode = functools.partial(self._pipeline_decode_tile,
                                   on_fault=on_fault)
        commit = functools.partial(self._pipeline_commit_tile, out=out)
        return pipeline.run(
            jobs,
            fetch,
            decode,
            commit=commit,
            decode_pool=decode_pool,
            decode_workers=decode_workers,
        )

    def _pipeline_fetch_tile(self, job, tol, on_fault):
        """Fetch stage: first-touch open + plan + segment resolution.

        Returns ``(reconstructor, step, fault)``. Expected store faults
        are *captured*, not raised, so they surface at decode time in
        tile order — matching the sequential fan-out's failure choice —
        and so the faulted fetch is never retried (a retry would shift
        per-key access counts and desynchronize seeded fault
        schedules). A fault before the tile ever opened returns
        ``(None, None, exc)`` under ``degrade`` (the zeros/inf tile);
        plan-time faults always raise, as they do sequentially.
        """
        position = job[0]
        try:
            recon = self._reconstructor_for(position)
        except StoreError as exc:
            if on_fault != "degrade":
                raise
            return None, None, exc
        step = recon.plan_step(tol)
        try:
            recon.fetch_step(step)
        except StoreError as exc:
            return recon, step, exc
        return recon, step, None

    def _pipeline_decode_tile(self, job, fetched, on_fault):
        """Decode stage: one tile's plane-group decompress + commit.

        Same outcome shape as the sequential ``decode_tile``; a fetch
        fault captured upstream replays through ``decode_step`` so the
        ``on_fault`` policy (raise, or degrade to the last committed
        refinement) is decided by exactly the code the sequential path
        runs.
        """
        position, (tile_local, region_local) = job
        recon, step, fault = fetched
        if recon is None:
            # The tile never opened: nothing is committed, so there is
            # no stale answer to fall back on — zeros, unbounded error.
            shape = tuple(loc.stop - loc.start for loc in tile_local)
            block = np.zeros(shape, dtype=self.tiled.dtype)
            return position, region_local, block, math.inf, True, None
        result = recon.decode_step(
            step, on_fault=on_fault, fetch_error=fault
        )
        return (
            position,
            region_local,
            result.data[tile_local],
            result.error_bound,
            result.degraded,
            result.failed_groups,
        )

    def _pipeline_commit_tile(self, job, outcome, out):
        """Commit stage: stitch the block, then drop it (O(window))."""
        position, region_local, block, bound, tile_degraded, groups = (
            outcome
        )
        out[region_local] = block
        return position, region_local, None, bound, tile_degraded, groups

    def _decode_tiles_processes(
        self, jobs: list[tuple], tol: float | None, on_fault: str
    ) -> list[tuple]:
        """One step of every selected tile on the process backend.

        Sticky dispatch pins each tile to one worker, where its warm
        :class:`~repro.core.reconstruct.Reconstructor` persists across
        staircase steps. A tile's source ships exactly once per pool
        instance and *slot* generation (the slot's worker being
        respawned — or the whole pool restarting or being replaced —
        re-ships): serialized bytes for eager fields, the tile's
        stored name for store-backed fields (the store itself travels
        once per worker under the session's token — workers then fetch
        their own segments, bypassing any parent-side shared cache).
        Keying on the slot rather than the pool keeps one worker's
        crash from forcing every surviving worker's tiles to rebuild.
        Each result mirrors the tile's accounting back into
        ``_shadow`` so the aggregates stay answerable parent-side.
        """
        backend = self._process_backend()
        source = getattr(self.tiled, "source", None)
        names = getattr(self.tiled, "tile_field_names", None)
        store_token = None
        if source is not None and names is not None:
            store_token = f"tiled-store:{self._session_token}"
            backend.ensure_shared(store_token, source)
        decode_name = task_name(_task_decode_tile)
        outcome_by_pos: dict[int, tuple] = {}
        failures: list[tuple[int, BaseException]] = []
        pending = list(jobs)
        # A worker respawn mid-batch loses that worker's resident tiles:
        # those calls settle as WorkerStateError, and one re-ship pass
        # (the slot's new spawn stamp forces src to ride along) rebuilds
        # them bit-identically from scratch. Two healing passes bound
        # even a respawn happening *during* the retry pass.
        for attempt in range(3):
            slot_gens = backend.slot_generations()
            calls = []
            placement = []
            ship_keys = {}
            for pos, (tile_local, region_local) in pending:
                key = (backend.uid, slot_gens[backend.worker_for(pos)])
                ship_keys[pos] = key
                src = None
                if self._shipped.get(pos) != key:
                    if store_token is not None:
                        src = ("store", names[pos])
                    else:
                        src = ("bytes", self.tiled.fields[pos].to_bytes())
                window = tuple((s.start, s.stop) for s in tile_local)
                calls.append((
                    decode_name,
                    (
                        self._session_token, store_token, pos, src,
                        self.incremental, tol, on_fault, window,
                    ),
                    pos,  # sticky: the tile's decode state lives here
                ))
                placement.append((pos, tile_local, region_local))
            settled = backend.map_calls(calls, settle=True)
            retry = []
            for (pos, tile_local, region_local), (ok, value) in zip(
                placement, settled
            ):
                if ok:
                    self._shipped[pos] = ship_keys[pos]
                    outcome_by_pos[pos] = self._tile_outcome(
                        pos, tile_local, region_local, value
                    )
                    continue
                self._shipped.pop(pos, None)
                if isinstance(value, WorkerStateError) and attempt < 2:
                    retry.append((pos, (tile_local, region_local)))
                elif on_fault == "degrade" and isinstance(
                    value, (StoreError, ComputeError)
                ):
                    # The tile's worker-resident refinement died with
                    # its worker (crash, quarantine, or deadline kill):
                    # nothing is committed parent-side, so degrade like
                    # a never-opened tile — zeros, unbounded error —
                    # and rebuild from scratch on the next call.
                    shape = tuple(
                        s.stop - s.start for s in tile_local
                    )
                    outcome_by_pos[pos] = (
                        pos, region_local,
                        np.zeros(shape, dtype=self.tiled.dtype),
                        math.inf, True, None,
                    )
                else:
                    failures.append((pos, value))
            if not retry:
                break
            pending = retry
        if failures:
            failures.sort(key=lambda item: item[0])
            raise failures[0][1]
        return [outcome_by_pos[pos] for pos, _ in jobs]

    def _tile_outcome(
        self, pos: int, tile_local: tuple, region_local: tuple, res: dict
    ) -> tuple:
        """One worker reply → the serial decode_tile outcome shape."""
        if res["status"] == "unopened":
            # Mirrors the serial never-opened degrade: zeros, no
            # guarantee, nothing cached — the next call retries (the
            # source stayed resident, so no re-ship is needed).
            shape = tuple(s.stop - s.start for s in tile_local)
            return (
                pos, region_local,
                np.zeros(shape, dtype=self.tiled.dtype),
                math.inf, True, None,
            )
        with self._state_lock:
            self._shadow[pos] = {
                key: res[key]
                for key in (
                    "fetched_bytes", "fetched_groups",
                    "decode_state_bytes", "decode_counters", "io",
                )
            }
        return (
            pos, region_local, res["block"], res["error_bound"],
            res["degraded"], res["failed_groups"],
        )

    def close(self) -> None:
        """Release worker-resident session state, then the local pool."""
        with self._state_lock:
            pipeline, self._pipeline = self._pipeline, None
        if pipeline is not None:
            pipeline.close()
        if self._shipped:
            try:
                backend = self._process_backend()
                backend.drop_session(self._session_token)
                backend.drop_shared(
                    f"tiled-store:{self._session_token}"
                )
            except Exception:  # reprolint: disable=R2 -- best-effort release of worker state on close; must not mask the caller's teardown
                pass
            self._shipped.clear()
        super().close()

    def progressive(
        self,
        tolerances: Sequence[float],
        relative: bool = False,
        region: Sequence | None = None,
        on_fault: str = "raise",
    ) -> list["TiledReconstructionResult"]:
        """Reconstruct at a decreasing tolerance schedule over *region*."""
        return [
            self.reconstruct(
                tolerance=t, relative=relative, region=region,
                on_fault=on_fault,
            )
            for t in tolerances
        ]


__all__ = [
    "TileSpec",
    "plan_tiles",
    "normalize_region",
    "TiledField",
    "LazyTiledField",
    "TiledRefactorer",
    "TiledReconstructionResult",
    "TiledReconstructor",
]
