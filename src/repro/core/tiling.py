"""Sub-domain (tile) processing for fields larger than device memory.

Section 6.1's premise: large datasets are split into sub-domains that
stream through the device one at a time. This module provides the
functional counterpart — split an n-D field into tiles, refactor each
independently, and reconstruct/stitch with per-tile or global
tolerances. Tiles are independent streams, so they parallelize across
devices (the multi-GPU path) and pipeline within one device (Fig. 4).

Each tile gets its own multilevel hierarchy; the global L∞ guarantee is
simply the max of the per-tile guarantees, because tiles partition the
domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.core.reconstruct import Reconstructor
from repro.core.refactor import RefactorConfig, Refactorer
from repro.core.stream import RefactoredField
from repro.util.validation import check_dtype_floating


@dataclass(frozen=True)
class TileSpec:
    """Placement of one tile within the global domain."""

    index: tuple[int, ...]
    offset: tuple[int, ...]
    shape: tuple[int, ...]

    def slices(self) -> tuple[slice, ...]:
        return tuple(
            slice(o, o + s) for o, s in zip(self.offset, self.shape)
        )


def plan_tiles(
    shape: tuple[int, ...], tile_shape: tuple[int, ...]
) -> list[TileSpec]:
    """Cover *shape* with tiles of at most *tile_shape* extents."""
    shape = tuple(int(s) for s in shape)
    tile_shape = tuple(int(t) for t in tile_shape)
    if len(tile_shape) != len(shape):
        raise ValueError("tile_shape rank must match data rank")
    if any(t < 1 for t in tile_shape):
        raise ValueError("tile extents must be >= 1")
    counts = [-(-s // t) for s, t in zip(shape, tile_shape)]
    tiles = []
    for index in product(*(range(c) for c in counts)):
        offset = tuple(i * t for i, t in zip(index, tile_shape))
        extent = tuple(
            min(t, s - o) for t, s, o in zip(tile_shape, shape, offset)
        )
        tiles.append(TileSpec(index=index, offset=offset, shape=extent))
    return tiles


@dataclass
class TiledField:
    """A refactored field stored as independent sub-domain streams."""

    shape: tuple[int, ...]
    dtype: np.dtype
    tiles: list[TileSpec]
    fields: list[RefactoredField]
    value_range: float

    def total_bytes(self) -> int:
        return sum(f.total_bytes() for f in self.fields)


class TiledRefactorer:
    """Refactor large fields tile by tile (the streaming write path)."""

    def __init__(
        self,
        tile_shape: tuple[int, ...],
        config: RefactorConfig | None = None,
    ) -> None:
        self.tile_shape = tuple(int(t) for t in tile_shape)
        self.config = config or RefactorConfig()
        self._refactorers: dict[tuple[int, ...], Refactorer] = {}

    def _refactorer_for(self, shape: tuple[int, ...]) -> Refactorer:
        # Boundary tiles share geometry; cache per distinct shape.
        if shape not in self._refactorers:
            self._refactorers[shape] = Refactorer(shape, self.config)
        return self._refactorers[shape]

    def refactor(self, data: np.ndarray, name: str = "var") -> TiledField:
        data = np.asarray(data)
        check_dtype_floating(data)
        tiles = plan_tiles(data.shape, self.tile_shape)
        fields = []
        for tile in tiles:
            block = np.ascontiguousarray(data[tile.slices()])
            tile_name = f"{name}.T" + "_".join(map(str, tile.index))
            fields.append(
                self._refactorer_for(tile.shape).refactor(
                    block, name=tile_name
                )
            )
        value_range = (
            float(np.max(data) - np.min(data)) if data.size else 0.0
        )
        return TiledField(
            shape=data.shape,
            dtype=data.dtype,
            tiles=tiles,
            fields=fields,
            value_range=value_range,
        )


class TiledReconstructor:
    """Progressive reconstruction of a tiled field with a global bound."""

    def __init__(self, tiled: TiledField) -> None:
        self.tiled = tiled
        self._recons = [Reconstructor(f) for f in tiled.fields]

    @property
    def fetched_bytes(self) -> int:
        return sum(r.fetched_bytes for r in self._recons)

    def reconstruct(
        self, tolerance: float | None = None, relative: bool = False
    ) -> tuple[np.ndarray, float]:
        """(stitched data, achieved global L∞ bound) at *tolerance*.

        Tiles partition the domain, so the global bound is the max of
        per-tile bounds; each tile fetches only its own increment.
        """
        tol = tolerance
        if tolerance is not None and relative:
            tol = float(tolerance) * self.tiled.value_range
        out = np.empty(self.tiled.shape, dtype=self.tiled.dtype)
        worst = 0.0
        for tile, recon in zip(self.tiled.tiles, self._recons):
            result = recon.reconstruct(tolerance=tol)
            out[tile.slices()] = result.data
            worst = max(worst, result.error_bound)
        return out, worst
