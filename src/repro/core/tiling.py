"""Sub-domain (tile) processing for fields larger than device memory.

Section 6.1's premise: large datasets are split into sub-domains that
stream through the device and parallelize across devices (Fig. 4). This
module is that scale path — split an n-D field into tiles, refactor each
independently (optionally fanning tiles out across a worker pool), and
reconstruct/stitch with a global tolerance. Tiles partition the domain,
so the global L∞ guarantee is simply the max of the per-tile guarantees.

Three behaviours make tiling the production path rather than a toy:

* **Parallel tile fan-out** — :class:`TiledRefactorer` /
  :class:`TiledReconstructor` accept ``num_workers`` and run per-tile
  work through the shared :class:`~repro.core._pool.WorkerPoolMixin`
  thread pool (the NumPy kernels release the GIL, so tiles overlap
  across cores). Per-shape :class:`~repro.core.refactor.Refactorer`
  instances and per-geometry transforms are still shared — boundary
  tiles reuse the interior tiles' geometry.
* **Lazy everything** — :class:`TiledReconstructor` builds a tile's
  :class:`~repro.core.reconstruct.Reconstructor` (and through it the
  retained incremental decode state) only when a reconstruction first
  touches that tile, so opening a 1000-tile field costs nothing until
  tiles are used. :class:`LazyTiledField` extends the same economics to
  the store: per-tile sub-fields resolve through
  :func:`~repro.core.store.open_tiled_field` on first touch.
* **Region-of-interest retrieval** — ``reconstruct(region=...)``
  decodes only the tiles overlapping the requested hyperslab; bytes
  fetched and planes decoded scale with the region, not the domain, and
  each touched tile's :class:`~repro.bitplane.encoding.PartialDecodeState`
  is reused across staircase steps exactly as in the untiled engine.
"""

from __future__ import annotations

import math
import threading
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.core._pool import WorkerPoolMixin
from repro.core.errors import StoreError
from repro.core.reconstruct import Reconstructor
from repro.core.refactor import RefactorConfig, Refactorer
from repro.core.stream import IOCounters, RefactoredField
from repro.decompose import MultilevelTransform
from repro.util.validation import check_dtype_floating


@dataclass(frozen=True)
class TileSpec:
    """Placement of one tile within the global domain."""

    index: tuple[int, ...]
    offset: tuple[int, ...]
    shape: tuple[int, ...]

    def slices(self) -> tuple[slice, ...]:
        return tuple(
            slice(o, o + s) for o, s in zip(self.offset, self.shape)
        )

    def intersection(
        self, region: tuple[slice, ...]
    ) -> tuple[tuple[slice, ...], tuple[slice, ...]] | None:
        """Overlap of this tile with *region* (normalized global slices).

        Returns ``(tile_local, region_local)`` slice tuples addressing
        the overlap within the tile's block and within the region's
        output array respectively, or ``None`` when they are disjoint.
        """
        tile_local = []
        region_local = []
        for o, s, r in zip(self.offset, self.shape, region):
            lo = max(o, r.start)
            hi = min(o + s, r.stop)
            if lo >= hi:
                return None
            tile_local.append(slice(lo - o, hi - o))
            region_local.append(slice(lo - r.start, hi - r.start))
        return tuple(tile_local), tuple(region_local)


def plan_tiles(
    shape: tuple[int, ...], tile_shape: tuple[int, ...]
) -> list[TileSpec]:
    """Cover *shape* with tiles of at most *tile_shape* extents."""
    shape = tuple(int(s) for s in shape)
    tile_shape = tuple(int(t) for t in tile_shape)
    if len(tile_shape) != len(shape):
        raise ValueError("tile_shape rank must match data rank")
    if any(t < 1 for t in tile_shape):
        raise ValueError("tile extents must be >= 1")
    counts = [-(-s // t) for s, t in zip(shape, tile_shape)]
    tiles = []
    for index in product(*(range(c) for c in counts)):
        offset = tuple(i * t for i, t in zip(index, tile_shape))
        extent = tuple(
            min(t, s - o) for t, s, o in zip(tile_shape, shape, offset)
        )
        tiles.append(TileSpec(index=index, offset=offset, shape=extent))
    return tiles


def normalize_region(
    region: Sequence, shape: tuple[int, ...]
) -> tuple[slice, ...]:
    """Validate a region-of-interest request against a domain *shape*.

    *region* must have one entry per axis; each entry is a ``slice``
    (with unit step), a ``(start, stop)`` pair, or ``None`` for the full
    axis. Bounds must satisfy ``0 <= start <= stop <= extent`` — regions
    are hyperslabs in global coordinates, not fancy indexing.
    """
    if len(region) != len(shape):
        raise ValueError(
            f"region rank {len(region)} must match data rank {len(shape)}"
        )
    out = []
    for axis, (entry, extent) in enumerate(zip(region, shape)):
        if entry is None:
            out.append(slice(0, extent))
            continue
        if isinstance(entry, slice):
            if entry.step not in (None, 1):
                raise ValueError(
                    f"region axis {axis}: only unit-step slices supported"
                )
            start = 0 if entry.start is None else int(entry.start)
            stop = extent if entry.stop is None else int(entry.stop)
        else:
            start, stop = (int(v) for v in entry)
        if not 0 <= start <= stop <= extent:
            raise ValueError(
                f"region axis {axis}: [{start}, {stop}) outside "
                f"[0, {extent}]"
            )
        out.append(slice(start, stop))
    return tuple(out)


@dataclass
class TiledField:
    """A refactored field stored as independent sub-domain streams."""

    shape: tuple[int, ...]
    dtype: np.dtype
    tiles: list[TileSpec]
    fields: Sequence[RefactoredField]
    value_range: float
    name: str = "var"

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    def total_bytes(self) -> int:
        return sum(f.total_bytes() for f in self.fields)

    def tiles_overlapping(
        self, region: tuple[slice, ...]
    ) -> list[tuple[int, TileSpec, tuple[tuple[slice, ...],
                                         tuple[slice, ...]]]]:
        """``(tile_position, spec, (tile_local, region_local))`` per
        tile intersecting *region* (normalized slices)."""
        hits = []
        for i, tile in enumerate(self.tiles):
            overlap = tile.intersection(region)
            if overlap is not None:
                hits.append((i, tile, overlap))
        return hits


class _LazyTileFields(Sequence):
    """Per-tile sub-fields resolved from a store on first touch.

    Opened fields are memoized per instance, so a region-of-interest
    session touching the same tiles across staircase steps opens each
    tile (and fetches its index segment) exactly once; untouched tiles
    cost nothing.
    """

    def __init__(
        self,
        names: list[str],
        opener: Callable[[str], RefactoredField],
    ) -> None:
        self._names = names
        self._opener = opener
        self._fields: dict[int, RefactoredField] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._names)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        with self._lock:
            field = self._fields.get(index)
        if field is None:
            # Open outside the lock: the opener does store I/O, and
            # concurrent first touches of *different* tiles (the
            # parallel reconstruct fan-out) must overlap. A racing
            # duplicate open of the same tile is possible but harmless —
            # setdefault keeps exactly one winner.
            field = self._opener(self._names[index])
            with self._lock:
                field = self._fields.setdefault(index, field)
        return field

    @property
    def opened_indices(self) -> list[int]:
        """Tile positions opened so far — testing/telemetry hook."""
        with self._lock:
            return sorted(self._fields)


class LazyTiledField(TiledField):
    """A :class:`TiledField` whose per-tile sub-fields open on demand.

    Built by :func:`~repro.core.store.open_tiled_field` from the tiled
    index record alone: construction fetches nothing beyond that index,
    and touching ``fields[i]`` opens tile *i* lazily (its own index
    segment plus, later, exactly the plane groups a decode needs).
    ``tile_bytes`` — the per-tile stored sizes recorded at write time —
    lets :meth:`total_bytes` answer without opening a single tile.
    """

    def __init__(
        self,
        *,
        shape: tuple[int, ...],
        dtype: np.dtype,
        tiles: list[TileSpec],
        tile_field_names: list[str],
        tile_bytes: list[int],
        value_range: float,
        name: str,
        opener: Callable[[str], RefactoredField],
    ) -> None:
        if not (len(tiles) == len(tile_field_names) == len(tile_bytes)):
            raise ValueError(
                "tiles, tile_field_names, and tile_bytes must align"
            )
        super().__init__(
            shape=tuple(shape),
            dtype=np.dtype(dtype),
            tiles=tiles,
            fields=_LazyTileFields(tile_field_names, opener),
            value_range=float(value_range),
            name=name,
        )
        self.tile_field_names = list(tile_field_names)
        self.tile_bytes = [int(b) for b in tile_bytes]

    def total_bytes(self) -> int:
        """Stored payload size of every tile — served from the index."""
        return sum(self.tile_bytes)

    @property
    def opened_tiles(self) -> list[int]:
        """Tile positions whose sub-fields have been opened so far."""
        return self.fields.opened_indices

    def io_counters(self) -> IOCounters:
        """Aggregate segment traffic of every opened tile sub-field."""
        return IOCounters.total([
            self.fields[i].io_counters
            for i in self.opened_tiles
            if getattr(self.fields[i], "io_counters", None) is not None
        ])


class TiledRefactorer(WorkerPoolMixin):
    """Refactor large fields tile by tile (the streaming write path).

    ``num_workers > 1`` refactors independent tiles concurrently through
    the instance's shared thread pool — the within-device pipeline of
    Fig. 4, with per-shape :class:`~repro.core.refactor.Refactorer`
    instances (transform geometry, error weights) still shared across
    tiles. The tile order of the result is identical either way.
    """

    def __init__(
        self,
        tile_shape: tuple[int, ...],
        config: RefactorConfig | None = None,
        num_workers: int = 0,
    ) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        self.tile_shape = tuple(int(t) for t in tile_shape)
        self.config = config or RefactorConfig()
        self.num_workers = int(num_workers)
        self._refactorers: dict[tuple[int, ...], Refactorer] = {}

    def _pool_size(self) -> int:
        return self.num_workers

    def close(self) -> None:
        """Shut down this instance's pool *and* the cached per-shape
        refactorers' pools (idempotent) — a pooled config
        (``num_workers > 1``) gives each cached :class:`Refactorer` its
        own executor, which must not outlive the ``with`` block."""
        try:
            for refactorer in self._refactorers.values():
                refactorer.close()
        finally:
            super().close()

    def _refactorer_for(self, shape: tuple[int, ...]) -> Refactorer:
        # Boundary tiles share geometry; cache per distinct shape. The
        # transform's lazily-built level indices are warmed here so the
        # shared instance is read-only by the time tiles fan out across
        # worker threads.
        if shape not in self._refactorers:
            refactorer = Refactorer(shape, self.config)
            refactorer.transform.level_indices()
            self._refactorers[shape] = refactorer
        return self._refactorers[shape]

    def refactor(self, data: np.ndarray, name: str = "var") -> TiledField:
        data = np.asarray(data)
        check_dtype_floating(data)
        if data.size:
            value_range = float(np.max(data) - np.min(data))
            if not math.isfinite(value_range):
                raise ValueError(
                    "data contains non-finite values; the tiled field's "
                    "value_range would be non-finite and every relative-"
                    "tolerance retrieval over it would silently fail"
                )
        else:
            value_range = 0.0
        tiles = plan_tiles(data.shape, self.tile_shape)
        for tile in tiles:  # materialize shared state before the fan-out
            self._refactorer_for(tile.shape)

        def refactor_tile(tile: TileSpec) -> RefactoredField:
            block = np.ascontiguousarray(data[tile.slices()])
            tile_name = f"{name}.T" + "_".join(map(str, tile.index))
            return self._refactorers[tile.shape].refactor(
                block, name=tile_name
            )

        fields = self.map_jobs(refactor_tile, tiles)
        return TiledField(
            shape=data.shape,
            dtype=data.dtype,
            tiles=tiles,
            fields=fields,
            value_range=value_range,
            name=name,
        )


class TiledReconstructionResult(tuple):
    """``(data, error_bound)`` plus degraded-step metadata.

    A ``tuple`` subclass, so every existing
    ``out, bound = recon.reconstruct(...)`` unpacking (and indexing)
    keeps working; steps run with ``on_fault="degrade"`` additionally
    report which tiles faulted:

    * ``degraded`` — any tile answered from its last committed
      refinement (or, never having been opened, as zeros);
    * ``failed_tiles`` — their tile positions, sorted;
    * ``failed_groups`` — per failed position, the per-level group
      counts the aborted plan wanted (``None`` for tiles that faulted
      before opening);
    * ``error_bound`` is the honest global bound of what was returned —
      ``inf`` when an unopened tile contributed zeros with no guarantee.
    """

    def __new__(
        cls,
        data: np.ndarray,
        error_bound: float,
        *,
        degraded: bool = False,
        failed_tiles: Sequence[int] = (),
        failed_groups: dict[int, list[int] | None] | None = None,
    ) -> "TiledReconstructionResult":
        self = super().__new__(cls, (data, error_bound))
        self.degraded = bool(degraded)
        self.failed_tiles = sorted(failed_tiles)
        self.failed_groups = dict(failed_groups or {})
        return self

    @property
    def data(self) -> np.ndarray:
        return self[0]

    @property
    def error_bound(self) -> float:
        return self[1]


class TiledReconstructor(WorkerPoolMixin):
    """Progressive reconstruction of a tiled field with a global bound.

    Per-tile :class:`~repro.core.reconstruct.Reconstructor` instances —
    and through them the retained incremental decode state — are built
    lazily on first touch, so wrapping a 1000-tile field costs nothing
    until a reconstruction actually needs a tile. Same-geometry tiles
    share one :class:`~repro.decompose.MultilevelTransform`.

    ``num_workers > 1`` decodes the selected tiles concurrently through
    the instance's shared thread pool. Per-tile reconstructors are kept
    serial (their own ``num_workers=0``) so tile jobs never nest pool
    work inside pool work.
    """

    def __init__(
        self,
        tiled: TiledField,
        num_workers: int = 0,
        incremental: bool = True,
    ) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        self.tiled = tiled
        self.num_workers = int(num_workers)
        self.incremental = bool(incremental)
        self._recons: dict[int, Reconstructor] = {}
        self._transforms: dict[tuple, MultilevelTransform] = {}
        self._state_lock = threading.Lock()

    def _pool_size(self) -> int:
        return self.num_workers

    def _transform_for(self, field: RefactoredField) -> MultilevelTransform:
        key = (tuple(field.shape), field.num_levels, field.mode,
               field.min_size)
        with self._state_lock:
            transform = self._transforms.get(key)
        if transform is None:
            transform = MultilevelTransform(
                field.shape,
                num_levels=field.num_levels,
                mode=field.mode,
                min_size=field.min_size,
            )
            transform.level_indices()  # warm before any concurrent use
            with self._state_lock:
                transform = self._transforms.setdefault(key, transform)
        return transform

    def _reconstructor_for(self, position: int) -> Reconstructor:
        """Tile *position*'s reconstructor, built on first touch.

        Touching a lazily-opened tiled field here also opens the tile's
        sub-field (one index fetch); untouched tiles stay unopened.
        Runs inside the per-tile decode jobs, so first-touch opens of
        different tiles — store I/O on a lazy field — overlap across
        the worker pool instead of serializing up front. Construction
        happens outside the memo lock; positions are unique per step,
        so duplicate construction cannot arise within one call.
        """
        with self._state_lock:
            recon = self._recons.get(position)
        if recon is None:
            field = self.tiled.fields[position]
            recon = Reconstructor(
                field,
                incremental=self.incremental,
                transform=self._transform_for(field),
            )
            with self._state_lock:
                recon = self._recons.setdefault(position, recon)
        return recon

    @property
    def touched_tiles(self) -> list[int]:
        """Tile positions whose reconstructors exist (sorted)."""
        with self._state_lock:
            return sorted(self._recons)

    def touched_reconstructors(self) -> list[Reconstructor]:
        """Touched tiles' reconstructors, in tile-position order.

        The public window onto per-tile progressive state (fields,
        fetch progress, decode counters) — e.g. the service layer walks
        it to prefetch each touched tile's next planned plane group.
        """
        with self._state_lock:
            recons = dict(self._recons)
        return [recons[i] for i in sorted(recons)]

    @property
    def fetched_bytes(self) -> int:
        """Cumulative payload bytes fetched across touched tiles."""
        return sum(r.fetched_bytes for r in self.touched_reconstructors())

    def decode_state_bytes(self) -> int:
        """Resident bytes of retained decode state across touched tiles."""
        return sum(
            r.decode_state_bytes() for r in self.touched_reconstructors()
        )

    def reconstruct(
        self,
        tolerance: float | None = None,
        relative: bool = False,
        region: Sequence | None = None,
        on_fault: str = "raise",
    ) -> "TiledReconstructionResult":
        """(stitched data, achieved global L∞ bound) at *tolerance*.

        Tiles partition the domain, so the global bound is the max of
        per-tile bounds; each touched tile fetches and decodes only its
        own increment. ``relative=True`` interprets the tolerance as a
        fraction of the *global* value range (per-tile ranges would
        weaken the guarantee on quiet tiles); combining it with
        ``tolerance=None`` is rejected — near-lossless retrieval has no
        fraction to scale. On a constant field (``value_range == 0``)
        relative requests short-circuit to the documented near-lossless
        path, matching :meth:`Reconstructor.reconstruct`.

        ``region`` restricts retrieval to a hyperslab (per-axis
        ``slice``/``(start, stop)``/``None`` entries, global
        coordinates): only overlapping tiles are touched, the returned
        array has the region's extents, and the bound covers exactly
        those tiles. Tiles keep their progressive state across calls,
        so walking a staircase over a region refines incrementally and
        later widening the region only pays for the new tiles.

        ``on_fault="degrade"`` turns store faults into a degraded
        answer instead of an exception: a tile whose fetch fails is
        answered from its last committed refinement (see
        :meth:`Reconstructor.reconstruct`); a tile that faults before
        it ever opened contributes zeros and an ``inf`` bound. The
        returned :class:`TiledReconstructionResult` unpacks like the
        usual ``(data, error_bound)`` pair and records ``degraded`` /
        ``failed_tiles`` / ``failed_groups``; a later call at the same
        tolerance retries exactly the failed increments.
        """
        if on_fault not in ("raise", "degrade"):
            raise ValueError(
                f'on_fault must be "raise" or "degrade", got {on_fault!r}'
            )
        if relative and tolerance is None:
            raise ValueError(
                "relative=True requires a tolerance; near-lossless "
                "retrieval (tolerance=None) has no value range to scale"
            )
        tol: float | None = None
        if tolerance is not None:
            tol = float(tolerance)
            if not math.isfinite(tol):
                raise ValueError(f"tolerance must be finite, got {tol}")
            if tol < 0:
                raise ValueError("tolerance must be >= 0")
            if relative:
                if self.tiled.value_range == 0.0:
                    # Constant field: any fraction of a zero range is 0;
                    # fetch everything deliberately (near-lossless).
                    tol = None
                else:
                    tol = tol * self.tiled.value_range
        if region is None:
            region_slices = tuple(slice(0, s) for s in self.tiled.shape)
        else:
            region_slices = normalize_region(region, self.tiled.shape)
        out_shape = tuple(s.stop - s.start for s in region_slices)
        out = np.empty(out_shape, dtype=self.tiled.dtype)
        selected = self.tiled.tiles_overlapping(region_slices)
        jobs = [(pos, overlap) for pos, _, overlap in selected]

        def decode_tile(job):
            # First-touch construction happens here, inside the fan-out:
            # on a store-backed field the per-tile index fetches overlap
            # across workers instead of serializing before the decode.
            position, (tile_local, region_local) = job
            try:
                recon = self._reconstructor_for(position)
            except StoreError:
                if on_fault != "degrade":
                    raise
                # The tile never opened: nothing is committed, so there
                # is no stale answer to fall back on — fill with zeros
                # and report an unbounded error for this step.
                shape = tuple(
                    loc.stop - loc.start for loc in tile_local
                )
                block = np.zeros(shape, dtype=self.tiled.dtype)
                return position, region_local, block, math.inf, True, None
            result = recon.reconstruct(tolerance=tol, on_fault=on_fault)
            return (
                position,
                region_local,
                result.data[tile_local],
                result.error_bound,
                result.degraded,
                result.failed_groups,
            )

        worst = 0.0
        degraded = False
        failed_tiles: list[int] = []
        failed_groups: dict[int, list[int] | None] = {}
        for outcome in self.map_jobs(decode_tile, jobs):
            position, region_local, block, bound, tile_degraded, groups = (
                outcome
            )
            out[region_local] = block
            worst = max(worst, bound)
            if tile_degraded:
                degraded = True
                failed_tiles.append(position)
                failed_groups[position] = groups
        return TiledReconstructionResult(
            out,
            worst,
            degraded=degraded,
            failed_tiles=failed_tiles,
            failed_groups=failed_groups,
        )

    def progressive(
        self,
        tolerances: Sequence[float],
        relative: bool = False,
        region: Sequence | None = None,
        on_fault: str = "raise",
    ) -> list["TiledReconstructionResult"]:
        """Reconstruct at a decreasing tolerance schedule over *region*."""
        return [
            self.reconstruct(
                tolerance=t, relative=relative, region=region,
                on_fault=on_fault,
            )
            for t in tolerances
        ]


__all__ = [
    "TileSpec",
    "plan_tiles",
    "normalize_region",
    "TiledField",
    "LazyTiledField",
    "TiledRefactorer",
    "TiledReconstructionResult",
    "TiledReconstructor",
]
