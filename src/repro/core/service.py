"""Store-backed retrieval service: many sessions, one segment cache.

The paper's progressive-retrieval economics assume each tolerance query
fetches only the bitplane increments it needs. A server answering many
tolerance queries over many variables additionally wants those fetches
*shared*: two analysts asking for the same variable at the same
tolerance should pay the backing store once. This module provides that
layer:

* :class:`SegmentCache` — a byte-budgeted, thread-safe LRU over raw
  segment blobs, fronting any :class:`~repro.core.store.SegmentReader`;
* :class:`RetrievalService` — multiplexes concurrent
  :class:`~repro.core.reconstruct.Reconstructor` sessions and
  :func:`~repro.qoi.retrieval.retrieve_qoi` calls over one shared cache,
  with optional background prefetch of each session's next planned plane
  group (reusing the :class:`~repro.core._pool.WorkerPoolMixin` pool);
* :class:`ServiceSession` — one client's stateful progressive session.

Everything decodes from zero-copy views of the cached blobs. The cache
budget bounds the bytes the *shared* cache itself keeps resident; each
live session additionally memoizes the segments it has touched (so its
own refinement steps never refetch), releasing them when the session's
field is dropped.
"""

from __future__ import annotations

import threading
import weakref
import zlib
from collections import OrderedDict
from concurrent.futures import CancelledError, Future

from collections.abc import Sequence

from repro.core._pool import WorkerPoolMixin
from repro.core.backends import current_process_backend
from repro.core.errors import SegmentCorruptionError
from repro.core.reconstruct import ReconstructionResult, Reconstructor
from repro.core.store import open_field, open_tiled_field
from repro.core.stream import LazyRefactoredField
from repro.core.tiling import (
    LazyTiledField,
    TiledReconstructionResult,
    TiledReconstructor,
)
from repro.core.planner import RetrievalPlan


class SegmentCache:
    """Byte-budgeted LRU cache of raw segment blobs.

    Parameters
    ----------
    reader:
        Backing :class:`~repro.core.store.SegmentReader`; misses read
        through it.
    max_bytes:
        Resident-byte budget. Inserting past it evicts least-recently-used
        entries until the budget holds again; a single blob larger than
        the whole budget is served but never cached (counted in
        ``oversize``).

    Cache state is guarded by an internal lock, but backing-store reads
    happen *outside* it: concurrent misses on different keys fetch in
    parallel, cache hits never wait on an in-flight disk read, and
    concurrent misses on the *same* key are deduplicated through a
    shared in-flight future (the store is read once; the followers count
    as hits because they cost no extra store read).
    """

    def __init__(self, reader, max_bytes: int = 256 << 20) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be > 0")
        self._reader = reader
        self.max_bytes = int(max_bytes)
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._inflight: dict[str, Future] = {}
        self._checksums: dict[str, int] = {}
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.hit_bytes = 0
        self.miss_bytes = 0
        self.evictions = 0
        self.oversize = 0
        self.corruption_refetches = 0
        self.corruption_failures = 0

    def register_checksums(self, checksums: dict[str, int]) -> None:
        """Expect these CRC32s on cold fetches of the given keys.

        :func:`~repro.core.store.open_field` registers each field's
        per-segment checksums here, so every *cold* read through the
        cache is verified once before it is cached or handed to any
        waiter; cache hits reuse the already-verified bytes without
        re-hashing.
        """
        with self._lock:
            self._checksums.update(checksums)

    def resolve(self, key: str) -> tuple[bytes, bool]:
        """Return ``(blob, cold)``: the segment plus whether it was a miss.

        A hit refreshes the entry's recency; a miss reads through the
        backing store (without holding the cache lock) and inserts,
        evicting LRU entries past the budget.
        """
        with self._lock:
            blob = self._entries.get(key)
            if blob is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                self.hit_bytes += len(blob)
                return blob, False
            pending = self._inflight.get(key)
            if pending is None:
                pending = self._inflight[key] = Future()
                leader = True
            else:
                leader = False
        if not leader:
            blob = pending.result()  # piggyback on the in-flight read
            with self._lock:
                self.hits += 1
                self.hit_bytes += len(blob)
            return blob, False
        try:
            blob = self._fetch_checked(key)
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(key, None)
            pending.set_exception(exc)
            raise
        with self._lock:
            self.misses += 1
            self.miss_bytes += len(blob)
            self._insert(key, blob)
            self._inflight.pop(key, None)
        pending.set_result(blob)
        return blob, True

    def _fetch_checked(self, key: str) -> bytes:
        """Cold read of *key*, CRC-verified when a checksum is known.

        A mismatch is treated as a transient wire/storage flip first:
        the segment is re-fetched once (``corruption_refetches``); a
        second mismatch means the stored bytes themselves are bad and
        raises :class:`~repro.core.errors.SegmentCorruptionError`
        (``corruption_failures``), which propagates to every waiter
        piggybacking on this in-flight read.
        """
        with self._lock:
            expected = self._checksums.get(key)
        blob = self._reader.get(key)
        if expected is None:
            return blob
        if zlib.crc32(blob) & 0xFFFFFFFF == expected:
            return blob
        with self._lock:
            self.corruption_refetches += 1
        blob = self._reader.get(key)
        if zlib.crc32(blob) & 0xFFFFFFFF == expected:
            return blob
        with self._lock:
            self.corruption_failures += 1
        raise SegmentCorruptionError(
            f"segment {key!r} failed checksum verification after re-fetch "
            f"(expected crc32 {expected:#010x})"
        )

    def get(self, key: str) -> bytes:
        """The blob alone — :meth:`resolve` without the cold flag."""
        return self.resolve(key)[0]

    def warm(self, key: str) -> None:
        """Ensure *key* is resident (the prefetch entry point)."""
        self.resolve(key)

    def _insert(self, key: str, blob: bytes) -> None:
        if len(blob) > self.max_bytes:
            self.oversize += 1
            return
        self._entries[key] = blob
        self.current_bytes += len(blob)
        while self.current_bytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self.current_bytes -= len(evicted)
            self.evictions += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of :meth:`resolve` calls served without a store read."""
        with self._lock:
            hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0

    def stats(self) -> dict:
        """Counter snapshot, JSON-ready."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "current_bytes": self.current_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "hit_bytes": self.hit_bytes,
                "miss_bytes": self.miss_bytes,
                "hit_rate": self.hit_rate,
                "evictions": self.evictions,
                "oversize": self.oversize,
                "corruption_refetches": self.corruption_refetches,
                "corruption_failures": self.corruption_failures,
            }


class ServiceSession:
    """One client's progressive retrieval session over the service.

    Wraps a stateful :class:`~repro.core.reconstruct.Reconstructor` on a
    lazily-opened field whose fetches route through the service's shared
    :class:`SegmentCache`. After each step the service may prefetch the
    next planned plane group per level in the background, so a client
    walking a tolerance staircase finds its next increment already warm.

    ``pipelined=True`` (the service default over latency-bearing
    stores) runs each step's segment fetches one level ahead of decode
    through a bounded :class:`~repro.pipeline.retrieval
    .RetrievalPipeline` window — generalizing the service's
    fire-and-forget next-group prefetch into a scheduled window within
    the step. Results, counters, and fault semantics are bit-identical
    to the sequential path. Inert under the ``processes`` decode
    backend (level decodes must route through the worker pool whole).
    """

    def __init__(
        self,
        service: "RetrievalService",
        field: LazyRefactoredField,
        num_workers: int = 0,
        backend: str | None = None,
        pipelined: bool = False,
        pipeline_window: int = 4,
        fetch_workers: int = 2,
    ) -> None:
        if pipeline_window < 1:
            raise ValueError("pipeline_window must be >= 1")
        if fetch_workers < 1:
            raise ValueError("fetch_workers must be >= 1")
        self.service = service
        self.field = field
        self.reconstructor = Reconstructor(
            field, num_workers=num_workers, backend=backend
        )
        self.pipelined = bool(pipelined)
        self._pipeline_window = int(pipeline_window)
        self._fetch_workers = int(fetch_workers)
        self._pipeline = None

    def _reconstruct_pipelined(
        self, tolerance, relative, plan, on_fault
    ) -> ReconstructionResult:
        """One step with fetch running a level ahead of decode.

        Queued service prefetches for exactly the segments this step is
        about to fetch are cancelled first — the pipeline window
        supersedes them (already-landed prefetches still pay off as
        cache hits).
        """
        from repro.pipeline.retrieval import RetrievalPipeline

        if on_fault not in ("raise", "degrade"):
            raise ValueError(
                f"on_fault must be 'raise' or 'degrade', got {on_fault!r}"
            )
        if self._pipeline is None:
            self._pipeline = RetrievalPipeline(
                window=self._pipeline_window,
                fetch_workers=self._fetch_workers,
            )
        recon = self.reconstructor
        step = recon.plan_step(tolerance, relative=relative, plan=plan)
        self.service.cancel_stale_prefetches(recon.step_segment_keys(step))
        return recon.decode_step(
            step,
            on_fault=on_fault,
            level_runner=self._pipeline.level_runner(recon),
        )

    def reconstruct(
        self,
        tolerance: float | None = None,
        relative: bool = False,
        plan: RetrievalPlan | None = None,
        on_fault: str = "raise",
        pipelined: bool | None = None,
    ) -> ReconstructionResult:
        """One progressive step — see :meth:`Reconstructor.reconstruct`.

        ``on_fault="degrade"`` answers from the last committed
        refinement when the backing store faults mid-step (the result
        reports ``degraded=True`` and ``failed_groups``); a later call
        at the same tolerance resumes exactly the failed increment.

        ``pipelined`` overrides the session's setting for this call
        (``None`` keeps it).
        """
        use_pipeline = (
            self.pipelined if pipelined is None else bool(pipelined)
        )
        if use_pipeline and not self.reconstructor.uses_processes():
            result = self._reconstruct_pipelined(
                tolerance, relative, plan, on_fault
            )
        else:
            result = self.reconstructor.reconstruct(
                tolerance=tolerance, relative=relative, plan=plan,
                on_fault=on_fault,
            )
        self.service._schedule_prefetch(
            self.field, self.reconstructor.fetched_groups
        )
        return result

    def progressive(
        self,
        tolerances: list[float],
        relative: bool = False,
        on_fault: str = "raise",
    ) -> list[ReconstructionResult]:
        """Walk a decreasing tolerance schedule, one result per step."""
        return [
            self.reconstruct(tolerance=t, relative=relative,
                             on_fault=on_fault)
            for t in tolerances
        ]

    @property
    def fetched_bytes(self) -> int:
        """Cumulative payload bytes this session's plans required."""
        return self.reconstructor.fetched_bytes

    @property
    def fetched_groups(self) -> list[int]:
        """Cumulative per-level group counts fetched so far."""
        return self.reconstructor.fetched_groups

    @property
    def decode_state_bytes(self) -> int:
        """Resident bytes of this session's retained incremental
        decode state (integer partials + cached level values)."""
        return self.reconstructor.decode_state_bytes()

    def stats(self) -> dict:
        """This session's progressive-state accounting, JSON-ready."""
        return {
            "fetched_bytes": self.fetched_bytes,
            "fetched_groups": self.fetched_groups,
            "decode_state_bytes": self.decode_state_bytes,
        }

    def close(self) -> None:
        """Tear down the session's decode worker pool (idempotent)."""
        with self.service._sessions_lock:
            self.service._sessions.discard(self)
        pipeline, self._pipeline = self._pipeline, None
        if pipeline is not None:
            pipeline.close()
        self.reconstructor.close()

    def __enter__(self) -> "ServiceSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TiledServiceSession:
    """One client's progressive session over a *tiled* field.

    Wraps a :class:`~repro.core.tiling.TiledReconstructor` on a lazily
    opened :class:`~repro.core.tiling.LazyTiledField` whose per-tile
    segment fetches all route through the service's shared
    :class:`SegmentCache`. Region-of-interest steps touch (open,
    fetch, decode) only the tiles the hyperslab overlaps, and each
    touched tile keeps its incremental decode state across staircase
    steps. After each step the service may prefetch every touched
    tile's next planned plane group in the background.
    """

    def __init__(
        self,
        service: "RetrievalService",
        tiled: LazyTiledField,
        num_workers: int = 0,
        backend: str | None = None,
        pipelined: bool = False,
        pipeline_window: int = 4,
        fetch_workers: int = 2,
    ) -> None:
        self.service = service
        self.tiled = tiled
        self.reconstructor = TiledReconstructor(
            tiled, num_workers=num_workers, backend=backend,
            pipelined=pipelined, pipeline_window=pipeline_window,
            fetch_workers=fetch_workers,
        )
        self._last_prefetch_keys: list[str] = []

    def reconstruct(
        self,
        tolerance: float | None = None,
        relative: bool = False,
        region: Sequence | None = None,
        on_fault: str = "raise",
        pipelined: bool | None = None,
    ) -> TiledReconstructionResult:
        """One progressive step — see
        :meth:`~repro.core.tiling.TiledReconstructor.reconstruct`.

        ``on_fault="degrade"`` answers faulted tiles from their last
        committed refinement (zeros if never opened); the result's
        ``degraded``/``failed_tiles`` report what fell back, and a later
        call at the same tolerance retries only the failed increments.

        ``pipelined`` overrides the session's setting for this call
        (``None`` keeps it); a pipelined step first cancels any
        still-queued service prefetches from the previous step — its
        own fetch window supersedes them (prefetches that already
        landed still pay off as cache hits).
        """
        use_pipeline = (
            self.reconstructor.pipelined
            if pipelined is None
            else bool(pipelined)
        )
        if use_pipeline and self._last_prefetch_keys:
            self.service.cancel_stale_prefetches(self._last_prefetch_keys)
            self._last_prefetch_keys = []
        out = self.reconstructor.reconstruct(
            tolerance=tolerance, relative=relative, region=region,
            on_fault=on_fault, pipelined=pipelined,
        )
        if self.service.prefetch:
            # Batch every touched tile's next-group keys into one
            # scheduling round: a wide region can touch hundreds of
            # tiles, and the futures lock is shared across sessions.
            keys: list[str] = []
            for recon in self.reconstructor.touched_reconstructors():
                keys.extend(self.service._next_group_keys(
                    recon.field, recon.fetched_groups
                ))
            self.service._enqueue_prefetch(keys)
            self._last_prefetch_keys = keys
        return out

    def progressive(
        self,
        tolerances: Sequence[float],
        relative: bool = False,
        region: Sequence | None = None,
        on_fault: str = "raise",
    ) -> list[TiledReconstructionResult]:
        """Walk a decreasing tolerance schedule over *region*."""
        return [
            self.reconstruct(tolerance=t, relative=relative, region=region,
                             on_fault=on_fault)
            for t in tolerances
        ]

    @property
    def fetched_bytes(self) -> int:
        """Cumulative payload bytes fetched across touched tiles."""
        return self.reconstructor.fetched_bytes

    @property
    def tiles_touched(self) -> int:
        """Tiles whose reconstructors (decode state) exist so far."""
        return len(self.reconstructor.touched_tiles)

    @property
    def decode_state_bytes(self) -> int:
        """Resident bytes of retained incremental decode state across
        this session's touched tiles."""
        return self.reconstructor.decode_state_bytes()

    def stats(self) -> dict:
        """This session's progressive-state accounting, JSON-ready.

        I/O counters aggregate over wherever the session's tiles decode:
        the parent's lazy tile fields (serial/thread backends, reads
        through the shared cache) or the worker-resident reconstructors
        (process backend, reads direct from the store).
        """
        io = self.reconstructor.aggregate_io_counters()
        return {
            "tiles": self.tiled.num_tiles,
            "tiles_touched": self.tiles_touched,
            "fetched_bytes": self.fetched_bytes,
            "decode_state_bytes": self.decode_state_bytes,
            "segment_reads": io.segment_reads,
            "cold_bytes": io.cold_bytes,
            "cache_hit_bytes": io.cache_hit_bytes,
        }

    def close(self) -> None:
        """Tear down the session's decode worker pool (idempotent)."""
        with self.service._sessions_lock:
            self.service._sessions.discard(self)
        self.reconstructor.close()

    def __enter__(self) -> "TiledServiceSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _store_bears_latency(store) -> bool:
    """True when *store* charges per-access latency worth pipelining.

    Checks the store itself and — through wrapper ``__getattr__``
    passthrough (:class:`~repro.core.faults.FaultInjectingStore`,
    :class:`~repro.core.faults.ResilientReader`) — whatever it fronts:
    injected ``latency_s`` or a :class:`~repro.core.store
    .DirectoryStore`-style ``file_open_latency_s``. In-memory stores
    have neither, and a pipelined session over them would pay window
    bookkeeping for nothing.
    """
    for attr in ("latency_s", "file_open_latency_s"):
        value = getattr(store, attr, None)
        if isinstance(value, (int, float)) and value > 0:
            return True
    return False


class _PrefetchAwareCache:
    """Shared-cache facade that attributes hits to landed prefetches.

    Duck-types the :class:`SegmentCache` surface that
    :func:`~repro.core.store.open_field` uses (``resolve``/``get``/
    ``warm``/``register_checksums``/``__contains__``), delegating
    everything to the service's shared cache; on a warm ``resolve`` it
    additionally credits the service's ``prefetch_hits`` counter when a
    background prefetch is what made the key resident. Sessions read
    through this facade; the prefetch pool warms the shared cache
    directly (a prefetch must not count itself as its own hit).
    """

    def __init__(self, service: "RetrievalService") -> None:
        self._service = service
        self._cache = service.cache

    def resolve(self, key: str) -> tuple[bytes, bool]:
        blob, cold = self._cache.resolve(key)
        if not cold:
            self._service._note_prefetch_hit(key)
        return blob, cold

    def get(self, key: str) -> bytes:
        return self.resolve(key)[0]

    def warm(self, key: str) -> None:
        self._cache.warm(key)

    def register_checksums(self, checksums: dict[str, int]) -> None:
        self._cache.register_checksums(checksums)

    def __contains__(self, key: str) -> bool:
        return key in self._cache


class RetrievalService(WorkerPoolMixin):
    """Multiplex progressive retrieval sessions over one segment cache.

    Parameters
    ----------
    store:
        Backing :class:`~repro.core.store.SegmentReader` holding fields
        written by :func:`~repro.core.store.store_field`.
    cache_bytes:
        Byte budget of the shared :class:`SegmentCache`.
    prefetch:
        When true, each session step schedules a background warm of the
        next unfetched plane group per level — the segments a tighter
        follow-up tolerance would need first — hiding store latency
        behind client compute.
    num_workers:
        Prefetch worker threads (only used — and only validated — when
        ``prefetch`` is true).

    The service object is safe to share across threads: sessions are
    independent, and the cache serializes its own state.
    """

    def __init__(
        self,
        store,
        cache_bytes: int = 256 << 20,
        prefetch: bool = False,
        num_workers: int = 2,
    ) -> None:
        if prefetch and num_workers < 1:
            raise ValueError("num_workers must be >= 1 when prefetching")
        self.store = store
        self.cache = SegmentCache(store, max_bytes=cache_bytes)
        self.prefetch = bool(prefetch)
        self.num_workers = int(num_workers)
        self.prefetch_requests = 0
        self.prefetch_failures = 0
        self.prefetch_hits = 0
        self.prefetch_cancelled = 0
        self.prefetch_skipped = 0
        self._prefetch_futures: list = []
        # Queued-but-unfinished warms by key (cancellation targets) and
        # keys a prefetch actually pulled cold (hit-attribution set) —
        # both guarded, with the counters above, by the futures lock.
        self._prefetch_pending: dict[str, Future] = {}
        self._prefetch_landed: set[str] = set()
        self._futures_lock = threading.Lock()
        self._session_cache = _PrefetchAwareCache(self)
        # Live sessions, tracked weakly so abandoned sessions (never
        # close()d) don't leak; stats() reports their retained
        # decode-state residency. The lock covers add/discard/iteration
        # (WeakSet defers GC removals during iteration, but not
        # concurrent adds from other threads).
        self._sessions: "weakref.WeakSet[ServiceSession]" = weakref.WeakSet()
        self._sessions_lock = threading.Lock()

    def _pool_size(self) -> int:
        return max(1, self.num_workers)

    def open(self, name: str) -> LazyRefactoredField:
        """Open *name* lazily with fetches routed through the shared cache.

        Each call returns a fresh field (sessions must not share
        progressive state); the segment bytes behind them are shared.
        """
        return open_field(self.store, name, cache=self._session_cache)

    def session(
        self,
        name: str,
        num_workers: int = 0,
        backend: str | None = None,
        pipelined: bool | None = None,
        pipeline_window: int = 4,
        fetch_workers: int = 2,
    ) -> ServiceSession:
        """Start a progressive session over variable *name*.

        ``num_workers``/``backend`` are forwarded to the session's
        :class:`~repro.core.reconstruct.Reconstructor` for per-level
        decode parallelism; they are independent of the service's
        prefetch pool. Under the ``processes`` backend segment fetches
        still happen parent-side through the shared cache (workers do
        compute only), so caching and prefetch behave identically.

        ``pipelined=None`` (the default) turns the pipelined fetch
        window on exactly when the backing store bears per-access
        latency (injected ``latency_s`` or directory-store file-open
        latency) — the case where overlapping fetch with decode pays;
        pass ``True``/``False`` to force it.
        """
        if pipelined is None:
            pipelined = _store_bears_latency(self.store)
        session = ServiceSession(
            self, self.open(name), num_workers=num_workers,
            backend=backend, pipelined=pipelined,
            pipeline_window=pipeline_window, fetch_workers=fetch_workers,
        )
        with self._sessions_lock:
            self._sessions.add(session)
        return session

    def open_tiled(self, name: str) -> LazyTiledField:
        """Open tiled field *name* with fetches routed through the cache.

        Each call returns a fresh field (sessions must not share
        progressive state); the segment bytes behind every tile are
        shared through the service cache — two sessions touching the
        same tile pay the backing store once.
        """
        return open_tiled_field(self.store, name, cache=self._session_cache)

    def tiled_session(
        self,
        name: str,
        num_workers: int = 0,
        backend: str | None = None,
        pipelined: bool | None = None,
        pipeline_window: int = 4,
        fetch_workers: int = 2,
    ) -> TiledServiceSession:
        """Start a progressive session over tiled variable *name*.

        ``num_workers``/``backend`` are forwarded to the session's
        :class:`~repro.core.tiling.TiledReconstructor` for concurrent
        per-tile decoding; they are independent of the service's
        prefetch pool. The session supports region-of-interest steps
        (``reconstruct(region=...)``). Under the ``processes`` backend
        tiles decode in worker processes that read the store directly —
        bypassing the service's shared cache and prefetch (which are
        naturally inert: no parent-side reconstructors exist to walk).

        ``pipelined=None`` (the default) turns the per-tile pipelined
        fetch/decode overlap on exactly when the backing store bears
        per-access latency; pass ``True``/``False`` to force it.
        """
        if pipelined is None:
            pipelined = _store_bears_latency(self.store)
        session = TiledServiceSession(
            self, self.open_tiled(name), num_workers=num_workers,
            backend=backend, pipelined=pipelined,
            pipeline_window=pipeline_window, fetch_workers=fetch_workers,
        )
        with self._sessions_lock:
            self._sessions.add(session)
        return session

    def retrieve_qoi(self, qoi, tolerance: float, **kwargs):
        """QoI-controlled retrieval over lazily-opened variables.

        Opens every variable the QoI references through the shared cache
        and runs :func:`repro.qoi.retrieval.retrieve_qoi` (Algorithm 3);
        ``kwargs`` are forwarded (``method``, ``initial_bounds``, ...).
        The result's ``cold_bytes``/``cache_hit_bytes`` report how much
        of the fetched traffic the cache absorbed.
        """
        from repro.qoi.retrieval import retrieve_qoi

        fields = {name: self.open(name) for name in qoi.variables()}
        return retrieve_qoi(fields, qoi, tolerance, **kwargs)

    # -- prefetch ---------------------------------------------------------
    def _next_group_keys(
        self, field: LazyRefactoredField, fetched_groups: list[int]
    ) -> list[str]:
        """Store keys of the next unfetched, uncached group per level."""
        keys = []
        for lv, have in zip(field.levels, fetched_groups):
            refs = getattr(lv, "refs", None)
            if refs and have < len(refs):
                key = refs[have].key
                if key not in self.cache:
                    keys.append(key)
        return keys

    def _schedule_prefetch(
        self, field: LazyRefactoredField, fetched_groups: list[int]
    ) -> None:
        """Warm the next unfetched group per level in the background."""
        if not self.prefetch:
            return
        self._enqueue_prefetch(self._next_group_keys(field, fetched_groups))

    def _enqueue_prefetch(self, keys: list[str]) -> None:
        """Submit background warms for *keys* under one lock round."""
        if not keys:
            return
        pool = self._worker_pool()
        with self._futures_lock:
            self._prefetch_futures = [
                f for f in self._prefetch_futures if not f.done()
            ]
            for key in keys:
                self.prefetch_requests += 1
                future = pool.submit(self._safe_warm, key)
                self._prefetch_pending[key] = future
                self._prefetch_futures.append(future)

    def _safe_warm(self, key: str) -> None:
        """Speculative cache warm: failures are counted, never raised.

        A prefetched segment the client never asked for must not crash
        anything; if the client *does* ask for it later, the resolve
        retries the store and surfaces the real error then. A key that
        became resident since it was queued (a session's own fetch beat
        the prefetch pool to it) is skipped without touching the cache
        counters; a key this warm actually pulled cold is remembered so
        a later session read can be credited as a ``prefetch_hit``.
        """
        with self._futures_lock:
            self._prefetch_pending.pop(key, None)
        try:
            if key in self.cache:
                with self._futures_lock:
                    self.prefetch_skipped += 1
                return
            _, cold = self.cache.resolve(key)
            if cold:
                with self._futures_lock:
                    self._prefetch_landed.add(key)
        except Exception:  # reprolint: disable=R2 -- speculative warm: the resolve path retries and surfaces the real error
            self.prefetch_failures += 1

    def cancel_stale_prefetches(self, keys) -> int:
        """Cancel still-queued prefetch warms for *keys*; return count.

        The pipelined sessions call this with the segment keys their
        next window is about to fetch anyway: a warm that has not
        started yet would only duplicate scheduling work, so it is
        pulled from the queue (``prefetch_cancelled``). Warms already
        running — or already landed — are left alone; landed ones still
        pay off as cache hits.
        """
        cancelled = 0
        with self._futures_lock:
            for key in keys:
                future = self._prefetch_pending.pop(key, None)
                if future is not None and future.cancel():
                    cancelled += 1
                    self.prefetch_cancelled += 1
        return cancelled

    def _note_prefetch_hit(self, key: str) -> None:
        """Credit a warm session read to the prefetch that landed it.

        Called by the sessions' cache facade on every non-cold resolve;
        each landed prefetch is credited at most once (the first read
        that found it resident is the latency actually hidden).
        """
        with self._futures_lock:
            if key in self._prefetch_landed:
                self._prefetch_landed.discard(key)
                self.prefetch_hits += 1

    def drain_prefetch(self) -> None:
        """Block until every scheduled prefetch has settled.

        Prefetch failures never raise here (they are speculative), and
        warms cancelled by :meth:`cancel_stale_prefetches` are simply
        skipped; see ``prefetch_failures``/``prefetch_cancelled``.
        """
        with self._futures_lock:
            futures, self._prefetch_futures = self._prefetch_futures, []
        for f in futures:
            try:
                f.result()
            except CancelledError:
                pass

    def stats(self) -> dict:
        """Cache counters plus backing-store read accounting, JSON-ready.

        ``sessions`` reports the live progressive sessions and the bytes
        their incremental decode engines keep resident (integer partials
        plus cached level values) — the memory the service trades for
        refinement steps that decode only the increment.

        ``pool`` is the shared process backend's health snapshot
        (respawns, task retries, quarantines, deadline kills — see
        :meth:`~repro.core.backends.ProcessBackend.health`) when this
        service resolves to the ``processes`` backend and a pool
        exists, else ``None``. After a pool replacement (the shared
        backend growing mid-session) it reports the *current* pool.
        """
        with self._sessions_lock:
            sessions = list(self._sessions)
        with self._futures_lock:
            prefetch_requests = self.prefetch_requests
            prefetch_hits = self.prefetch_hits
            prefetch_cancelled = self.prefetch_cancelled
            prefetch_skipped = self.prefetch_skipped
        pool = None
        if self.uses_processes():
            backend = current_process_backend()
            if backend is not None:
                pool = backend.health()
        return {
            "cache": self.cache.stats(),
            "prefetch_requests": prefetch_requests,
            "prefetch_failures": self.prefetch_failures,
            "prefetch_hits": prefetch_hits,
            "prefetch_cancelled": prefetch_cancelled,
            "prefetch_skipped": prefetch_skipped,
            "store_reads": getattr(self.store, "reads", None),
            "store_bytes_read": getattr(self.store, "bytes_read", None),
            "pool": pool,
            "sessions": {
                "open": len(sessions),
                "decode_state_bytes": sum(
                    s.decode_state_bytes for s in sessions
                ),
                # Tiled-session residency: decode state exists only for
                # tiles a reconstruction touched (plain sessions count 0).
                "tiles_touched": sum(
                    getattr(s, "tiles_touched", 0) for s in sessions
                ),
            },
        }

    def close(self) -> None:
        """Drain outstanding prefetches and stop the worker pool."""
        try:
            self.drain_prefetch()
        finally:
            super().close()


__all__ = [
    "SegmentCache",
    "RetrievalService",
    "ServiceSession",
    "TiledServiceSession",
]
