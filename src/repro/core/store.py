"""Segment stores: where refactored plane groups live.

The paper's end-to-end retrieval study (Fig. 14) observes that HP-MDR
"creates many small files", making I/O overhead significant. To let the
benchmarks reproduce that effect we provide:

* :class:`MemoryStore` — dict-backed, for tests and kernels-only runs;
* :class:`DirectoryStore` — one file per segment plus a JSON manifest
  (the actual layout MDR-style stores use), with an accounting model of
  per-file open latency so end-to-end timing studies can charge the
  small-file penalty without real disks dominating CI;
* :class:`ShardedDirectoryStore` — the same layout hashed across a fixed
  number of shard subdirectories, the standard mitigation once a campaign
  writes more segments than one directory (or one metadata server)
  comfortably holds.

All three satisfy the :class:`SegmentReader` protocol that the lazy
retrieval layer (:func:`open_field`, :class:`repro.core.service.RetrievalService`)
is written against, so any object with ``get``/``size_of``/``keys`` —
an object store client, a test double — can back progressive sessions.

Keys are ``(variable, level, group)`` triples flattened to strings.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import threading
import zlib
from contextlib import contextmanager, nullcontext
from pathlib import Path
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.core.errors import (
    SegmentCorruptionError,
    SegmentNotFoundError,
    TransientStoreError,
)
from repro.core.stream import (
    LazyRefactoredField,
    LevelStream,
    RefactoredField,
    SegmentRef,
)
from repro.lossless.hybrid import CompressedGroup


@runtime_checkable
class SegmentReader(Protocol):
    """Read side of a segment store — what retrieval needs.

    ``get(key)`` returns the segment blob (raising ``KeyError`` when
    absent), ``size_of(key)`` its serialized size *without* fetching it
    (manifest lookup), ``keys()`` the sorted stored keys, and membership
    tests route through ``__contains__``.
    """

    def get(self, key: str) -> bytes: ...

    def size_of(self, key: str) -> int: ...

    def keys(self) -> list[str]: ...

    def __contains__(self, key: str) -> bool: ...


@runtime_checkable
class SegmentStore(SegmentReader, Protocol):
    """A :class:`SegmentReader` that also accepts writes."""

    def put(self, key: str, blob: bytes) -> None: ...


def segment_key(variable: str, level: int, group: int) -> str:
    """Canonical segment naming: ``<var>.L<level>.G<group>``."""
    if "/" in variable or "\0" in variable:
        raise ValueError(f"invalid variable name {variable!r}")
    return f"{variable}.L{level}.G{group}"


class MemoryStore:
    """In-memory segment store (dict-backed).

    Counts ``reads``/``writes`` so tests can assert exactly how many
    segments an operation touched.
    """

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}
        self._stats_lock = threading.Lock()
        self.reads = 0
        self.writes = 0

    def put(self, key: str, blob: bytes) -> None:
        """Store *blob* under *key*, overwriting any previous value."""
        self._blobs[key] = bytes(blob)
        self.writes += 1

    def get(self, key: str) -> bytes:
        """Return the blob stored under *key*.

        Raises :class:`~repro.core.errors.SegmentNotFoundError` (a
        ``KeyError`` subclass) when absent, so callers can tell
        "missing" from "transient" without string matching.
        """
        with self._stats_lock:  # concurrent sessions share one store
            self.reads += 1
        try:
            return self._blobs[key]
        except KeyError:
            raise SegmentNotFoundError(
                f"segment {key!r} not in store"
            ) from None

    def __contains__(self, key: str) -> bool:
        return key in self._blobs

    # Shipped by value to process-backend workers (each gets its own
    # copy of blobs and counters); only the lock cannot travel.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_stats_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()

    def keys(self) -> list[str]:
        """Sorted list of stored segment keys."""
        return sorted(self._blobs)

    def size_of(self, key: str) -> int:
        """Serialized size of *key*'s blob, without counting as a read."""
        try:
            return len(self._blobs[key])
        except KeyError:
            raise SegmentNotFoundError(
                f"segment {key!r} not in store"
            ) from None

    def total_bytes(self) -> int:
        """Sum of all stored blob sizes."""
        return sum(len(b) for b in self._blobs.values())


class DirectoryStore:
    """One-file-per-segment store with a JSON manifest.

    Parameters
    ----------
    root:
        Directory holding the segment files plus ``manifest.json``
        (created if missing; an existing manifest is loaded).
    file_open_latency_s:
        Modeled per-file open cost. It is *accounted*, not slept:
        :meth:`io_time_estimate` returns the modeled wall time of the
        reads performed so far given a bandwidth, which the Fig. 14
        benchmark charges on top of kernel time.

    Writes update the manifest file immediately by default; bulk writers
    should wrap their puts in :meth:`batch` (as :func:`store_field` does)
    so the manifest is flushed once instead of rewritten per segment —
    the manifest is O(#segments), so per-put flushes are quadratic.
    ``manifest_writes`` counts actual manifest rewrites.
    """

    MANIFEST = "manifest.json"

    def __init__(
        self, root: str | Path, file_open_latency_s: float = 2e-4
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if file_open_latency_s < 0:
            raise ValueError("file_open_latency_s must be >= 0")
        self.file_open_latency_s = file_open_latency_s
        self._stats_lock = threading.Lock()
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.manifest_writes = 0
        self._deferring = False
        self._dirty = False
        self._manifest_path = self.root / self.MANIFEST
        if self._manifest_path.exists():
            try:
                manifest = json.loads(self._manifest_path.read_text())
            except (ValueError, UnicodeDecodeError) as exc:
                raise SegmentCorruptionError(
                    f"manifest at {self._manifest_path} is corrupt: {exc}"
                ) from exc
            if not isinstance(manifest, dict):
                raise SegmentCorruptionError(
                    f"manifest at {self._manifest_path} is corrupt: "
                    f"expected an object, got {type(manifest).__name__}"
                )
            self._manifest = manifest
        else:
            self._manifest = {}

    def _path_for(self, key: str) -> Path:
        """Filesystem location of *key* — the shard hook subclasses override."""
        return self.root / key

    def _flush_manifest(self) -> None:
        # Crash-safe: write a sibling temp file, fsync it, and rename it
        # into place. A crash mid-flush leaves either the old manifest
        # or the new one — never a truncated JSON blob (os.replace is
        # atomic within one directory).
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=self.MANIFEST + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(self._manifest, indent=0))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self._manifest_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.manifest_writes += 1
        self._dirty = False

    @contextmanager
    def batch(self):
        """Defer manifest flushes across a bulk write.

        Within the context, :meth:`put` updates the in-memory manifest
        only; one flush happens on exit (if anything changed). Nestable —
        only the outermost context flushes.
        """
        if self._deferring:  # nested: outermost context owns the flush
            yield self
            return
        self._deferring = True
        try:
            yield self
        finally:
            self._deferring = False
            if self._dirty:
                self._flush_manifest()

    def put(self, key: str, blob: bytes) -> None:
        """Write *blob* as its own file and record it in the manifest."""
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(blob)
        self._manifest[key] = len(blob)
        self._dirty = True
        if not self._deferring:
            self._flush_manifest()
        self.writes += 1

    def get(self, key: str) -> bytes:
        """Read one segment file, charging the accounting counters.

        Raises :class:`~repro.core.errors.SegmentNotFoundError` when
        the file is absent and
        :class:`~repro.core.errors.TransientStoreError` for other OS
        failures (a flaky filesystem read is worth retrying; a missing
        segment is not).
        """
        path = self._path_for(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            raise SegmentNotFoundError(
                f"segment {key!r} not in store"
            ) from None
        except OSError as exc:
            raise TransientStoreError(
                f"reading segment {key!r} failed: {exc}"
            ) from exc
        with self._stats_lock:  # concurrent sessions share one store
            self.reads += 1
            self.bytes_read += len(blob)
        return blob

    def __contains__(self, key: str) -> bool:
        return self._path_for(key).exists()

    # Shipped by value to process-backend workers: the path travels, the
    # manifest/counters are copied at ship time, the lock is recreated.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_stats_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()

    def keys(self) -> list[str]:
        """Sorted list of manifest-recorded segment keys."""
        return sorted(self._manifest)

    def size_of(self, key: str) -> int:
        """Manifest-recorded size of *key* — no file access."""
        try:
            return self._manifest[key]
        except KeyError:
            raise SegmentNotFoundError(
                f"segment {key!r} not in manifest"
            ) from None

    def total_bytes(self) -> int:
        """Sum of all manifest-recorded segment sizes."""
        return sum(self._manifest.values())

    def io_time_estimate(self, bandwidth_gbps: float = 2.0) -> float:
        """Modeled read wall-time: per-file latency + transfer time."""
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be > 0")
        with self._stats_lock:
            reads, bytes_read = self.reads, self.bytes_read
        return (
            reads * self.file_open_latency_s
            + bytes_read / (bandwidth_gbps * 1e9)
        )


class ShardedDirectoryStore(DirectoryStore):
    """A :class:`DirectoryStore` hashed across shard subdirectories.

    Segments land in ``root/shard_<xx>/<key>`` where ``<xx>`` is a stable
    CRC32 of the key modulo ``num_shards``. This keeps any single
    directory's entry count bounded — the standard fix once the paper's
    "many small files" effect starts stressing directory metadata. Keys,
    segment bytes, and the root ``manifest.json`` are identical to
    :class:`DirectoryStore`'s, but the on-disk segment *paths* differ:
    a store written with one layout must be reopened with the same
    class (reopening a flat store sharded would list keys whose files
    sit elsewhere).

    Parameters
    ----------
    root:
        Store root; shard subdirectories are created beneath it on write.
    num_shards:
        Number of hash buckets (≥ 1). Persisted to ``shards.json`` at
        the root on first use; reopening an existing sharded store with
        a different count raises (segments would resolve to the wrong
        shard directories).
    file_open_latency_s:
        As for :class:`DirectoryStore`.
    """

    SHARD_MARKER = "shards.json"

    def __init__(
        self,
        root: str | Path,
        num_shards: int = 16,
        file_open_latency_s: float = 2e-4,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = int(num_shards)
        super().__init__(root, file_open_latency_s=file_open_latency_s)
        marker = self.root / self.SHARD_MARKER
        if marker.exists():
            stored = int(json.loads(marker.read_text())["num_shards"])
            if stored != self.num_shards:
                raise ValueError(
                    f"store at {self.root} was written with "
                    f"num_shards={stored}, reopened with "
                    f"num_shards={self.num_shards}"
                )
        else:
            marker.write_text(json.dumps({"num_shards": self.num_shards}))

    def shard_of(self, key: str) -> int:
        """Stable shard index of *key* (CRC32 mod ``num_shards``)."""
        return zlib.crc32(key.encode()) % self.num_shards

    def _path_for(self, key: str) -> Path:
        return self.root / f"shard_{self.shard_of(key):02x}" / key


def segment_checksum(blob: bytes) -> int:
    """CRC32 of a segment blob — the integrity check recorded per
    segment in the index and verified on every cold fetch."""
    return zlib.crc32(blob) & 0xFFFFFFFF


def index_checksums(index: dict) -> dict[str, int]:
    """Per-segment CRC32 map from a :func:`store_field` index record.

    The composition hook for :class:`~repro.core.faults.ResilientReader`
    and :meth:`~repro.core.service.SegmentCache.register_checksums`;
    empty for indexes written before checksums were recorded.
    """
    return {
        key: int(meta["crc32"])
        for key, meta in index.get("segments", {}).items()
        if isinstance(meta, dict) and "crc32" in meta
    }


def _fetch_verified(
    get: Callable[[str], bytes], key: str, expected: int | None
) -> bytes:
    """Fetch *key* and verify its CRC32 against *expected*.

    A mismatch is first treated as transient — flips on the read path
    heal on re-fetch — so the segment is fetched once more; a second
    mismatch raises :class:`~repro.core.errors.SegmentCorruptionError`
    (the stored bytes themselves are bad).
    """
    blob = get(key)
    if expected is None or segment_checksum(blob) == expected:
        return blob
    blob = get(key)
    if segment_checksum(blob) == expected:
        return blob
    raise SegmentCorruptionError(
        f"segment {key!r} failed CRC32 verification after re-fetch "
        f"(expected {expected:#010x}, got {segment_checksum(blob):#010x})"
    )


def _parse_group(key: str, blob: bytes) -> CompressedGroup:
    """Parse a segment blob, converting structural failures to the
    typed taxonomy (a truncated file must not surface as
    ``struct.error`` from three layers down)."""
    try:
        return CompressedGroup.from_bytes(blob)
    except (ValueError, struct.error, IndexError) as exc:
        raise SegmentCorruptionError(
            f"segment {key!r} is corrupt: {exc}"
        ) from exc


def store_field(store, field: RefactoredField) -> dict:
    """Write every plane group of *field* as its own segment.

    Returns the index record that :func:`load_field` / :func:`open_field`
    need; it is also written to the store under ``<name>.index`` as
    JSON-encoded bytes. Besides the per-level key lists the index carries
    a ``"segments"`` table with each segment's serialized size, plane
    count, and CRC32 checksum — the metadata that lets :func:`open_field`
    plan retrievals without fetching a single group and lets every
    reader verify fetched bytes. Directory-backed stores get their
    manifest flushed once (via :meth:`DirectoryStore.batch`), not per
    segment.
    """
    meta_field = RefactoredField(
        shape=field.shape,
        dtype=field.dtype,
        mode=field.mode,
        num_levels=field.num_levels,
        min_size=field.min_size,
        group_size=field.group_size,
        design=field.design,
        level_weights=field.level_weights,
        levels=[
            LevelStream(
                level=lv.level,
                num_elements=lv.num_elements,
                num_bitplanes=lv.num_bitplanes,
                exponent=lv.exponent,
                max_abs=lv.max_abs,
                layout=lv.layout,
                warp_size=lv.warp_size,
                groups=[],
                signed_encoding=lv.signed_encoding,
            )
            for lv in field.levels
        ],
        value_range=field.value_range,
        name=field.name,
    )
    index = {
        "field": meta_field.to_bytes().hex(),
        "groups": {},
        "segments": {},
    }
    batch = store.batch() if hasattr(store, "batch") else nullcontext()
    with batch:
        for lv in field.levels:
            for g, group in enumerate(lv.groups):
                key = segment_key(field.name, lv.level, g)
                blob = group.to_bytes()
                store.put(key, blob)
                index["groups"].setdefault(str(lv.level), []).append(key)
                index["segments"][key] = {
                    "bytes": len(blob),
                    "planes": group.num_planes,
                    "crc32": segment_checksum(blob),
                }
        store.put(
            f"{field.name}.index", json.dumps(index).encode()
        )
    return index


def _read_index(
    get: Callable[[str], bytes], name: str
) -> tuple[dict, RefactoredField]:
    key = f"{name}.index"
    raw = bytes(get(key))
    try:
        index = json.loads(raw.decode())
        if not isinstance(index, dict) or not isinstance(
            index.get("groups"), dict
        ):
            raise ValueError("index record is not a field index object")
        field = RefactoredField.from_bytes(bytes.fromhex(index["field"]))
    except (ValueError, KeyError, TypeError, struct.error,
            UnicodeDecodeError) as exc:
        raise SegmentCorruptionError(
            f"index record {key!r} is corrupt: {exc}"
        ) from exc
    return index, field


def load_field(
    store,
    name: str,
    groups_per_level: list[int] | None = None,
    verify: bool = True,
):
    """Load a field's metadata and the requested prefix of groups.

    ``groups_per_level=None`` loads everything *eagerly*: one ``get`` per
    segment up front. This is the baseline read path the end-to-end
    retrieval benchmarks time; services answering tolerance queries
    should prefer :func:`open_field`, which defers each segment fetch
    until a decode touches it.

    ``verify=True`` (the default) checks every fetched segment against
    its index-recorded CRC32 — a mismatch is re-fetched once (wire
    flips heal), then raised as
    :class:`~repro.core.errors.SegmentCorruptionError`. Indexes written
    before checksums were recorded load unverified either way.
    """
    index, field = _read_index(store.get, name)
    checksums = index_checksums(index) if verify else {}
    for li, lv in enumerate(field.levels):
        keys = index["groups"].get(str(lv.level), [])
        want = (
            len(keys) if groups_per_level is None else
            min(groups_per_level[li], len(keys))
        )
        lv.groups = [
            _parse_group(
                keys[g],
                _fetch_verified(store.get, keys[g], checksums.get(keys[g])),
            )
            for g in range(want)
        ]
    return field


def tiled_index_key(name: str) -> str:
    """Store key of a tiled field's index record: ``<name>.tiles``."""
    if "/" in name or "\0" in name:
        raise ValueError(f"invalid variable name {name!r}")
    return f"{name}.tiles"


def store_tiled_field(store, tiled) -> dict:
    """Write a :class:`~repro.core.tiling.TiledField` tile by tile.

    Every tile's sub-field goes through :func:`store_field` (per-segment
    keys under the tile's own name, e.g. ``var.T0_1_0.L2.G3``), and one
    tiled index record — domain shape/dtype/value range plus each tile's
    placement, sub-field name, and stored size — lands under
    ``<name>.tiles``. Directory-backed stores get their manifest flushed
    once for the whole write (the per-tile :func:`store_field` batches
    nest inside this one), not per tile or per segment.

    Returns the tiled index record that :func:`open_tiled_field` reads.
    """
    index = {
        "name": tiled.name,
        "shape": [int(s) for s in tiled.shape],
        "dtype": np.dtype(tiled.dtype).name,
        "value_range": float(tiled.value_range),
        "tiles": [],
    }
    batch = store.batch() if hasattr(store, "batch") else nullcontext()
    with batch:
        for tile, field in zip(tiled.tiles, tiled.fields):
            store_field(store, field)
            index["tiles"].append({
                "index": [int(i) for i in tile.index],
                "offset": [int(o) for o in tile.offset],
                "shape": [int(s) for s in tile.shape],
                "field": field.name,
                "bytes": field.total_bytes(),
            })
        store.put(
            tiled_index_key(tiled.name), json.dumps(index).encode()
        )
    return index


def open_tiled_field(store, name: str, cache=None, verify: bool = True):
    """Open a stored tiled field lazily: tiles resolve on first touch.

    Reads only the ``<name>.tiles`` index record (through *cache* when
    given, exactly like :func:`open_field`); each tile's sub-field is
    opened — and its own index fetched — the first time something
    touches it, and from there segment fetches follow the usual lazy
    per-group economics. A region-of-interest reconstruction over the
    returned :class:`~repro.core.tiling.LazyTiledField` therefore pays
    the backing store only for the tiles its hyperslab overlaps.
    """
    from repro.core.tiling import LazyTiledField, TileSpec

    get = cache.get if cache is not None else store.get
    try:
        raw = bytes(get(tiled_index_key(name)))
    except KeyError:  # third-party readers may raise the bare builtin
        raise SegmentNotFoundError(
            f"no tiled field {name!r} in store (missing "
            f"{tiled_index_key(name)!r}; for untiled fields use "
            f"open_field)"
        ) from None
    try:
        index = json.loads(raw.decode())
        if not isinstance(index, dict):
            raise ValueError("tiled index is not an object")
        tiles = [
            TileSpec(
                index=tuple(t["index"]),
                offset=tuple(t["offset"]),
                shape=tuple(t["shape"]),
            )
            for t in index["tiles"]
        ]
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise SegmentCorruptionError(
            f"tiled index record {tiled_index_key(name)!r} is corrupt: "
            f"{exc}"
        ) from exc
    field = LazyTiledField(
        shape=tuple(index["shape"]),
        dtype=np.dtype(index["dtype"]),
        tiles=tiles,
        tile_field_names=[t["field"] for t in index["tiles"]],
        tile_bytes=[int(t["bytes"]) for t in index["tiles"]],
        value_range=float(index["value_range"]),
        name=index["name"],
        opener=lambda field_name: open_field(
            store, field_name, cache=cache, verify=verify
        ),
    )
    # The process execution backend ships (store, verify) to its workers
    # so they can open tile sub-fields store-side — the opener closure
    # above cannot cross a process boundary. The shared cache stays
    # parent-side by design: workers read the store directly.
    field.source = (store, verify)
    return field


def open_field(
    store,
    name: str,
    cache=None,
    verify: bool = True,
) -> LazyRefactoredField:
    """Open a stored field lazily: fetch segments on first decode touch.

    Parameters
    ----------
    store:
        Any :class:`SegmentReader` holding ``<name>.index`` plus the
        segments :func:`store_field` wrote.
    name:
        Variable name the field was stored under.
    cache:
        Optional shared :class:`repro.core.service.SegmentCache` (or any
        object with ``resolve(key) -> (blob, cold)``). When given, all
        fetches route through it, so concurrent sessions opened against
        the same cache share segment bytes; without it every fetch is a
        cold store read.
    verify:
        Check every fetched segment against its index-recorded CRC32
        (default on; indexes written before checksums existed open
        unverified either way). A mismatch is treated as transient
        first — re-fetched once — then raised as
        :class:`~repro.core.errors.SegmentCorruptionError`. With a
        cache, the checksums are registered on it instead, so
        verification happens exactly once per cold fetch and cached
        blobs are known-good.

    Returns a :class:`LazyRefactoredField`: planning runs on index
    metadata alone, and only the plane groups a reconstruction actually
    decodes are fetched — strictly fewer bytes than :func:`load_field`
    whenever the tolerance stops short of near-lossless. With a cache,
    the (immutable) index blob itself is also served from it, so warm
    session opens touch the backing store not at all.
    """
    if cache is not None:
        index, template = _read_index(cache.get, name)
    else:
        index, template = _read_index(store.get, name)
    segments = index.get("segments", {})
    checksums = index_checksums(index) if verify else {}
    level_refs: list[list[SegmentRef]] = []
    for lv in template.levels:
        refs = []
        for key in index["groups"].get(str(lv.level), []):
            meta = segments.get(key)
            if meta is not None:
                refs.append(
                    SegmentRef(
                        key=key,
                        nbytes=int(meta["bytes"]),
                        num_planes=int(meta["planes"]),
                    )
                )
            else:  # pre-metadata index: sizes via manifest, planes lazily
                refs.append(SegmentRef(key=key, nbytes=store.size_of(key)))
        level_refs.append(refs)
    if cache is not None:
        if checksums and hasattr(cache, "register_checksums"):
            cache.register_checksums(checksums)
        resolver: Callable[[str], tuple[bytes, bool]] = cache.resolve
    elif checksums:
        def resolver(key: str) -> tuple[bytes, bool]:
            return (
                _fetch_verified(store.get, key, checksums.get(key)),
                True,
            )
    else:
        def resolver(key: str) -> tuple[bytes, bool]:
            return store.get(key), True
    return LazyRefactoredField(template, level_refs, resolver)


__all__ = [
    "SegmentReader",
    "SegmentStore",
    "MemoryStore",
    "DirectoryStore",
    "ShardedDirectoryStore",
    "segment_key",
    "segment_checksum",
    "index_checksums",
    "tiled_index_key",
    "store_field",
    "load_field",
    "open_field",
    "store_tiled_field",
    "open_tiled_field",
]
