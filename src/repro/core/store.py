"""Segment stores: where refactored plane groups live.

The paper's end-to-end retrieval study (Fig. 14) observes that HP-MDR
"creates many small files", making I/O overhead significant. To let the
benchmarks reproduce that effect we provide:

* :class:`MemoryStore` — dict-backed, for tests and kernels-only runs;
* :class:`DirectoryStore` — one file per segment plus a JSON manifest
  (the actual layout MDR-style stores use), with an accounting model of
  per-file open latency so end-to-end timing studies can charge the
  small-file penalty without real disks dominating CI.

Keys are ``(variable, level, group)`` triples flattened to strings.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.stream import RefactoredField
from repro.lossless.hybrid import CompressedGroup


def segment_key(variable: str, level: int, group: int) -> str:
    """Canonical segment naming: ``<var>.L<level>.G<group>``."""
    if "/" in variable or "\0" in variable:
        raise ValueError(f"invalid variable name {variable!r}")
    return f"{variable}.L{level}.G{group}"


class MemoryStore:
    """In-memory segment store."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}
        self.reads = 0
        self.writes = 0

    def put(self, key: str, blob: bytes) -> None:
        self._blobs[key] = bytes(blob)
        self.writes += 1

    def get(self, key: str) -> bytes:
        self.reads += 1
        try:
            return self._blobs[key]
        except KeyError:
            raise KeyError(f"segment {key!r} not in store") from None

    def __contains__(self, key: str) -> bool:
        return key in self._blobs

    def keys(self) -> list[str]:
        return sorted(self._blobs)

    def size_of(self, key: str) -> int:
        return len(self._blobs[key])

    def total_bytes(self) -> int:
        return sum(len(b) for b in self._blobs.values())


class DirectoryStore:
    """One-file-per-segment store with a manifest.

    ``file_open_latency_s`` is *accounted*, not slept: ``io_time_estimate``
    returns the modeled wall time of the reads performed so far given a
    bandwidth, which the Fig. 14 benchmark charges on top of kernel time.
    """

    MANIFEST = "manifest.json"

    def __init__(
        self, root: str | Path, file_open_latency_s: float = 2e-4
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if file_open_latency_s < 0:
            raise ValueError("file_open_latency_s must be >= 0")
        self.file_open_latency_s = file_open_latency_s
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self._manifest_path = self.root / self.MANIFEST
        if self._manifest_path.exists():
            self._manifest = json.loads(self._manifest_path.read_text())
        else:
            self._manifest = {}

    def _flush_manifest(self) -> None:
        self._manifest_path.write_text(json.dumps(self._manifest, indent=0))

    def put(self, key: str, blob: bytes) -> None:
        path = self.root / key
        path.write_bytes(blob)
        self._manifest[key] = len(blob)
        self._flush_manifest()
        self.writes += 1

    def get(self, key: str) -> bytes:
        path = self.root / key
        if not path.exists():
            raise KeyError(f"segment {key!r} not in store")
        blob = path.read_bytes()
        self.reads += 1
        self.bytes_read += len(blob)
        return blob

    def __contains__(self, key: str) -> bool:
        return (self.root / key).exists()

    def keys(self) -> list[str]:
        return sorted(self._manifest)

    def size_of(self, key: str) -> int:
        return self._manifest[key]

    def total_bytes(self) -> int:
        return sum(self._manifest.values())

    def io_time_estimate(self, bandwidth_gbps: float = 2.0) -> float:
        """Modeled read wall-time: per-file latency + transfer time."""
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be > 0")
        return (
            self.reads * self.file_open_latency_s
            + self.bytes_read / (bandwidth_gbps * 1e9)
        )


def store_field(store, field: RefactoredField) -> dict:
    """Write every plane group of *field* as its own segment.

    Returns the index record (metadata + keys) that
    :func:`load_field_groups` needs; store it under
    ``<name>.index`` as JSON-encoded bytes.
    """
    meta_field = RefactoredField(
        shape=field.shape,
        dtype=field.dtype,
        mode=field.mode,
        num_levels=field.num_levels,
        min_size=field.min_size,
        group_size=field.group_size,
        design=field.design,
        level_weights=field.level_weights,
        levels=[
            type(lv)(
                level=lv.level,
                num_elements=lv.num_elements,
                num_bitplanes=lv.num_bitplanes,
                exponent=lv.exponent,
                max_abs=lv.max_abs,
                layout=lv.layout,
                warp_size=lv.warp_size,
                groups=[],
                signed_encoding=lv.signed_encoding,
            )
            for lv in field.levels
        ],
        value_range=field.value_range,
        name=field.name,
    )
    index = {
        "field": meta_field.to_bytes().hex(),
        "groups": {},
    }
    for lv in field.levels:
        for g, group in enumerate(lv.groups):
            key = segment_key(field.name, lv.level, g)
            store.put(key, group.to_bytes())
            index["groups"].setdefault(str(lv.level), []).append(key)
    store.put(
        f"{field.name}.index", json.dumps(index).encode()
    )
    return index


def load_field(store, name: str, groups_per_level: list[int] | None = None):
    """Load a field's metadata and the requested prefix of groups.

    ``groups_per_level=None`` loads everything. This is the read path
    the end-to-end retrieval benchmarks time: one ``get`` per segment,
    exactly as many segments as the plan requires.
    """
    index = json.loads(bytes(store.get(f"{name}.index")).decode())
    field = RefactoredField.from_bytes(bytes.fromhex(index["field"]))
    for li, lv in enumerate(field.levels):
        keys = index["groups"].get(str(lv.level), [])
        want = (
            len(keys) if groups_per_level is None else
            min(groups_per_level[li], len(keys))
        )
        lv.groups = [
            CompressedGroup.from_bytes(store.get(keys[g]))
            for g in range(want)
        ]
    return field


__all__ = [
    "MemoryStore",
    "DirectoryStore",
    "segment_key",
    "store_field",
    "load_field",
]
