"""Typed error taxonomy for the segment I/O and compute paths.

Real storage tiers fail in qualitatively different ways, and a caller's
correct reaction differs per way:

* the segment does not exist (:class:`SegmentNotFoundError`) — retrying
  is pointless, the request itself is wrong or the campaign incomplete;
* the store hiccuped (:class:`TransientStoreError`) — a timeout, a
  dropped connection, a flaky filesystem read; retrying with backoff is
  exactly right (:class:`~repro.core.faults.RetryPolicy`);
* the bytes came back wrong (:class:`SegmentCorruptionError`) — a
  checksum mismatch or an unparseable record; one re-fetch may heal a
  path-level flip, but persistent corruption must surface loudly rather
  than crash decoders with ``struct.error`` three layers down.

Every store-facing component raises from this taxonomy. For backward
compatibility the classes also subclass the builtin exceptions the
pre-taxonomy code leaked (``KeyError`` for missing segments,
``ValueError`` for malformed streams), so existing ``except`` clauses
keep working while new callers can classify precisely.

The *compute* tier has its own branch rooted at :class:`ComputeError`:
the process backend's workers can crash, hang past a deadline, or lose
worker-resident session state across a respawn. Those failures are not
storage faults, but a degraded-mode retrieval must treat them the same
way — fall back to the last committed refinement, report the failed
tiles, retry on the next call — so the degrade paths catch
``(StoreError, ComputeError)`` as one family of recoverable faults.
"""

from __future__ import annotations


class StoreError(Exception):
    """Base of every segment-store failure this package raises.

    ``except StoreError`` is the catch-all for "the storage tier, not
    the math, went wrong" — the class the degraded-mode retrieval path
    (``reconstruct(..., on_fault="degrade")``) treats as a fault.
    """


class SegmentNotFoundError(StoreError, KeyError):
    """A requested segment key is not in the store.

    Subclasses ``KeyError`` so pre-taxonomy callers (and dict-like
    idioms) keep working; *not* retryable — the key will not appear by
    asking again.
    """


class TransientStoreError(StoreError):
    """The store failed in a way a retry may heal.

    Timeouts, interrupted reads, throttling, flaky filesystem errors.
    The default :class:`~repro.core.faults.RetryPolicy` classification
    retries exactly these (plus corruption, which one re-fetch can heal
    when the flip happened on the wire).
    """


class SegmentCorruptionError(StoreError, ValueError):
    """A fetched blob failed verification or cannot be parsed.

    Raised on CRC32 mismatches against the index-recorded checksum and
    on structurally-invalid persisted records (truncated indexes,
    garbled manifests, segments shorter than their recorded byte
    count). Subclasses ``ValueError`` because the pre-taxonomy parsers
    raised that for malformed streams.
    """


class ComputeError(Exception):
    """Base of every execution-backend failure this package raises.

    The compute-tier sibling of :class:`StoreError`: "the machinery
    running the decode, not the math or the storage, went wrong".
    Degraded-mode retrieval (``reconstruct(..., on_fault="degrade")``)
    treats this family exactly like store faults — answer from the last
    committed refinement, report the failure, retry next call.
    """


class WorkerCrashedError(ComputeError, RuntimeError):
    """A pool worker died before returning its pending results.

    Raised by :class:`~repro.core.backends.ProcessBackend` when a
    worker's death could not be healed: the replacement worker(s) also
    died running the same task (poison-task quarantine), or a
    replacement could not be brought up at all. Subclasses
    ``RuntimeError`` because the pre-taxonomy backend raised that.
    """


class WorkerTimeoutError(WorkerCrashedError, TimeoutError):
    """A task exceeded its deadline and its worker was killed.

    The deadline path (``map_calls(..., deadline=)`` or the pool-level
    default) kills the hung worker, respawns its slot, and settles the
    call with this error instead of blocking the dispatching thread
    forever. Subclasses ``TimeoutError`` for callers that classify
    timeouts generically.
    """


class WorkerStateError(ComputeError, RuntimeError):
    """Worker-resident state needed by a task is gone.

    A respawned worker starts with empty session state: a sticky-routed
    task that expected its warm per-tile reconstructor (or a shared
    object that was never shipped) raises this, and the owning engine
    heals it by re-shipping the source and retrying — it is a signal to
    rebuild, not a hard failure.
    """


#: Errors a retry may heal: transient faults, and corruption (one
#: re-fetch heals a wire-level flip). ``SegmentNotFoundError`` is
#: deliberately absent. ``TimeoutError`` covers per-attempt timeouts
#: raised below this package (e.g. a socket layer).
RETRYABLE_ERRORS: tuple[type[BaseException], ...] = (
    TransientStoreError,
    SegmentCorruptionError,
    TimeoutError,
)


__all__ = [
    "StoreError",
    "SegmentNotFoundError",
    "TransientStoreError",
    "SegmentCorruptionError",
    "ComputeError",
    "WorkerCrashedError",
    "WorkerTimeoutError",
    "WorkerStateError",
    "RETRYABLE_ERRORS",
]
