"""Typed error taxonomy for the segment I/O path.

Real storage tiers fail in qualitatively different ways, and a caller's
correct reaction differs per way:

* the segment does not exist (:class:`SegmentNotFoundError`) — retrying
  is pointless, the request itself is wrong or the campaign incomplete;
* the store hiccuped (:class:`TransientStoreError`) — a timeout, a
  dropped connection, a flaky filesystem read; retrying with backoff is
  exactly right (:class:`~repro.core.faults.RetryPolicy`);
* the bytes came back wrong (:class:`SegmentCorruptionError`) — a
  checksum mismatch or an unparseable record; one re-fetch may heal a
  path-level flip, but persistent corruption must surface loudly rather
  than crash decoders with ``struct.error`` three layers down.

Every store-facing component raises from this taxonomy. For backward
compatibility the classes also subclass the builtin exceptions the
pre-taxonomy code leaked (``KeyError`` for missing segments,
``ValueError`` for malformed streams), so existing ``except`` clauses
keep working while new callers can classify precisely.
"""

from __future__ import annotations


class StoreError(Exception):
    """Base of every segment-store failure this package raises.

    ``except StoreError`` is the catch-all for "the storage tier, not
    the math, went wrong" — the class the degraded-mode retrieval path
    (``reconstruct(..., on_fault="degrade")``) treats as a fault.
    """


class SegmentNotFoundError(StoreError, KeyError):
    """A requested segment key is not in the store.

    Subclasses ``KeyError`` so pre-taxonomy callers (and dict-like
    idioms) keep working; *not* retryable — the key will not appear by
    asking again.
    """


class TransientStoreError(StoreError):
    """The store failed in a way a retry may heal.

    Timeouts, interrupted reads, throttling, flaky filesystem errors.
    The default :class:`~repro.core.faults.RetryPolicy` classification
    retries exactly these (plus corruption, which one re-fetch can heal
    when the flip happened on the wire).
    """


class SegmentCorruptionError(StoreError, ValueError):
    """A fetched blob failed verification or cannot be parsed.

    Raised on CRC32 mismatches against the index-recorded checksum and
    on structurally-invalid persisted records (truncated indexes,
    garbled manifests, segments shorter than their recorded byte
    count). Subclasses ``ValueError`` because the pre-taxonomy parsers
    raised that for malformed streams.
    """


#: Errors a retry may heal: transient faults, and corruption (one
#: re-fetch heals a wire-level flip). ``SegmentNotFoundError`` is
#: deliberately absent. ``TimeoutError`` covers per-attempt timeouts
#: raised below this package (e.g. a socket layer).
RETRYABLE_ERRORS: tuple[type[BaseException], ...] = (
    TransientStoreError,
    SegmentCorruptionError,
    TimeoutError,
)


__all__ = [
    "StoreError",
    "SegmentNotFoundError",
    "TransientStoreError",
    "SegmentCorruptionError",
    "RETRYABLE_ERRORS",
]
