"""The refactored stream format: per-level compressed bitplane groups.

A :class:`RefactoredField` is what lands in storage after refactoring —
the multilevel metadata, and for every coefficient level a
:class:`LevelStream` holding that level's bitplane metadata plus its
hybrid-compressed plane groups. Everything serializes to plain bytes
(no pickle), so streams written under one simulated device decode under
any other: the portability property of the paper.

The lazy variants (:class:`LazyRefactoredField` / :class:`LazyLevelStream`)
present the *same* interface but resolve each ``(variable, level, group)``
segment from a backing store only when a decode actually touches it.
Planning (``bytes_for_groups`` / ``planes_in_groups`` /
``error_bound_for_groups``) runs entirely on :class:`SegmentRef` metadata,
so a tolerance query over a store fetches exactly the plane groups its
retrieval plan requires — the incremental-fetch economics of the paper's
progressive retrieval, extended to the storage layer.
"""

from __future__ import annotations

import json
import struct
import threading
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.bitplane.align import plane_error_bound
from repro.bitplane.encoding import BitplaneStream
from repro.lossless.hybrid import CompressedGroup
from repro.util.serialize import pack_arrays, unpack_arrays


@dataclass
class LevelStream:
    """One coefficient level's encoded form.

    ``groups[g]`` holds ``group_size`` consecutive bitplanes (sign plane
    first); fetching a prefix of groups yields a truncated bitplane set
    whose coefficient error is :meth:`error_bound_for_groups`.
    """

    level: int
    num_elements: int
    num_bitplanes: int
    exponent: int
    max_abs: float
    layout: str
    warp_size: int
    groups: list[CompressedGroup] = field(default_factory=list)
    signed_encoding: str = "sign_magnitude"

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def planes_in_groups(self, num_groups: int) -> int:
        """Total bitplanes contained in the first *num_groups* groups."""
        return sum(g.num_planes for g in self.groups[:num_groups])

    def bytes_for_groups(self, num_groups: int) -> int:
        """Serialized bytes fetched for the first *num_groups* groups."""
        return sum(
            len(g.to_bytes()) for g in self.groups[:num_groups]
        )

    def error_bound_for_groups(self, num_groups: int) -> float:
        """Per-coefficient L∞ bound with only *num_groups* groups fetched."""
        fetched_planes = self.planes_in_groups(num_groups)
        if self.signed_encoding == "negabinary":
            from repro.bitplane.negabinary import (
                plane_error_bound_negabinary,
            )

            return plane_error_bound_negabinary(
                self.exponent, self.num_bitplanes, fetched_planes,
                self.max_abs,
            )
        kept_mag = max(0, fetched_planes - 1)  # plane 0 is the sign plane
        return plane_error_bound(
            self.exponent, self.num_bitplanes, kept_mag, self.max_abs
        )

    def decompress_group_range(
        self, start_group: int, end_group: int
    ) -> list[np.ndarray]:
        """Packed planes of groups ``[start_group, end_group)`` only.

        The incremental unit of progressive refinement: a session that
        already decoded groups ``[0, start_group)`` decompresses (and,
        for store-backed lazy streams, fetches) exactly the new
        segments — nothing before ``start_group`` is touched. The
        returned planes begin at stored plane index
        ``planes_in_groups(start_group)``.
        """
        if not 0 <= start_group <= end_group <= self.num_groups:
            raise ValueError(
                f"group range [{start_group}, {end_group}) out of bounds "
                f"for {self.num_groups} groups"
            )
        from repro.lossless.hybrid import decompress_groups

        return decompress_groups(list(self.groups[start_group:end_group]))

    def empty_decode_state(self, dtype: np.dtype) -> "PartialDecodeState":
        """Zero-plane incremental decode state for this level's stream.

        Seed for :func:`repro.bitplane.encoding.apply_planes` /
        :func:`~repro.bitplane.encoding.finalize_decode`; carries all
        stream metadata, so only the planes from
        :meth:`decompress_group_range` are needed to refine it.
        """
        from repro.bitplane.encoding import begin_decode_state

        return begin_decode_state(
            num_elements=self.num_elements,
            num_bitplanes=self.num_bitplanes,
            exponent=self.exponent,
            max_abs=self.max_abs,
            dtype=np.dtype(dtype),
            layout=self.layout,
            warp_size=self.warp_size,
            signed_encoding=self.signed_encoding,
        )

    def to_bitplane_stream(
        self, num_groups: int, dtype: np.dtype, design: str
    ) -> BitplaneStream:
        """Materialize the truncated bitplane stream for decoding."""
        from repro.lossless.hybrid import decompress_groups

        planes = decompress_groups(self.groups, num_groups)
        return BitplaneStream(
            planes=planes,
            num_elements=self.num_elements,
            num_bitplanes=self.num_bitplanes,
            exponent=self.exponent,
            max_abs=self.max_abs,
            dtype=np.dtype(dtype),
            design=design,
            layout=self.layout,
            warp_size=self.warp_size,
            signed_encoding=self.signed_encoding,
        )


@dataclass
class RefactoredField:
    """Complete refactored representation of one variable."""

    shape: tuple[int, ...]
    dtype: np.dtype
    mode: str
    num_levels: int
    min_size: int
    group_size: int
    design: str
    level_weights: list[float]
    levels: list[LevelStream]
    value_range: float
    name: str = "var"

    @property
    def num_elements(self) -> int:
        return int(np.prod(self.shape))

    def total_bytes(self) -> int:
        """Full stored size (all groups of all levels)."""
        return sum(
            lv.bytes_for_groups(lv.num_groups) for lv in self.levels
        )

    def max_groups(self) -> list[int]:
        return [lv.num_groups for lv in self.levels]

    # -- serialization ----------------------------------------------------
    def to_bytes(self) -> bytes:
        meta = {
            "shape": list(self.shape),
            "dtype": self.dtype.name,
            "mode": self.mode,
            "num_levels": self.num_levels,
            "min_size": self.min_size,
            "group_size": self.group_size,
            "design": self.design,
            "level_weights": self.level_weights,
            "value_range": self.value_range,
            "name": self.name,
            "levels": [
                {
                    "level": lv.level,
                    "num_elements": lv.num_elements,
                    "num_bitplanes": lv.num_bitplanes,
                    "exponent": lv.exponent,
                    "max_abs": lv.max_abs,
                    "layout": lv.layout,
                    "warp_size": lv.warp_size,
                    "signed_encoding": lv.signed_encoding,
                    "num_groups": lv.num_groups,
                }
                for lv in self.levels
            ],
        }
        meta_blob = json.dumps(meta).encode()
        group_blobs = [
            np.frombuffer(g.to_bytes(), dtype=np.uint8)
            for lv in self.levels
            for g in lv.groups
        ]
        body = pack_arrays(
            [np.frombuffer(meta_blob, dtype=np.uint8)] + group_blobs
        )
        return struct.pack("<4sH", b"MDRF", 1) + body

    @classmethod
    def from_bytes(cls, buf: bytes | memoryview) -> "RefactoredField":
        """Zero-copy deserialization: group payloads are views of *buf*."""
        magic, version = struct.unpack_from("<4sH", buf, 0)
        if magic != b"MDRF":
            raise ValueError("not a refactored field stream")
        if version != 1:
            raise ValueError(f"unsupported stream version {version}")
        payloads = unpack_arrays(memoryview(buf)[struct.calcsize("<4sH"):])
        meta = json.loads(bytes(payloads[0]).decode())
        levels: list[LevelStream] = []
        cursor = 1
        for lv_meta in meta["levels"]:
            groups = [
                CompressedGroup.from_bytes(payloads[cursor + g])
                for g in range(lv_meta["num_groups"])
            ]
            cursor += lv_meta["num_groups"]
            levels.append(
                LevelStream(
                    level=lv_meta["level"],
                    num_elements=lv_meta["num_elements"],
                    num_bitplanes=lv_meta["num_bitplanes"],
                    exponent=lv_meta["exponent"],
                    max_abs=lv_meta["max_abs"],
                    layout=lv_meta["layout"],
                    warp_size=lv_meta["warp_size"],
                    groups=groups,
                    signed_encoding=lv_meta.get(
                        "signed_encoding", "sign_magnitude"),
                )
            )
        return cls(
            shape=tuple(meta["shape"]),
            dtype=np.dtype(meta["dtype"]),
            mode=meta["mode"],
            num_levels=meta["num_levels"],
            min_size=meta["min_size"],
            group_size=meta["group_size"],
            design=meta["design"],
            level_weights=[float(w) for w in meta["level_weights"]],
            levels=levels,
            value_range=float(meta["value_range"]),
            name=meta["name"],
        )


# -- lazy, store-backed variants ------------------------------------------


@dataclass
class SegmentRef:
    """Metadata handle for one stored plane-group segment.

    Parameters
    ----------
    key:
        Store key of the segment (``segment_key(variable, level, group)``).
    nbytes:
        Serialized size of the segment, i.e. ``len(group.to_bytes())`` —
        what a fetch of this segment costs. Known without fetching.
    num_planes:
        Bitplanes contained in the group, or ``None`` when the index that
        produced this ref predates per-segment metadata (then the first
        plan that needs it fetches the group once to learn it).
    """

    key: str
    nbytes: int
    num_planes: int | None = None


class _LazyGroupSequence(Sequence):
    """Sequence of :class:`CompressedGroup` resolved from a store on touch.

    Parsed groups are memoized per instance (i.e. per opened field), so a
    progressive session re-slicing ``groups[:n]`` on every refinement step
    only pays the backing store for segments it has never seen — the
    per-session analogue of the service's shared byte cache. The memo
    (holding zero-copy views of the fetched blobs) lives as long as the
    opened field does, independent of any shared cache's eviction budget.
    """

    def __init__(
        self, refs: list[SegmentRef], fetch: Callable[[str], bytes]
    ) -> None:
        self._refs = refs
        self._fetch = fetch
        self._parsed: dict[int, CompressedGroup] = {}

    def __len__(self) -> int:
        return len(self._refs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        group = self._parsed.get(index)
        if group is None:
            key = self._refs[index].key
            blob = self._fetch(key)
            try:
                group = CompressedGroup.from_bytes(blob)
            except (ValueError, struct.error, IndexError) as exc:
                # A short or garbled blob (e.g. a segment truncated
                # below its recorded byte count) must surface as the
                # typed taxonomy, not a codec-internal struct.error.
                from repro.core.errors import SegmentCorruptionError

                raise SegmentCorruptionError(
                    f"segment {key!r} is corrupt: {exc}"
                ) from exc
            self._parsed[index] = group
            ref = self._refs[index]
            if ref.num_planes is None:
                ref.num_planes = group.num_planes
        return group

    @property
    def resolved_indices(self) -> list[int]:
        """Indices fetched (and parsed) so far — testing/telemetry hook."""
        return sorted(self._parsed)


class LazyLevelStream(LevelStream):
    """A :class:`LevelStream` whose groups live in a segment store.

    Planning queries (:meth:`bytes_for_groups`, :meth:`planes_in_groups`,
    and through it :meth:`error_bound_for_groups`) are answered from
    :class:`SegmentRef` metadata without touching the store; only
    :meth:`to_bitplane_stream` — an actual decode — fetches segments.
    """

    def __init__(
        self,
        *,
        level: int,
        num_elements: int,
        num_bitplanes: int,
        exponent: int,
        max_abs: float,
        layout: str,
        warp_size: int,
        refs: list[SegmentRef],
        fetch: Callable[[str], bytes],
        signed_encoding: str = "sign_magnitude",
    ) -> None:
        self.refs = refs
        super().__init__(
            level=level,
            num_elements=num_elements,
            num_bitplanes=num_bitplanes,
            exponent=exponent,
            max_abs=max_abs,
            layout=layout,
            warp_size=warp_size,
            groups=_LazyGroupSequence(refs, fetch),
            signed_encoding=signed_encoding,
        )

    def bytes_for_groups(self, num_groups: int) -> int:
        """Serialized bytes of the first *num_groups* groups (no fetch)."""
        return sum(r.nbytes for r in self.refs[:num_groups])

    def planes_in_groups(self, num_groups: int) -> int:
        """Bitplanes in the first *num_groups* groups.

        Served from ref metadata; refs written by old (pre-metadata)
        indexes resolve their group once and memoize the count.
        """
        total = 0
        for i, ref in enumerate(self.refs[:num_groups]):
            if ref.num_planes is None:
                ref.num_planes = self.groups[i].num_planes
            total += ref.num_planes
        return total


@dataclass
class IOCounters:
    """Cumulative fetch accounting of one :class:`LazyRefactoredField`."""

    segment_reads: int = 0
    bytes_fetched: int = 0
    cold_bytes: int = 0
    cache_hit_bytes: int = 0

    def snapshot(self) -> "IOCounters":
        return IOCounters(
            self.segment_reads, self.bytes_fetched,
            self.cold_bytes, self.cache_hit_bytes,
        )

    def since(self, earlier: "IOCounters") -> "IOCounters":
        """Counter deltas accumulated after *earlier* was snapshotted."""
        return IOCounters(
            self.segment_reads - earlier.segment_reads,
            self.bytes_fetched - earlier.bytes_fetched,
            self.cold_bytes - earlier.cold_bytes,
            self.cache_hit_bytes - earlier.cache_hit_bytes,
        )

    @classmethod
    def total(cls, counters: "Sequence[IOCounters]") -> "IOCounters":
        """Elementwise sum — aggregate accounting over many lazy fields.

        The tiled engine uses this to report one traffic figure for a
        field whose tiles are independently-opened lazy sub-fields.
        """
        out = cls()
        for c in counters:
            out.segment_reads += c.segment_reads
            out.bytes_fetched += c.bytes_fetched
            out.cold_bytes += c.cold_bytes
            out.cache_hit_bytes += c.cache_hit_bytes
        return out


class LazyRefactoredField(RefactoredField):
    """A :class:`RefactoredField` whose plane groups resolve on first touch.

    Built by :func:`repro.core.store.open_field` from a field-less metadata
    template plus per-level :class:`SegmentRef` lists. ``resolver`` maps a
    segment key to ``(blob, cold)`` where ``cold`` says the blob came from
    the backing store rather than a shared cache; the field keeps
    cumulative :class:`IOCounters` so callers (``Reconstructor``,
    ``retrieve_qoi``) can report cache-hit vs. cold traffic per step.
    """

    def __init__(
        self,
        template: RefactoredField,
        level_refs: list[list[SegmentRef]],
        resolver: Callable[[str], tuple[bytes, bool]],
    ) -> None:
        if len(level_refs) != len(template.levels):
            raise ValueError("level_refs must have one entry per level")
        self._resolver = resolver
        self.io_counters = IOCounters()
        # A Reconstructor with num_workers > 1 decodes levels in a thread
        # pool, so concurrent _fetch calls must not lose counter updates.
        self._io_lock = threading.Lock()
        levels = [
            LazyLevelStream(
                level=lv.level,
                num_elements=lv.num_elements,
                num_bitplanes=lv.num_bitplanes,
                exponent=lv.exponent,
                max_abs=lv.max_abs,
                layout=lv.layout,
                warp_size=lv.warp_size,
                refs=refs,
                fetch=self._fetch,
                signed_encoding=lv.signed_encoding,
            )
            for lv, refs in zip(template.levels, level_refs)
        ]
        super().__init__(
            shape=template.shape,
            dtype=template.dtype,
            mode=template.mode,
            num_levels=template.num_levels,
            min_size=template.min_size,
            group_size=template.group_size,
            design=template.design,
            level_weights=list(template.level_weights),
            levels=levels,
            value_range=template.value_range,
            name=template.name,
        )

    def _fetch(self, key: str) -> bytes:
        blob, cold = self._resolver(key)
        with self._io_lock:
            c = self.io_counters
            c.segment_reads += 1
            c.bytes_fetched += len(blob)
            if cold:
                c.cold_bytes += len(blob)
            else:
                c.cache_hit_bytes += len(blob)
        return blob
