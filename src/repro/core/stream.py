"""The refactored stream format: per-level compressed bitplane groups.

A :class:`RefactoredField` is what lands in storage after refactoring —
the multilevel metadata, and for every coefficient level a
:class:`LevelStream` holding that level's bitplane metadata plus its
hybrid-compressed plane groups. Everything serializes to plain bytes
(no pickle), so streams written under one simulated device decode under
any other: the portability property of the paper.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field

import numpy as np

from repro.bitplane.align import plane_error_bound
from repro.bitplane.encoding import BitplaneStream
from repro.lossless.hybrid import CompressedGroup
from repro.util.serialize import pack_arrays, unpack_arrays


@dataclass
class LevelStream:
    """One coefficient level's encoded form.

    ``groups[g]`` holds ``group_size`` consecutive bitplanes (sign plane
    first); fetching a prefix of groups yields a truncated bitplane set
    whose coefficient error is :meth:`error_bound_for_groups`.
    """

    level: int
    num_elements: int
    num_bitplanes: int
    exponent: int
    max_abs: float
    layout: str
    warp_size: int
    groups: list[CompressedGroup] = field(default_factory=list)
    signed_encoding: str = "sign_magnitude"

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def planes_in_groups(self, num_groups: int) -> int:
        """Total bitplanes contained in the first *num_groups* groups."""
        return sum(g.num_planes for g in self.groups[:num_groups])

    def bytes_for_groups(self, num_groups: int) -> int:
        """Serialized bytes fetched for the first *num_groups* groups."""
        return sum(
            len(g.to_bytes()) for g in self.groups[:num_groups]
        )

    def error_bound_for_groups(self, num_groups: int) -> float:
        """Per-coefficient L∞ bound with only *num_groups* groups fetched."""
        fetched_planes = self.planes_in_groups(num_groups)
        if self.signed_encoding == "negabinary":
            from repro.bitplane.negabinary import (
                plane_error_bound_negabinary,
            )

            return plane_error_bound_negabinary(
                self.exponent, self.num_bitplanes, fetched_planes,
                self.max_abs,
            )
        kept_mag = max(0, fetched_planes - 1)  # plane 0 is the sign plane
        return plane_error_bound(
            self.exponent, self.num_bitplanes, kept_mag, self.max_abs
        )

    def to_bitplane_stream(
        self, num_groups: int, dtype: np.dtype, design: str
    ) -> BitplaneStream:
        """Materialize the truncated bitplane stream for decoding."""
        from repro.lossless.hybrid import decompress_groups

        planes = decompress_groups(self.groups, num_groups)
        return BitplaneStream(
            planes=planes,
            num_elements=self.num_elements,
            num_bitplanes=self.num_bitplanes,
            exponent=self.exponent,
            max_abs=self.max_abs,
            dtype=np.dtype(dtype),
            design=design,
            layout=self.layout,
            warp_size=self.warp_size,
            signed_encoding=self.signed_encoding,
        )


@dataclass
class RefactoredField:
    """Complete refactored representation of one variable."""

    shape: tuple[int, ...]
    dtype: np.dtype
    mode: str
    num_levels: int
    min_size: int
    group_size: int
    design: str
    level_weights: list[float]
    levels: list[LevelStream]
    value_range: float
    name: str = "var"

    @property
    def num_elements(self) -> int:
        return int(np.prod(self.shape))

    def total_bytes(self) -> int:
        """Full stored size (all groups of all levels)."""
        return sum(
            lv.bytes_for_groups(lv.num_groups) for lv in self.levels
        )

    def max_groups(self) -> list[int]:
        return [lv.num_groups for lv in self.levels]

    # -- serialization ----------------------------------------------------
    def to_bytes(self) -> bytes:
        meta = {
            "shape": list(self.shape),
            "dtype": self.dtype.name,
            "mode": self.mode,
            "num_levels": self.num_levels,
            "min_size": self.min_size,
            "group_size": self.group_size,
            "design": self.design,
            "level_weights": self.level_weights,
            "value_range": self.value_range,
            "name": self.name,
            "levels": [
                {
                    "level": lv.level,
                    "num_elements": lv.num_elements,
                    "num_bitplanes": lv.num_bitplanes,
                    "exponent": lv.exponent,
                    "max_abs": lv.max_abs,
                    "layout": lv.layout,
                    "warp_size": lv.warp_size,
                    "signed_encoding": lv.signed_encoding,
                    "num_groups": lv.num_groups,
                }
                for lv in self.levels
            ],
        }
        meta_blob = json.dumps(meta).encode()
        group_blobs = [
            np.frombuffer(g.to_bytes(), dtype=np.uint8)
            for lv in self.levels
            for g in lv.groups
        ]
        body = pack_arrays(
            [np.frombuffer(meta_blob, dtype=np.uint8)] + group_blobs
        )
        return struct.pack("<4sH", b"MDRF", 1) + body

    @classmethod
    def from_bytes(cls, buf: bytes | memoryview) -> "RefactoredField":
        """Zero-copy deserialization: group payloads are views of *buf*."""
        magic, version = struct.unpack_from("<4sH", buf, 0)
        if magic != b"MDRF":
            raise ValueError("not a refactored field stream")
        if version != 1:
            raise ValueError(f"unsupported stream version {version}")
        payloads = unpack_arrays(memoryview(buf)[struct.calcsize("<4sH"):])
        meta = json.loads(bytes(payloads[0]).decode())
        levels: list[LevelStream] = []
        cursor = 1
        for lv_meta in meta["levels"]:
            groups = [
                CompressedGroup.from_bytes(payloads[cursor + g])
                for g in range(lv_meta["num_groups"])
            ]
            cursor += lv_meta["num_groups"]
            levels.append(
                LevelStream(
                    level=lv_meta["level"],
                    num_elements=lv_meta["num_elements"],
                    num_bitplanes=lv_meta["num_bitplanes"],
                    exponent=lv_meta["exponent"],
                    max_abs=lv_meta["max_abs"],
                    layout=lv_meta["layout"],
                    warp_size=lv_meta["warp_size"],
                    groups=groups,
                    signed_encoding=lv_meta.get(
                        "signed_encoding", "sign_magnitude"),
                )
            )
        return cls(
            shape=tuple(meta["shape"]),
            dtype=np.dtype(meta["dtype"]),
            mode=meta["mode"],
            num_levels=meta["num_levels"],
            min_size=meta["min_size"],
            group_size=meta["group_size"],
            design=meta["design"],
            level_weights=[float(w) for w in meta["level_weights"]],
            levels=levels,
            value_range=float(meta["value_range"]),
            name=meta["name"],
        )
