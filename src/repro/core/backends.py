"""Execution backends: serial, threads, and true-parallel processes.

The pipeline classes fan independent jobs out through
:class:`~repro.core._pool.WorkerPoolMixin`. Threads were the only
parallel option before this module, and ``BENCH_tiles.json`` recorded
what that buys on the tiled refactor hot path: ~0.95x, i.e. nothing —
the NumPy kernels release the GIL but the Python glue between them does
not. This module adds the third backend: a pool of persistent worker
*processes* with true parallelism.

Backend selection (:func:`resolve_backend`) has three tiers, strongest
first:

1. an explicit ``backend=`` argument on the engine (or its config);
2. the ``REPRO_BACKEND`` environment variable (``serial``, ``threads``,
   ``processes``, optionally ``kind:N`` to pin the worker count) — the
   switch that re-runs an entire existing test suite under a different
   backend without touching a line of it;
3. the engine's ``num_workers``: ``> 1`` means threads (the historical
   behaviour), else serial.

Inside a worker process every engine resolves to serial regardless of
the above — process pools never nest.

:class:`ProcessBackend` keeps long-lived daemon workers connected over
pipes. Tasks are addressed by ``"module:function"`` name (never by
pickling code objects), inputs travel as pickled arguments or — for
large tile blocks — through :mod:`multiprocessing.shared_memory`
buffers, and per-engine configuration is shipped *once per worker* via
:meth:`ProcessBackend.ensure_shared` so warm per-worker
``Refactorer``/``Reconstructor`` instances can be reused across calls.
Typed exceptions (:mod:`repro.core.errors`) pickle cleanly and are
re-raised in the parent with their class and arguments intact, so
retry/degrade classification works identically across the process
boundary.

Every live backend is registered for ``atexit`` teardown (workers are
additionally daemonic), so a leaked pool can never hang interpreter
shutdown.

The pool is *self-healing*: a worker that dies mid-task is replaced in
place (same slot, so sticky routing still lands on it), its shared
objects are re-shipped to the replacement, and the in-flight task is
retried under a bounded per-task budget. A task that keeps killing its
workers is quarantined — settled as *that call's*
:class:`~repro.core.errors.WorkerCrashedError` while the rest of the
batch completes. A hung-but-alive worker is bounded by per-call
deadlines (``map_calls(..., deadline=)`` or the pool-level default):
on expiry the worker is killed and respawned and the call settles as a
:class:`~repro.core.errors.WorkerTimeoutError`. Respawns, retries,
quarantines, and deadline kills are counted on the backend
(:meth:`ProcessBackend.health`) and surfaced through
``RetrievalService.stats()``.
"""

from __future__ import annotations

import atexit
import importlib
import multiprocessing
import multiprocessing.connection
import os
import pickle
import threading
import time
import traceback
import uuid
import weakref
import zlib
from collections import deque
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.errors import (
    ComputeError,
    WorkerCrashedError,
    WorkerStateError,
    WorkerTimeoutError,
)

#: Environment override: ``serial`` / ``threads`` / ``processes``,
#: optionally suffixed ``:N`` to pin the worker count (``processes:4``).
BACKEND_ENV = "REPRO_BACKEND"
#: Optional multiprocessing start-method override (``fork`` / ``spawn`` /
#: ``forkserver``); the platform default is used when unset.
START_METHOD_ENV = "REPRO_MP_START"

BACKEND_KINDS = ("serial", "threads", "processes")

_JOIN_TIMEOUT_S = 5.0
_POLL_INTERVAL_S = 0.05
#: terminate → join budget before escalating to SIGKILL when reaping a
#: dead or condemned worker (and again after the kill).
_REAP_TIMEOUT_S = 1.0
#: Budget for restoring shared objects onto a freshly-respawned worker;
#: a replacement that cannot even unpickle the session state within
#: this window is a hard failure, not something to heal around.
_RESPAWN_SHIP_TIMEOUT_S = 30.0
#: Default per-task crash-retry budget: a task may kill this many
#: workers and still be retried; one more death quarantines it.
_MAX_TASK_RETRIES = 2

#: ``ensure_shared`` token under which a process-level fault injector
#: (:class:`~repro.core.faults.WorkerChaos`) rides to every worker; the
#: worker main loop consults it before each non-maintenance task.
WORKER_CHAOS_TOKEN = "worker-chaos"

# Set in worker processes only: the nested-pool guard resolve_backend
# consults so a Refactorer configured with num_workers=4 stays serial
# when it is *itself* running inside a pool worker.
_IN_WORKER = False


def in_worker() -> bool:
    """True when the current process is a backend worker."""
    return _IN_WORKER


def default_process_workers() -> int:
    """Worker count when a parallel backend is forced without one."""
    return max(1, min(4, os.cpu_count() or 1))


class BackendSpec(tuple):
    """Resolved execution backend: ``(kind, workers)``.

    A tuple subclass so call sites can unpack it; ``workers`` is the
    effective fan-out width (0 for serial).
    """

    def __new__(cls, kind: str, workers: int) -> "BackendSpec":
        return super().__new__(cls, (kind, int(workers)))

    @property
    def kind(self) -> str:
        return self[0]

    @property
    def workers(self) -> int:
        return self[1]


def parse_backend_spec(spec: str) -> tuple[str, int | None]:
    """Parse ``"kind"`` or ``"kind:N"`` into ``(kind, workers | None)``."""
    text = str(spec).strip().lower()
    workers: int | None = None
    if ":" in text:
        text, _, count = text.partition(":")
        try:
            workers = int(count)
        except ValueError:
            raise ValueError(
                f"invalid backend worker count in {spec!r}"
            ) from None
        if workers < 1:
            raise ValueError(f"backend worker count must be >= 1: {spec!r}")
    if text not in BACKEND_KINDS:
        raise ValueError(
            f"backend must be one of {BACKEND_KINDS}, got {spec!r}"
        )
    return text, workers


def resolve_backend(
    explicit: str | None = None, num_workers: int = 0
) -> BackendSpec:
    """Resolve the effective execution backend for one engine.

    Precedence: the in-worker guard (always serial — pools never nest),
    then an explicit ``backend=`` argument, then the ``REPRO_BACKEND``
    environment variable, then the historical ``num_workers`` rule
    (``> 1`` means threads, else serial). A forced parallel kind whose
    caller did not size the pool (``num_workers <= 1`` and no ``:N``
    suffix) defaults to :func:`default_process_workers`.
    """
    if _IN_WORKER:
        return BackendSpec("serial", 0)
    kind: str
    workers: int | None
    if explicit is not None:
        kind, workers = parse_backend_spec(explicit)
    else:
        env = os.environ.get(BACKEND_ENV)
        if env:
            kind, workers = parse_backend_spec(env)
        else:
            kind = "threads" if num_workers and num_workers > 1 else "serial"
            workers = None
    if kind == "serial":
        return BackendSpec("serial", 0)
    if workers is None:
        workers = (
            int(num_workers)
            if num_workers and num_workers > 1
            else default_process_workers()
        )
    return BackendSpec(kind, workers)


def task_name(fn: Callable) -> str:
    """Stable ``"module:function"`` address of a module-level function.

    Process workers resolve tasks by this name through a normal import,
    so no code object ever crosses the pipe — the same mechanism under
    ``fork`` and ``spawn`` start methods.
    """
    qualname = fn.__qualname__
    if "." in qualname or "<" in qualname:
        raise ValueError(
            f"process tasks must be module-level functions, got {qualname!r}"
        )
    return f"{fn.__module__}:{qualname}"


_RESOLVED_TASKS: dict[str, Callable] = {}


def _resolve_task(name: str) -> Callable:
    fn = _RESOLVED_TASKS.get(name)
    if fn is None:
        module, _, attr = name.partition(":")
        fn = getattr(importlib.import_module(module), attr)
        _RESOLVED_TASKS[name] = fn
    return fn


def worker_shared(state: dict, token: str):
    """A worker-resident object previously shipped via ``ensure_shared``."""
    try:
        return state["shared"][token]
    except KeyError:
        raise WorkerStateError(
            f"shared object {token!r} was never shipped to this worker "
            "(backend restarted mid-session?)"
        ) from None


# -- exception transport ---------------------------------------------------

def _encode_exc(exc: BaseException) -> tuple:
    """Encode an exception for the pipe, preserving its type when possible.

    Typed store errors (no custom ``__init__``) round-trip through
    pickle with class and args intact; anything unpicklable degrades to
    a ``RuntimeError`` carrying the original repr and traceback text.
    """
    tb = traceback.format_exc()
    try:
        payload = pickle.dumps(exc)
        pickle.loads(payload)
        return ("pickle", payload, tb)
    except Exception:  # reprolint: disable=R2 -- exception transport: an unpicklable exception degrades to its repr by design
        return ("repr", f"{type(exc).__name__}: {exc}", tb)


def _decode_exc(encoded: tuple) -> BaseException:
    if encoded[0] == "pickle":
        exc = pickle.loads(encoded[1])
        exc.remote_traceback = encoded[2]
        return exc
    exc = RuntimeError(
        f"process worker raised an unpicklable exception: {encoded[1]}"
    )
    exc.remote_traceback = encoded[2]
    return exc


# -- shared-memory tile shipping -------------------------------------------

def share_array(arr: np.ndarray):
    """Publish a contiguous array in a shared-memory segment.

    Returns the ``SharedMemory`` handle (caller must ``close()`` and
    ``unlink()`` after the consuming calls complete) — workers attach by
    name with :func:`attach_shared_block` and copy out only their slice.
    """
    from multiprocessing import shared_memory

    arr = np.ascontiguousarray(arr)
    shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[...] = arr
    del view
    return shm


def attach_shared_block(
    name: str,
    shape: Sequence[int],
    dtype_str: str,
    offset: Sequence[int],
    extent: Sequence[int],
) -> np.ndarray:
    """Copy one tile block out of a shared-memory segment (worker side).

    Attaches, slices ``[offset, offset + extent)``, copies the block to
    an owned contiguous array, and detaches. The parent created the
    segment, so the worker-side attach is unregistered from the
    ``resource_tracker`` (Python registers attach-only handles too,
    which would otherwise double-unlink the segment).
    """
    from multiprocessing import resource_tracker, shared_memory

    shm = shared_memory.SharedMemory(name=name)
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # reprolint: disable=R2 -- best-effort tracker fixup; attach still works if unregister fails
        pass
    try:
        full = np.ndarray(
            tuple(int(s) for s in shape),
            dtype=np.dtype(dtype_str),
            buffer=shm.buf,
        )
        window = tuple(
            slice(int(o), int(o) + int(e))
            for o, e in zip(offset, extent)
        )
        block = np.array(full[window], order="C", copy=True)
        del full
    finally:
        shm.close()
    return block


# -- worker main loop ------------------------------------------------------

def _worker_main(task_conn, result_conn) -> None:
    global _IN_WORKER
    _IN_WORKER = True
    # A forked worker inherits the parent's backend registry (and, with
    # it, pipe fds of sibling pools). Neutralize the copies so a clean
    # worker exit never runs teardown against the parent's pools.
    _LIVE_BACKENDS.clear()
    global _SHARED_BACKEND
    _SHARED_BACKEND = None
    state: dict = {"shared": {}}
    while True:
        try:
            message = task_conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message is None:
            break
        seq, name, args = message
        try:
            # Process-level chaos rides in as a shared object: consult it
            # before every *engine* task (never the shipping/maintenance
            # tasks themselves, or installing chaos could fire it). Kill
            # modes never return; a "raise" schedule settles as an
            # ordinary task failure.
            chaos = state["shared"].get(WORKER_CHAOS_TOKEN)
            if chaos is not None and name not in _MAINTENANCE_TASKS:
                chaos.before_task(seq, name)
            result = _resolve_task(name)(state, *args)
            out = (seq, True, result)
        except BaseException as exc:  # reprolint: disable=R2 -- worker loop: every failure is encoded and shipped; the host re-raises it typed
            out = (seq, False, _encode_exc(exc))
        try:
            result_conn.send(out)
        except Exception as exc:  # reprolint: disable=R2 -- converted to a transportable RuntimeError below
            try:
                result_conn.send((
                    seq, False,
                    _encode_exc(RuntimeError(
                        f"task {name!r} produced an unpicklable result: "
                        f"{exc}"
                    )),
                ))
            except Exception:  # reprolint: disable=R2 -- pipe is gone: exit the loop so the host's crash detection takes over
                break
    try:
        result_conn.close()
        task_conn.close()
    except Exception:  # reprolint: disable=R2 -- worker exit path; the host only observes the process ending
        pass


# -- built-in tasks --------------------------------------------------------

def _task_apply(state, fn, job):
    """Generic ``map_jobs`` task: apply a picklable function to a job."""
    return fn(job)


def _task_put_shared(state, token, obj):
    state["shared"][token] = obj
    return None


def _task_drop_shared(state, token):
    state["shared"].pop(token, None)
    return None


def _task_drop_session(state, token):
    for key in [k for k in state if isinstance(k, tuple) and token in k]:
        state.pop(key, None)
    return None


def _task_ping(state):
    return os.getpid()


#: Pool-plumbing tasks the chaos hook must never intercept: firing on a
#: shared-object ship would kill the respawn/recovery machinery itself.
_MAINTENANCE_TASKS = frozenset(
    f"{__name__}:{fn.__name__}"
    for fn in (_task_put_shared, _task_drop_shared, _task_drop_session,
               _task_ping)
)


class _Worker:
    __slots__ = ("process", "task_conn", "result_conn", "generation")

    def __init__(self, process, task_conn, result_conn,
                 generation: int = 0) -> None:
        self.process = process
        self.task_conn = task_conn
        self.result_conn = result_conn
        #: Pool generation this worker was spawned under — the slot's
        #: re-ship key: state resident here survives respawns of
        #: *other* slots, which only bump the pool-level counter.
        self.generation = generation


class ProcessBackend:
    """A pool of persistent worker processes addressed by task name.

    Workers are daemonic, started lazily on first dispatch, and reused
    across calls — worker-resident state (shipped configs, warm
    per-shape refactorers, per-tile reconstructors) survives between
    :meth:`map_calls` rounds. ``generation`` increments every time the
    worker set is (re)created, so engines holding worker-resident
    sessions can detect a restart and re-ship their inputs; ``uid``
    names the pool instance itself, so they can also detect the pool
    being *replaced* by a fresh one whose generation counter restarted
    (key resident state on ``(uid, generation)``, never generation
    alone).

    Dispatch is a barrier: one thread at a time feeds tasks (sticky
    keys routing related tasks to the same worker, at most one in
    flight per worker) while draining results, returning only when
    every call settled. A task failure is re-raised in the parent
    *after* the drain, with the earliest-submitted failure winning —
    mirroring the serial loop's first-failure semantics while keeping
    the pipes consistent.

    The pool heals itself instead of dying with its workers. A worker
    that crashes mid-task is respawned *in place* — the replacement
    takes the dead worker's slot so sticky routing is undisturbed, the
    generation bumps so engines re-ship worker-resident session state,
    and every ``ensure_shared`` object is restored onto the replacement
    before it sees a task (tokens stay valid across the respawn). The
    in-flight task is retried on the replacement under
    ``max_task_retries``; a task that outlives its budget is
    quarantined as that call's :class:`WorkerCrashedError` while the
    rest of the batch completes (the same local-settlement contract as
    unpicklable jobs). Deadlines (per ``map_calls`` call or
    ``default_deadline``) bound hung-but-alive workers: on expiry the
    worker is killed and respawned and the call settles as
    :class:`WorkerTimeoutError`. ``respawns`` / ``task_retries`` /
    ``quarantines`` / ``deadline_kills`` count every recovery action
    (snapshot via :meth:`health`; reset by :meth:`close`).
    """

    def __init__(
        self,
        num_workers: int,
        start_method: str | None = None,
        *,
        default_deadline: float | None = None,
        max_task_retries: int = _MAX_TASK_RETRIES,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError("default_deadline must be > 0")
        if max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        self.num_workers = int(num_workers)
        self._start_method = start_method
        self._workers: list[_Worker] | None = None
        self._lock = threading.RLock()
        self._shared_tokens: set[str] = set()
        # Parent-side copies of everything shipped via ensure_shared,
        # kept so a respawned worker can be restored without the owning
        # engine even noticing the crash.
        self._shared_objects: dict[str, object] = {}
        self.uid = uuid.uuid4().hex
        self.generation = 0
        self.tasks_dispatched = 0
        self.default_deadline = default_deadline
        self.max_task_retries = int(max_task_retries)
        self.respawns = 0
        self.task_retries = 0
        self.quarantines = 0
        self.deadline_kills = 0
        # Teardown is fenced to the creating process: a forked child
        # inherits this object (and dup'd pipe fds), and its GC/atexit
        # must never send shutdown sentinels to the owner's workers.
        self._owner_pid = os.getpid()
        _LIVE_BACKENDS.add(self)

    # -- lifecycle --------------------------------------------------------
    @property
    def alive(self) -> bool:
        with self._lock:
            return self._workers is not None and all(
                w.process.is_alive() for w in self._workers
            )

    def _context(self):
        method = self._start_method or os.environ.get(START_METHOD_ENV)
        if method:
            return multiprocessing.get_context(method)
        return multiprocessing.get_context()

    def _spawn_worker(self, ctx) -> _Worker:
        task_r, task_w = ctx.Pipe(duplex=False)
        result_r, result_w = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_main,
            args=(task_r, result_w),
            daemon=True,
        )
        process.start()
        # The parent keeps only its ends of each pipe.
        task_r.close()
        result_w.close()
        return _Worker(process, task_w, result_r, self.generation)

    def _ensure(self) -> list[_Worker]:
        if self._workers is not None:
            return self._workers
        ctx = self._context()
        self.generation += 1
        workers = [self._spawn_worker(ctx) for _ in range(self.num_workers)]
        self._workers = workers
        self._shared_tokens = set()
        self._shared_objects = {}
        return workers

    @staticmethod
    def _reap(worker: _Worker) -> None:
        """Retire one worker without leaving a zombie behind.

        ``join`` is what actually reaps a dead child — terminating
        without joining accumulates defunct processes for the life of
        the parent. Escalate to ``kill`` for a worker that ignores
        SIGTERM (e.g. hung in uninterruptible state) and join again.
        """
        process = worker.process
        if process.is_alive():
            process.terminate()
        process.join(timeout=_REAP_TIMEOUT_S)
        if process.is_alive():
            process.kill()
            process.join(timeout=_REAP_TIMEOUT_S)
        for conn in (worker.task_conn, worker.result_conn):
            try:
                conn.close()
            except Exception:  # reprolint: disable=R2 -- reaping a dead worker; a half-closed pipe is expected here
                pass

    def _respawn(self, index: int) -> _Worker:
        """Replace the worker in *index*'s slot (call holding the lock).

        The replacement keeps the slot so :meth:`worker_for` sticky
        routing is undisturbed. The pool-level generation bumps (any
        engine keying on it re-ships conservatively), but only *this
        slot's* spawn stamp changes — engines that sticky-route
        resident state can key on :meth:`slot_generations` instead and
        re-ship nothing for the surviving workers. Shared objects are
        restored synchronously before the replacement sees a task, so
        ``ensure_shared`` tokens stay valid — a respawn is invisible to
        engines that only use shared state.
        """
        workers = self._workers
        assert workers is not None
        self._reap(workers[index])
        self.generation += 1
        worker = workers[index] = self._spawn_worker(self._context())
        self.respawns += 1
        put = task_name(_task_put_shared)
        for seq, (token, obj) in enumerate(self._shared_objects.items()):
            try:
                worker.task_conn.send((seq, put, (token, obj)))
                self._recv(worker, deadline=_RESPAWN_SHIP_TIMEOUT_S)
            except WorkerCrashedError:
                # The replacement itself failed while restoring state:
                # the environment is broken, not one task — give up on
                # the whole pool.
                self._abandon()
                raise WorkerCrashedError(
                    "replacement worker died while restoring shared "
                    f"object {token!r} after a respawn"
                ) from None
        return worker

    def close(self, timeout: float = _JOIN_TIMEOUT_S) -> None:
        """Stop the workers (idempotent). The pool restarts on next use.

        No-op in any process other than the one that created the pool:
        when a *different* backend forks workers, those children hold
        inherited references to this object, and releasing the last one
        (``_worker_main`` clears the shared-singleton global) would
        otherwise run ``__del__`` -> ``close()`` in the child and kill
        this pool's workers out from under the owning process.
        """
        if os.getpid() != self._owner_pid:
            return
        if not self._lock.acquire(timeout=timeout):
            # Another thread is mid-dispatch (map_calls holds the lock
            # for its whole feed+drain barrier). Tearing the workers
            # down underneath it would turn the in-flight batch into a
            # spurious WorkerCrashedError and race the unlocked
            # mutation of ``_workers`` — leave teardown to the atexit
            # registry / daemonic reaping instead.
            return
        try:
            workers, self._workers = self._workers, None
            self._shared_tokens = set()
            self._shared_objects = {}
            # A closed pool starts its next life with clean health
            # telemetry: the counters describe the current worker set's
            # recovery history, not the process's.
            self.respawns = 0
            self.task_retries = 0
            self.quarantines = 0
            self.deadline_kills = 0
        finally:
            self._lock.release()
        if not workers:
            return
        for worker in workers:
            try:
                worker.task_conn.send(None)
            except Exception:  # reprolint: disable=R2 -- a crashed worker cannot take the shutdown sentinel; the join + reap below still runs
                pass
        for worker in workers:
            worker.process.join(timeout=timeout)
        for worker in workers:
            self._reap(worker)

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close(timeout=1.0)
        except Exception:  # reprolint: disable=R2 -- GC-time teardown; atexit + daemon workers are the real safety net
            pass

    def ensure_alive(self) -> int:
        """Spin the worker set up if needed; returns the generation.

        Session-holding engines call this *before* deciding what to
        ship: reading ``generation`` without it could race a restart
        inside the subsequent dispatch and strand worker state one
        generation behind.
        """
        with self._lock:
            self._ensure()
            return self.generation

    def slot_generations(self) -> list[int]:
        """Per-slot spawn generations (spins the pool up if needed).

        Finer-grained re-ship keying than the pool-level counter: a
        respawn replaces exactly one slot, so state resident on every
        other worker is untouched. Engines that sticky-route resident
        items can key each one on
        ``(uid, slot_generations()[worker_for(key)])`` and rebuild only
        what actually died instead of re-shipping the whole session.
        """
        with self._lock:
            return [w.generation for w in self._ensure()]

    # -- dispatch ---------------------------------------------------------
    def worker_for(self, key) -> int:
        """Sticky routing: a stable worker index for *key*.

        Same key, same worker (CRC32 of the key's string form) — the
        mechanism that keeps a tile's worker-resident decode state on
        one process across progressive steps.
        """
        return zlib.crc32(str(key).encode()) % self.num_workers

    def map_calls(
        self,
        calls: Sequence[tuple[str, tuple, object]],
        *,
        deadline: float | None = None,
        settle: bool = False,
    ) -> list:
        """Run ``(task_name, args, sticky_key)`` calls; results in order.

        ``sticky_key=None`` round-robins; anything else routes through
        :meth:`worker_for`. Dispatch interleaves feeding and draining
        with at most one task in flight per worker: a worker only ever
        receives a task while it is idle in ``recv`` with an empty
        result pipe, so neither side can block writing a large payload
        while the other is blocked writing its own (OS pipe buffers are
        ~64KB — sending a whole batch before draining deadlocks as soon
        as tasks and results together exceed them).

        A worker that dies mid-task is respawned in place and the task
        retried there (its slot keeps the sticky mapping) under the
        per-task ``max_task_retries`` budget; past the budget the call
        is quarantined as a :class:`WorkerCrashedError` and the batch
        keeps going. *deadline* (falling back to ``default_deadline``;
        seconds per task attempt) bounds hung-but-alive workers: on
        expiry the worker is killed and respawned and the call settles
        as :class:`WorkerTimeoutError`.

        Blocks until every call settled. With ``settle=False`` the
        earliest-submitted failure is then re-raised (typed exceptions
        survive the boundary intact); ``settle=True`` instead returns
        one ``(ok, value_or_exception)`` pair per call so the caller —
        e.g. degraded-mode tiled retrieval — can disposition failures
        individually without losing the rest of the batch.
        """
        if not calls:
            return []
        effective = self.default_deadline if deadline is None else deadline
        with self._lock:
            workers = self._ensure()
            queues: list[deque] = [deque() for _ in workers]
            for seq, (name, args, key) in enumerate(calls):
                index = (
                    seq % len(workers) if key is None
                    else self.worker_for(key)
                )
                queues[index].append((seq, name, tuple(args)))
            self.tasks_dispatched += len(calls)
            results: list = [None] * len(calls)
            failures: list[tuple[int, BaseException]] = []
            # The exact message each worker is busy with (None = idle):
            # crash recovery needs the payload back to requeue it.
            inflight: list[tuple | None] = [None] * len(workers)
            sent_at = [0.0] * len(workers)
            crashes: dict[int, int] = {}
            settled = 0

            def feed(index: int) -> None:
                nonlocal settled
                while queues[index] and inflight[index] is None:
                    message = queues[index][0]
                    try:
                        workers[index].task_conn.send(message)
                    except (OSError, EOFError):
                        # The worker died while idle (nothing of this
                        # batch was on it): replace it and resend the
                        # same message on the fresh pipe.
                        self._respawn(index)
                        continue
                    except Exception as exc:  # reprolint: disable=R2 -- settled as this call's failure; map_calls raises it typed after the batch drains
                        # Unpicklable task arguments: the message never
                        # reached the worker, so settle it locally and
                        # keep the pipes consistent.
                        queues[index].popleft()
                        failures.append((message[0], exc))
                        settled += 1
                        continue
                    queues[index].popleft()
                    inflight[index] = message
                    sent_at[index] = time.monotonic()

            def crashed(index: int) -> None:
                """Worker *index* died with a task on it: heal or settle."""
                nonlocal settled
                message = inflight[index]
                inflight[index] = None
                process = workers[index].process
                pid, code = process.pid, process.exitcode
                self._respawn(index)
                if message is not None:
                    seq = message[0]
                    count = crashes[seq] = crashes.get(seq, 0) + 1
                    if count > self.max_task_retries:
                        self.quarantines += 1
                        failures.append((seq, WorkerCrashedError(
                            f"task {message[1]!r} (call #{seq}) killed "
                            f"{count} consecutive workers (last pid "
                            f"{pid}, exit code {code}); quarantined"
                        )))
                        settled += 1
                    else:
                        self.task_retries += 1
                        queues[index].appendleft(message)
                feed(index)

            def timed_out(index: int) -> None:
                nonlocal settled
                message = inflight[index]
                inflight[index] = None
                process = workers[index].process
                pid = process.pid
                self.deadline_kills += 1
                try:
                    process.kill()
                except Exception:  # reprolint: disable=R2 -- the process may already be gone; the respawn below restores the slot either way
                    pass
                self._respawn(index)
                failures.append((message[0], WorkerTimeoutError(
                    f"task {message[1]!r} (call #{message[0]}) exceeded "
                    f"the {effective:.3g}s deadline on worker pid {pid}; "
                    "worker killed and respawned"
                )))
                settled += 1
                feed(index)

            for index in range(len(workers)):
                feed(index)
            while settled < len(calls):
                pending = {
                    workers[i].result_conn: i
                    for i in range(len(workers))
                    if inflight[i] is not None
                }
                if not pending:
                    if not any(queues):
                        break  # every remaining call settled locally
                    # A respawn emptied the in-flight set with work
                    # still queued (e.g. a quarantine freed the slot):
                    # feed sends or settles until something is pending.
                    for index in range(len(workers)):
                        feed(index)
                    continue
                ready = multiprocessing.connection.wait(
                    list(pending), timeout=_POLL_INTERVAL_S
                )
                for conn in ready:
                    index = pending[conn]
                    if inflight[index] is None:
                        continue
                    try:
                        seq, ok, payload = conn.recv()
                    except (EOFError, OSError):
                        crashed(index)
                        continue
                    inflight[index] = None
                    settled += 1
                    if ok:
                        results[seq] = payload
                    else:
                        failures.append((seq, _decode_exc(payload)))
                    feed(index)
                if ready:
                    continue
                now = time.monotonic()
                for i in range(len(workers)):
                    if inflight[i] is None:
                        continue
                    worker = workers[i]
                    if not worker.process.is_alive():
                        if worker.result_conn.poll(0):
                            continue  # flushed before death; drain next
                        crashed(i)
                    elif (
                        effective is not None
                        and now - sent_at[i] >= effective
                    ):
                        timed_out(i)
        if settle:
            outcomes: list[tuple[bool, object]] = [
                (True, value) for value in results
            ]
            for seq, exc in failures:
                outcomes[seq] = (False, exc)
            return outcomes
        if failures:
            failures.sort(key=lambda item: item[0])
            raise failures[0][1]
        return results

    def _recv(self, worker: _Worker, deadline: float | None = None):
        """Receive one reply from *worker*, bounded by *deadline*.

        Raises :class:`WorkerCrashedError` on death (after draining
        anything flushed first) and :class:`WorkerTimeoutError` past
        the deadline — the *caller* decides whether to respawn and
        retry; this method never tears anything down.
        """
        start = time.monotonic()
        while True:
            if worker.result_conn.poll(_POLL_INTERVAL_S):
                try:
                    return worker.result_conn.recv()
                except (EOFError, OSError) as exc:
                    raise WorkerCrashedError(
                        "process backend worker closed its result pipe "
                        "mid-task"
                    ) from exc
            if not worker.process.is_alive():
                # Drain anything flushed before death, then give up.
                if worker.result_conn.poll(0):
                    continue
                raise WorkerCrashedError(
                    f"process backend worker (pid "
                    f"{worker.process.pid}) died with exit code "
                    f"{worker.process.exitcode}"
                )
            if (
                deadline is not None
                and time.monotonic() - start >= deadline
            ):
                raise WorkerTimeoutError(
                    f"process backend worker (pid {worker.process.pid}) "
                    f"sent no reply within the {deadline:.3g}s deadline"
                )

    def _abandon(self) -> None:
        """Discard the worker set after a crash (restart on next use).

        Every abandoned worker is reaped (terminate → join → kill
        escalation), never just terminated: an un-joined child stays a
        zombie for the life of the parent process.
        """
        workers, self._workers = self._workers, None
        self._shared_tokens = set()
        self._shared_objects = {}
        if not workers:
            return
        for worker in workers:
            self._reap(worker)

    def call(self, name: str, *args, sticky=None):
        """One task on one worker; returns its result."""
        return self.map_calls([(name, args, sticky)])[0]

    def _broadcast_send(self, index: int, message: tuple) -> None:
        """Send *message* to worker *index*, respawning a dead one."""
        while True:
            try:
                self._workers[index].task_conn.send(message)
                return
            except (OSError, EOFError):
                self._respawn(index)

    def broadcast(self, name: str, *args) -> list:
        """Run the task once on *every* worker (e.g. shipping config).

        Heals like :meth:`map_calls`: a worker that dies mid-broadcast
        is respawned in place and its copy of the task re-sent (once);
        a worker that hangs past ``default_deadline`` is killed,
        respawned, and surfaced as :class:`WorkerTimeoutError`.
        """
        with self._lock:
            workers = self._ensure()
            message_args = tuple(args)
            self.tasks_dispatched += len(workers)
            for index in range(len(workers)):
                self._broadcast_send(index, (index, name, message_args))
            results: list = [None] * len(workers)
            failures: list[tuple[int, tuple]] = []
            for index in range(len(workers)):
                for attempt in (0, 1):
                    worker = workers[index]
                    try:
                        seq, ok, payload = self._recv(
                            worker, deadline=self.default_deadline
                        )
                    except WorkerTimeoutError:
                        self.deadline_kills += 1
                        try:
                            worker.process.kill()
                        except Exception:  # reprolint: disable=R2 -- the process may already be gone; the WorkerTimeoutError re-raises below
                            pass
                        self._respawn(index)
                        raise
                    except WorkerCrashedError:
                        if attempt:
                            raise
                        self._respawn(index)
                        self._broadcast_send(
                            index, (index, name, message_args)
                        )
                        continue
                    break
                if ok:
                    results[seq] = payload
                else:
                    failures.append((seq, payload))
        if failures:
            failures.sort()
            raise _decode_exc(failures[0][1])
        return results

    def ensure_shared(self, token: str, obj) -> None:
        """Ship *obj* to every worker exactly once (per pool generation).

        The "pickle once per worker" path for codec tables, refactor
        configs, and store handles: later calls with the same token are
        free, and a pool restart (new generation) re-ships on the next
        call. Tasks read it back with :func:`worker_shared`. The
        parent keeps its own reference so a respawned worker can be
        restored without the owning engine re-shipping.
        """
        with self._lock:
            self._ensure()
            if token in self._shared_tokens:
                return
            self.broadcast(task_name(_task_put_shared), token, obj)
            self._shared_tokens.add(token)
            self._shared_objects[token] = obj

    def drop_shared(self, token: str) -> None:
        """Best-effort release of a shipped shared object on all workers."""
        try:
            with self._lock:
                if self._workers is None:
                    return
                self._shared_tokens.discard(token)
                self._shared_objects.pop(token, None)
                self.broadcast(task_name(_task_drop_shared), token)
        except Exception:  # reprolint: disable=R2 -- best-effort release; a failed drop only costs worker memory until respawn
            pass

    def install_chaos(self, chaos) -> None:
        """Ship a process-level fault injector to every worker.

        *chaos* (typically :class:`~repro.core.faults.WorkerChaos`) is
        consulted by the worker main loop before each engine task; it
        rides the normal shared-object path, so respawned workers get
        it back automatically — a chaos schedule survives the very
        kills it causes. Installing replaces any previous injector.
        """
        with self._lock:
            self._ensure()
            self._shared_tokens.discard(WORKER_CHAOS_TOKEN)
            self._shared_objects.pop(WORKER_CHAOS_TOKEN, None)
            self.ensure_shared(WORKER_CHAOS_TOKEN, chaos)

    def clear_chaos(self) -> None:
        """Remove an installed fault injector from every worker."""
        self.drop_shared(WORKER_CHAOS_TOKEN)

    def health(self) -> dict:
        """Pool-health counter snapshot, JSON-ready.

        Recovery counters (``respawns``, ``task_retries``,
        ``quarantines``, ``deadline_kills``) describe the current
        worker set's lifetime and reset on :meth:`close`;
        ``tasks_dispatched`` is cumulative for the backend instance.
        """
        with self._lock:
            return {
                "workers": self.num_workers,
                "alive": self._workers is not None and all(
                    w.process.is_alive() for w in self._workers
                ),
                "uid": self.uid,
                "generation": self.generation,
                "tasks_dispatched": self.tasks_dispatched,
                "respawns": self.respawns,
                "task_retries": self.task_retries,
                "quarantines": self.quarantines,
                "deadline_kills": self.deadline_kills,
            }

    def drop_session(self, token: str) -> None:
        """Best-effort release of worker-resident session state."""
        try:
            with self._lock:
                if self._workers is None:
                    return
                self.broadcast(task_name(_task_drop_session), token)
        except Exception:  # reprolint: disable=R2 -- best-effort release; stale session state is reclaimed on respawn
            pass

    def map_jobs(self, fn: Callable, jobs: Sequence) -> list:
        """Order-preserving ``[fn(j) for j in jobs]`` across the workers.

        The generic escape hatch behind
        :meth:`~repro.core._pool.WorkerPoolMixin.map_jobs`: *fn* and
        every job must be picklable (module-level functions, plain
        data). Closures — the engines' usual jobs — cannot cross a
        process boundary, so an unpicklable *fn* falls back to the
        serial loop; the engines' hot paths use dedicated task
        functions instead and never hit this fallback. Only *fn* is
        probed (probing every job would serialize each one twice —
        exactly on the large jobs where pickling is expensive); a job
        that then fails to pickle at dispatch raises, with the rest of
        the batch still settled.
        """
        if not jobs:
            return []
        try:
            pickle.dumps(fn)
        except Exception:  # reprolint: disable=R2 -- documented fallback: unpicklable fn runs serially on the host instead of crossing the pipe
            return [fn(job) for job in jobs]
        apply_name = task_name(_task_apply)
        return self.map_calls([(apply_name, (fn, job), None) for job in jobs])


# -- shared pool + atexit safety net ---------------------------------------

_LIVE_BACKENDS: "weakref.WeakSet[ProcessBackend]" = weakref.WeakSet()
_SHARED_BACKEND: ProcessBackend | None = None
_SHARED_BACKEND_LOCK = threading.Lock()


def shared_process_backend(num_workers: int | None = None) -> ProcessBackend:
    """The process-wide shared :class:`ProcessBackend`.

    Engines resolved to the ``processes`` kind share one pool instead of
    forking per engine (a test suite under ``REPRO_BACKEND=processes``
    builds hundreds of engines). The pool is created at the first
    caller's width and *grows* when a later caller asks for more
    workers — growth restarts the workers, which bumps ``generation``
    so session-holding engines re-ship their state. It never shrinks.
    """
    global _SHARED_BACKEND
    want = num_workers or default_process_workers()
    with _SHARED_BACKEND_LOCK:
        backend = _SHARED_BACKEND
        if backend is None:
            backend = _SHARED_BACKEND = ProcessBackend(want)
        elif want > backend.num_workers:
            backend.close()
            backend = _SHARED_BACKEND = ProcessBackend(want)
        return backend


def current_process_backend() -> ProcessBackend | None:
    """The live shared backend, or ``None`` — never creates one.

    The observability twin of :func:`shared_process_backend`: telemetry
    callers (``RetrievalService.stats()``) must not spin a pool up just
    to report that none exists.
    """
    return _SHARED_BACKEND


def shutdown_all_backends(timeout: float = 1.0) -> None:
    """Stop every live process backend (the ``atexit`` safety net).

    Idempotent and exception-free: leaked pools (never ``close()``\\ d)
    must not hang or crash interpreter shutdown. Workers are daemonic
    as a second line of defense, but an orderly sentinel + join here
    lets them flush and exit cleanly.
    """
    for backend in list(_LIVE_BACKENDS):
        try:
            backend.close(timeout=timeout)
        except Exception:  # reprolint: disable=R2 -- atexit hook: daemon workers die with the interpreter; raising would mask other exit handlers
            pass


atexit.register(shutdown_all_backends)


__all__ = [
    "BACKEND_ENV",
    "START_METHOD_ENV",
    "BACKEND_KINDS",
    "WORKER_CHAOS_TOKEN",
    "BackendSpec",
    "parse_backend_spec",
    "resolve_backend",
    "default_process_workers",
    "in_worker",
    "task_name",
    "worker_shared",
    "share_array",
    "attach_shared_block",
    "ProcessBackend",
    # Re-exported from repro.core.errors for backward compatibility
    # (the taxonomy is their home since the self-healing pool).
    "ComputeError",
    "WorkerCrashedError",
    "WorkerStateError",
    "WorkerTimeoutError",
    "shared_process_backend",
    "current_process_backend",
    "shutdown_all_backends",
]
