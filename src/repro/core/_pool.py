"""Shared worker-pool lifecycle for the pipeline classes.

:class:`WorkerPoolMixin` gives a class one lazily-created
``ThreadPoolExecutor`` reused across calls (NumPy releases the GIL on
the big kernels, so threads overlap per-level work across cores), an
idempotent :meth:`close`, context-manager support, and best-effort
teardown on garbage collection. Hosts define :meth:`_pool_size`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor


class WorkerPoolMixin:
    """Lazy, instance-shared thread pool with deterministic teardown."""

    _pool: ThreadPoolExecutor | None = None

    def _pool_size(self) -> int:
        raise NotImplementedError

    def _worker_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self._pool_size())
        return self._pool

    def close(self) -> None:
        """Shut down the instance's worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
