"""Shared worker-pool lifecycle for the pipeline classes.

:class:`WorkerPoolMixin` gives a class one lazily-created
``ThreadPoolExecutor`` reused across calls (NumPy releases the GIL on
the big kernels, so threads overlap per-level work across cores), an
idempotent :meth:`close`, context-manager support, and best-effort
teardown on garbage collection. Hosts define :meth:`_pool_size` and
fan independent jobs out with :meth:`map_jobs`, which falls back to a
plain serial loop whenever the pool cannot help (one worker, or one
job).
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import TypeVar

_Job = TypeVar("_Job")
_Out = TypeVar("_Out")

#: Guards lazy pool creation. A pooled host can itself be shared across
#: another host's worker threads (the tiled engine fans tile jobs out
#: while tiles share one per-shape Refactorer), so first touches can
#: race; unsynchronized double-creation would leak an executor whose
#: threads close() never reaches. Creation is rare — one process-wide
#: lock costs nothing.
_POOL_CREATE_LOCK = threading.Lock()


class WorkerPoolMixin:
    """Lazy, instance-shared thread pool with deterministic teardown."""

    _pool: ThreadPoolExecutor | None = None

    def _pool_size(self) -> int:
        raise NotImplementedError

    def _worker_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            with _POOL_CREATE_LOCK:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self._pool_size()
                    )
        return self._pool

    def map_jobs(
        self, fn: Callable[[_Job], _Out], jobs: Sequence[_Job]
    ) -> list[_Out]:
        """``[fn(j) for j in jobs]``, through the pool when it can help.

        Results keep job order. With ``_pool_size() <= 1`` or a single
        job the loop is run serially — no pool is created, so a default
        (serial) host never pays executor overhead. Jobs must be
        independent: a *job* must never submit nested work onto the same
        pool (a saturated ``ThreadPoolExecutor`` does not steal work, so
        nesting can deadlock it).
        """
        if self._pool_size() > 1 and len(jobs) > 1:
            return list(self._worker_pool().map(fn, jobs))
        return [fn(job) for job in jobs]

    def close(self) -> None:
        """Shut down the instance's worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
