"""Shared worker-pool lifecycle for the pipeline classes.

:class:`WorkerPoolMixin` gives a class one lazily-created worker pool
reused across calls, an idempotent :meth:`close`, context-manager
support, and best-effort teardown on garbage collection. Hosts define
:meth:`_pool_size` (their ``num_workers``) and fan independent jobs out
with :meth:`map_jobs`.

Which pool that is comes from :mod:`repro.core.backends`: an explicit
``backend`` attribute on the host, the ``REPRO_BACKEND`` environment
override, or the historical ``num_workers`` rule (``> 1`` means a
thread pool, else a serial loop). The ``processes`` kind routes through
the shared :class:`~repro.core.backends.ProcessBackend` — picklable
jobs run truly parallel, closures fall back to the serial loop (the
engines' hot paths use dedicated process task functions instead of
this generic path).

Two hardening guarantees hold for every host:

* **Nested submission cannot deadlock.** A job running *on* the host's
  own thread pool that calls :meth:`map_jobs` again is detected (worker
  thread idents are recorded at pool spin-up) and runs its jobs
  serially in place — a saturated ``ThreadPoolExecutor`` does not steal
  work, so the old behaviour was a hang.
* **Leaked pools cannot hang interpreter shutdown.** Thread pools
  register in a module-level ``atexit`` registry that shuts them down
  without waiting; process backends carry their own registry (plus
  daemonic workers) in :mod:`repro.core.backends`.
"""

from __future__ import annotations

import atexit
import threading
import weakref
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import TypeVar

from repro.core.backends import (
    BackendSpec,
    resolve_backend,
    shared_process_backend,
)

_Job = TypeVar("_Job")
_Out = TypeVar("_Out")

#: Guards lazy pool creation. A pooled host can itself be shared across
#: another host's worker threads (the tiled engine fans tile jobs out
#: while tiles share one per-shape Refactorer), so first touches can
#: race; unsynchronized double-creation would leak an executor whose
#: threads close() never reaches. Creation is rare — one process-wide
#: lock costs nothing.
_POOL_CREATE_LOCK = threading.Lock()

#: Live thread pools, shut down (without waiting) at interpreter exit so
#: a host that was never close()d cannot stall shutdown on idle workers.
_LIVE_THREAD_POOLS: "weakref.WeakSet[ThreadPoolExecutor]" = weakref.WeakSet()


def _shutdown_thread_pools() -> None:
    for pool in list(_LIVE_THREAD_POOLS):
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # reprolint: disable=R2 -- atexit hook: executor state is arbitrary at interpreter shutdown and raising would mask other exit handlers
            pass


atexit.register(_shutdown_thread_pools)


def track_thread_pool(pool: ThreadPoolExecutor) -> None:
    """Register an externally-owned pool for exit-time shutdown.

    Hosts outside this module (the pipelined-retrieval fetch pool)
    get the same leaked-pool guarantee as :class:`WorkerPoolMixin`
    pools: interpreter exit shuts them down without waiting.
    """
    _LIVE_THREAD_POOLS.add(pool)


class WorkerPoolMixin:
    """Lazy, instance-shared worker pool with deterministic teardown."""

    _pool: ThreadPoolExecutor | None = None
    #: Explicit backend override (``"serial"``/``"threads"``/
    #: ``"processes"``, optionally ``":N"``); ``None`` defers to the
    #: ``REPRO_BACKEND`` environment variable and then ``num_workers``.
    backend: str | None = None

    def _pool_size(self) -> int:
        raise NotImplementedError

    def _backend_spec(self) -> BackendSpec:
        """The host's resolved execution backend (kind, workers)."""
        return resolve_backend(
            getattr(self, "backend", None), self._pool_size()
        )

    def uses_processes(self) -> bool:
        """True when this host resolves to the process backend."""
        return self._backend_spec().kind == "processes"

    def _process_backend(self):
        """The shared process pool sized for this host's spec."""
        return shared_process_backend(self._backend_spec().workers)

    def _worker_pool(self) -> ThreadPoolExecutor:
        """The host's thread pool (prefetch, thread-backend fan-out)."""
        if self._pool is None:
            with _POOL_CREATE_LOCK:
                if self._pool is None:
                    spec = self._backend_spec()
                    size = (
                        spec.workers
                        if spec.kind == "threads" and spec.workers > 1
                        else max(1, self._pool_size())
                    )
                    idents: set[int] = set()
                    pool = ThreadPoolExecutor(
                        max_workers=size,
                        initializer=lambda: idents.add(
                            threading.get_ident()
                        ),
                    )
                    self._pool_thread_idents = idents
                    _LIVE_THREAD_POOLS.add(pool)
                    self._pool = pool
        return self._pool

    def _in_own_pool(self) -> bool:
        """True when the calling thread is one of this host's workers."""
        return threading.get_ident() in getattr(
            self, "_pool_thread_idents", ()
        )

    def map_jobs(
        self, fn: Callable[[_Job], _Out], jobs: Sequence[_Job]
    ) -> list[_Out]:
        """``[fn(j) for j in jobs]``, through the backend when it helps.

        Results keep job order. A serial backend, a single job, or a
        single worker runs the plain loop — a default (serial) host
        never pays pool overhead. Re-entrant submission from one of the
        host's own worker threads also runs serially in place instead
        of deadlocking the saturated pool. Under the process backend,
        unpicklable *fn*/jobs (closures) fall back to the serial loop —
        the engines route their hot paths through dedicated process
        tasks rather than this generic method.
        """
        spec = self._backend_spec()
        if spec.kind == "serial" or spec.workers <= 1 or len(jobs) <= 1:
            return [fn(job) for job in jobs]
        if spec.kind == "processes":
            return self._process_backend().map_jobs(fn, jobs)
        if self._in_own_pool():
            return [fn(job) for job in jobs]
        return list(self._worker_pool().map(fn, jobs))

    def close(self) -> None:
        """Shut down the instance's worker pool (idempotent).

        The shared process backend is deliberately *not* closed here —
        it is process-wide and torn down by its own ``atexit`` registry
        (hosts with worker-resident sessions drop them in their own
        ``close`` overrides).
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # reprolint: disable=R2 -- GC-time teardown: an exception in __del__ is unactionable and would only print noise
            pass
