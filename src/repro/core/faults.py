"""Fault injection, retry policy, and resilient segment reading.

ROADMAP item 4 points the service layer at remote object stores — which
time out, throttle, and occasionally hand back flipped bits. This module
is the resilience toolkit around the :class:`~repro.core.store.SegmentReader`
protocol:

* :class:`FaultInjectingStore` — a deterministic, seed-driven wrapper
  that injects transient failures, latency, bit-flip corruption, and
  fail-N-then-succeed schedules into any reader. Every decision derives
  from ``(seed, key, nth access of that key)``, so a fixed access
  pattern replays the exact same fault schedule regardless of thread
  interleaving — the property the chaos test harness builds on.
* :class:`RetryPolicy` — exponential backoff with deterministic jitter,
  optional per-attempt timeout and overall deadline, and a retryable-
  error classification (:data:`~repro.core.errors.RETRYABLE_ERRORS` by
  default: transient faults and corruption retry, missing keys do not).
* :class:`ResilientReader` — wraps any reader with the policy's retries
  plus optional CRC32 verification against index-recorded checksums
  (see :func:`~repro.core.store.index_checksums`), so one composable
  object turns a flaky store into one that either answers correctly or
  raises a classified error after a bounded effort.
* :class:`WorkerChaos` — the *compute*-tier sibling of
  :class:`FaultInjectingStore`: a schedule of process-level faults
  (``os._exit``, SIGKILL, hang, raise) fired inside backend workers by
  task index, with firing counts persisted to a scratch directory so a
  schedule survives the worker kills it causes. Installed with
  :meth:`~repro.core.backends.ProcessBackend.install_chaos`, it drives
  the differential tests proving staircase results under worker-kill
  chaos stay bit-identical to the serial backend.

The layers compose: ``RetrievalService(ResilientReader(flaky, policy))``
gives every session retried, verified fetches, and the service's
:class:`~repro.core.service.SegmentCache` adds its own checksum gate on
cold fetches.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
import zlib
from collections.abc import Callable, Mapping
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError

from repro.core.errors import (
    RETRYABLE_ERRORS,
    SegmentCorruptionError,
    TransientStoreError,
)

#: Exit status a :class:`WorkerChaos` ``"exit"`` schedule dies with —
#: recognizable in ``WorkerCrashedError`` messages and test asserts.
CHAOS_EXIT_CODE = 23


class FaultInjectingStore:
    """Deterministic fault-injecting view of a segment reader.

    Parameters
    ----------
    inner:
        The wrapped :class:`~repro.core.store.SegmentReader` (or full
        store — writes and every other attribute pass through).
    seed:
        Root of the deterministic fault schedule. Each ``get`` decision
        draws from ``random.Random(f"{seed}:{key}:{n}")`` where *n* is
        that key's access count, so runs with identical per-key access
        sequences see identical faults even under concurrency.
    transient_rate:
        Probability in ``[0, 1]`` that a ``get`` raises
        :class:`~repro.core.errors.TransientStoreError` (drawn before
        the read; the attribute is mutable, so tests can switch an
        "outage" on and off mid-run).
    corrupt_rate:
        Probability in ``[0, 1]`` that a successful ``get`` returns the
        blob with exactly one deterministically-chosen bit flipped.
    latency_s:
        Injected sleep per ``get`` (via *sleep*), modeling a slow tier.
    fail_first:
        Fail-N-then-succeed schedule: an ``int`` applies to every key,
        a mapping gives per-key counts; the first N accesses of a key
        raise :class:`~repro.core.errors.TransientStoreError` before
        any rate is drawn. Use a huge N for a permanently-failing key.
    sleep:
        Injected sleep function (tests pass a no-op and read
        ``injected_latency_s`` instead of waiting).

    Counters — ``reads``, ``injected_transients``,
    ``injected_corruptions``, ``injected_latency_s`` — let harnesses
    assert that a chaos run actually exercised faults.
    """

    def __init__(
        self,
        inner,
        *,
        seed: int = 0,
        transient_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        latency_s: float = 0.0,
        fail_first: int | Mapping[str, int] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        for name, rate in (("transient_rate", transient_rate),
                           ("corrupt_rate", corrupt_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        self._inner = inner
        self.seed = seed
        self.transient_rate = float(transient_rate)
        self.corrupt_rate = float(corrupt_rate)
        self.latency_s = float(latency_s)
        self.fail_first = fail_first
        self._sleep = sleep
        self._lock = threading.Lock()
        self._access_counts: dict[str, int] = {}
        self.reads = 0
        self.injected_transients = 0
        self.injected_corruptions = 0
        self.injected_latency_s = 0.0

    def _fail_budget(self, key: str) -> int:
        schedule = self.fail_first
        if schedule is None:
            return 0
        if isinstance(schedule, Mapping):
            return int(schedule.get(key, 0))
        return int(schedule)

    def get(self, key: str) -> bytes:
        with self._lock:
            n = self._access_counts[key] = self._access_counts.get(key, 0) + 1
            self.reads += 1
        if self.latency_s:
            with self._lock:
                self.injected_latency_s += self.latency_s
            self._sleep(self.latency_s)
        if n <= self._fail_budget(key):
            with self._lock:
                self.injected_transients += 1
            raise TransientStoreError(
                f"injected failure {n}/{self._fail_budget(key)} for "
                f"segment {key!r}"
            )
        rng = random.Random(f"{self.seed}:{key}:{n}")
        if self.transient_rate and rng.random() < self.transient_rate:
            with self._lock:
                self.injected_transients += 1
            raise TransientStoreError(
                f"injected transient failure for segment {key!r} "
                f"(access {n})"
            )
        blob = self._inner.get(key)
        if self.corrupt_rate and blob and rng.random() < self.corrupt_rate:
            flipped = bytearray(blob)
            bit = rng.randrange(len(flipped) * 8)
            flipped[bit >> 3] ^= 1 << (bit & 7)
            blob = bytes(flipped)
            with self._lock:
                self.injected_corruptions += 1
        return blob

    def access_count(self, key: str) -> int:
        """How many times *key* has been ``get`` so far."""
        with self._lock:
            return self._access_counts.get(key, 0)

    # Shipped by value to process-backend workers. Fault decisions are
    # pure functions of (seed, key, nth-access-of-key) and the access
    # counters travel with the copy, so a worker that takes over a key's
    # accesses replays exactly the schedule the parent would have seen.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # Membership goes through the type slot, so it cannot be delegated
    # via __getattr__ like the remaining reader/store surface is.
    def __contains__(self, key: str) -> bool:
        return key in self._inner

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._inner, name)


class WorkerChaos:
    """Deterministic process-level fault schedule for backend workers.

    Ships to every worker through
    :meth:`~repro.core.backends.ProcessBackend.install_chaos`; the
    worker main loop calls :meth:`before_task` with each engine task's
    call index (its ``seq`` within the batch) right before executing
    it. The *plan* maps task indexes to fault modes:

    * ``"exit"`` — die hard via ``os._exit(CHAOS_EXIT_CODE)`` (no
      cleanup, no exception transport — the parent sees only the
      closed pipe);
    * ``"sigkill"`` — ``SIGKILL`` to self (not even ``os._exit`` runs);
    * ``"hang"`` — sleep ``hang_s`` while staying alive, the failure
      mode only deadlines can bound;
    * ``"raise"`` — raise a
      :class:`~repro.core.errors.TransientStoreError` (an ordinary
      task failure: settles immediately, no worker is harmed).

    A plan entry is either a mode string (fires once) or a
    ``(mode, times)`` pair — the fail-first-N schedule: the first
    *times* executions of that task index fire, later ones succeed.
    Firing counts persist as marker files under *scratch_dir*, which is
    what makes kill schedules converge: the respawned worker receives a
    pickled copy of this object whose in-memory counters would be
    fresh, but the on-disk count survives the kill, so the retried task
    runs clean instead of re-killing every replacement. *seed* is
    recorded for schedule derivation (:meth:`single_kill`) and salts
    nothing at fire time — every decision is a pure function of the
    plan and the persisted counts, the property the differential
    (serial vs processes) chaos tests build on.
    """

    MODES = ("exit", "sigkill", "hang", "raise")

    def __init__(
        self,
        plan: Mapping[int, str | tuple[str, int]],
        scratch_dir: str,
        *,
        seed: int = 0,
        hang_s: float = 3600.0,
    ) -> None:
        normalized: dict[int, tuple[str, int]] = {}
        for index, entry in dict(plan).items():
            if isinstance(entry, str):
                mode, times = entry, 1
            else:
                mode, times = entry
            if mode not in self.MODES:
                raise ValueError(
                    f"chaos mode must be one of {self.MODES}, got "
                    f"{mode!r}"
                )
            if int(times) < 1:
                raise ValueError(f"chaos fire count must be >= 1: {entry!r}")
            normalized[int(index)] = (mode, int(times))
        self.plan = normalized
        self.scratch_dir = str(scratch_dir)
        self.seed = seed
        self.hang_s = float(hang_s)

    @classmethod
    def single_kill(
        cls,
        seed: int,
        num_tasks: int,
        scratch_dir: str,
        mode: str = "exit",
    ) -> "WorkerChaos":
        """One seeded kill: a deterministic task index in ``[0, num_tasks)``.

        The canonical "one mid-run worker kill" schedule the chaos
        differential tests and the crash-recovery benchmark use — same
        seed, same victim.
        """
        index = random.Random(seed).randrange(int(num_tasks))
        return cls({index: mode}, scratch_dir, seed=seed)

    def _marker(self, index: int) -> str:
        return os.path.join(self.scratch_dir, f"chaos-fired-{index}")

    def fired(self, index: int) -> int:
        """How many times *index*'s schedule has fired so far."""
        try:
            return os.path.getsize(self._marker(index))
        except OSError:
            return 0

    def total_fired(self) -> int:
        """Total firings across the whole plan (for harness asserts)."""
        return sum(self.fired(index) for index in self.plan)

    def before_task(self, index: int, name: str | None = None) -> None:
        """Fire *index*'s scheduled fault, if any remain (worker side)."""
        entry = self.plan.get(int(index))
        if entry is None:
            return
        mode, times = entry
        if self.fired(index) >= times:
            return
        # Record the firing *before* acting: a kill mode never returns,
        # and an unrecorded kill would fire again on every retry.
        with open(self._marker(index), "ab") as fh:
            fh.write(b"x")
            fh.flush()
            os.fsync(fh.fileno())
        if mode == "exit":
            os._exit(CHAOS_EXIT_CODE)
        if mode == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        if mode == "hang":
            time.sleep(self.hang_s)
            return
        raise TransientStoreError(
            f"chaos: injected failure for task index {index}"
            + (f" ({name})" if name else "")
        )


class RetryPolicy:
    """Bounded, classified retries with exponential backoff and jitter.

    Parameters
    ----------
    max_attempts:
        Total tries per call (first attempt included); ``1`` disables
        retries.
    base_delay_s / max_delay_s:
        Backoff before retry *k* (1-based) sleeps
        ``min(max_delay_s, base_delay_s * 2**(k-1))`` scaled by jitter.
    jitter:
        Fractional jitter: each delay is multiplied by a deterministic
        draw from ``[1, 1 + jitter]`` (seeded — two policies built with
        the same seed back off identically).
    deadline_s:
        Overall budget per :meth:`run` call: when the elapsed time plus
        the next planned delay would exceed it, the last error is
        raised instead of sleeping.
    attempt_timeout_s:
        Per-attempt wall limit. The attempt runs in a daemon thread and
        is abandoned on timeout (a blocking store call cannot be
        cancelled from outside), surfacing as a retryable
        :class:`~repro.core.errors.TransientStoreError`.
    retryable:
        Exception classes worth retrying
        (:data:`~repro.core.errors.RETRYABLE_ERRORS` by default).
    sleep / clock:
        Injectable for tests (defaults ``time.sleep`` /
        ``time.monotonic``).

    Counters: ``attempts`` (calls into the wrapped function),
    ``retries`` (sleeps taken), ``giveups`` (calls that raised).
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay_s: float = 0.01,
        max_delay_s: float = 2.0,
        jitter: float = 0.1,
        deadline_s: float | None = None,
        attempt_timeout_s: float | None = None,
        retryable: tuple[type[BaseException], ...] = RETRYABLE_ERRORS,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay_s < 0 or max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
        if attempt_timeout_s is not None and attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be > 0")
        self.max_attempts = int(max_attempts)
        self.base_delay_s = float(base_delay_s)
        self.max_delay_s = float(max_delay_s)
        self.jitter = float(jitter)
        self.deadline_s = deadline_s
        self.attempt_timeout_s = attempt_timeout_s
        self.retryable = tuple(retryable)
        self._sleep = sleep
        self._clock = clock
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self.attempts = 0
        self.retries = 0
        self.giveups = 0

    def delay_for(self, retry_number: int) -> float:
        """Backoff before 1-based *retry_number* (jitter applied)."""
        if retry_number < 1:
            raise ValueError("retry_number is 1-based")
        base = min(
            self.max_delay_s, self.base_delay_s * 2.0 ** (retry_number - 1)
        )
        if not self.jitter:
            return base
        with self._rng_lock:
            scale = 1.0 + self.jitter * self._rng.random()
        return base * scale

    def _attempt(self, fn: Callable, args: tuple):
        if self.attempt_timeout_s is None:
            return fn(*args)
        outcome: Future = Future()

        def runner() -> None:
            try:
                outcome.set_result(fn(*args))
            except BaseException as exc:  # reprolint: disable=R2 -- delivered via the outcome future; the waiter re-raises it
                outcome.set_exception(exc)

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        try:
            return outcome.result(timeout=self.attempt_timeout_s)
        except FutureTimeoutError:
            # The blocking call cannot be cancelled; abandon the thread
            # and classify the attempt as transient so it is retried.
            raise TransientStoreError(
                f"attempt exceeded {self.attempt_timeout_s}s timeout"
            ) from None

    def run(self, fn: Callable, *args):
        """Call ``fn(*args)``, retrying classified failures per policy."""
        start = self._clock()
        retry_number = 0
        while True:
            self.attempts += 1
            try:
                return self._attempt(fn, args)
            except self.retryable:
                retry_number += 1
                if retry_number >= self.max_attempts:
                    self.giveups += 1
                    raise
                delay = self.delay_for(retry_number)
                if (
                    self.deadline_s is not None
                    and self._clock() - start + delay > self.deadline_s
                ):
                    self.giveups += 1
                    raise
                self.retries += 1
                if delay:
                    self._sleep(delay)

    def stats(self) -> dict:
        """Counter snapshot, JSON-ready."""
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "giveups": self.giveups,
        }

    # Process-backend transport: the seeded RNG state and counters copy
    # over; only the lock is recreated. ``sleep``/``clock`` must be
    # module-level callables (the defaults are) to cross the boundary.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_rng_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._rng_lock = threading.Lock()


class ResilientReader:
    """Retrying, verifying view of a :class:`~repro.core.store.SegmentReader`.

    ``get`` runs through *policy* (so transient faults and heal-able
    corruption are retried with backoff); when *checksums* maps a key to
    its CRC32 (as recorded by :func:`~repro.core.store.store_field` —
    see :func:`~repro.core.store.index_checksums`), every fetched blob
    is verified and mismatches raise
    :class:`~repro.core.errors.SegmentCorruptionError` — which the
    default policy classification also retries, since a flip on the
    read path heals on re-fetch. Everything else (writes, counters,
    ``batch``) passes through to the wrapped reader.
    """

    def __init__(
        self,
        reader,
        policy: RetryPolicy | None = None,
        checksums: Mapping[str, int] | None = None,
    ) -> None:
        self._reader = reader
        self.policy = policy if policy is not None else RetryPolicy()
        self._checksums: dict[str, int] = dict(checksums or {})
        self._checksums_lock = threading.Lock()

    def register_checksums(self, checksums: Mapping[str, int]) -> None:
        """Add expected CRC32s (e.g. from a freshly-read index)."""
        with self._checksums_lock:
            self._checksums.update(
                {k: int(v) for k, v in checksums.items()}
            )

    # Process-backend transport: wrapped reader, policy, and registered
    # checksums copy over; the lock is recreated worker-side.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_checksums_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._checksums_lock = threading.Lock()

    def _get_once(self, key: str) -> bytes:
        blob = self._reader.get(key)
        with self._checksums_lock:
            expected = self._checksums.get(key)
        if expected is not None and zlib.crc32(blob) != expected:
            raise SegmentCorruptionError(
                f"segment {key!r} failed CRC32 verification"
            )
        return blob

    def get(self, key: str) -> bytes:
        """Fetch *key* with retries and (when known) CRC verification."""
        return self.policy.run(self._get_once, key)

    def size_of(self, key: str) -> int:
        """Manifest-size lookup, retried under the same policy."""
        return self.policy.run(self._reader.size_of, key)

    def keys(self) -> list[str]:
        return self._reader.keys()

    def __contains__(self, key: str) -> bool:
        return key in self._reader

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._reader, name)


__all__ = [
    "FaultInjectingStore",
    "WorkerChaos",
    "CHAOS_EXIT_CODE",
    "RetryPolicy",
    "ResilientReader",
]
