"""HP-MDR core: end-to-end data refactoring and progressive retrieval.

The pipeline composes the substrates exactly as Figure 1 of the paper:

    field ──MultilevelTransform──► per-level coefficients
          ──bitplane encode─────► per-level bitplane streams
          ──hybrid lossless─────► compressed plane groups (segments)

and the reverse for reconstruction, where the retrieval planner picks the
cheapest set of plane groups whose composed L∞ bound meets the requested
tolerance (the "just enough precision on demand" property).

Public API:

- :class:`~repro.core.refactor.Refactorer` — one-call refactoring.
- :class:`~repro.core.reconstruct.Reconstructor` — tolerance-driven and
  incremental (progressive) reconstruction.
- :class:`~repro.core.stream.RefactoredField` — the portable stream
  format (serializable, device-independent) — and its store-backed
  :class:`~repro.core.stream.LazyRefactoredField` twin that resolves
  segments on first decode touch.
- :mod:`~repro.core.store` — in-memory, directory-backed, and sharded
  segment stores behind the :class:`~repro.core.store.SegmentReader`
  protocol, plus :func:`~repro.core.store.store_field` /
  :func:`~repro.core.store.load_field` /
  :func:`~repro.core.store.open_field`.
- :mod:`~repro.core.service` — the
  :class:`~repro.core.service.RetrievalService` layer that multiplexes
  concurrent progressive sessions over one byte-budgeted shared
  :class:`~repro.core.service.SegmentCache`.
"""

from repro.core.errors import (
    ComputeError,
    SegmentCorruptionError,
    SegmentNotFoundError,
    StoreError,
    TransientStoreError,
    WorkerCrashedError,
    WorkerStateError,
    WorkerTimeoutError,
)
from repro.core.faults import (
    FaultInjectingStore,
    ResilientReader,
    RetryPolicy,
    WorkerChaos,
)
from repro.core.planner import RetrievalPlan, plan_greedy, plan_round_robin
from repro.core.reconstruct import ReconstructionResult, Reconstructor
from repro.core.refactor import Refactorer, RefactorConfig
from repro.core.service import (
    RetrievalService,
    SegmentCache,
    ServiceSession,
    TiledServiceSession,
)
from repro.core.store import (
    DirectoryStore,
    MemoryStore,
    SegmentReader,
    SegmentStore,
    ShardedDirectoryStore,
    index_checksums,
    load_field,
    open_field,
    open_tiled_field,
    segment_checksum,
    store_field,
    store_tiled_field,
)
from repro.core.stream import (
    LazyRefactoredField,
    LevelStream,
    RefactoredField,
    SegmentRef,
)
from repro.core.tiling import (
    LazyTiledField,
    TiledField,
    TiledReconstructionResult,
    TiledReconstructor,
    TiledRefactorer,
    plan_tiles,
)

__all__ = [
    "Refactorer",
    "RefactorConfig",
    "Reconstructor",
    "ReconstructionResult",
    "RefactoredField",
    "LazyRefactoredField",
    "LevelStream",
    "SegmentRef",
    "RetrievalPlan",
    "plan_greedy",
    "plan_round_robin",
    "SegmentReader",
    "SegmentStore",
    "MemoryStore",
    "DirectoryStore",
    "ShardedDirectoryStore",
    "store_field",
    "load_field",
    "open_field",
    "store_tiled_field",
    "open_tiled_field",
    "segment_checksum",
    "index_checksums",
    "StoreError",
    "SegmentNotFoundError",
    "TransientStoreError",
    "SegmentCorruptionError",
    "ComputeError",
    "WorkerCrashedError",
    "WorkerStateError",
    "WorkerTimeoutError",
    "FaultInjectingStore",
    "WorkerChaos",
    "RetryPolicy",
    "ResilientReader",
    "RetrievalService",
    "SegmentCache",
    "ServiceSession",
    "TiledServiceSession",
    "plan_tiles",
    "TiledField",
    "LazyTiledField",
    "TiledRefactorer",
    "TiledReconstructionResult",
    "TiledReconstructor",
]
