"""HP-MDR core: end-to-end data refactoring and progressive retrieval.

The pipeline composes the substrates exactly as Figure 1 of the paper:

    field ──MultilevelTransform──► per-level coefficients
          ──bitplane encode─────► per-level bitplane streams
          ──hybrid lossless─────► compressed plane groups (segments)

and the reverse for reconstruction, where the retrieval planner picks the
cheapest set of plane groups whose composed L∞ bound meets the requested
tolerance (the "just enough precision on demand" property).

Public API:

- :class:`~repro.core.refactor.Refactorer` — one-call refactoring.
- :class:`~repro.core.reconstruct.Reconstructor` — tolerance-driven and
  incremental (progressive) reconstruction.
- :class:`~repro.core.stream.RefactoredField` — the portable stream
  format (serializable, device-independent).
- :mod:`~repro.core.store` — in-memory and directory-backed segment
  stores.
"""

from repro.core.planner import RetrievalPlan, plan_greedy, plan_round_robin
from repro.core.reconstruct import ReconstructionResult, Reconstructor
from repro.core.refactor import Refactorer, RefactorConfig
from repro.core.store import DirectoryStore, MemoryStore
from repro.core.stream import LevelStream, RefactoredField

__all__ = [
    "Refactorer",
    "RefactorConfig",
    "Reconstructor",
    "ReconstructionResult",
    "RefactoredField",
    "LevelStream",
    "RetrievalPlan",
    "plan_greedy",
    "plan_round_robin",
    "MemoryStore",
    "DirectoryStore",
]
