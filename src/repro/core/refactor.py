"""Data refactoring: field → portable multi-precision stream (Figure 1).

The :class:`Refactorer` runs the forward pipeline — multilevel
decomposition, per-level exponent-aligned bitplane encoding with the
selected parallelization design, and hybrid lossless compression of the
plane groups — and emits a :class:`~repro.core.stream.RefactoredField`.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field

import numpy as np

from repro.bitplane.align import MAX_BITPLANES
from repro.bitplane.encoding import DESIGNS, encode_bitplanes
from repro.core._pool import WorkerPoolMixin
from repro.core.backends import parse_backend_spec, task_name, worker_shared
from repro.core.stream import LevelStream, RefactoredField
from repro.decompose import MultilevelTransform
from repro.decompose.norms import level_error_weights
from repro.lossless.hybrid import HybridConfig, compress_planes
from repro.util.validation import check_dtype_floating


def default_bitplanes(dtype: np.dtype) -> int:
    """Paper default: 32 planes for FP32; deeper for FP64 (mantissa-bound)."""
    return 32 if np.dtype(dtype) == np.float32 else min(52, MAX_BITPLANES)


@dataclass(frozen=True)
class RefactorConfig:
    """All tuning knobs of the refactoring pipeline in one place."""

    num_bitplanes: int | None = None  # None = dtype default
    num_levels: int | None = None  # None = deepest hierarchy
    mode: str = "hierarchical"
    min_size: int = 4
    design: str = "register_block"
    warp_size: int = 32
    signed_encoding: str = "sign_magnitude"
    hybrid: HybridConfig = field(default_factory=HybridConfig)
    #: Levels encoded/decoded concurrently when > 1 (NumPy releases the
    #: GIL on the big kernels); 0 or 1 keeps the pipeline serial.
    num_workers: int = 0
    #: Execution backend override: ``"serial"``/``"threads"``/
    #: ``"processes"`` (optionally ``":N"``). ``None`` defers to the
    #: ``REPRO_BACKEND`` environment variable and then ``num_workers``
    #: (see :mod:`repro.core.backends`).
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.design not in DESIGNS:
            raise ValueError(
                f"design must be one of {DESIGNS}, got {self.design!r}"
            )
        if self.num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if self.backend is not None:
            parse_backend_spec(self.backend)  # validates, raises on junk
        if self.num_bitplanes is not None and not (
            1 <= self.num_bitplanes <= MAX_BITPLANES
        ):
            raise ValueError(
                f"num_bitplanes must be in [1, {MAX_BITPLANES}]"
            )
        if self.signed_encoding not in ("sign_magnitude", "negabinary"):
            raise ValueError(
                "signed_encoding must be sign_magnitude or negabinary, "
                f"got {self.signed_encoding!r}"
            )


def _encode_level_stream(
    config: RefactorConfig,
    lev: int,
    coeff: np.ndarray,
    num_bitplanes: int,
    pool=None,
) -> LevelStream:
    """Encode one coefficient level (one worker's unit of work).

    Module-level so the thread backend's closures and the process
    backend's task run the *same* code — the byte-identity contract of
    the cross-backend differential suite is structural, not tested-in.

    ``pool`` fans the level's independent plane-group compressions out
    across a thread pool; it must only be passed when the level loop
    itself is serial (nesting pool tasks inside pool tasks can deadlock
    a saturated thread pool).
    """
    stream = encode_bitplanes(
        coeff,
        num_bitplanes=num_bitplanes,
        design=config.design,
        warp_size=config.warp_size,
        signed_encoding=config.signed_encoding,
    )
    groups = compress_planes(stream.planes, config.hybrid, pool=pool)
    return LevelStream(
        level=lev,
        num_elements=stream.num_elements,
        num_bitplanes=stream.num_bitplanes,
        exponent=stream.exponent,
        max_abs=stream.max_abs,
        layout=stream.layout,
        warp_size=stream.warp_size,
        groups=groups,
        signed_encoding=stream.signed_encoding,
    )


def _task_encode_level(state, token, lev, coeff, num_bitplanes):
    """Process-backend task: encode one level with the shipped config."""
    return _encode_level_stream(
        worker_shared(state, token), lev, coeff, num_bitplanes
    )


class Refactorer(WorkerPoolMixin):
    """Refactor float fields into progressive multi-precision streams.

    A single instance is reusable across fields of the same shape (the
    transform geometry, error weights, and — with ``num_workers > 1`` —
    the worker pool are all shared across calls). The execution backend
    (serial loop, thread pool, or worker processes) comes from
    ``config.backend`` / ``REPRO_BACKEND`` / ``config.num_workers``;
    under the process backend the config is pickled to each worker once
    and per-level encodes run truly parallel.
    """

    def __init__(
        self, shape: tuple[int, ...], config: RefactorConfig | None = None
    ) -> None:
        self.config = config or RefactorConfig()
        self.backend = self.config.backend
        self.transform = MultilevelTransform(
            shape,
            num_levels=self.config.num_levels,
            mode=self.config.mode,
            min_size=self.config.min_size,
        )
        self._weights = level_error_weights(self.transform)
        # Unique per instance: the shared-object token under which this
        # config is shipped (once per worker) to the process backend. A
        # fresh UUID — not id(self) — so a recycled object id can never
        # alias a *different* config already resident in a worker.
        self._config_token = f"refactor-config:{uuid.uuid4().hex}"

    @property
    def shape(self) -> tuple[int, ...]:
        return self.transform.shape

    def _pool_size(self) -> int:
        return self.config.num_workers

    def _encode_level(
        self, lev: int, coeff: np.ndarray, num_bitplanes: int,
        pool=None,
    ) -> LevelStream:
        """Encode one coefficient level — see :func:`_encode_level_stream`."""
        return _encode_level_stream(
            self.config, lev, coeff, num_bitplanes, pool=pool
        )

    def _encode_levels_processes(
        self, jobs: list[tuple[int, np.ndarray]], num_bitplanes: int
    ) -> list[LevelStream]:
        """Fan per-level encodes out across the process backend.

        The config travels once per worker (``ensure_shared``); each
        call ships only its level's coefficient array and gets the
        encoded :class:`LevelStream` back.
        """
        backend = self._process_backend()
        backend.ensure_shared(self._config_token, self.config)
        encode = task_name(_task_encode_level)
        return backend.map_calls([
            (encode, (self._config_token, lev, coeff, num_bitplanes), None)
            for lev, coeff in jobs
        ])

    def refactor(self, data: np.ndarray, name: str = "var") -> RefactoredField:
        """Run the forward pipeline on *data*."""
        data = np.asarray(data)
        check_dtype_floating(data)
        if data.shape != self.shape:
            raise ValueError(
                f"data shape {data.shape} != refactorer shape {self.shape}"
            )
        num_bitplanes = self.config.num_bitplanes or default_bitplanes(
            data.dtype
        )
        coeffs = self.transform.decompose(data)
        level_arrays = self.transform.extract_levels(coeffs)

        def encode_one(job: tuple[int, np.ndarray]) -> LevelStream:
            return self._encode_level(job[0], job[1], num_bitplanes)

        jobs = list(enumerate(level_arrays))
        spec = self._backend_spec()
        if len(jobs) > 1 and spec.kind == "processes" and spec.workers > 1:
            # True parallelism: per-level encodes run in worker
            # processes (the config shipped once per worker).
            levels = self._encode_levels_processes(jobs, num_bitplanes)
        elif len(jobs) > 1:
            # Levels are independent; the transpose/codec kernels release
            # the GIL, so a thread pool overlaps them across cores. The
            # per-level group compression stays serial here — nesting
            # group tasks inside level tasks on the same pool could
            # deadlock it (ThreadPoolExecutor does not steal work).
            # reprolint: disable=R3 -- threads-only branch: the processes case above ships module-level tasks instead
            levels = self.map_jobs(encode_one, jobs)
        elif spec.kind == "threads" and spec.workers > 1:
            # Single level: push the pool one layer down instead, so the
            # level's independent plane groups compress concurrently.
            levels = [
                self._encode_level(
                    job[0], job[1], num_bitplanes, pool=self._worker_pool()
                )
                for job in jobs
            ]
        else:
            levels = [encode_one(job) for job in jobs]
        value_range = (
            float(np.max(data) - np.min(data)) if data.size else 0.0
        )
        return RefactoredField(
            shape=self.shape,
            dtype=data.dtype,
            mode=self.config.mode,
            num_levels=self.transform.num_levels,
            min_size=self.config.min_size,
            group_size=self.config.hybrid.group_size,
            design=self.config.design,
            level_weights=list(self._weights),
            levels=levels,
            value_range=value_range,
            name=name,
        )


def refactor(
    data: np.ndarray,
    config: RefactorConfig | None = None,
    name: str = "var",
) -> RefactoredField:
    """One-shot convenience wrapper around :class:`Refactorer`."""
    return Refactorer(np.asarray(data).shape, config).refactor(data, name)
