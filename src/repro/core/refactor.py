"""Data refactoring: field → portable multi-precision stream (Figure 1).

The :class:`Refactorer` runs the forward pipeline — multilevel
decomposition, per-level exponent-aligned bitplane encoding with the
selected parallelization design, and hybrid lossless compression of the
plane groups — and emits a :class:`~repro.core.stream.RefactoredField`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bitplane.align import MAX_BITPLANES
from repro.bitplane.encoding import DESIGNS, encode_bitplanes
from repro.core._pool import WorkerPoolMixin
from repro.core.stream import LevelStream, RefactoredField
from repro.decompose import MultilevelTransform
from repro.decompose.norms import level_error_weights
from repro.lossless.hybrid import HybridConfig, compress_planes
from repro.util.validation import check_dtype_floating


def default_bitplanes(dtype: np.dtype) -> int:
    """Paper default: 32 planes for FP32; deeper for FP64 (mantissa-bound)."""
    return 32 if np.dtype(dtype) == np.float32 else min(52, MAX_BITPLANES)


@dataclass(frozen=True)
class RefactorConfig:
    """All tuning knobs of the refactoring pipeline in one place."""

    num_bitplanes: int | None = None  # None = dtype default
    num_levels: int | None = None  # None = deepest hierarchy
    mode: str = "hierarchical"
    min_size: int = 4
    design: str = "register_block"
    warp_size: int = 32
    signed_encoding: str = "sign_magnitude"
    hybrid: HybridConfig = field(default_factory=HybridConfig)
    #: Levels encoded/decoded concurrently when > 1 (NumPy releases the
    #: GIL on the big kernels); 0 or 1 keeps the pipeline serial.
    num_workers: int = 0

    def __post_init__(self) -> None:
        if self.design not in DESIGNS:
            raise ValueError(
                f"design must be one of {DESIGNS}, got {self.design!r}"
            )
        if self.num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if self.num_bitplanes is not None and not (
            1 <= self.num_bitplanes <= MAX_BITPLANES
        ):
            raise ValueError(
                f"num_bitplanes must be in [1, {MAX_BITPLANES}]"
            )
        if self.signed_encoding not in ("sign_magnitude", "negabinary"):
            raise ValueError(
                "signed_encoding must be sign_magnitude or negabinary, "
                f"got {self.signed_encoding!r}"
            )


class Refactorer(WorkerPoolMixin):
    """Refactor float fields into progressive multi-precision streams.

    A single instance is reusable across fields of the same shape (the
    transform geometry, error weights, and — with ``num_workers > 1`` —
    the worker thread pool are all shared across calls).
    """

    def __init__(
        self, shape: tuple[int, ...], config: RefactorConfig | None = None
    ) -> None:
        self.config = config or RefactorConfig()
        self.transform = MultilevelTransform(
            shape,
            num_levels=self.config.num_levels,
            mode=self.config.mode,
            min_size=self.config.min_size,
        )
        self._weights = level_error_weights(self.transform)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.transform.shape

    def _pool_size(self) -> int:
        return self.config.num_workers

    def _encode_level(
        self, lev: int, coeff: np.ndarray, num_bitplanes: int,
        pool=None,
    ) -> LevelStream:
        """Encode one coefficient level (a worker-pool unit of work).

        ``pool`` fans the level's independent plane-group compressions
        out across the worker pool; it must only be passed when the
        level loop itself is serial (nesting pool tasks inside pool
        tasks can deadlock a saturated thread pool).
        """
        stream = encode_bitplanes(
            coeff,
            num_bitplanes=num_bitplanes,
            design=self.config.design,
            warp_size=self.config.warp_size,
            signed_encoding=self.config.signed_encoding,
        )
        groups = compress_planes(stream.planes, self.config.hybrid, pool=pool)
        return LevelStream(
            level=lev,
            num_elements=stream.num_elements,
            num_bitplanes=stream.num_bitplanes,
            exponent=stream.exponent,
            max_abs=stream.max_abs,
            layout=stream.layout,
            warp_size=stream.warp_size,
            groups=groups,
            signed_encoding=stream.signed_encoding,
        )

    def refactor(self, data: np.ndarray, name: str = "var") -> RefactoredField:
        """Run the forward pipeline on *data*."""
        data = np.asarray(data)
        check_dtype_floating(data)
        if data.shape != self.shape:
            raise ValueError(
                f"data shape {data.shape} != refactorer shape {self.shape}"
            )
        num_bitplanes = self.config.num_bitplanes or default_bitplanes(
            data.dtype
        )
        coeffs = self.transform.decompose(data)
        level_arrays = self.transform.extract_levels(coeffs)

        def encode_one(job: tuple[int, np.ndarray]) -> LevelStream:
            return self._encode_level(job[0], job[1], num_bitplanes)

        jobs = list(enumerate(level_arrays))
        if len(jobs) > 1:
            # Levels are independent; the transpose/codec kernels release
            # the GIL, so a thread pool overlaps them across cores. The
            # per-level group compression stays serial here — nesting
            # group tasks inside level tasks on the same pool could
            # deadlock it (ThreadPoolExecutor does not steal work).
            levels = self.map_jobs(encode_one, jobs)
        elif self.config.num_workers > 1:
            # Single level: push the pool one layer down instead, so the
            # level's independent plane groups compress concurrently.
            levels = [
                self._encode_level(
                    job[0], job[1], num_bitplanes, pool=self._worker_pool()
                )
                for job in jobs
            ]
        else:
            levels = [encode_one(job) for job in jobs]
        value_range = (
            float(np.max(data) - np.min(data)) if data.size else 0.0
        )
        return RefactoredField(
            shape=self.shape,
            dtype=data.dtype,
            mode=self.config.mode,
            num_levels=self.transform.num_levels,
            min_size=self.config.min_size,
            group_size=self.config.hybrid.group_size,
            design=self.config.design,
            level_weights=list(self._weights),
            levels=levels,
            value_range=value_range,
            name=name,
        )


def refactor(
    data: np.ndarray,
    config: RefactorConfig | None = None,
    name: str = "var",
) -> RefactoredField:
    """One-shot convenience wrapper around :class:`Refactorer`."""
    return Refactorer(np.asarray(data).shape, config).refactor(data, name)
