"""Shared utilities: metrics, validation helpers, byte-level serialization."""

from repro.util.metrics import (
    bitrate,
    compression_ratio,
    l2_error,
    linf_error,
    psnr,
    relative_linf_error,
    throughput_gbps,
)
from repro.util.serialize import (
    pack_arrays,
    read_header,
    unpack_arrays,
    write_header,
)
from repro.util.validation import (
    check_dtype_floating,
    check_positive,
    check_shape_3d,
    require,
)

__all__ = [
    "bitrate",
    "compression_ratio",
    "l2_error",
    "linf_error",
    "psnr",
    "relative_linf_error",
    "throughput_gbps",
    "pack_arrays",
    "unpack_arrays",
    "read_header",
    "write_header",
    "check_dtype_floating",
    "check_positive",
    "check_shape_3d",
    "require",
]
