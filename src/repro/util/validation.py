"""Argument validation helpers used across the library.

These raise early with actionable messages rather than letting NumPy
broadcast errors surface deep inside kernels.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def check_positive(name: str, value: float) -> None:
    """Validate that a scalar parameter is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_tolerance(
    tolerance: Any, *, allow_none: bool = False
) -> float | None:
    """Validate a retrieval tolerance and return it normalized to float.

    The single gate every ``tolerance`` parameter in the public planner /
    reconstruct API routes through (enforced by reprolint rule R5). A NaN
    tolerance previously fell through every ``>`` comparison and silently
    produced an empty plan; infinities are rejected too so "retrieve
    nothing" must be asked for explicitly with a finite loose tolerance.

    With ``allow_none=True``, ``None`` passes through (the near-lossless
    "fetch everything" request); otherwise it is rejected.
    """
    if tolerance is None:
        if allow_none:
            return None
        raise ValueError("tolerance must not be None")
    value = float(tolerance)
    if not math.isfinite(value):
        raise ValueError(f"tolerance must be finite, got {value}")
    if value < 0:
        raise ValueError("tolerance must be >= 0")
    return value


def check_dtype_floating(arr: np.ndarray) -> None:
    """Validate that *arr* holds float32 or float64 data."""
    if arr.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise TypeError(
            f"expected float32 or float64 array, got dtype {arr.dtype}"
        )


def check_shape_3d(shape: Sequence[int]) -> tuple[int, int, int]:
    """Validate and normalize a 3-D shape tuple."""
    shape = tuple(int(s) for s in shape)
    if len(shape) != 3 or any(s <= 0 for s in shape):
        raise ValueError(f"expected a positive 3-D shape, got {shape}")
    return shape  # type: ignore[return-value]


def as_contiguous_floats(data: Any) -> np.ndarray:
    """Return *data* as a C-contiguous float array, validating dtype."""
    arr = np.ascontiguousarray(data)
    check_dtype_floating(arr)
    return arr
