"""Argument validation helpers used across the library.

These raise early with actionable messages rather than letting NumPy
broadcast errors surface deep inside kernels.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def check_positive(name: str, value: float) -> None:
    """Validate that a scalar parameter is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_dtype_floating(arr: np.ndarray) -> None:
    """Validate that *arr* holds float32 or float64 data."""
    if arr.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise TypeError(
            f"expected float32 or float64 array, got dtype {arr.dtype}"
        )


def check_shape_3d(shape: Sequence[int]) -> tuple[int, int, int]:
    """Validate and normalize a 3-D shape tuple."""
    shape = tuple(int(s) for s in shape)
    if len(shape) != 3 or any(s <= 0 for s in shape):
        raise ValueError(f"expected a positive 3-D shape, got {shape}")
    return shape  # type: ignore[return-value]


def as_contiguous_floats(data: Any) -> np.ndarray:
    """Return *data* as a C-contiguous float array, validating dtype."""
    arr = np.ascontiguousarray(data)
    check_dtype_floating(arr)
    return arr
