"""Accuracy and performance metrics used throughout the evaluation.

All error metrics operate on NumPy arrays of identical shape; performance
metrics convert (bytes, seconds) pairs into the GB/s figures the paper
reports.
"""

from __future__ import annotations

import math

import numpy as np


def linf_error(original: np.ndarray, approx: np.ndarray) -> float:
    """Maximum absolute pointwise error ``max|a - b|``."""
    if original.shape != approx.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {approx.shape}"
        )
    if original.size == 0:
        return 0.0
    return float(
        np.max(np.abs(original.astype(np.float64) - approx.astype(np.float64)))
    )


def relative_linf_error(original: np.ndarray, approx: np.ndarray) -> float:
    """L-infinity error normalized by the value range of *original*.

    This is the "relative error bound" convention used by SZ/MGARD/MDR:
    ``max|a-b| / (max(a) - min(a))``. Returns the absolute error when the
    value range is zero.
    """
    rng = float(np.max(original) - np.min(original)) if original.size else 0.0
    err = linf_error(original, approx)
    return err / rng if rng > 0 else err


def l2_error(original: np.ndarray, approx: np.ndarray) -> float:
    """Root-mean-square error."""
    if original.shape != approx.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {approx.shape}"
        )
    if original.size == 0:
        return 0.0
    diff = original.astype(np.float64) - approx.astype(np.float64)
    return float(np.sqrt(np.mean(diff * diff)))


def psnr(original: np.ndarray, approx: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for exact match)."""
    rmse = l2_error(original, approx)
    rng = float(np.max(original) - np.min(original)) if original.size else 0.0
    if rmse == 0:
        return math.inf
    if rng == 0:
        return -math.inf
    return 20.0 * math.log10(rng / rmse)


def bitrate(compressed_bytes: int, num_elements: int) -> float:
    """Bits per element — the retrieval-efficiency metric of Tables 2/3."""
    if num_elements <= 0:
        raise ValueError("num_elements must be positive")
    return 8.0 * compressed_bytes / num_elements


def compression_ratio(original_bytes: int, compressed_bytes: int) -> float:
    """Original size over compressed size; ``inf`` when compressed is 0."""
    if compressed_bytes <= 0:
        return math.inf
    return original_bytes / compressed_bytes


def throughput_gbps(num_bytes: int, seconds: float) -> float:
    """Throughput in GB/s (decimal GB, as HPC papers report)."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return num_bytes / seconds / 1e9
