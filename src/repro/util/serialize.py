"""Minimal, dependency-free binary serialization for refactored streams.

The on-disk format intentionally avoids pickle: every segment is a plain
byte blob preceded by a small fixed header, so streams written by one
"device" (or machine) are readable by any other — the portability property
HP-MDR emphasizes.

Header layout (little-endian):
    magic   : 4 bytes  b"RPRO"
    version : uint16
    count   : uint32   number of payload blobs
    lengths : count * uint64
followed by the concatenated payloads.
"""

from __future__ import annotations

import struct
from typing import Sequence

import numpy as np

MAGIC = b"RPRO"
VERSION = 1
_HEADER_FMT = "<4sHI"


def write_header(count: int, lengths: Sequence[int]) -> bytes:
    """Serialize the stream header for *count* blobs with given lengths."""
    if count != len(lengths):
        raise ValueError("count does not match number of lengths")
    head = struct.pack(_HEADER_FMT, MAGIC, VERSION, count)
    body = struct.pack(f"<{count}Q", *lengths)
    return head + body


def read_header(buf: bytes | memoryview) -> tuple[list[int], int]:
    """Parse a header, returning (lengths, payload_offset)."""
    head_size = struct.calcsize(_HEADER_FMT)
    if len(buf) < head_size:
        raise ValueError("buffer too small for stream header")
    magic, version, count = struct.unpack_from(_HEADER_FMT, buf, 0)
    if magic != MAGIC:
        raise ValueError(f"bad magic {magic!r}; not a repro stream")
    if version != VERSION:
        raise ValueError(f"unsupported stream version {version}")
    lengths_size = 8 * count
    if len(buf) < head_size + lengths_size:
        raise ValueError("buffer truncated inside header length table")
    lengths = list(struct.unpack_from(f"<{count}Q", buf, head_size))
    return lengths, head_size + lengths_size


def pack_arrays(arrays: Sequence[np.ndarray]) -> bytes:
    """Pack byte-viewable arrays into a single self-describing blob."""
    payloads = [np.ascontiguousarray(a).tobytes() for a in arrays]
    header = write_header(len(payloads), [len(p) for p in payloads])
    return header + b"".join(payloads)


def unpack_arrays(buf: bytes | memoryview) -> list[memoryview]:
    """Inverse of :func:`pack_arrays`; returns zero-copy payload views.

    Each returned segment is a read-only :class:`memoryview` into *buf*
    (no per-payload copies; callers needing independent bytes wrap with
    ``bytes(...)``). The views keep *buf* alive.
    """
    lengths, offset = read_header(buf)
    view = memoryview(buf)
    if not view.readonly:
        view = view.toreadonly()
    out: list[memoryview] = []
    for length in lengths:
        end = offset + length
        if end > len(buf):
            raise ValueError("buffer truncated inside payload")
        out.append(view[offset:end])
        offset = end
    return out
