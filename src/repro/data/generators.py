"""Spectral synthesis of scientific-looking 3-D fields.

All generators are deterministic in ``seed`` and return C-contiguous
arrays. The workhorse is :func:`gaussian_random_field`, which shapes white
noise in Fourier space with an isotropic power-law spectrum — the standard
way to synthesize turbulence-like and cosmology-like fields.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_shape_3d


def _radial_wavenumber(shape: tuple[int, int, int]) -> np.ndarray:
    """|k| on the rfft grid for a unit box, avoiding k=0 blowup."""
    kx = np.fft.fftfreq(shape[0])[:, None, None]
    ky = np.fft.fftfreq(shape[1])[None, :, None]
    kz = np.fft.rfftfreq(shape[2])[None, None, :]
    k = np.sqrt(kx * kx + ky * ky + kz * kz)
    k[0, 0, 0] = 1.0  # DC handled by callers; avoid division by zero
    return k


def gaussian_random_field(
    shape: tuple[int, int, int],
    spectral_index: float = -5.0 / 3.0,
    seed: int = 0,
    dtype: np.dtype | type = np.float32,
) -> np.ndarray:
    """Zero-mean, unit-variance field with power spectrum ``P(k) ~ k^index``.

    ``spectral_index=-5/3`` gives Kolmogorov-like velocity statistics
    (JHTDB stand-in); steeper indices give smoother fields.
    """
    shape = check_shape_3d(shape)
    rng = np.random.default_rng(seed)
    white = rng.standard_normal(shape)
    spectrum = np.fft.rfftn(white)
    k = _radial_wavenumber(shape)
    # Amplitude ~ sqrt(P(k)); the /2 turns an energy-spectrum index into an
    # amplitude exponent.
    spectrum *= k ** (spectral_index / 2.0)
    spectrum[0, 0, 0] = 0.0
    field = np.fft.irfftn(spectrum, s=shape, axes=(0, 1, 2))
    std = field.std()
    if std > 0:
        field /= std
    return np.ascontiguousarray(field, dtype=dtype)


def lognormal_density(
    shape: tuple[int, int, int],
    seed: int = 0,
    sigma: float = 1.2,
    dtype: np.dtype | type = np.float32,
) -> np.ndarray:
    """NYX-like baryon density: exponentiated Gaussian field, k^-3 spectrum.

    Cosmological density fields are approximately lognormal with a steep
    spectrum; the result is strictly positive with a heavy high-density
    tail, which exercises the wide-dynamic-range path of exponent
    alignment.
    """
    g = gaussian_random_field(shape, spectral_index=-3.0, seed=seed,
                              dtype=np.float64)
    field = np.exp(sigma * g)
    field /= field.mean()
    return np.ascontiguousarray(field, dtype=dtype)


def turbulence_velocity(
    shape: tuple[int, int, int],
    seed: int = 0,
    dtype: np.dtype | type = np.float32,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Three-component Kolmogorov velocity field (JHTDB / NYX velocities).

    Components are independent k^-5/3 fields with distinct sub-seeds —
    adequate for compression studies, which care about per-component
    smoothness rather than incompressibility.
    """
    vx = gaussian_random_field(shape, -5.0 / 3.0, seed=seed * 3 + 0, dtype=dtype)
    vy = gaussian_random_field(shape, -5.0 / 3.0, seed=seed * 3 + 1, dtype=dtype)
    vz = gaussian_random_field(shape, -5.0 / 3.0, seed=seed * 3 + 2, dtype=dtype)
    return vx, vy, vz


def interface_field(
    shape: tuple[int, int, int],
    seed: int = 0,
    num_layers: int = 3,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Miranda-like density: sharp tanh interfaces + broadband perturbation.

    Rayleigh–Taylor simulations (Miranda) have smooth regions separated by
    thin mixing layers; the tanh profiles reproduce the localized
    high-frequency content that stresses multilevel decomposition.
    """
    shape = check_shape_3d(shape)
    rng = np.random.default_rng(seed)
    z = np.linspace(0.0, 1.0, shape[0])[:, None, None]
    field = np.ones(shape, dtype=np.float64)
    for i in range(num_layers):
        center = (i + 1) / (num_layers + 1)
        thickness = rng.uniform(0.01, 0.04)
        wobble = 0.02 * gaussian_random_field(
            (1, shape[1], shape[2]), -2.5, seed=seed * 7 + i, dtype=np.float64
        )[0]
        field += 0.8 * np.tanh((z - center + wobble) / thickness)
    field += 0.05 * gaussian_random_field(shape, -2.0, seed=seed * 11 + 5,
                                          dtype=np.float64)
    return np.ascontiguousarray(field, dtype=dtype)


def hurricane_field(
    shape: tuple[int, int, int],
    seed: int = 0,
    dtype: np.dtype | type = np.float32,
) -> np.ndarray:
    """Hurricane-ISABEL-like scalar: a strong vortex plus synoptic flow.

    Pressure/wind fields in ISABEL are dominated by a single rotating core
    with smooth far-field structure; we superpose a Rankine-like vortex on
    a large-scale random field.
    """
    shape = check_shape_3d(shape)
    rng = np.random.default_rng(seed)
    y = np.linspace(-1.0, 1.0, shape[1])[None, :, None]
    x = np.linspace(-1.0, 1.0, shape[2])[None, None, :]
    cy, cx = rng.uniform(-0.3, 0.3, size=2)
    r2 = (y - cy) ** 2 + (x - cx) ** 2
    core = rng.uniform(0.05, 0.15)
    z = np.linspace(0.0, 1.0, shape[0])[:, None, None]
    vortex = np.exp(-r2 / (2 * core * core)) * (1.0 - 0.5 * z)
    background = 0.3 * gaussian_random_field(shape, -3.0, seed=seed + 13,
                                             dtype=np.float64)
    field = 10.0 * vortex + background
    return np.ascontiguousarray(field, dtype=dtype)


def letkf_field(
    shape: tuple[int, int, int],
    seed: int = 0,
    dtype: np.dtype | type = np.float32,
) -> np.ndarray:
    """LETKF-like ensemble weather variable: smooth synoptic structure.

    Data-assimilation output is smoother than raw simulation; a steep
    k^-3.5 spectrum with a small observational-noise floor matches that
    character.
    """
    base = gaussian_random_field(shape, -3.5, seed=seed, dtype=np.float64)
    noise = 1e-3 * gaussian_random_field(shape, 0.0, seed=seed + 29,
                                         dtype=np.float64)
    return np.ascontiguousarray(base + noise, dtype=dtype)
