"""Synthetic dataset generators standing in for the paper's five datasets.

The paper evaluates on NYX (cosmology), LETKF (weather ensemble), Miranda
(hydrodynamics), Hurricane ISABEL, and JHTDB (isotropic turbulence) — 1.25
to 48 GB of production data we cannot ship. Each generator here produces a
seeded field with matched statistical character (spectrum, smoothness,
dynamic range, dtype) at configurable laptop-scale dimensions; see
DESIGN.md for the substitution argument.
"""

from repro.data.generators import (
    gaussian_random_field,
    hurricane_field,
    interface_field,
    lognormal_density,
    turbulence_velocity,
)
from repro.data.registry import (
    DATASETS,
    DatasetSpec,
    load_dataset,
    load_velocity_fields,
)

__all__ = [
    "gaussian_random_field",
    "hurricane_field",
    "interface_field",
    "lognormal_density",
    "turbulence_velocity",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "load_velocity_fields",
]
