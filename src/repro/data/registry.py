"""Dataset registry mirroring Table 1 of the paper.

Each entry records the paper's dimensions and dtype plus the scaled-down
default dimensions used in this reproduction (so experiments run on a
laptop). ``load_dataset`` dispatches to the matching generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data import generators as gen


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table 1 plus reproduction-scale defaults."""

    name: str
    num_variables: int
    paper_dims: tuple[int, int, int]
    dtype: np.dtype
    paper_size_bytes: int
    default_dims: tuple[int, int, int]
    generator: Callable[..., np.ndarray] = field(repr=False)
    description: str = ""

    @property
    def paper_size_gb(self) -> float:
        return self.paper_size_bytes / 1e9


def _spec(name, nv, paper_dims, dtype, size_gb, default_dims, generator, desc):
    return DatasetSpec(
        name=name,
        num_variables=nv,
        paper_dims=paper_dims,
        dtype=np.dtype(dtype),
        paper_size_bytes=int(size_gb * 1e9),
        default_dims=default_dims,
        generator=generator,
        description=desc,
    )


#: Table 1 of the paper, with scaled default dims for this reproduction.
DATASETS: dict[str, DatasetSpec] = {
    "NYX": _spec(
        "NYX", 6, (512, 512, 512), np.float32, 3.0, (64, 64, 64),
        gen.lognormal_density, "cosmology baryon density + velocities"),
    "LETKF": _spec(
        "LETKF", 3, (98, 1200, 1200), np.float32, 4.9, (32, 96, 96),
        gen.letkf_field, "ensemble weather assimilation"),
    "Miranda": _spec(
        "Miranda", 3, (256, 384, 384), np.float64, 1.87, (48, 64, 64),
        gen.interface_field, "radiation hydrodynamics density"),
    "ISABEL": _spec(
        "ISABEL", 3, (100, 500, 500), np.float32, 1.25, (32, 80, 80),
        gen.hurricane_field, "Hurricane Isabel WRF fields"),
    "JHTDB": _spec(
        "JHTDB", 3, (1024, 2048, 2048), np.float32, 48.0, (64, 96, 96),
        gen.turbulence_velocity, "isotropic turbulence velocity"),
}


def load_dataset(
    name: str,
    dims: tuple[int, int, int] | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Generate the primary scalar field of dataset *name*.

    For JHTDB (a pure velocity dataset) this returns the x-component;
    use :func:`load_velocity_fields` for the full vector field.
    """
    spec = DATASETS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    dims = dims or spec.default_dims
    if spec.generator is gen.turbulence_velocity:
        vx, _, _ = gen.turbulence_velocity(dims, seed=seed, dtype=spec.dtype)
        return vx
    return spec.generator(dims, seed=seed, dtype=spec.dtype)


def load_velocity_fields(
    name: str,
    dims: tuple[int, int, int] | None = None,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate the (Vx, Vy, Vz) velocity triple for QoI experiments.

    NYX and JHTDB are the two datasets the paper uses for the
    ``V_total`` QoI study (Section 7.3).
    """
    spec = DATASETS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    dims = dims or spec.default_dims
    return gen.turbulence_velocity(dims, seed=seed + 1000, dtype=spec.dtype)
