"""The multilevel decompose/recompose transform.

``MultilevelTransform`` is the Python counterpart of GPU-MGARD's
(re)decomposer: it turns an n-D field into hierarchical coefficients
stored corner-packed (coarse approximation in the corner block, details
around it), level by level, axis by axis. The transform is an exact
inverse pair up to floating-point round-off.

Two modes:

* ``"hierarchical"``: detail = value − linear interpolation of coarse
  neighbors. Reconstruction weights are nonnegative, so per-level L∞
  error weights are exact (see :mod:`repro.decompose.norms`).
* ``"mgard"``: additionally projects the residual onto the coarse space
  (L2 correction via tridiagonal mass solves), matching MGARD's better
  rate-distortion; error weights are rigorous but looser.
"""

from __future__ import annotations

import numpy as np

from repro.decompose import interpolation as interp
from repro.decompose.grid import LevelGeometry, num_levels_for_shape
from repro.util.validation import check_dtype_floating

_MODES = ("hierarchical", "mgard")


class MultilevelTransform:
    """Decompose/recompose fields on a fixed grid shape.

    Parameters
    ----------
    shape:
        Grid extents (1-, 2-, or 3-D; any positive sizes).
    num_levels:
        Halving steps; defaults to the deepest hierarchy keeping every
        dimension at least ``min_size`` nodes.
    mode:
        ``"hierarchical"`` or ``"mgard"`` (see module docstring).
    min_size:
        Dimensions stop halving once below ``2 * min_size``.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        num_levels: int | None = None,
        mode: str = "hierarchical",
        min_size: int = 4,
    ) -> None:
        shape = tuple(int(s) for s in shape)
        if not shape or any(s < 1 for s in shape):
            raise ValueError(f"invalid shape {shape}")
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if num_levels is None:
            num_levels = num_levels_for_shape(shape, min_size)
        self.geometry = LevelGeometry(shape, num_levels, min_size)
        self.mode = mode
        self._level_indices: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Public geometry accessors
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.geometry.shape

    @property
    def num_levels(self) -> int:
        return self.geometry.num_levels

    @property
    def num_coefficient_sets(self) -> int:
        """Number of per-level coefficient groups (num_levels + 1)."""
        return self.geometry.num_levels + 1

    def level_indices(self) -> list[np.ndarray]:
        """Cached flat indices for each level's coefficients."""
        if self._level_indices is None:
            self._level_indices = self.geometry.level_indices()
        return self._level_indices

    def level_sizes(self) -> list[int]:
        return [idx.size for idx in self.level_indices()]

    # ------------------------------------------------------------------
    # Core transform
    # ------------------------------------------------------------------
    def decompose(self, data: np.ndarray) -> np.ndarray:
        """Forward transform: field → corner-packed coefficients."""
        coeffs = self._prepare(data)
        shapes = self.geometry.corner_shapes()
        for step in range(self.num_levels):
            block = coeffs[tuple(slice(0, s) for s in shapes[step])]
            self._decompose_level(block, step)
        return coeffs

    def recompose(
        self, coeffs: np.ndarray, *, overwrite: bool = False
    ) -> np.ndarray:
        """Inverse transform: corner-packed coefficients → field.

        ``overwrite=True`` lets the transform work directly in *coeffs*
        (which must then be an owned, writeable float64 C-array — e.g.
        fresh from :meth:`assemble_levels`), skipping the defensive
        copy; the per-step hot path of progressive reconstruction uses
        this.
        """
        if (
            overwrite
            and isinstance(coeffs, np.ndarray)
            and coeffs.dtype == np.float64
            and coeffs.shape == self.shape
            and coeffs.flags.c_contiguous
            and coeffs.flags.writeable
        ):
            data = coeffs
        else:
            data = self._prepare(coeffs)
        shapes = self.geometry.corner_shapes()
        for step in range(self.num_levels - 1, -1, -1):
            block = data[tuple(slice(0, s) for s in shapes[step])]
            self._recompose_level(block, step, absolute=False)
        return data

    def recompose_absolute(self, coeffs: np.ndarray) -> np.ndarray:
        """Recompose with entrywise-absolute operators.

        Feeding per-coefficient error magnitudes through this yields a
        rigorous pointwise bound on the reconstruction error — the basis
        of the retrieval planner's guarantee.
        """
        data = self._prepare(coeffs)
        if np.any(data < 0):
            raise ValueError("absolute recompose expects nonnegative input")
        shapes = self.geometry.corner_shapes()
        for step in range(self.num_levels - 1, -1, -1):
            block = data[tuple(slice(0, s) for s in shapes[step])]
            self._recompose_level(block, step, absolute=True)
        return data

    # ------------------------------------------------------------------
    # Level extraction / assembly
    # ------------------------------------------------------------------
    def extract_levels(self, coeffs: np.ndarray) -> list[np.ndarray]:
        """Split a coefficient array into per-level 1-D arrays.

        Entry 0 is the coarsest set; entry ``num_levels`` the finest
        details. Ordering within each level is deterministic C-order.
        """
        flat = coeffs.reshape(-1)
        return [flat[idx].copy() for idx in self.level_indices()]

    def assemble_levels(self, levels: list[np.ndarray]) -> np.ndarray:
        """Inverse of :meth:`extract_levels`."""
        indices = self.level_indices()
        if len(levels) != len(indices):
            raise ValueError(
                f"expected {len(indices)} level arrays, got {len(levels)}"
            )
        dtype = np.result_type(*[lv.dtype for lv in levels])
        out = np.zeros(self.shape, dtype=dtype)
        flat = out.reshape(-1)
        for idx, values in zip(indices, levels):
            if values.size != idx.size:
                raise ValueError(
                    f"level size mismatch: expected {idx.size}, "
                    f"got {values.size}"
                )
            flat[idx] = values
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _prepare(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data)
        check_dtype_floating(data)
        if data.shape != self.shape:
            raise ValueError(
                f"data shape {data.shape} does not match transform shape "
                f"{self.shape}"
            )
        # Work in float64 for transform accuracy; callers round-trip
        # through the original dtype at the pipeline boundary.
        return np.array(data, dtype=np.float64, copy=True)

    def _decompose_level(self, block: np.ndarray, step: int) -> None:
        for axis in self.geometry.halved_axes(step):
            self._decompose_axis(block, axis)

    def _recompose_level(
        self, block: np.ndarray, step: int, absolute: bool
    ) -> None:
        for axis in reversed(self.geometry.halved_axes(step)):
            self._recompose_axis(block, axis, absolute)

    def _decompose_axis(self, block: np.ndarray, axis: int) -> None:
        v = np.moveaxis(block, axis, 0)
        n = v.shape[0]
        even, odd = interp.split_even_odd(v)
        pred = interp.predict_odd(even, n)
        detail = odd - pred
        coarse = even.copy()
        if self.mode == "mgard" and detail.shape[0] > 0:
            coarse += interp.correction_from_detail(detail, n)
        m = coarse.shape[0]
        v[:m] = coarse
        v[m:] = detail

    def _recompose_axis(
        self, block: np.ndarray, axis: int, absolute: bool
    ) -> None:
        v = np.moveaxis(block, axis, 0)
        n = v.shape[0]
        m = (n + 1) // 2
        # Only the even half needs a defensive copy: the detail half is
        # fully consumed into `odd` before any write below touches `v`,
        # and the interleaved writes land on disjoint index sets. Saves
        # one full-block temporary plus the merge/writeback pass of the
        # previous out-of-place formulation; identical arithmetic order,
        # so the output is bit-for-bit unchanged.
        even = v[:m].copy()
        detail = v[m:]
        if self.mode == "mgard" and detail.shape[0] > 0:
            if absolute:
                even += interp.abs_correction_from_detail(detail, n)
            else:
                even -= interp.correction_from_detail(detail, n)
        odd = interp.predict_odd(even, n)
        odd += detail
        v[1::2] = odd
        v[0::2] = even
