"""Multilevel decomposition substrate (the GPU-MGARD role in HP-MDR).

HP-MDR composes PMGARD: input data is decomposed into hierarchical
coefficient levels, each of which is bitplane-encoded independently. This
package provides:

- :class:`~repro.decompose.transform.MultilevelTransform` — the
  decompose/recompose pair for 1-D/2-D/3-D grids of arbitrary (not just
  dyadic) extents, in two modes:

  * ``"hierarchical"`` (default) — interpolation-basis (MGARD-0 / PMGARD
    style) transform with nonnegative reconstruction weights, enabling
    *exact* per-level L∞ error-amplification weights;
  * ``"mgard"`` — adds the L2-projection correction (tridiagonal mass
    solves per axis), improving rate-distortion at the cost of looser
    (but still rigorous) error weights.

- :mod:`~repro.decompose.norms` — per-level error weights and the
  composition rule ``|u - û|∞ ≤ Σ_ℓ w_ℓ · e_ℓ`` used by the retrieval
  planner to guarantee requested tolerances.
"""

from repro.decompose.grid import LevelGeometry, coarse_size, num_levels_for_shape
from repro.decompose.norms import compose_error_bound, level_error_weights
from repro.decompose.transform import MultilevelTransform

__all__ = [
    "LevelGeometry",
    "MultilevelTransform",
    "coarse_size",
    "num_levels_for_shape",
    "compose_error_bound",
    "level_error_weights",
]
