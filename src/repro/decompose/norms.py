"""Per-level error weights and the L∞ composition rule.

The retrieval planner needs ``|u - û|∞ ≤ Σ_ℓ w_ℓ · e_ℓ`` where ``e_ℓ``
bounds the per-coefficient error of level ℓ (from dropped bitplanes) and
``w_ℓ`` is the worst-case amplification of a level-ℓ coefficient
perturbation through recomposition.

Because :meth:`MultilevelTransform.recompose_absolute` applies the exact
entrywise-absolute reconstruction operators, feeding it an indicator of
level ℓ yields the *exact* operator ∞-norm for the hierarchical mode and
a rigorous upper bound for the MGARD mode. Weights are computed once per
transform and cached on the instance.
"""

from __future__ import annotations

import numpy as np

from repro.decompose.transform import MultilevelTransform

_WEIGHTS_ATTR = "_cached_level_error_weights"


def level_error_weights(transform: MultilevelTransform) -> list[float]:
    """Worst-case L∞ amplification per coefficient level.

    ``weights[ℓ]`` multiplies the uniform coefficient-error bound of level
    ℓ in the composition rule. Computed by pushing a ones-indicator of
    each level through the absolute recomposition.
    """
    cached = getattr(transform, _WEIGHTS_ATTR, None)
    if cached is not None:
        return list(cached)
    weights: list[float] = []
    sizes = transform.level_sizes()
    for level, size in enumerate(sizes):
        ones = [
            np.ones(sz, dtype=np.float64) if lv == level
            else np.zeros(sz, dtype=np.float64)
            for lv, sz in enumerate(sizes)
        ]
        coeffs = transform.assemble_levels(ones)
        response = transform.recompose_absolute(coeffs)
        weights.append(float(np.max(response)))
    setattr(transform, _WEIGHTS_ATTR, tuple(weights))
    return weights


def compose_error_bound(
    transform: MultilevelTransform, level_errors: list[float]
) -> float:
    """Rigorous L∞ reconstruction-error bound from per-level bounds."""
    weights = level_error_weights(transform)
    if len(level_errors) != len(weights):
        raise ValueError(
            f"expected {len(weights)} level errors, got {len(level_errors)}"
        )
    return float(sum(w * e for w, e in zip(weights, level_errors)))


def pointwise_error_bound(
    transform: MultilevelTransform, level_errors: list[float]
) -> np.ndarray:
    """Pointwise (per-grid-node) reconstruction-error bound.

    Sharper than :func:`compose_error_bound` where coefficient influence
    is uneven; used by QoI error estimation, which needs spatial bounds.
    """
    sizes = transform.level_sizes()
    if len(level_errors) != len(sizes):
        raise ValueError(
            f"expected {len(sizes)} level errors, got {len(level_errors)}"
        )
    mags = [
        np.full(sz, abs(err), dtype=np.float64)
        for sz, err in zip(sizes, level_errors)
    ]
    coeffs = transform.assemble_levels(mags)
    return transform.recompose_absolute(coeffs)
