"""Dyadic-ish grid hierarchy bookkeeping.

MGARD-style transforms store coefficients *in place*: after decomposing
level ℓ, the corner block of the array holds the coarse approximation and
the remainder holds that level's detail coefficients. This module tracks
corner shapes per level and builds flat index sets for extracting each
level's coefficients in a deterministic (C-order) layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def coarse_size(n: int) -> int:
    """Number of coarse (even-index) nodes for a 1-D grid of *n* nodes."""
    if n < 1:
        raise ValueError(f"grid size must be >= 1, got {n}")
    return (n + 1) // 2


def num_levels_for_shape(shape: tuple[int, ...], min_size: int = 4) -> int:
    """Largest level count so every dimension stays >= *min_size* coarse.

    A level count of ``L`` means ``L`` halving steps; dimensions of size
    < ``2*min_size`` simply stop halving earlier (handled by the
    transform), so this is governed by the largest dimension.
    """
    if not shape:
        raise ValueError("shape must be non-empty")
    levels = 0
    dims = list(shape)
    while max(dims) >= 2 * min_size and levels < 30:
        dims = [coarse_size(n) if n >= 2 * min_size else n for n in dims]
        levels += 1
    return levels


@dataclass(frozen=True)
class LevelGeometry:
    """Corner-block shapes for every level of a multilevel transform.

    ``shapes[0]`` is the full (finest) shape; ``shapes[k]`` is the corner
    block after ``k`` halvings; ``shapes[num_levels]`` is the coarsest
    block. Level indices used throughout the library: level ``0`` is the
    *coarsest* coefficient set (the nodal values of the coarsest grid) and
    level ``num_levels`` is the finest detail set.
    """

    shape: tuple[int, ...]
    num_levels: int
    min_size: int = 4

    def __post_init__(self) -> None:
        if self.num_levels < 0:
            raise ValueError("num_levels must be >= 0")
        max_levels = num_levels_for_shape(self.shape, self.min_size)
        if self.num_levels > max_levels:
            raise ValueError(
                f"num_levels={self.num_levels} too deep for shape "
                f"{self.shape} (max {max_levels} with min_size="
                f"{self.min_size})"
            )

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def corner_shapes(self) -> list[tuple[int, ...]]:
        """Shapes of the corner block after 0..num_levels halvings."""
        shapes = [tuple(self.shape)]
        current = list(self.shape)
        for _ in range(self.num_levels):
            current = [
                coarse_size(n) if n >= 2 * self.min_size else n
                for n in current
            ]
            shapes.append(tuple(current))
        return shapes

    def halved_axes(self, step: int) -> list[int]:
        """Axes actually halved at halving step *step* (0-based, fine first)."""
        shapes = self.corner_shapes()
        before, after = shapes[step], shapes[step + 1]
        return [ax for ax in range(self.ndim) if after[ax] != before[ax]]

    def level_shape(self, level: int) -> tuple[int, ...]:
        """Corner-block shape containing all coefficients up to *level*.

        Level 0 (coarsest) corresponds to the smallest corner block.
        """
        shapes = self.corner_shapes()
        return shapes[self.num_levels - level]

    def level_indices(self) -> list[np.ndarray]:
        """Flat C-order indices of each level's coefficients.

        Returns ``num_levels + 1`` index arrays: entry 0 selects the
        coarsest corner block; entry ℓ>0 selects the detail coefficients
        introduced when refining from level ℓ-1 to ℓ.
        """
        shapes = self.corner_shapes()
        full = self.shape

        def corner_mask(corner: tuple[int, ...]) -> np.ndarray:
            mask = np.zeros(full, dtype=bool)
            mask[tuple(slice(0, c) for c in corner)] = True
            return mask

        indices: list[np.ndarray] = []
        prev = corner_mask(shapes[self.num_levels])
        indices.append(np.flatnonzero(prev))
        for level in range(1, self.num_levels + 1):
            cur = corner_mask(shapes[self.num_levels - level])
            indices.append(np.flatnonzero(cur & ~prev))
            prev = cur
        return indices

    def level_sizes(self) -> list[int]:
        """Element counts per level (coarsest first)."""
        return [idx.size for idx in self.level_indices()]
