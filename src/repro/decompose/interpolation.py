"""1-D building blocks of the multilevel transform, applied along an axis.

Every operation works on a view with the target axis moved to the front,
keeping the remaining axes vectorized (the idiom GPU-MGARD uses for its
grid-processing kernels: one "thread" per orthogonal fiber).

Naming follows the finite-element view: a fine grid of ``n`` nodes splits
into coarse (even-index) nodes and odd nodes; odd values are predicted by
linear interpolation of their even neighbors, and the prediction residual
is the detail coefficient. The optional MGARD correction projects the
residual back onto the coarse space via a tridiagonal mass-matrix solve.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.decompose.grid import coarse_size


def split_even_odd(v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split along axis 0 into even-index and odd-index node values."""
    return v[0::2], v[1::2]


def predict_odd(even: np.ndarray, n: int) -> np.ndarray:
    """Linear-interpolation prediction of odd-node values.

    Odd node ``2i+1`` is predicted by ``(even[i] + even[i+1]) / 2``. When
    ``n`` is even the last odd node has no right neighbor and is predicted
    by its left neighbor alone — weights stay nonnegative and sum to one,
    which keeps L∞ error composition exact.
    """
    n_odd = n // 2
    pred = np.empty((n_odd,) + even.shape[1:], dtype=even.dtype)
    interior = n_odd if n % 2 == 1 else n_odd - 1
    pred[:interior] = 0.5 * (even[:interior] + even[1 : interior + 1])
    if n % 2 == 0:
        pred[interior] = even[interior]
    return pred


def merge_even_odd(even: np.ndarray, odd: np.ndarray, n: int) -> np.ndarray:
    """Interleave even/odd node values back into a length-*n* axis."""
    out = np.empty((n,) + even.shape[1:], dtype=even.dtype)
    out[0::2] = even
    out[1::2] = odd
    return out


def residual_load(detail: np.ndarray, n: int) -> np.ndarray:
    """Load vector ⟨residual, coarse hat functions⟩ for the MGARD correction.

    With unit fine spacing, the residual ``Σ d_i φ_{2i+1}`` tested against
    the coarse hat at node ``2j`` yields ``(d_{j-1} + d_j) / 2`` (one-sided
    at the boundaries). Spacing cancels against the mass matrix, so it is
    fixed at 1 here.
    """
    m = coarse_size(n)
    b = np.zeros((m,) + detail.shape[1:], dtype=detail.dtype)
    n_odd = detail.shape[0]
    # Odd node 2j+1 loads coarse nodes j and j+1; when n is even the last
    # odd node is the domain boundary and only loads its left neighbor.
    interior = n_odd if n % 2 == 1 else n_odd - 1
    b[:n_odd] += 0.5 * detail
    b[1 : interior + 1] += 0.5 * detail[:interior]
    return b


def coarse_mass_bands(m: int, dtype=np.float64) -> tuple[np.ndarray, np.ndarray]:
    """(diagonal, off-diagonal) of the coarse-grid P1 mass matrix.

    Unit coarse spacing: interior diagonal 2/3, boundary diagonal 1/3,
    off-diagonal 1/6. Scaled by any common factor the correction is
    unchanged, so spacing is normalized out.
    """
    if m < 1:
        raise ValueError("mass matrix needs at least one node")
    diag = np.full(m, 2.0 / 3.0, dtype=dtype)
    if m >= 1:
        diag[0] = 1.0 / 3.0
        diag[-1] = 1.0 / 3.0
    if m == 1:
        diag[0] = 2.0 / 3.0  # degenerate single-node grid
    off = np.full(max(m - 1, 0), 1.0 / 6.0, dtype=dtype)
    return diag, off


def solve_tridiagonal(
    diag: np.ndarray, off: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Thomas-algorithm solve of a symmetric tridiagonal system.

    ``rhs`` may carry trailing batch axes; the O(m) sweep along axis 0 is
    vectorized across them — the same batching GPU tridiagonal kernels
    use. The system must be diagonally dominant (mass matrices are).
    """
    m = diag.shape[0]
    if rhs.shape[0] != m:
        raise ValueError("rhs leading axis must match matrix size")
    if m == 1:
        return rhs / diag[0]
    c_prime = np.empty(m - 1, dtype=np.float64)
    d_prime = np.empty_like(rhs, dtype=np.float64)
    c_prime[0] = off[0] / diag[0]
    d_prime[0] = rhs[0] / diag[0]
    for i in range(1, m):
        denom = diag[i] - off[i - 1] * c_prime[i - 1]
        if i < m - 1:
            c_prime[i] = off[i] / denom
        d_prime[i] = (rhs[i] - off[i - 1] * d_prime[i - 1]) / denom
    x = d_prime
    for i in range(m - 2, -1, -1):
        x[i] -= c_prime[i] * x[i + 1]
    return x.astype(rhs.dtype, copy=False)


def correction_from_detail(detail: np.ndarray, n: int) -> np.ndarray:
    """MGARD coarse correction ``z = M⁻¹ ⟨residual, coarse basis⟩``."""
    b = residual_load(detail, n)
    diag, off = coarse_mass_bands(b.shape[0])
    return solve_tridiagonal(diag, off, b)


@lru_cache(maxsize=64)
def _abs_correction_matrix(n: int) -> np.ndarray:
    """Entrywise |M⁻¹ R| as a dense (m, n_odd) matrix, cached per size.

    Used only to compute rigorous error-amplification weights for the
    MGARD mode: ``|z| ≤ |M⁻¹R| · |d|`` elementwise.
    """
    m = coarse_size(n)
    n_odd = n // 2
    eye = np.eye(n_odd, dtype=np.float64)
    cols = correction_from_detail(eye, n)  # (m, n_odd): column j = response
    return np.abs(cols)


def abs_correction_from_detail(detail: np.ndarray, n: int) -> np.ndarray:
    """Upper bound on |correction| given elementwise |detail| bounds."""
    mat = _abs_correction_matrix(n)
    flat = detail.reshape(detail.shape[0], -1)
    out = mat @ flat
    return out.reshape((mat.shape[0],) + detail.shape[1:]).astype(
        detail.dtype, copy=False
    )
