"""QoI expression trees with interval arithmetic.

A :class:`QoI` node evaluates pointwise over named variable arrays and,
crucially, propagates *intervals*: if every variable ``v_i`` is known
only up to ``±e_i``, interval evaluation yields pointwise lower/upper
envelopes of the QoI, hence a rigorous bound on the QoI error — the
``estimate_QoI_error`` kernel of Algorithm 3. Supported operations cover
the paper's base QoI families (linear combinations, products, squares,
square roots, absolute values).

Expressions compose with Python operators::

    vt = sqrt(square(var("vx")) + square(var("vy")) + square(var("vz")))
"""

from __future__ import annotations

import numpy as np

Number = float | int


class QoI:
    """Base expression node."""

    def evaluate(self, values: dict[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def interval(
        self,
        values: dict[str, np.ndarray],
        bounds: dict[str, float | np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pointwise (lo, hi) envelope given per-variable error bounds."""
        raise NotImplementedError

    def variables(self) -> set[str]:
        raise NotImplementedError

    # Operator sugar -----------------------------------------------------
    def __add__(self, other: "QoI | Number") -> "QoI":
        return _Add(self, _wrap(other))

    def __radd__(self, other: Number) -> "QoI":
        return _Add(_wrap(other), self)

    def __sub__(self, other: "QoI | Number") -> "QoI":
        return _Sub(self, _wrap(other))

    def __rsub__(self, other: Number) -> "QoI":
        return _Sub(_wrap(other), self)

    def __mul__(self, other: "QoI | Number") -> "QoI":
        return _Mul(self, _wrap(other))

    def __rmul__(self, other: Number) -> "QoI":
        return _Mul(_wrap(other), self)

    def __neg__(self) -> "QoI":
        return _Mul(_Const(-1.0), self)


def _wrap(x: "QoI | Number") -> QoI:
    return x if isinstance(x, QoI) else _Const(float(x))


class _Var(QoI):
    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, values):
        if self.name not in values:
            raise KeyError(f"variable {self.name!r} not provided")
        return np.asarray(values[self.name], dtype=np.float64)

    def interval(self, values, bounds):
        v = self.evaluate(values)
        e = np.asarray(bounds.get(self.name, 0.0), dtype=np.float64)
        if np.any(e < 0):
            raise ValueError(f"negative error bound for {self.name!r}")
        return v - e, v + e

    def variables(self):
        return {self.name}

    def __repr__(self):
        return f"var({self.name!r})"


class _Const(QoI):
    def __init__(self, value: float) -> None:
        self.value = float(value)

    def evaluate(self, values):
        return np.float64(self.value)

    def interval(self, values, bounds):
        v = np.float64(self.value)
        return v, v

    def variables(self):
        return set()

    def __repr__(self):
        return f"const({self.value})"


class _Add(QoI):
    def __init__(self, a: QoI, b: QoI) -> None:
        self.a, self.b = a, b

    def evaluate(self, values):
        return self.a.evaluate(values) + self.b.evaluate(values)

    def interval(self, values, bounds):
        alo, ahi = self.a.interval(values, bounds)
        blo, bhi = self.b.interval(values, bounds)
        return alo + blo, ahi + bhi

    def variables(self):
        return self.a.variables() | self.b.variables()

    def __repr__(self):
        return f"({self.a!r} + {self.b!r})"


class _Sub(QoI):
    def __init__(self, a: QoI, b: QoI) -> None:
        self.a, self.b = a, b

    def evaluate(self, values):
        return self.a.evaluate(values) - self.b.evaluate(values)

    def interval(self, values, bounds):
        alo, ahi = self.a.interval(values, bounds)
        blo, bhi = self.b.interval(values, bounds)
        return alo - bhi, ahi - blo

    def variables(self):
        return self.a.variables() | self.b.variables()

    def __repr__(self):
        return f"({self.a!r} - {self.b!r})"


class _Mul(QoI):
    def __init__(self, a: QoI, b: QoI) -> None:
        self.a, self.b = a, b

    def evaluate(self, values):
        return self.a.evaluate(values) * self.b.evaluate(values)

    def interval(self, values, bounds):
        alo, ahi = self.a.interval(values, bounds)
        blo, bhi = self.b.interval(values, bounds)
        p1, p2, p3, p4 = alo * blo, alo * bhi, ahi * blo, ahi * bhi
        lo = np.minimum(np.minimum(p1, p2), np.minimum(p3, p4))
        hi = np.maximum(np.maximum(p1, p2), np.maximum(p3, p4))
        return lo, hi

    def variables(self):
        return self.a.variables() | self.b.variables()

    def __repr__(self):
        return f"({self.a!r} * {self.b!r})"


class _Square(QoI):
    def __init__(self, a: QoI) -> None:
        self.a = a

    def evaluate(self, values):
        v = self.a.evaluate(values)
        return v * v

    def interval(self, values, bounds):
        lo, hi = self.a.interval(values, bounds)
        lo2, hi2 = lo * lo, hi * hi
        upper = np.maximum(lo2, hi2)
        # Interval straddling zero has minimum square 0.
        lower = np.where((lo <= 0) & (hi >= 0), 0.0, np.minimum(lo2, hi2))
        return lower, upper

    def variables(self):
        return self.a.variables()

    def __repr__(self):
        return f"square({self.a!r})"


class _Sqrt(QoI):
    def __init__(self, a: QoI) -> None:
        self.a = a

    def evaluate(self, values):
        v = self.a.evaluate(values)
        if np.any(v < 0):
            raise ValueError("sqrt of negative QoI value")
        return np.sqrt(v)

    def interval(self, values, bounds):
        lo, hi = self.a.interval(values, bounds)
        # Perturbed inputs may dip below zero; the true value is >= 0,
        # so clamping keeps the envelope valid.
        return np.sqrt(np.maximum(lo, 0.0)), np.sqrt(np.maximum(hi, 0.0))

    def variables(self):
        return self.a.variables()

    def __repr__(self):
        return f"sqrt({self.a!r})"


class _Abs(QoI):
    def __init__(self, a: QoI) -> None:
        self.a = a

    def evaluate(self, values):
        return np.abs(self.a.evaluate(values))

    def interval(self, values, bounds):
        lo, hi = self.a.interval(values, bounds)
        upper = np.maximum(np.abs(lo), np.abs(hi))
        lower = np.where((lo <= 0) & (hi >= 0), 0.0,
                         np.minimum(np.abs(lo), np.abs(hi)))
        return lower, upper

    def variables(self):
        return self.a.variables()

    def __repr__(self):
        return f"abs({self.a!r})"


# -- public constructors --------------------------------------------------
def var(name: str) -> QoI:
    """A named input variable."""
    return _Var(name)


def const(value: float) -> QoI:
    """A constant."""
    return _Const(value)


def add(a: QoI, b: QoI) -> QoI:
    return _Add(a, b)


def square(a: QoI) -> QoI:
    return _Square(a)


def sqrt(a: QoI) -> QoI:
    return _Sqrt(a)


def absval(a: QoI) -> QoI:
    return _Abs(a)


def v_total(names: tuple[str, str, str] = ("vx", "vy", "vz")) -> QoI:
    """The paper's evaluation QoI: ``sqrt(Vx² + Vy² + Vz²)``."""
    x, y, z = (var(n) for n in names)
    return sqrt(square(x) + square(y) + square(z))


# -- error estimation kernels ----------------------------------------------
def pointwise_qoi_error(
    qoi: QoI,
    values: dict[str, np.ndarray],
    bounds: dict[str, float | np.ndarray],
) -> np.ndarray:
    """Pointwise sup of |QoI(true) − QoI(reconstructed)|.

    The reconstructed values sit inside the interval envelope, and so
    does the truth; the distance from the reconstructed QoI to the
    farther envelope edge bounds the error.
    """
    lo, hi = qoi.interval(values, bounds)
    center = qoi.evaluate(values)
    return np.maximum(hi - center, center - lo)


def estimate_qoi_error(
    qoi: QoI,
    values: dict[str, np.ndarray],
    bounds: dict[str, float | np.ndarray],
) -> float:
    """Supremum (over grid points) of the pointwise QoI error bound.

    This is the τ′ of Algorithm 3 — cheap, fully vectorized, rigorous.
    """
    pw = pointwise_qoi_error(qoi, values, bounds)
    return float(np.max(pw)) if pw.size else 0.0
