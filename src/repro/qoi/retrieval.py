"""Algorithm 3: progressive retrieval with guaranteed QoI error control.

The driver alternates fetching/recomposing each variable toward its
current error bound (memory operations, pipelined in the paper) with the
vectorized QoI error estimation kernel (compute), updating bounds via
CP / MA / MAPE until the estimated supremum error meets the tolerance.
Because the estimate is rigorous (interval arithmetic over rigorous
per-variable L∞ bounds), the returned data *provably* satisfies the QoI
tolerance — the Fig. 13 invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

from repro.core.reconstruct import Reconstructor
from repro.core.stream import RefactoredField
from repro.qoi.eb_methods import (
    EB_METHODS,
    cp_update,
    ma_update,
    mape_update,
)
from repro.qoi.expressions import QoI, estimate_qoi_error


@dataclass
class QoIIterationRecord:
    """Telemetry for one Algorithm 3 iteration.

    ``cold_bytes`` is the cumulative backing-store traffic after this
    iteration; it stays 0 for in-memory eager fields (see
    :class:`~repro.core.reconstruct.ReconstructionResult`).
    """

    iteration: int
    error_bounds: dict[str, float]
    estimated_error: float
    fetched_bytes: int
    cold_bytes: int = 0


@dataclass
class QoIRetrievalResult:
    """Output of :func:`retrieve_qoi`.

    For store-backed lazy fields (:func:`repro.core.store.open_field`,
    typically via :meth:`repro.core.service.RetrievalService.retrieve_qoi`)
    ``cold_bytes``/``cache_hit_bytes`` split the segment traffic this call
    caused into backing-store reads versus shared-cache hits; both stay 0
    for in-memory eager fields.
    """

    values: dict[str, np.ndarray]
    qoi_values: np.ndarray
    estimated_error: float
    tolerance: float
    iterations: int
    fetched_bytes: int
    num_elements: int
    method: str
    history: list[QoIIterationRecord] = dc_field(default_factory=list)
    cold_bytes: int = 0
    cache_hit_bytes: int = 0

    @property
    def bitrate(self) -> float:
        """Fetched bits per grid point, summed over all variables —
        the metric of Tables 2 and 3 (lower is better)."""
        return 8.0 * self.fetched_bytes / self.num_elements


def retrieve_qoi(
    fields: dict[str, RefactoredField],
    qoi: QoI,
    tolerance: float,
    method: str = "mape",
    switch_threshold: float = 10.0,
    initial_bounds: dict[str, float] | None = None,
    max_iterations: int = 200,
) -> QoIRetrievalResult:
    """Retrieve just enough bitplanes for ``|QoI error| ≤ tolerance``.

    Parameters mirror Algorithm 3: ``fields`` maps variable names to
    refactored streams (names must match the QoI's variables), ``method``
    selects the next-error-bound estimator, and ``switch_threshold`` is
    MAPE's ``c``. Initial bounds default to the tolerance itself — loose
    enough that the loop genuinely iterates, as in the paper.
    """
    if method not in EB_METHODS:
        raise ValueError(f"method must be one of {EB_METHODS}, got {method!r}")
    if tolerance <= 0:
        raise ValueError("tolerance must be > 0")
    if switch_threshold <= 1.0:
        raise ValueError("switch_threshold must be > 1")
    needed = qoi.variables()
    missing = needed - set(fields)
    if missing:
        raise ValueError(f"missing refactored variables: {sorted(missing)}")

    recons = {name: Reconstructor(fields[name]) for name in needed}
    # Store-backed lazy fields carry cumulative fetch counters; snapshot
    # them so this call reports only the traffic it caused itself.
    io_start = {
        name: io.snapshot()
        for name in needed
        if (io := getattr(fields[name], "io_counters", None)) is not None
    }

    def _io_totals() -> tuple[int, int]:
        cold = hit = 0
        for name, start in io_start.items():
            step = fields[name].io_counters.since(start)
            cold += step.cold_bytes
            hit += step.cache_hit_bytes
        return cold, hit

    # Initial bounds follow the paper: derived from each variable's
    # value range rather than the tolerance, so the loop starts loose
    # and genuinely iterates toward τ (the regime Tables 2/3 compare).
    bounds = dict(initial_bounds) if initial_bounds else {
        name: max(float(tolerance),
                  0.05 * fields[name].value_range or float(tolerance))
        for name in needed
    }
    for name, b in bounds.items():
        if b <= 0:
            raise ValueError(f"initial bound for {name!r} must be > 0")

    history: list[QoIIterationRecord] = []
    values: dict[str, np.ndarray] = {}
    actual_bounds: dict[str, float] = {}
    estimated = float("inf")
    iteration = 0
    while iteration < max_iterations:
        iteration += 1
        # Fetch + recompose every variable to its current bound
        # (the pipelined memory/compute phase of Algorithm 3).
        for name in sorted(needed):
            result = recons[name].reconstruct(tolerance=bounds[name])
            values[name] = result.data.astype(np.float64)
            actual_bounds[name] = result.error_bound
        estimated = estimate_qoi_error(qoi, values, actual_bounds)
        fetched = sum(r.fetched_bytes for r in recons.values())
        history.append(
            QoIIterationRecord(
                iteration=iteration,
                error_bounds=dict(actual_bounds),
                estimated_error=estimated,
                fetched_bytes=fetched,
                cold_bytes=_io_totals()[0],
            )
        )
        if estimated <= tolerance:
            break
        bounds = _next_bounds(
            method, qoi, values, recons, actual_bounds, tolerance,
            estimated, switch_threshold,
        )
        exhausted = all(
            recons[name].fetched_groups == fields[name].max_groups()
            for name in needed
        )
        if exhausted:
            break  # nothing more to fetch; report the achieved estimate
    num_elements = int(np.prod(next(iter(fields.values())).shape))
    cold_bytes, cache_hit_bytes = _io_totals()
    return QoIRetrievalResult(
        values=values,
        qoi_values=qoi.evaluate(values),
        estimated_error=estimated,
        tolerance=tolerance,
        iterations=iteration,
        fetched_bytes=sum(r.fetched_bytes for r in recons.values()),
        num_elements=num_elements,
        method=method,
        history=history,
        cold_bytes=cold_bytes,
        cache_hit_bytes=cache_hit_bytes,
    )


def _next_bounds(
    method: str,
    qoi: QoI,
    values: dict[str, np.ndarray],
    recons: dict[str, Reconstructor],
    bounds: dict[str, float],
    tolerance: float,
    estimated: float,
    switch_threshold: float,
) -> dict[str, float]:
    fields = {name: r.field for name, r in recons.items()}
    fetched = {name: r.fetched_groups for name, r in recons.items()}
    if method == "cp":
        return cp_update(qoi, values, bounds, tolerance)
    if method == "ma":
        return ma_update(fields, fetched, bounds)
    return mape_update(
        qoi, values, fields, fetched, bounds, tolerance, estimated,
        switch_threshold,
    )


def actual_qoi_error(
    qoi: QoI,
    original: dict[str, np.ndarray],
    reconstructed: dict[str, np.ndarray],
) -> float:
    """Max |QoI(original) − QoI(reconstructed)| — Fig. 13's ground truth."""
    q_true = qoi.evaluate(original)
    q_rec = qoi.evaluate(reconstructed)
    return float(np.max(np.abs(q_true - q_rec)))
