"""Progressive retrieval with QoI error control (paper Section 6.2).

Scientists rarely consume raw fields; they consume derived Quantities of
Interest such as the velocity magnitude ``V_total = sqrt(Vx²+Vy²+Vz²)``
the paper evaluates. This package provides:

* :mod:`~repro.qoi.expressions` — a small QoI expression language with
  interval arithmetic, giving *rigorous pointwise bounds* on how much a
  QoI can move when each input variable is perturbed within its current
  reconstruction error bound;
* :mod:`~repro.qoi.eb_methods` — the three next-error-bound estimation
  strategies: CP (CPU porting), MA (minimal augmentation), MAPE (minimal
  augmentation with proportional estimation);
* :mod:`~repro.qoi.retrieval` — the Algorithm 3 driver that iterates
  fetch → recompose → estimate until the requested QoI tolerance holds.

The driver accepts eager and store-backed lazy fields alike; served
through :meth:`repro.core.service.RetrievalService.retrieve_qoi`, every
variable resolves its plane groups through the service's shared segment
cache and the result reports cold vs. cache-hit traffic.
"""

from repro.qoi.expressions import (
    QoI,
    add,
    const,
    estimate_qoi_error,
    pointwise_qoi_error,
    sqrt,
    square,
    var,
    v_total,
)
from repro.qoi.eb_methods import (
    EB_METHODS,
    cp_update,
    ma_update,
    mape_update,
)
from repro.qoi.retrieval import (
    QoIRetrievalResult,
    actual_qoi_error,
    retrieve_qoi,
)

__all__ = [
    "QoI",
    "var",
    "const",
    "add",
    "square",
    "sqrt",
    "v_total",
    "estimate_qoi_error",
    "pointwise_qoi_error",
    "EB_METHODS",
    "cp_update",
    "ma_update",
    "mape_update",
    "retrieve_qoi",
    "QoIRetrievalResult",
    "actual_qoi_error",
]
