"""Next-error-bound estimation: CP, MA, MAPE (paper Section 6.2).

Each method answers the same question inside Algorithm 3: given that the
current per-variable bounds ``{ε_i}`` yield an estimated QoI error
``τ′ > τ``, what should the next ``{ε_i}`` be?

* **CP** (CPU porting): locate the grid point with the worst estimated
  QoI error, then repeatedly halve *all* bounds and re-evaluate that one
  point (with its stale reconstructed values) until it satisfies τ.
  Converges in few iterations but over-preserves — stale single-point
  data makes the decayed bounds stricter than necessary.
* **MA** (minimal augmentation): advance each variable by exactly one
  merged bitplane group — the finest possible step, near-optimal bitrate
  but many iterations.
* **MAPE** (MA + proportional estimation): if ``p = τ′/τ`` exceeds the
  switch threshold ``c``, scale every bound by ``1/p`` (one big
  proportional jump); once close, fall back to MA's fine steps.
"""

from __future__ import annotations

import numpy as np

from repro.core.stream import RefactoredField
from repro.qoi.expressions import QoI, pointwise_qoi_error

EB_METHODS = ("cp", "ma", "mape")

_MAX_HALVINGS = 60


def next_group_bound(field: RefactoredField, fetched: list[int]) -> float:
    """Composed L∞ bound after fetching the single best extra group.

    Returns the current bound unchanged when everything is fetched.
    """
    per_level = [
        w * lv.error_bound_for_groups(g)
        for w, lv, g in zip(field.level_weights, field.levels, fetched)
    ]
    total = sum(per_level)
    best = total
    for idx, lv in enumerate(field.levels):
        g = fetched[idx]
        if g >= lv.num_groups:
            continue
        candidate = total - per_level[idx] + field.level_weights[
            idx
        ] * lv.error_bound_for_groups(g + 1)
        best = min(best, candidate)
    return best


def cp_update(
    qoi: QoI,
    values: dict[str, np.ndarray],
    bounds: dict[str, float],
    tolerance: float,
) -> dict[str, float]:
    """CP: decay all bounds against the stale worst point (GPU argmax +
    CPU halving loop in the paper's implementation)."""
    pw = pointwise_qoi_error(qoi, values, bounds)
    flat_idx = int(np.argmax(pw))
    point_values = {
        name: np.asarray([np.ravel(v)[flat_idx]])
        for name, v in values.items()
    }
    eb = dict(bounds)
    for _ in range(_MAX_HALVINGS):
        point_err = pointwise_qoi_error(qoi, point_values, eb)[0]
        if point_err <= tolerance:
            break
        eb = {k: v / 2.0 for k, v in eb.items()}
    return eb


def ma_update(
    fields: dict[str, RefactoredField],
    fetched: dict[str, list[int]],
    bounds: dict[str, float],
) -> dict[str, float]:
    """MA: one more merged bitplane group per variable."""
    return {
        name: min(bounds[name], next_group_bound(fields[name], fetched[name]))
        for name in fields
    }


def mape_update(
    qoi: QoI,
    values: dict[str, np.ndarray],
    fields: dict[str, RefactoredField],
    fetched: dict[str, list[int]],
    bounds: dict[str, float],
    tolerance: float,
    estimated_error: float,
    switch_threshold: float = 10.0,
) -> dict[str, float]:
    """MAPE: proportional jump while far from τ, MA steps once close."""
    if switch_threshold <= 1.0:
        raise ValueError("switch_threshold must be > 1")
    if tolerance <= 0:
        raise ValueError("tolerance must be > 0")
    p = estimated_error / tolerance
    if p > switch_threshold:
        return {k: v / p for k, v in bounds.items()}
    return ma_update(fields, fetched, bounds)
