"""repro — a reproduction of HP-MDR (SC'25).

High-performance and Portable Data Refactoring and Progressive Retrieval
with Advanced GPUs, rebuilt as a pure-Python library: the PMGARD-style
multilevel decomposition, optimized bitplane encoding designs, hybrid
lossless compression, HDEM pipeline optimization, QoI-controlled
progressive retrieval, and all evaluation baselines.

Quickstart (doctested — see README.md for the store-backed service flow):

    >>> import numpy as np
    >>> from repro import refactor, reconstruct
    >>> data = np.linspace(-1.0, 1.0, 32 * 32).reshape(32, 32)
    >>> field = refactor(data)                      # write once
    >>> coarse = reconstruct(field, tolerance=1e-2)   # read cheap
    >>> fine = reconstruct(field, tolerance=1e-8)     # read precise
    >>> bool(np.max(np.abs(coarse.data - data)) <= 1e-2)
    True
    >>> fine.fetched_bytes > coarse.fetched_bytes
    True

See README.md for install/usage, docs/architecture.md for the
paper-section → module map, and ROADMAP.md for the perf trajectory.
"""

from repro.core.errors import (
    SegmentCorruptionError,
    SegmentNotFoundError,
    StoreError,
    TransientStoreError,
)
from repro.core.faults import FaultInjectingStore, ResilientReader, RetryPolicy
from repro.core.reconstruct import (
    ReconstructionResult,
    Reconstructor,
    reconstruct,
)
from repro.core.refactor import RefactorConfig, Refactorer, refactor
from repro.core.service import RetrievalService, SegmentCache
from repro.core.store import (
    DirectoryStore,
    MemoryStore,
    ShardedDirectoryStore,
    load_field,
    open_field,
    store_field,
)
from repro.core.stream import LazyRefactoredField, RefactoredField
from repro.lossless.hybrid import HybridConfig
from repro.qoi import retrieve_qoi, v_total

__version__ = "1.1.0"

__all__ = [
    "refactor",
    "reconstruct",
    "Refactorer",
    "Reconstructor",
    "RefactorConfig",
    "HybridConfig",
    "RefactoredField",
    "LazyRefactoredField",
    "ReconstructionResult",
    "MemoryStore",
    "DirectoryStore",
    "ShardedDirectoryStore",
    "store_field",
    "load_field",
    "open_field",
    "RetrievalService",
    "SegmentCache",
    "StoreError",
    "SegmentNotFoundError",
    "TransientStoreError",
    "SegmentCorruptionError",
    "FaultInjectingStore",
    "RetryPolicy",
    "ResilientReader",
    "retrieve_qoi",
    "v_total",
    "__version__",
]
