"""repro — a reproduction of HP-MDR (SC'25).

High-performance and Portable Data Refactoring and Progressive Retrieval
with Advanced GPUs, rebuilt as a pure-Python library: the PMGARD-style
multilevel decomposition, optimized bitplane encoding designs, hybrid
lossless compression, HDEM pipeline optimization, QoI-controlled
progressive retrieval, and all evaluation baselines.

Quickstart::

    import numpy as np
    from repro import refactor, reconstruct

    data = np.random.default_rng(0).standard_normal((64, 64, 64))
    field = refactor(data)                     # write once
    coarse = reconstruct(field, tolerance=1e-2)  # read cheap
    fine = reconstruct(field, tolerance=1e-5)    # read precise
    assert np.max(np.abs(coarse.data - data)) <= 1e-2

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core.reconstruct import (
    ReconstructionResult,
    Reconstructor,
    reconstruct,
)
from repro.core.refactor import RefactorConfig, Refactorer, refactor
from repro.core.stream import RefactoredField
from repro.lossless.hybrid import HybridConfig
from repro.qoi import retrieve_qoi, v_total

__version__ = "1.0.0"

__all__ = [
    "refactor",
    "reconstruct",
    "Refactorer",
    "Reconstructor",
    "RefactorConfig",
    "HybridConfig",
    "RefactoredField",
    "ReconstructionResult",
    "retrieve_qoi",
    "v_total",
    "__version__",
]
