"""Locality-block bitplane encoding (paper Section 4.1, ZFP-inspired).

Each thread encodes ``block_size`` *contiguous* elements, so neighboring
coefficients — which share high-order bits — land adjacently in every
bitplane, preserving compressibility. Stores coalesce (thread ``t``
writes word ``t`` of each plane) but loads do not, and parallelism is
only ``n / block_size``; the block size therefore trades occupancy
against per-thread work, which is the tuning knob this module models.

Functionally the output is the natural-order stream (block-major word
order equals element order), produced by the shared vectorized extractor;
this module adds the block bookkeeping and the occupancy helper the cost
model consumes.
"""

from __future__ import annotations

import numpy as np


def num_blocks(num_elements: int, block_size: int) -> int:
    """Number of locality blocks (threads) covering *num_elements*."""
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    return -(-num_elements // block_size)


def block_view(mags: np.ndarray, block_size: int) -> np.ndarray:
    """(n_blocks, block_size) view of the magnitudes, zero-padded tail.

    Mirrors the per-thread register state of the GPU kernel; mostly used
    by tests and the compressibility study.
    """
    n = mags.size
    blocks = num_blocks(n, block_size)
    padded = np.zeros(blocks * block_size, dtype=mags.dtype)
    padded[:n] = mags
    return padded.reshape(blocks, block_size)


def parallelism(num_elements: int, block_size: int) -> int:
    """Thread-level parallelism of the design (= number of blocks)."""
    return num_blocks(num_elements, block_size)


def recommended_block_size(num_bitplanes: int) -> int:
    """The paper groups ``B`` contiguous elements per block.

    Matching the block extent to the bitplane count lets each thread
    emit whole ``B``-bit words per plane.
    """
    return max(4, num_bitplanes)
