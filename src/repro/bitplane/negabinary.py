"""Negabinary coefficient encoding — MDR's alternative to sign planes.

Representing the signed fixed-point value in base −2 folds the sign
into the magnitude bits, so no separate sign plane is stored and
truncated prefixes remain meaningful approximations of *signed* values.
The trade-off is a one-bit-wider representation and a slightly looser
truncation bound: dropping the low ``d`` bits of a negabinary code
perturbs the value by at most ``(2/3)·2^d`` in either direction (the
alternating-weight geometric sum), versus ``2^d`` one-sided for
sign-magnitude — both decay identically per retained plane.

This module provides conversions plus bound helpers; the stream codec
integrates it via ``RefactorConfig(signed_encoding="negabinary")``.
"""

from __future__ import annotations

import math

import numpy as np

_NEGA_MASK = np.uint64(0xAAAAAAAAAAAAAAAA)


def to_negabinary(values: np.ndarray) -> np.ndarray:
    """Signed int64 → negabinary code (uint64)."""
    u = np.ascontiguousarray(values, dtype=np.int64).view(np.uint64)
    return (u + _NEGA_MASK) ^ _NEGA_MASK


def from_negabinary(codes: np.ndarray) -> np.ndarray:
    """Negabinary code (uint64) → signed int64."""
    u = (np.ascontiguousarray(codes, dtype=np.uint64) ^ _NEGA_MASK) \
        - _NEGA_MASK
    return u.view(np.int64)


def negabinary_width(num_bitplanes: int) -> int:
    """Code width needed for signed magnitudes below ``2^num_bitplanes``.

    Positive values up to ``2^B − 1`` are covered by even-position
    digits through position ``B`` (width ``B+1``); negative values need
    odd-position digits through position ``B+1`` — so the code is two
    digits wider than the magnitude.
    """
    if num_bitplanes < 1:
        raise ValueError("num_bitplanes must be >= 1")
    return num_bitplanes + 2


def truncation_error_bound(dropped_bits: int) -> float:
    """Max |value error| after zeroing the low *dropped_bits* digits.

    The dropped digits contribute at most ``Σ 2^i`` over the positive
    (even) positions or the negative (odd) positions below the cut —
    both bounded by ``(2/3)·2^dropped``.
    """
    if dropped_bits < 0:
        raise ValueError("dropped_bits must be >= 0")
    if dropped_bits == 0:
        return 0.0
    return (2.0 / 3.0) * math.ldexp(1.0, dropped_bits)


def plane_error_bound_negabinary(
    exponent: int, num_bitplanes: int, kept_planes: int, max_abs: float
) -> float:
    """L∞ bound after keeping *kept_planes* of the negabinary planes.

    Mirrors :func:`repro.bitplane.align.plane_error_bound` for the
    negabinary representation: fixed-point scale ``2^(e-B)`` times the
    digit-truncation bound plus one quantization ulp. Unlike
    sign-magnitude, a *partial* negabinary prefix can reconstruct past
    ``max_abs`` (a leading negative-weight digit without its
    compensating lower digits), so the ``max_abs`` cap applies only to
    the fetched-nothing case.
    """
    if kept_planes < 0:
        raise ValueError("kept_planes must be >= 0")
    width = negabinary_width(num_bitplanes)
    k = min(kept_planes, width)
    scale = math.ldexp(1.0, exponent - num_bitplanes)
    if max_abs == 0.0:
        return 0.0
    if k == 0:
        return min(max_abs, (truncation_error_bound(width) + 1.0) * scale)
    if k >= width:
        return scale  # quantization ulp only
    return (truncation_error_bound(width - k) + 1.0) * scale
