"""Register-shuffle bitplane encoding (paper Section 4.2).

One element per thread maximizes parallelism for small inputs, but lanes
must exchange bits to assemble each bitplane word. The paper studies four
warp-shuffle instruction strategies — ``ballot``, ``shift`` (tree
reduction), ``match_any``, and ``reduce_add`` — which all compute the
same bitplane word with different communication structure and instruction
counts.

This module emulates each variant lane-by-lane at warp granularity so the
four communication patterns can be verified to agree bit-exactly, and
exposes per-variant instruction counts that feed the GPU cost model
(which is how Figure 6's ordering arises).
"""

from __future__ import annotations

import numpy as np

from repro.bitplane.encoding import SHUFFLE_VARIANTS


def _check(variant: str, warp_bits: np.ndarray) -> np.ndarray:
    if variant not in SHUFFLE_VARIANTS:
        raise ValueError(
            f"variant must be one of {SHUFFLE_VARIANTS}, got {variant!r}"
        )
    bits = np.asarray(warp_bits, dtype=np.uint64)
    if bits.ndim != 1 or bits.size < 1 or bits.size > 64:
        raise ValueError("warp_bits must be a 1-D lane vector of size <= 64")
    if np.any(bits > 1):
        raise ValueError("warp_bits must contain only 0/1 predicates")
    return bits


def warp_ballot(warp_bits: np.ndarray) -> int:
    """``__ballot_sync``: every lane receives the packed predicate mask."""
    bits = _check("ballot", warp_bits)
    lanes = np.arange(bits.size, dtype=np.uint64)
    return int(np.bitwise_or.reduce(bits << lanes))


def warp_shift_reduce(warp_bits: np.ndarray) -> int:
    """Tree reduction with ``__shfl_down_sync``: only lane 0 keeps the word.

    Each round, lane ``t`` combines its partial word with the partial of
    lane ``t + stride`` shifted into place — log2(W) rounds.
    """
    bits = _check("shift", warp_bits)
    w = bits.size
    partial = bits.copy()  # lane-local partial words; lane t holds bit t
    lanes = np.arange(w, dtype=np.uint64)
    partial = partial << lanes  # position each predicate at its lane index
    stride = 1
    while stride < w:
        # shfl_down(stride): lane t reads lane t+stride (0 past the warp).
        shifted = np.zeros_like(partial)
        shifted[: w - stride] = partial[stride:]
        partial = partial | shifted
        stride *= 2
    return int(partial[0])


def warp_match_any(warp_bits: np.ndarray) -> int:
    """``__match_any_sync``: lanes with equal predicate get a shared mask.

    The mask of lanes whose predicate equals 1 *is* the bitplane word; if
    the storing lane holds predicate 0 it receives the complement and
    must flip it (the extra bit-flip the paper mentions).
    """
    bits = _check("match_any", warp_bits)
    w = bits.size
    lanes = np.arange(w, dtype=np.uint64)
    ones_mask = int(np.bitwise_or.reduce((bits == 1).astype(np.uint64) << lanes))
    full = (1 << w) - 1
    storing_lane = 0
    if bits[storing_lane] == 1:
        return ones_mask
    zeros_mask = ones_mask ^ full  # what lane 0 actually receives
    return zeros_mask ^ full  # flip to recover the ones mask


def warp_reduce_add(warp_bits: np.ndarray) -> int:
    """``__reduce_add_sync`` on pre-positioned words (H100 fast path).

    Each lane contributes ``bit << lane``; the hardware add-reduction of
    disjoint powers of two equals the OR. Not available on AMD MI250X —
    the evaluation (Fig. 6) omits it there.
    """
    bits = _check("reduce_add", warp_bits)
    lanes = np.arange(bits.size, dtype=np.uint64)
    return int(np.add.reduce(bits << lanes))


_VARIANT_FUNCS = {
    "ballot": warp_ballot,
    "shift": warp_shift_reduce,
    "match_any": warp_match_any,
    "reduce_add": warp_reduce_add,
}


def encode_warp_planes(
    warp_values: np.ndarray, num_bitplanes: int, variant: str = "ballot"
) -> list[int]:
    """Encode one warp's fixed-point values into bitplane words.

    Returns ``num_bitplanes`` words (most significant plane first), each
    computed through the selected shuffle emulation. Used by tests to
    prove all four variants agree; production encoding uses the
    vectorized path in :mod:`repro.bitplane.encoding`.
    """
    values = np.asarray(warp_values, dtype=np.uint64)
    func = _VARIANT_FUNCS.get(variant)
    if func is None:
        raise ValueError(
            f"variant must be one of {SHUFFLE_VARIANTS}, got {variant!r}"
        )
    words = []
    for b in range(num_bitplanes - 1, -1, -1):
        predicate = (values >> np.uint64(b)) & np.uint64(1)
        words.append(func(predicate))
    return words


def instruction_counts(
    variant: str, warp_size: int = 32
) -> dict[str, float]:
    """Per-bitplane-word instruction mix for the GPU cost model.

    Counts follow the paper's qualitative analysis: ballot is a single
    vote instruction (plus a broadcast all lanes pay for); shift needs
    log2(W) shuffle+or rounds; match-any behaves like ballot plus an
    occasional bit flip; reduce-add behaves like shift on hardware
    without a reduction unit but collapses to ~1 op where dedicated
    hardware exists (H100).
    """
    if variant not in SHUFFLE_VARIANTS:
        raise ValueError(
            f"variant must be one of {SHUFFLE_VARIANTS}, got {variant!r}"
        )
    log_w = int(np.ceil(np.log2(max(warp_size, 2))))
    if variant == "ballot":
        return {"comm_ops": 1.0, "alu_ops": 1.0, "broadcast_factor": 1.0}
    if variant == "shift":
        return {"comm_ops": float(log_w), "alu_ops": float(log_w),
                "broadcast_factor": 0.0}
    if variant == "match_any":
        return {"comm_ops": 1.0, "alu_ops": 1.5, "broadcast_factor": 1.0}
    # reduce_add: one reduction op; hardware support decides its latency.
    return {"comm_ops": 1.0, "alu_ops": 0.5, "broadcast_factor": 0.0,
            "needs_reduce_unit": 1.0}
