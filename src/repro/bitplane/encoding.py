"""Functional bitplane codec with pluggable parallelization designs.

The heavy lifting is a bit-matrix transpose: ``N`` fixed-point values of
``B`` bits become ``B`` packed bitplanes of ``N`` bits (plus one sign
plane, stored first). The transpose runs as a *single pass* over the
data through :mod:`repro.bitplane.transpose` — one ``unpackbits`` into
an ``(N, B)`` bit matrix, one transpose, one row-wise ``packbits`` —
instead of ``B`` separate shift/mask/pack sweeps (the retained
``*_reference`` functions). Designs differ in the *order* bits land in
the stream — ``natural`` element order for locality-block and
register-shuffle, warp-transposed tiles for register-block — and in
their simulated GPU cost (see :mod:`repro.gpu.costmodel`). Decoded
values are identical across designs (HP-MDR's portability property) and
byte-identical between the single-pass and reference transposes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.bitplane import register_block, transpose
from repro.bitplane.align import (
    AlignedFixedPoint,
    align_to_fixed_point,
    from_fixed_point,
    plane_error_bound,
    scale_pow2,
)
from repro.util.serialize import pack_arrays, unpack_arrays

#: The three parallelization designs of Section 4.
DESIGNS = ("locality_block", "register_shuffle", "register_block")

#: The four register-shuffle instruction variants of Section 4.2.
SHUFFLE_VARIANTS = ("ballot", "shift", "match_any", "reduce_add")

_NATURAL = "natural"
_WARP = "warp"

_HEADER_FMT = "<4sH16s8sBQHiidH"
_MAGIC = b"BPLS"
_VERSION = 1


#: Supported signed-value encodings (MDR offers both).
SIGNED_ENCODINGS = ("sign_magnitude", "negabinary")


@dataclass
class BitplaneStream:
    """An encoded set of bitplanes plus the metadata needed to decode.

    With the default ``sign_magnitude`` encoding, ``planes[0]`` is the
    sign plane and ``planes[1:]`` are magnitude planes from most to
    least significant; with ``negabinary`` all planes are base-(−2)
    digits (no sign plane, one extra digit). Both store
    ``num_bitplanes + 1`` planes of ``ceil(N / 8)`` packed bytes.
    """

    planes: list[np.ndarray]
    num_elements: int
    num_bitplanes: int
    exponent: int
    max_abs: float
    dtype: np.dtype
    design: str = "register_block"
    layout: str = _NATURAL
    warp_size: int = 32
    signed_encoding: str = "sign_magnitude"

    @property
    def num_planes(self) -> int:
        """Total stored planes."""
        return len(self.planes)

    def plane_bytes(self, count: int | None = None) -> int:
        """Total payload bytes of the leading *count* planes."""
        planes = self.planes if count is None else self.planes[:count]
        return int(sum(p.nbytes for p in planes))

    def error_bound(self, fetched_planes: int) -> float:
        """L∞ bound when only the first *fetched_planes* planes are used."""
        if self.signed_encoding == "negabinary":
            from repro.bitplane.negabinary import (
                plane_error_bound_negabinary,
            )

            return plane_error_bound_negabinary(
                self.exponent, self.num_bitplanes, int(fetched_planes),
                self.max_abs,
            )
        # sign_magnitude: plane 0 is the sign plane.
        kept = max(0, int(fetched_planes) - 1)
        return plane_error_bound(
            self.exponent, self.num_bitplanes, kept, self.max_abs
        )

    # -- serialization --------------------------------------------------
    def to_bytes(self) -> bytes:
        header = struct.pack(
            _HEADER_FMT,
            _MAGIC,
            _VERSION,
            self.design.encode().ljust(16, b"\0"),
            self.layout.encode().ljust(8, b"\0"),
            1 if self.dtype == np.dtype(np.float64) else 0,
            self.num_elements,
            self.num_bitplanes,
            self.exponent,
            SIGNED_ENCODINGS.index(self.signed_encoding),
            self.max_abs,
            self.warp_size,
        )
        return header + pack_arrays(self.planes)

    @classmethod
    def from_bytes(cls, buf: bytes | memoryview) -> "BitplaneStream":
        """Zero-copy deserialization: planes are read-only views of *buf*."""
        head_size = struct.calcsize(_HEADER_FMT)
        (magic, version, design, layout, is64, n, b, exponent, enc_id,
         max_abs, warp) = struct.unpack_from(_HEADER_FMT, buf, 0)
        if magic != _MAGIC:
            raise ValueError("not a bitplane stream")
        if version != _VERSION:
            raise ValueError(f"unsupported bitplane stream version {version}")
        if enc_id >= len(SIGNED_ENCODINGS):
            raise ValueError(f"unknown signed encoding id {enc_id}")
        payloads = unpack_arrays(memoryview(buf)[head_size:])
        planes = [np.frombuffer(p, dtype=np.uint8) for p in payloads]
        return cls(
            planes=planes,
            num_elements=n,
            num_bitplanes=b,
            exponent=exponent,
            max_abs=max_abs,
            dtype=np.dtype(np.float64 if is64 else np.float32),
            design=design.rstrip(b"\0").decode(),
            layout=layout.rstrip(b"\0").decode(),
            warp_size=warp,
            signed_encoding=SIGNED_ENCODINGS[enc_id],
        )


# ---------------------------------------------------------------------
# Plane extraction / injection on natural-order fixed-point values
# ---------------------------------------------------------------------
def extract_planes(
    signs: np.ndarray, mags: np.ndarray, num_bitplanes: int
) -> list[np.ndarray]:
    """Transpose sign+magnitude integers into packed bitplanes.

    Single-pass bit-matrix transpose (see
    :mod:`repro.bitplane.transpose`), most significant plane first;
    byte-identical to :func:`extract_planes_reference` (which also
    serves as the endian-neutral fallback on big-endian hosts).
    """
    if not transpose.HOST_SUPPORTED:
        return extract_planes_reference(signs, mags, num_bitplanes)
    return transpose.transpose_sign_magnitude(signs, mags, num_bitplanes)


def inject_planes(
    planes: list[np.ndarray],
    num_elements: int,
    num_bitplanes: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`extract_planes` for the available planes.

    Missing trailing planes decode as zero bits (progressive truncation).
    """
    if not transpose.HOST_SUPPORTED:
        return inject_planes_reference(planes, num_elements, num_bitplanes)
    return transpose.untranspose_sign_magnitude(
        planes, num_elements, num_bitplanes
    )


def extract_planes_reference(
    signs: np.ndarray, mags: np.ndarray, num_bitplanes: int
) -> list[np.ndarray]:
    """Per-plane reference transpose: one shift/mask/pack pass per plane.

    Retained for equivalence tests and the ``bench_hotpaths`` baseline;
    production call sites use the single-pass :func:`extract_planes`.
    """
    planes = [np.packbits(signs, bitorder="little")]
    for b in range(num_bitplanes - 1, -1, -1):
        bits = ((mags >> np.uint64(b)) & np.uint64(1)).astype(np.uint8)
        planes.append(np.packbits(bits, bitorder="little"))
    return planes


def inject_planes_reference(
    planes: list[np.ndarray],
    num_elements: int,
    num_bitplanes: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-plane reference inverse of :func:`extract_planes_reference`."""
    signs = np.zeros(num_elements, dtype=np.uint8)
    mags = np.zeros(num_elements, dtype=np.uint64)
    if not planes:
        return signs, mags
    signs = np.unpackbits(
        planes[0], count=num_elements, bitorder="little"
    ).astype(np.uint8)
    for i, plane in enumerate(planes[1:]):
        bit_index = num_bitplanes - 1 - i
        if bit_index < 0:
            raise ValueError("more magnitude planes than num_bitplanes")
        bits = np.unpackbits(plane, count=num_elements, bitorder="little")
        mags |= bits.astype(np.uint64) << np.uint64(bit_index)
    return signs, mags


# ---------------------------------------------------------------------
# Public codec entry points
# ---------------------------------------------------------------------
def extract_code_planes(codes: np.ndarray, width: int) -> list[np.ndarray]:
    """Transpose unsigned codes into *width* packed planes, MSB first."""
    codes = np.ascontiguousarray(codes, dtype=np.uint64)
    if not transpose.HOST_SUPPORTED:
        return extract_code_planes_reference(codes, width)
    return transpose.words_to_planes(codes, width)


def inject_code_planes(
    planes: list[np.ndarray], num_elements: int, width: int
) -> np.ndarray:
    """Inverse of :func:`extract_code_planes`; missing planes are zero."""
    if len(planes) > width:
        raise ValueError("more planes than code width")
    if not transpose.HOST_SUPPORTED:
        return inject_code_planes_reference(planes, num_elements, width)
    return transpose.planes_to_words(planes, num_elements, width)


def extract_code_planes_reference(
    codes: np.ndarray, width: int
) -> list[np.ndarray]:
    """Per-plane reference for :func:`extract_code_planes`."""
    planes = []
    for b in range(width - 1, -1, -1):
        bits = ((codes >> np.uint64(b)) & np.uint64(1)).astype(np.uint8)
        planes.append(np.packbits(bits, bitorder="little"))
    return planes


def inject_code_planes_reference(
    planes: list[np.ndarray], num_elements: int, width: int
) -> np.ndarray:
    """Per-plane reference for :func:`inject_code_planes`."""
    if len(planes) > width:
        raise ValueError("more planes than code width")
    codes = np.zeros(num_elements, dtype=np.uint64)
    for i, plane in enumerate(planes):
        bits = np.unpackbits(plane, count=num_elements, bitorder="little")
        codes |= bits.astype(np.uint64) << np.uint64(width - 1 - i)
    return codes


def encode_bitplanes(
    data: np.ndarray,
    num_bitplanes: int = 32,
    design: str = "register_block",
    warp_size: int = 32,
    signed_encoding: str = "sign_magnitude",
) -> BitplaneStream:
    """Encode a float array into a :class:`BitplaneStream`.

    ``design`` selects the parallelization strategy being modeled; the
    register-block design permutes elements into its coalesced
    warp-transposed order before extraction (Section 4.3), the others
    keep natural order. ``signed_encoding`` picks sign+magnitude planes
    (default) or the negabinary representation.
    """
    if design not in DESIGNS:
        raise ValueError(f"design must be one of {DESIGNS}, got {design!r}")
    if signed_encoding not in SIGNED_ENCODINGS:
        raise ValueError(
            f"signed_encoding must be one of {SIGNED_ENCODINGS}, "
            f"got {signed_encoding!r}"
        )
    layout = _NATURAL
    if design == "register_block":
        # Permute the (narrow) float input instead of the sign +
        # magnitude words: fixed-point conversion is elementwise apart
        # from the global max reduction, so the planes are identical
        # and the gather moves far fewer bytes.
        flat = np.ascontiguousarray(data).reshape(-1)
        perm = register_block.tile_permutation(
            flat.size, num_bitplanes, warp_size
        )
        data = flat[perm]
        layout = _WARP
    aligned = align_to_fixed_point(data, num_bitplanes)
    signs, mags = aligned.signs, aligned.magnitudes
    if signed_encoding == "negabinary":
        from repro.bitplane.negabinary import negabinary_width, to_negabinary

        signed = np.where(signs.astype(bool), -mags.astype(np.int64),
                          mags.astype(np.int64))
        codes = to_negabinary(signed)
        planes = extract_code_planes(codes, negabinary_width(num_bitplanes))
    else:
        planes = extract_planes(signs, mags, num_bitplanes)
    return BitplaneStream(
        planes=planes,
        num_elements=aligned.num_elements,
        num_bitplanes=num_bitplanes,
        exponent=aligned.exponent,
        max_abs=aligned.max_abs,
        dtype=aligned.dtype,
        design=design,
        layout=layout,
        warp_size=warp_size,
        signed_encoding=signed_encoding,
    )


def decode_bitplanes(
    stream: BitplaneStream, num_planes: int | None = None
) -> np.ndarray:
    """Decode the leading *num_planes* planes back to float values.

    ``num_planes`` counts stored planes from the most significant;
    ``None`` uses all available. Works for streams produced by any
    design (portability).
    """
    total = stream.num_planes
    k = total if num_planes is None else int(num_planes)
    if not 0 <= k <= total:
        raise ValueError(f"num_planes must be in [0, {total}], got {k}")
    if stream.signed_encoding == "negabinary":
        return _decode_negabinary(stream, k)
    signs, mags = inject_planes(
        stream.planes[:k], stream.num_elements, stream.num_bitplanes
    )
    aligned = AlignedFixedPoint(
        signs=signs,
        magnitudes=mags,
        exponent=stream.exponent,
        num_bitplanes=stream.num_bitplanes,
        max_abs=stream.max_abs,
        dtype=stream.dtype,
    )
    kept = max(0, k - 1)
    values = from_fixed_point(aligned, kept_planes=kept)
    if stream.layout == _WARP:
        # Fixed-point -> float is elementwise, so un-permuting the final
        # (narrower) float array moves fewer bytes than un-permuting the
        # sign + magnitude words.
        inv = register_block.inverse_tile_permutation(
            stream.num_elements, stream.num_bitplanes, stream.warp_size
        )
        values = values[inv]
    return values


def _decode_negabinary(stream: BitplaneStream, k: int) -> np.ndarray:
    """Decode the leading *k* negabinary planes to float values."""
    from repro.bitplane.negabinary import from_negabinary, negabinary_width

    width = negabinary_width(stream.num_bitplanes)
    codes = inject_code_planes(
        stream.planes[:k], stream.num_elements, width
    )
    if stream.layout == _WARP:
        inv = register_block.inverse_tile_permutation(
            stream.num_elements, stream.num_bitplanes, stream.warp_size
        )
        codes = codes[inv]
    signed = from_negabinary(codes)
    values = scale_pow2(
        signed.astype(np.float64),
        stream.exponent - stream.num_bitplanes,
    )
    return values.astype(stream.dtype, copy=False)


# ---------------------------------------------------------------------
# Incremental (resumable) decoding
# ---------------------------------------------------------------------
@dataclass
class PartialDecodeState:
    """Integer-domain decode state retained between refinement steps.

    ``words`` accumulates the injected plane bits — fixed-point
    magnitudes under ``sign_magnitude``, base-(−2) digits under
    ``negabinary``. Each stored plane contributes a disjoint bit
    position, so injecting planes ``[p, q)`` into a state holding
    ``[0, p)`` is exact: the algebraic fact that makes progressive
    refinement pay only for the increment. Treat instances as
    immutable; :func:`apply_planes` returns a new state, so a failed
    refinement step can simply keep the old one.
    """

    words: np.ndarray  # uint64 accumulated magnitudes / negabinary codes
    signs: np.ndarray | None  # uint8 sign bits (sign_magnitude only)
    planes_applied: int
    num_elements: int
    num_bitplanes: int
    exponent: int
    max_abs: float
    dtype: np.dtype
    layout: str
    warp_size: int
    signed_encoding: str

    @property
    def total_planes(self) -> int:
        """Stored planes of the full stream this state resumes."""
        if self.signed_encoding == "negabinary":
            from repro.bitplane.negabinary import negabinary_width

            return negabinary_width(self.num_bitplanes)
        return self.num_bitplanes + 1

    @property
    def nbytes(self) -> int:
        """Resident bytes of the retained arrays."""
        total = int(self.words.nbytes)
        if self.signs is not None:
            total += int(self.signs.nbytes)
        return total


def begin_decode_state(
    *,
    num_elements: int,
    num_bitplanes: int,
    exponent: int,
    max_abs: float,
    dtype: np.dtype,
    layout: str = _NATURAL,
    warp_size: int = 32,
    signed_encoding: str = "sign_magnitude",
) -> PartialDecodeState:
    """Zero-plane :class:`PartialDecodeState` for a stream's metadata."""
    if signed_encoding not in SIGNED_ENCODINGS:
        raise ValueError(
            f"signed_encoding must be one of {SIGNED_ENCODINGS}, "
            f"got {signed_encoding!r}"
        )
    return PartialDecodeState(
        words=np.zeros(int(num_elements), dtype=np.uint64),
        signs=None,
        planes_applied=0,
        num_elements=int(num_elements),
        num_bitplanes=int(num_bitplanes),
        exponent=int(exponent),
        max_abs=float(max_abs),
        dtype=np.dtype(dtype),
        layout=layout,
        warp_size=int(warp_size),
        signed_encoding=signed_encoding,
    )


def apply_planes(
    state: PartialDecodeState,
    planes: list[np.ndarray],
    start_plane: int,
) -> PartialDecodeState:
    """New state with *planes* ``[start_plane, start_plane + len)`` injected.

    ``start_plane`` must equal ``state.planes_applied`` (refinement is
    contiguous); the input state is never mutated, so callers can commit
    the returned state only once a whole multi-level step succeeded.
    """
    planes = list(planes)
    if start_plane != state.planes_applied:
        raise ValueError(
            f"planes must resume at plane {state.planes_applied}, "
            f"got start_plane={start_plane}"
        )
    end = start_plane + len(planes)
    if end > state.total_planes:
        raise ValueError(
            f"planes [{start_plane}, {end}) exceed the stream's "
            f"{state.total_planes} stored planes"
        )
    if not planes:
        return state
    words = state.words.copy()
    signs = state.signs
    n = state.num_elements
    if state.signed_encoding == "negabinary":
        from repro.bitplane.negabinary import negabinary_width

        # Absolute plane j targets bit (width - 1 - j); a slice starting
        # at plane p therefore injects exactly like the leading planes
        # of a (width - p)-bit code.
        width = negabinary_width(state.num_bitplanes)
        words |= inject_code_planes(planes, n, width - start_plane)
    else:
        mag_planes = planes
        mag_start = start_plane - 1
        if start_plane == 0:
            signs = np.unpackbits(
                np.ascontiguousarray(planes[0], dtype=np.uint8),
                count=n, bitorder="little",
            ).astype(np.uint8)
            mag_planes = planes[1:]
            mag_start = 0
        if mag_planes:
            # Magnitude plane m targets bit (B - 1 - m): same shifted-
            # width trick as above.
            words |= inject_code_planes(
                mag_planes, n, state.num_bitplanes - mag_start
            )
    return PartialDecodeState(
        words=words,
        signs=signs,
        planes_applied=end,
        num_elements=state.num_elements,
        num_bitplanes=state.num_bitplanes,
        exponent=state.exponent,
        max_abs=state.max_abs,
        dtype=state.dtype,
        layout=state.layout,
        warp_size=state.warp_size,
        signed_encoding=state.signed_encoding,
    )


def finalize_decode(state: PartialDecodeState) -> np.ndarray:
    """Float values of a partial state — bit-identical to a full decode.

    Equals ``decode_bitplanes(stream, state.planes_applied)`` for the
    stream the state was built from (tested property); the state itself
    is left untouched so further planes can still be applied.
    """
    if state.signed_encoding == "negabinary":
        codes = state.words
        if state.layout == _WARP:
            inv = register_block.inverse_tile_permutation(
                state.num_elements, state.num_bitplanes, state.warp_size
            )
            codes = codes[inv]
        from repro.bitplane.negabinary import from_negabinary

        signed = from_negabinary(codes)
        values = scale_pow2(
            signed.astype(np.float64),
            state.exponent - state.num_bitplanes,
        )
        return values.astype(state.dtype, copy=False)
    signs = state.signs
    if signs is None:
        signs = np.zeros(state.num_elements, dtype=np.uint8)
    aligned = AlignedFixedPoint(
        signs=signs,
        magnitudes=state.words,
        exponent=state.exponent,
        num_bitplanes=state.num_bitplanes,
        max_abs=state.max_abs,
        dtype=state.dtype,
    )
    kept = max(0, state.planes_applied - 1)
    values = from_fixed_point(aligned, kept_planes=kept)
    if state.layout == _WARP:
        inv = register_block.inverse_tile_permutation(
            state.num_elements, state.num_bitplanes, state.warp_size
        )
        values = values[inv]
    return values


def _check_state_matches(
    state: PartialDecodeState, stream: BitplaneStream
) -> None:
    for attr in (
        "num_elements", "num_bitplanes", "exponent", "max_abs",
        "dtype", "layout", "warp_size", "signed_encoding",
    ):
        if getattr(state, attr) != getattr(stream, attr):
            raise ValueError(
                f"decode state does not match stream: {attr} "
                f"{getattr(state, attr)!r} != {getattr(stream, attr)!r}"
            )


def decode_bitplanes_incremental(
    stream: BitplaneStream,
    num_planes: int | None = None,
    state: PartialDecodeState | None = None,
) -> tuple[np.ndarray, PartialDecodeState]:
    """Resumable :func:`decode_bitplanes`: decode only the new planes.

    With ``state=None`` this decodes planes ``[0, num_planes)`` and
    returns the values plus the retained state; passing that state back
    with a larger ``num_planes`` decodes only planes
    ``[state.planes_applied, num_planes)`` and injects them into the
    retained integer partials. The returned values are bit-identical to
    ``decode_bitplanes(stream, num_planes)`` at every step.
    """
    total = stream.num_planes
    k = total if num_planes is None else int(num_planes)
    if not 0 <= k <= total:
        raise ValueError(f"num_planes must be in [0, {total}], got {k}")
    if state is None:
        state = begin_decode_state(
            num_elements=stream.num_elements,
            num_bitplanes=stream.num_bitplanes,
            exponent=stream.exponent,
            max_abs=stream.max_abs,
            dtype=stream.dtype,
            layout=stream.layout,
            warp_size=stream.warp_size,
            signed_encoding=stream.signed_encoding,
        )
    else:
        _check_state_matches(state, stream)
    if k < state.planes_applied:
        raise ValueError(
            f"state already holds {state.planes_applied} planes; "
            f"cannot decode back down to {k} (build a fresh state)"
        )
    state = apply_planes(
        state, stream.planes[state.planes_applied:k], state.planes_applied
    )
    return finalize_decode(state), state


# Short aliases used across the library.
encode = encode_bitplanes
decode = decode_bitplanes
