"""Single-pass vectorized bit-matrix transpose (the refactoring hot loop).

Bitplane extraction is a transpose of an ``(N, B)`` bit matrix: ``N``
fixed-point words of ``B`` bits become ``B`` packed planes of ``N`` bits.
The reference implementation walks the planes one by one — ``B`` full
shift/mask/pack sweeps over the 8-byte words (B ≈ 32–53 per level).
This module keeps the whole transpose inside one pass over the data by
splitting it at the byte boundary, so every plane only ever touches the
one byte column that contains its bit:

* forward (:func:`words_to_planes`) — view the uint64 words as their
  little-endian byte columns once, then produce plane ``b`` with a
  single uint8 mask of column ``b >> 3`` fed straight to ``packbits``
  (which treats any nonzero byte as a set bit, so no shift pass is
  needed). Each plane reads ``N`` bytes instead of ``8·N``.
* inverse (:func:`planes_to_words`) — never unpacks to one-byte-per-bit
  at all: the packed planes of one byte column form ``ceil(N/8)``
  8×8-bit tiles, which are flipped in-register with the classic
  three-step masked-swap bit transpose (Hacker's Delight §7-3) on
  uint64 lanes and written directly into the words' byte columns.
  Missing trailing planes decode as zero bits (progressive truncation).

Both directions are byte-identical to the per-plane reference (each
plane is ``ceil(N / 8)`` bytes packed with ``bitorder="little"``), which
is asserted property-style in ``tests/test_bitplane_transpose.py``.
"""

from __future__ import annotations

import sys

import numpy as np

#: Word width of the fixed-point magnitudes the codec transposes.
_WORD_BITS = 64
_WORD_BYTES = 8

#: The byte-column split and the 8×8-tile layout both map byte ``k`` of
#: a uint64 to bits ``[8k, 8k+8)`` — true only on little-endian hosts.
#: Callers (``bitplane.encoding``) fall back to the endian-neutral
#: per-plane reference kernels when this is False.
HOST_SUPPORTED = sys.byteorder == "little"


def _require_little_endian() -> None:
    if not HOST_SUPPORTED:
        raise RuntimeError(
            "the single-pass bit-matrix transpose requires a "
            "little-endian host; use the *_reference kernels in "
            "repro.bitplane.encoding on this platform"
        )

# Masks/shifts of the three masked-swap rounds that transpose an 8x8 bit
# tile held in a uint64 lane (row j = byte j, column s = bit s).
_T8_M1, _T8_S1 = np.uint64(0x00AA00AA00AA00AA), np.uint64(7)
_T8_M2, _T8_S2 = np.uint64(0x0000CCCC0000CCCC), np.uint64(14)
_T8_M3, _T8_S3 = np.uint64(0x00000000F0F0F0F0), np.uint64(28)


def _plane_nbytes(num_elements: int) -> int:
    return (num_elements + 7) >> 3


def _transpose_8x8_tiles_inplace(
    x: np.ndarray, scratch: np.ndarray
) -> np.ndarray:
    """In-place masked-swap rounds of :func:`transpose_8x8_tiles`."""
    for mask, s in (
        (_T8_M1, _T8_S1), (_T8_M2, _T8_S2), (_T8_M3, _T8_S3)
    ):
        np.right_shift(x, s, out=scratch)
        np.bitwise_xor(scratch, x, out=scratch)
        np.bitwise_and(scratch, mask, out=scratch)
        np.bitwise_xor(x, scratch, out=x)
        np.left_shift(scratch, s, out=scratch)
        np.bitwise_xor(x, scratch, out=x)
    return x


def transpose_8x8_tiles(lanes: np.ndarray) -> np.ndarray:
    """Transpose the 8×8 bit matrix held in every uint64 lane.

    Lane layout: byte ``j`` is row ``j``, bit ``s`` (little order) is
    column ``s``; the result has byte ``s`` / bit ``j`` equal to the
    input's byte ``j`` / bit ``s``. Three masked swap rounds
    (exchange 2^k-sized sub-blocks across the diagonal), fully
    vectorized over the lanes.
    """
    x = np.array(lanes, dtype=np.uint64, copy=True)
    return _transpose_8x8_tiles_inplace(x, np.empty_like(x))


def words_to_planes(words: np.ndarray, width: int) -> list[np.ndarray]:
    """Transpose uint64 *words* into *width* packed bitplanes, MSB first.

    Plane ``i`` holds bit ``width - 1 - i`` of every word, packed
    little-endian-bit-first — exactly the layout of the per-plane
    reference extraction, at one byte-column read per plane.
    """
    _require_little_endian()
    if width < 1 or width > _WORD_BITS:
        raise ValueError(f"width must be in [1, {_WORD_BITS}], got {width}")
    words = np.ascontiguousarray(words, dtype=np.uint64)
    n = words.size
    if n == 0:
        return [np.zeros(0, dtype=np.uint8) for _ in range(width)]
    # Little-endian words: byte k of each word holds bits [8k, 8k+8).
    word_bytes = words.view(np.uint8).reshape(n, _WORD_BYTES)
    cols = [
        np.ascontiguousarray(word_bytes[:, k])
        for k in range((width + 7) >> 3)
    ]
    masked = np.empty(n, dtype=np.uint8)
    planes = []
    for b in range(width - 1, -1, -1):
        np.bitwise_and(cols[b >> 3], np.uint8(1 << (b & 7)), out=masked)
        # packbits maps any nonzero byte to a set bit: no shift needed.
        planes.append(np.packbits(masked, bitorder="little"))
    return planes


def planes_to_words(
    planes: list[np.ndarray], num_elements: int, width: int
) -> np.ndarray:
    """Inverse of :func:`words_to_planes` for the available planes.

    ``planes`` holds the leading (most significant) bitplanes; missing
    trailing planes decode as zero bits, which is what progressive
    truncation requires. Runs entirely on packed data: the up-to-8
    planes sharing a byte column are interleaved into 8×8 tiles and
    flipped with :func:`transpose_8x8_tiles`.
    """
    _require_little_endian()
    if width < 1 or width > _WORD_BITS:
        raise ValueError(f"width must be in [1, {_WORD_BITS}], got {width}")
    k_planes = len(planes)
    if k_planes > width:
        raise ValueError("more planes than word width")
    words = np.zeros(num_elements, dtype=np.uint64)
    if k_planes == 0 or num_elements == 0:
        return words
    nbytes = _plane_nbytes(num_elements)
    rows: list[np.ndarray] = []
    for i, plane in enumerate(planes):
        row = np.frombuffer(plane, dtype=np.uint8) if isinstance(
            plane, (bytes, bytearray, memoryview)
        ) else np.ascontiguousarray(plane, dtype=np.uint8).reshape(-1)
        if row.size != nbytes:
            raise ValueError(
                f"plane {i}: expected {nbytes} packed bytes, got {row.size}"
            )
        rows.append(row)
    word_bytes = words.view(np.uint8).reshape(num_elements, _WORD_BYTES)
    tiles = np.empty((nbytes, _WORD_BYTES), dtype=np.uint8)
    lanes = tiles.reshape(-1).view(np.uint64)
    scratch = np.empty_like(lanes)
    for k in range((width + 7) >> 3):
        # Tile row j of byte column k carries bit position 8k + j, i.e.
        # plane index width - 1 - (8k + j); absent planes are zero rows.
        present = [
            (j, width - 1 - (8 * k + j))
            for j in range(_WORD_BYTES)
            if 8 * k + j < width and 0 <= width - 1 - (8 * k + j) < k_planes
        ]
        if not present:
            continue
        tiles[:] = 0
        for j, i in present:
            tiles[:, j] = rows[i]
        flipped = _transpose_8x8_tiles_inplace(lanes, scratch)
        word_bytes[:, k] = flipped.view(np.uint8)[:num_elements]
    return words


def transpose_sign_magnitude(
    signs: np.ndarray, mags: np.ndarray, num_bitplanes: int
) -> list[np.ndarray]:
    """Sign plane + MSB-first magnitude planes in one vectorized pass."""
    planes = [np.packbits(np.ascontiguousarray(signs, dtype=np.uint8),
                          bitorder="little")]
    planes.extend(words_to_planes(mags, num_bitplanes))
    return planes


def untranspose_sign_magnitude(
    planes: list[np.ndarray], num_elements: int, num_bitplanes: int
) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`transpose_sign_magnitude` for available planes."""
    if not planes:
        return (
            np.zeros(num_elements, dtype=np.uint8),
            np.zeros(num_elements, dtype=np.uint64),
        )
    if len(planes) - 1 > num_bitplanes:
        raise ValueError("more magnitude planes than num_bitplanes")
    signs = np.unpackbits(
        np.ascontiguousarray(planes[0], dtype=np.uint8),
        count=num_elements, bitorder="little",
    ).astype(np.uint8)
    mags = planes_to_words(planes[1:], num_elements, num_bitplanes)
    return signs, mags
