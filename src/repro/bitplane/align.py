"""Exponent alignment and fixed-point conversion (Algorithm 1, step 1).

All elements are aligned to the *global* maximum exponent so bitplane
boundaries are consistent across the batch: value ``x`` becomes the
unsigned integer ``floor(|x| · 2^(B - e))`` where ``2^(e-1) ≤ max|x| < 2^e``
and ``B`` is the bitplane count, plus a separate sign bit. Dropping the
trailing ``B - k`` planes then bounds the pointwise error by
``2^(e - k)`` (and never worse than ``max|x|`` itself).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_dtype_floating

#: Maximum supported magnitude bitplanes (uint64 minus safety margin for
#: exact float64 arithmetic during conversion).
MAX_BITPLANES = 60


def scale_pow2(values: np.ndarray, shift_exp: int) -> np.ndarray:
    """Multiply float64 *values* by ``2^shift_exp`` exactly, in place.

    Scalar multiply when the scale factor is a normal double (exact,
    and much faster than ldexp); element-wise ``np.ldexp`` handles the
    extreme exponents where the scalar alone would over/underflow
    (e.g. subnormal-magnitude data). The caller must own *values*.
    """
    if -1022 <= shift_exp <= 1023:
        values *= math.ldexp(1.0, shift_exp)
        return values
    return np.ldexp(values, shift_exp)


def compute_exponent(max_abs: float) -> int:
    """Smallest integer ``e`` with ``max_abs < 2^e`` (0 for all-zero data)."""
    if max_abs < 0 or not math.isfinite(max_abs):
        raise ValueError(f"max_abs must be finite and >= 0, got {max_abs}")
    if max_abs == 0.0:
        return 0
    _, e = math.frexp(max_abs)  # max_abs = m * 2^e, 0.5 <= m < 1
    return e


@dataclass
class AlignedFixedPoint:
    """Sign/magnitude fixed-point representation of a float array."""

    signs: np.ndarray  # uint8, 1 where negative
    magnitudes: np.ndarray  # uint64 in [0, 2^B)
    exponent: int
    num_bitplanes: int
    max_abs: float
    dtype: np.dtype  # original floating dtype

    @property
    def num_elements(self) -> int:
        return int(self.magnitudes.size)


def align_to_fixed_point(
    data: np.ndarray, num_bitplanes: int
) -> AlignedFixedPoint:
    """Convert floats to exponent-aligned sign/magnitude fixed point."""
    check_dtype_floating(data)
    if not 1 <= num_bitplanes <= MAX_BITPLANES:
        raise ValueError(
            f"num_bitplanes must be in [1, {MAX_BITPLANES}], "
            f"got {num_bitplanes}"
        )
    flat = np.ascontiguousarray(data).reshape(-1)
    # One fused pass: |x| widened to float64 (the ufunc casts on write).
    abs_vals = np.abs(flat, dtype=np.float64)
    max_abs = float(abs_vals.max()) if flat.size else 0.0
    # NaN/Inf anywhere propagates into the max, so the finiteness check
    # rides on the reduction instead of a separate full-array pass.
    if not math.isfinite(max_abs):
        raise ValueError("bitplane encoding requires finite input data")
    exponent = compute_exponent(max_abs)
    scaled = scale_pow2(abs_vals, num_bitplanes - exponent)
    # uint64 conversion truncates toward zero == floor for nonnegatives.
    mags = scaled.astype(np.uint64)
    # Guard against float round-up at the top of the range.
    limit = np.uint64((1 << num_bitplanes) - 1)
    np.minimum(mags, limit, out=mags)
    signs = np.signbit(flat).astype(np.uint8)
    return AlignedFixedPoint(
        signs=signs,
        magnitudes=mags,
        exponent=exponent,
        num_bitplanes=num_bitplanes,
        max_abs=max_abs,
        dtype=data.dtype,
    )


def from_fixed_point(
    aligned: AlignedFixedPoint, kept_planes: int | None = None
) -> np.ndarray:
    """Reconstruct floats from (possibly truncated) fixed-point values.

    ``kept_planes`` counts magnitude bitplanes from the most significant;
    ``None`` keeps all. Truncated nonzero values are centered by half the
    dropped range, halving the expected error while preserving the
    ``2^(e-k)`` worst-case bound.
    """
    B = aligned.num_bitplanes
    k = B if kept_planes is None else int(kept_planes)
    if not 0 <= k <= B:
        raise ValueError(f"kept_planes must be in [0, {B}], got {kept_planes}")
    mags = aligned.magnitudes
    if k < B:
        drop = B - k
        mask = np.uint64(~np.uint64((1 << drop) - 1))
        truncated = mags & mask
        # Centering adds 2^(drop-1) to every nonzero value. A nonzero
        # truncation is >= 2^drop, so min(truncated, half) selects
        # exactly {0, half}, and the center bit lies below the kept
        # bits, making OR equal to ADD — two passes instead of the
        # compare/select/add of the previous np.where formulation,
        # bit-identical output.
        center = np.minimum(truncated, np.uint64(1 << (drop - 1)))
        truncated |= center
        mags = truncated
    values = scale_pow2(mags.astype(np.float64), aligned.exponent - B)
    # Values are nonnegative here, so ORing the IEEE sign bit in place
    # negates exactly — far cheaper than a boolean-masked multiply. For
    # narrower output dtypes, cast first and flip the narrow sign bit
    # (positive-value rounding is sign-symmetric), halving the traffic.
    if aligned.dtype == np.dtype(np.float32):
        out = values.astype(np.float32)
        out.view(np.uint32)[:] |= (
            aligned.signs.astype(np.uint32) << np.uint32(31)
        )
        return out
    values.view(np.uint64)[:] |= (
        aligned.signs.astype(np.uint64) << np.uint64(63)
    )
    return values.astype(aligned.dtype, copy=False)


def plane_error_bound(
    exponent: int, num_bitplanes: int, kept_planes: int, max_abs: float
) -> float:
    """Worst-case |x - x̂| after keeping *kept_planes* magnitude planes.

    ``2^(e - k)`` for partial retrieval, ``2^(e - B)`` (one quantization
    ulp) when everything is kept, and never worse than ``max_abs`` (the
    error of reconstructing zero).
    """
    if kept_planes < 0:
        raise ValueError("kept_planes must be >= 0")
    k = min(kept_planes, num_bitplanes)
    bound = math.ldexp(1.0, exponent - k)
    if k == num_bitplanes:
        bound = math.ldexp(1.0, exponent - num_bitplanes)
    return min(bound, max_abs) if max_abs > 0 else 0.0
