"""Bitplane encoding — the core kernel HP-MDR optimizes (paper Section 4).

Given a (decomposed) float array, the encoder aligns all values to the
global maximum exponent, converts them to fixed point, and emits one
bitplane per binary digit from most to least significant (Algorithm 1).
Retrieving only the leading *k* bitplanes reconstructs the data with error
at most ``2^(e_max - k)`` — the mechanism behind progressive precision.

Three parallelization designs from the paper are implemented, faithful to
their memory-access patterns and output layouts:

* :mod:`~repro.bitplane.locality_block` — each "thread" encodes a block of
  ``B`` *contiguous* elements (ZFP-inspired; Section 4.1). Natural bit
  order; best compressibility; uncoalesced loads on a real GPU.
* :mod:`~repro.bitplane.register_shuffle` — one element per thread, bits
  exchanged across the warp (Section 4.2), with the four instruction
  variants (``ballot``, ``shift``, ``match-any``, ``reduce-add``) emulated
  lane-by-lane. Natural bit order; heavy inter-thread communication.
* :mod:`~repro.bitplane.register_block` — each thread encodes ``B``
  *interleaved* elements so loads coalesce and no communication is needed
  (Section 4.3; the design HP-MDR adopts). Bit order is warp-transposed
  within each ``warp_size × B`` tile, which slightly degrades
  compressibility — exactly the trade-off the paper reports.

All designs produce bit-identical *decoded values* (the portability
guarantee); only the register-block stream layout differs, and its header
records that fact so any design can decode any stream.
"""

from repro.bitplane.align import (
    AlignedFixedPoint,
    align_to_fixed_point,
    compute_exponent,
    from_fixed_point,
    plane_error_bound,
)
from repro.bitplane.encoding import (
    DESIGNS,
    SHUFFLE_VARIANTS,
    BitplaneStream,
    PartialDecodeState,
    apply_planes,
    begin_decode_state,
    decode,
    decode_bitplanes,
    decode_bitplanes_incremental,
    encode,
    encode_bitplanes,
    finalize_decode,
)

__all__ = [
    "AlignedFixedPoint",
    "align_to_fixed_point",
    "compute_exponent",
    "from_fixed_point",
    "plane_error_bound",
    "BitplaneStream",
    "PartialDecodeState",
    "DESIGNS",
    "SHUFFLE_VARIANTS",
    "encode",
    "decode",
    "encode_bitplanes",
    "decode_bitplanes",
    "decode_bitplanes_incremental",
    "begin_decode_state",
    "apply_planes",
    "finalize_decode",
]
