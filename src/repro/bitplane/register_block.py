"""Register-block bitplane encoding (paper Section 4.3).

Each GPU thread encodes ``B`` elements cached in registers — no
inter-thread communication — while loads stay fully coalesced because
lane ``t`` of a warp reads elements ``t, t + W, t + 2W, …`` (neighboring
lanes touch consecutive addresses). The price is that within every
``W × B`` tile the stream holds bits in warp-transposed order, which
slightly reduces bitplane compressibility (neighbor bits in the stream
come from elements ``B`` apart). This module provides the exact tile
permutation so that compressibility effect is real in our streams, plus
its inverse for decoding.

Permutations are deterministic in ``(num_elements, num_bitplanes,
warp_size)``, so both directions are memoized on that key and returned
as *read-only* arrays: every encode/decode of a same-shaped level reuses
the cached index vector instead of rebuilding the ``arange`` + tile
index matrix (fancy-indexing *with* a read-only index array is fine).
The cache is LRU-evicted on a total-bytes budget, not an entry count —
index vectors scale with the data, so an entry cap alone could pin
gigabytes in a long-lived process.
"""

from __future__ import annotations

from collections import OrderedDict, namedtuple
from functools import lru_cache
from threading import Lock

import numpy as np

#: Total bytes of memoized permutation arrays (both directions share it).
PERM_CACHE_BYTE_BUDGET = 256 * 1024 * 1024

CacheInfo = namedtuple("CacheInfo", "hits misses currsize currbytes")


class _ByteBudgetCache:
    """LRU keyed cache evicting by total array bytes, thread-safe."""

    def __init__(self, budget: int) -> None:
        self.budget = budget
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._lock = Lock()

    def get_or_build(self, key: tuple, build) -> np.ndarray:
        with self._lock:
            arr = self._entries.get(key)
            if arr is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return arr
            self._misses += 1
        arr = build()
        with self._lock:
            if key not in self._entries and arr.nbytes <= self.budget:
                self._entries[key] = arr
                self._bytes += arr.nbytes
                while self._bytes > self.budget:
                    _, old = self._entries.popitem(last=False)
                    self._bytes -= old.nbytes
        return arr

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                self._hits, self._misses, len(self._entries), self._bytes
            )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._hits = 0
            self._misses = 0


# The documented budget bounds *total* cached bytes, so the two
# directions get half each.
_forward_cache = _ByteBudgetCache(PERM_CACHE_BYTE_BUDGET // 2)
_inverse_cache = _ByteBudgetCache(PERM_CACHE_BYTE_BUDGET // 2)


@lru_cache(maxsize=32)
def _tile_perm(warp_size: int, num_bitplanes: int) -> np.ndarray:
    """Permutation within one tile: stream position -> element offset.

    Stream position ``t*B + i`` (lane ``t``, register slot ``i``) holds
    the element at offset ``i*W + t`` (the coalesced load pattern).
    """
    if warp_size < 1 or num_bitplanes < 1:
        raise ValueError("warp_size and num_bitplanes must be >= 1")
    return np.arange(num_bitplanes * warp_size).reshape(
        num_bitplanes, warp_size
    ).T.ravel()


def _build_tile_permutation(
    num_elements: int, num_bitplanes: int, warp_size: int
) -> np.ndarray:
    tile = warp_size * num_bitplanes
    n_full = (num_elements // tile) * tile
    perm = np.arange(num_elements)
    if n_full:
        base = _tile_perm(warp_size, num_bitplanes)
        tiles = np.arange(0, n_full, tile)[:, None] + base[None, :]
        perm[:n_full] = tiles.ravel()
    perm.setflags(write=False)
    return perm


def _build_inverse_tile_permutation(
    num_elements: int, num_bitplanes: int, warp_size: int
) -> np.ndarray:
    perm = tile_permutation(num_elements, num_bitplanes, warp_size)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(num_elements)
    inv.setflags(write=False)
    return inv


def tile_permutation(
    num_elements: int, num_bitplanes: int, warp_size: int = 32
) -> np.ndarray:
    """Element permutation applied before plane extraction.

    Full ``warp_size * num_bitplanes`` tiles are warp-transposed; the
    ragged tail (which a GPU would pad) stays in natural order. Cached
    per ``(num_elements, num_bitplanes, warp_size)``; the returned array
    is read-only — copy before mutating.
    """
    if warp_size < 1 or num_bitplanes < 1:
        raise ValueError("warp_size and num_bitplanes must be >= 1")
    key = (int(num_elements), int(num_bitplanes), int(warp_size))
    return _forward_cache.get_or_build(
        key, lambda: _build_tile_permutation(*key)
    )


def inverse_tile_permutation(
    num_elements: int, num_bitplanes: int, warp_size: int = 32
) -> np.ndarray:
    """Inverse of :func:`tile_permutation` (stream order -> natural).

    Cached and read-only, like :func:`tile_permutation`.
    """
    if warp_size < 1 or num_bitplanes < 1:
        raise ValueError("warp_size and num_bitplanes must be >= 1")
    key = (int(num_elements), int(num_bitplanes), int(warp_size))
    return _inverse_cache.get_or_build(
        key, lambda: _build_inverse_tile_permutation(*key)
    )


def permutation_cache_info() -> dict[str, CacheInfo]:
    """Hit/miss/size counters of both permutation caches."""
    return {
        "forward": _forward_cache.info(),
        "inverse": _inverse_cache.info(),
    }


def clear_permutation_cache() -> None:
    """Drop all memoized permutations (test isolation hook)."""
    _forward_cache.clear()
    _inverse_cache.clear()
