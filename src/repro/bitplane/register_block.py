"""Register-block bitplane encoding (paper Section 4.3).

Each GPU thread encodes ``B`` elements cached in registers — no
inter-thread communication — while loads stay fully coalesced because
lane ``t`` of a warp reads elements ``t, t + W, t + 2W, …`` (neighboring
lanes touch consecutive addresses). The price is that within every
``W × B`` tile the stream holds bits in warp-transposed order, which
slightly reduces bitplane compressibility (neighbor bits in the stream
come from elements ``B`` apart). This module provides the exact tile
permutation so that compressibility effect is real in our streams, plus
its inverse for decoding.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


@lru_cache(maxsize=32)
def _tile_perm(warp_size: int, num_bitplanes: int) -> np.ndarray:
    """Permutation within one tile: stream position -> element offset.

    Stream position ``t*B + i`` (lane ``t``, register slot ``i``) holds
    the element at offset ``i*W + t`` (the coalesced load pattern).
    """
    if warp_size < 1 or num_bitplanes < 1:
        raise ValueError("warp_size and num_bitplanes must be >= 1")
    return np.arange(num_bitplanes * warp_size).reshape(
        num_bitplanes, warp_size
    ).T.ravel()


def tile_permutation(
    num_elements: int, num_bitplanes: int, warp_size: int = 32
) -> np.ndarray:
    """Element permutation applied before plane extraction.

    Full ``warp_size * num_bitplanes`` tiles are warp-transposed; the
    ragged tail (which a GPU would pad) stays in natural order.
    """
    if warp_size < 1 or num_bitplanes < 1:
        raise ValueError("warp_size and num_bitplanes must be >= 1")
    tile = warp_size * num_bitplanes
    n_full = (num_elements // tile) * tile
    perm = np.arange(num_elements)
    if n_full:
        base = _tile_perm(warp_size, num_bitplanes)
        tiles = np.arange(0, n_full, tile)[:, None] + base[None, :]
        perm[:n_full] = tiles.ravel()
    return perm


def inverse_tile_permutation(
    num_elements: int, num_bitplanes: int, warp_size: int = 32
) -> np.ndarray:
    """Inverse of :func:`tile_permutation` (stream order -> natural)."""
    perm = tile_permutation(num_elements, num_bitplanes, warp_size)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(num_elements)
    return inv
