"""Lossless encoding of bitplanes (paper Section 5).

Three base codecs with complementary strengths:

* :mod:`~repro.lossless.huffman` — canonical Huffman over bytes, built
  from scratch with the *chunked* stream structure GPU Huffman coders use
  (fixed-size symbol blocks with per-block offsets, decoded in lockstep
  across blocks). Best ratios on high-order, zero-dominated bitplanes.
* :mod:`~repro.lossless.rle` — byte run-length coding; cheap and strong
  on the long zero runs of low-order merged bitplanes.
* :mod:`~repro.lossless.direct` — store-as-is fallback for small or
  incompressible groups.

:mod:`~repro.lossless.hybrid` implements Algorithm 2: merge every
``group_size`` consecutive bitplanes, estimate both codecs' compression
ratios with lightweight predictors, and pick Huffman / RLE / Direct Copy
per group using size and ratio thresholds.
"""

from repro.lossless.direct import direct_decode, direct_encode
from repro.lossless.huffman import (
    HuffmanCodec,
    estimate_huffman_ratio,
    huffman_decode,
    huffman_encode,
)
from repro.lossless.hybrid import (
    CompressedGroup,
    HybridConfig,
    compress_planes,
    decompress_groups,
    estimate_group_ratios,
)
from repro.lossless.rle import (
    estimate_rle_ratio,
    rle_decode,
    rle_encode,
    run_boundaries,
)

__all__ = [
    "HuffmanCodec",
    "huffman_encode",
    "huffman_decode",
    "estimate_huffman_ratio",
    "rle_encode",
    "rle_decode",
    "estimate_rle_ratio",
    "run_boundaries",
    "direct_encode",
    "direct_decode",
    "CompressedGroup",
    "HybridConfig",
    "compress_planes",
    "decompress_groups",
    "estimate_group_ratios",
]
