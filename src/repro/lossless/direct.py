"""Direct Copy — the lightweight fallback codec (paper Section 5.1).

Applied when a bitplane group is too small or too incompressible for
entropy coding to pay off: the payload is stored verbatim behind a tiny
header, keeping retrieval at memory-bandwidth speed.
"""

from __future__ import annotations

import struct

import numpy as np

_MAGIC = b"DCP1"
_HEADER_FMT = "<4sQ"


def direct_encode(data: np.ndarray | bytes) -> bytes:
    """Store bytes verbatim."""
    data = np.frombuffer(bytes(data), dtype=np.uint8) if isinstance(
        data, (bytes, bytearray)
    ) else np.ascontiguousarray(data, dtype=np.uint8)
    return struct.pack(_HEADER_FMT, _MAGIC, data.size) + data.tobytes()


def direct_decode(blob: bytes) -> np.ndarray:
    """Recover bytes stored by :func:`direct_encode`.

    Returns a zero-copy (read-only) view of *blob*'s payload — Direct
    Copy retrieval stays at memory-bandwidth speed with no allocation.
    """
    head = struct.calcsize(_HEADER_FMT)
    magic, n = struct.unpack_from(_HEADER_FMT, blob, 0)
    if magic != _MAGIC:
        raise ValueError("not a direct-copy stream")
    out = np.frombuffer(blob, dtype=np.uint8, count=n, offset=head)
    if out.size != n:
        raise ValueError("corrupt direct-copy stream")
    return out
