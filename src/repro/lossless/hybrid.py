"""Hybrid lossless compression strategy (paper Algorithm 2).

Every ``group_size`` consecutive bitplanes are merged into one unit. If
the unit is large enough to be worth compressing (``S > T_s``), both the
Huffman and RLE compression ratios are *estimated* with the lightweight
predictors (no trial encoding); Huffman is used if its estimate clears
the ratio threshold ``T_cr``, else RLE if its estimate does, else Direct
Copy. Small units go straight to Direct Copy.

Grouping trades retrieval granularity for codec efficiency: progressive
readers fetch whole groups, so ``group_size`` is the unit the retrieval
planner works in.
"""

from __future__ import annotations

import struct
from concurrent.futures import Executor
from dataclasses import dataclass

import numpy as np

from repro.lossless.direct import direct_decode, direct_encode
from repro.lossless.huffman import (
    estimate_huffman_ratio,
    huffman_decode,
    huffman_encode,
)
from repro.lossless.rle import (
    estimate_rle_ratio,
    rle_decode,
    rle_encode,
    run_boundaries,
)

METHODS = ("huffman", "rle", "direct")

_GROUP_MAGIC = b"HGRP"
_GROUP_FMT = "<4sB H H Q"


@dataclass(frozen=True)
class HybridConfig:
    """Tuning knobs of Algorithm 2.

    ``cr_threshold`` is the paper's ``rc`` parameter (Fig. 8 sweeps 1.0,
    2.0, 4.0): higher values demand more benefit before spending entropy
    coding effort, trading retrieval size for codec throughput.
    """

    group_size: int = 4
    size_threshold: int = 1024
    cr_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise ValueError("group_size must be >= 1")
        if self.size_threshold < 0:
            raise ValueError("size_threshold must be >= 0")
        if self.cr_threshold <= 0:
            raise ValueError("cr_threshold must be > 0")


@dataclass
class CompressedGroup:
    """One merged-and-compressed bitplane group (a retrieval unit).

    ``payload`` may be any bytes-like object; deserializing with
    :meth:`from_bytes` keeps it as a zero-copy view of the source
    buffer.
    """

    method: str
    payload: bytes | memoryview
    plane_sizes: tuple[int, ...]
    first_plane: int

    @property
    def original_size(self) -> int:
        return int(sum(self.plane_sizes))

    @property
    def compressed_size(self) -> int:
        return len(self.payload)

    @property
    def num_planes(self) -> int:
        return len(self.plane_sizes)

    def to_bytes(self) -> bytes:
        head = struct.pack(
            _GROUP_FMT,
            _GROUP_MAGIC,
            METHODS.index(self.method),
            self.first_plane,
            len(self.plane_sizes),
            len(self.payload),
        )
        sizes = struct.pack(
            f"<{len(self.plane_sizes)}Q", *self.plane_sizes
        )
        return b"".join((head, sizes, self.payload))

    @classmethod
    def from_bytes(cls, buf: bytes | memoryview) -> "CompressedGroup":
        """Zero-copy deserialization: ``payload`` is a view of *buf*."""
        head_size = struct.calcsize(_GROUP_FMT)
        magic, method_id, first, m, payload_len = struct.unpack_from(
            _GROUP_FMT, buf, 0
        )
        if magic != _GROUP_MAGIC:
            raise ValueError("not a hybrid group")
        if method_id >= len(METHODS):
            raise ValueError(f"unknown method id {method_id}")
        sizes = struct.unpack_from(f"<{m}Q", buf, head_size)
        off = head_size + 8 * m
        payload = memoryview(buf)[off : off + payload_len]
        if len(payload) != payload_len:
            raise ValueError("truncated hybrid group")
        return cls(
            method=METHODS[method_id],
            payload=payload,
            plane_sizes=tuple(int(s) for s in sizes),
            first_plane=first,
        )


def estimate_group_ratios(
    merged: np.ndarray, freqs: np.ndarray | None = None
) -> tuple[float, float]:
    """(Huffman, RLE) compression-ratio estimates for a merged group.

    Computes *both* estimates eagerly — the diagnostic/ablation helper.
    The production selector (:func:`_select_and_encode`) is lazier: it
    skips the RLE run scan entirely when the Huffman estimate already
    clears the threshold. Pass ``freqs = np.bincount(merged,
    minlength=256)`` to reuse a histogram computed elsewhere.
    """
    return (
        estimate_huffman_ratio(merged, freqs=freqs),
        estimate_rle_ratio(merged),
    )


def _select_method(merged: np.ndarray, config: HybridConfig) -> str:
    """The decision logic of Algorithm 2 (selection only).

    Delegates to :func:`_select_and_encode` so there is exactly one copy
    of the decision order; callers that only need the method name pay
    for the winning encode, so the compression loop uses
    :func:`_select_and_encode` directly and keeps the payload.
    """
    return _select_and_encode(merged, config)[0]


def _select_and_encode(
    merged: np.ndarray, config: HybridConfig
) -> tuple[str, bytes]:
    """Algorithm 2 decision + encode with every scan shared.

    The byte histogram feeds both the Huffman CR estimate and (when
    Huffman wins) the encoder's code construction; the RLE run-boundary
    scan — only performed when the Huffman estimate fails — feeds both
    the RLE estimate and the RLE encoder. Each pass over the merged
    buffer happens exactly once.
    """
    if merged.size <= config.size_threshold:
        return "direct", direct_encode(merged)
    freqs = np.bincount(merged, minlength=256)
    if estimate_huffman_ratio(merged, freqs=freqs) > config.cr_threshold:
        return "huffman", huffman_encode(merged, freqs=freqs)
    boundaries = run_boundaries(merged)
    if estimate_rle_ratio(merged, boundaries=boundaries) > config.cr_threshold:
        return "rle", rle_encode(merged, boundaries=boundaries)
    return "direct", direct_encode(merged)


_ENCODERS = {
    "huffman": huffman_encode,
    "rle": rle_encode,
    "direct": direct_encode,
}
_DECODERS = {
    "huffman": huffman_decode,
    "rle": rle_decode,
    "direct": direct_decode,
}


def compress_planes(
    planes: list[np.ndarray],
    config: HybridConfig | None = None,
    pool: Executor | None = None,
) -> list[CompressedGroup]:
    """Compress bitplanes group-by-group per Algorithm 2.

    ``planes`` are packed uint8 payloads (most significant first, as
    produced by :mod:`repro.bitplane`). Returns one
    :class:`CompressedGroup` per ``config.group_size`` planes; the final
    group may be smaller.

    ``pool``, when given, compresses independent groups concurrently
    (the entropy-coding kernels release the GIL). The caller owns the
    executor's lifecycle and must not call this from a task running *on*
    the same pool — a saturated ``ThreadPoolExecutor`` does not steal
    work, so nested submission can deadlock.
    """
    config = config or HybridConfig()
    starts = range(0, len(planes), config.group_size)

    def merge(start: int) -> np.ndarray:
        members = planes[start : start + config.group_size]
        return (
            np.concatenate([np.ascontiguousarray(p, dtype=np.uint8).reshape(-1)
                            for p in members])
            if members else np.empty(0, dtype=np.uint8)
        )

    def build(start: int, merged: np.ndarray) -> CompressedGroup:
        method, payload = _select_and_encode(merged, config)
        return CompressedGroup(
            method=method,
            payload=payload,
            plane_sizes=tuple(
                int(p.size)
                for p in planes[start : start + config.group_size]
            ),
            first_plane=start,
        )

    def task(start: int) -> CompressedGroup:
        # Each task merges its own group, so only in-flight groups hold
        # a merged buffer — peak memory stays O(concurrent groups), not
        # O(all planes), in both the serial and pooled paths.
        return build(start, merge(start))

    if pool is not None and len(starts) > 1:
        return list(pool.map(task, starts))
    return [task(start) for start in starts]


def decompress_groups(
    groups: list[CompressedGroup], num_groups: int | None = None
) -> list[np.ndarray]:
    """Recover the leading planes from the first *num_groups* groups.

    Progressive retrieval decompresses only the groups it fetched;
    ``None`` decompresses everything.
    """
    selected = groups if num_groups is None else groups[:num_groups]
    planes: list[np.ndarray] = []
    for group in selected:
        merged = _DECODERS[group.method](group.payload)
        if merged.size != group.original_size:
            raise ValueError(
                f"group {group.first_plane}: decoded {merged.size} bytes, "
                f"expected {group.original_size}"
            )
        offset = 0
        # Zero-copy split: each plane is a view into the decoded unit.
        for size in group.plane_sizes:
            planes.append(merged[offset : offset + size])
            offset += size
    return planes
