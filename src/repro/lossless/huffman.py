"""Canonical Huffman coding with a GPU-style chunked stream layout.

Built from scratch (tree construction, length limiting, canonical code
assignment) over the byte alphabet. The stream is divided into fixed-size
*symbol chunks*, each starting at a byte boundary with its offset in the
header — exactly how GPU Huffman decoders (e.g. Tian et al., IPDPS'21)
expose block-level parallelism. Decoding walks all chunks in lockstep
with vectorized gathers, the NumPy analogue of one thread block per
chunk: each lockstep step performs a *single* unaligned 64-bit window
gather per chunk (a byte-stride ``as_strided`` view of the zero-padded
payload, byteswapped to MSB-first) instead of eight byte gathers, and
every per-step temporary is allocated once outside the loop and reused
via ``out=`` kernels. The original eight-gather formulation is retained
as :meth:`HuffmanCodec.decode_reference` for equivalence tests and the
``bench_hotpaths`` baseline.

Code lengths are limited to :data:`MAX_CODE_LENGTH` so the decoder can
use a flat prefix LUT of ``2^maxlen`` entries.
"""

from __future__ import annotations

import heapq
import struct

import numpy as np

from repro.lossless.bitio import (
    NEEDS_BYTESWAP,
    pack_sorted_canonical_bits,
    pack_varlen_bits_reference,
    sliding_windows_u64,
)

MAX_CODE_LENGTH = 16
DEFAULT_CHUNK_SYMBOLS = 1024

_MAGIC = b"HUF1"
_HEADER_FMT = "<4sQIB"


def build_code_lengths(
    freqs: np.ndarray, max_length: int = MAX_CODE_LENGTH
) -> np.ndarray:
    """Huffman code lengths per symbol (0 for absent symbols).

    Standard heap construction followed by Kraft-sum repair to honor
    *max_length* (increment the deepest sub-limit codes until the Kraft
    inequality holds, then greedily shorten where slack remains).
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    if freqs.ndim != 1 or freqs.size > 256:
        raise ValueError("freqs must be 1-D with at most 256 symbols")
    if freqs.size and int(freqs.min()) < 0:
        raise ValueError("frequencies must be nonnegative")
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    present = np.flatnonzero(freqs)
    if present.size == 0:
        return lengths
    if present.size == 1:
        lengths[present[0]] = 1
        return lengths

    # Heap of (freq, tiebreak, node-id); parents recorded for depth walk.
    heap = [(int(freqs[s]), int(s), int(i)) for i, s in enumerate(present)]
    heapq.heapify(heap)
    parent: list[int] = [-1] * present.size
    counter = present.size
    while len(heap) > 1:
        f1, _, n1 = heapq.heappop(heap)
        f2, _, n2 = heapq.heappop(heap)
        parent.append(-1)
        parent[n1] = counter
        parent[n2] = counter
        heapq.heappush(heap, (f1 + f2, 256 + counter, counter))
        counter += 1
    depths = np.zeros(present.size, dtype=np.int64)
    for leaf in range(present.size):
        node, d = leaf, 0
        while parent[node] != -1:
            node = parent[node]
            d += 1
        depths[leaf] = d

    depths = _limit_lengths(depths, np.asarray(freqs[present]), max_length)
    lengths[present] = depths.astype(np.uint8)
    return lengths


def _limit_lengths(
    depths: np.ndarray, freqs: np.ndarray, max_length: int
) -> np.ndarray:
    """Clamp code lengths to *max_length* while keeping Kraft ≤ 1."""
    if max_length < 1:
        raise ValueError("max_length must be >= 1")
    depths = np.minimum(depths, max_length).astype(np.int64)
    if depths.size > (1 << max_length):
        raise ValueError("alphabet too large for max_length")
    unit = 1 << max_length  # Kraft capacity in 2^-max_length units
    used = int(np.sum(1 << (max_length - depths)))
    if used > unit:
        # Lengthen the deepest sub-limit code each round (costs least
        # entropy), lowest symbol index first on ties. One precomputed
        # depth-bucketed order replaces the O(n) flatnonzero/argmax scan
        # the seed ran on every iteration: `buckets[d]` is a min-heap of
        # sub-limit symbol indices at depth d, and a lengthened symbol
        # just migrates to the next bucket.
        buckets: list[list[int]] = [[] for _ in range(max_length)]
        for idx in np.argsort(depths, kind="stable"):
            d = int(depths[idx])
            if d < max_length:
                buckets[d].append(int(idx))
        for b in buckets:
            heapq.heapify(b)
        deepest = max_length - 1
        while used > unit:
            while not buckets[deepest]:
                deepest -= 1
            pick = heapq.heappop(buckets[deepest])
            used -= 1 << (max_length - depths[pick] - 1)
            depths[pick] += 1
            if depths[pick] < max_length:
                heapq.heappush(buckets[int(depths[pick])], pick)
                deepest = int(depths[pick])
    # Tighten: shorten the most frequent codes while slack allows.
    for idx in np.argsort(-freqs):
        while depths[idx] > 1:
            gain = 1 << (max_length - depths[idx])
            if used + gain > unit:
                break
            used += gain
            depths[idx] -= 1
    return depths


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Canonical code values per symbol from code lengths."""
    lengths = np.asarray(lengths, dtype=np.int64)
    max_len = int(lengths.max()) if lengths.size else 0
    codes = np.zeros(lengths.size, dtype=np.uint64)
    if max_len == 0:
        return codes
    bl_count = np.bincount(lengths, minlength=max_len + 1)
    bl_count[0] = 0
    next_code = np.zeros(max_len + 1, dtype=np.int64)
    for l in range(1, max_len + 1):
        next_code[l] = (next_code[l - 1] + bl_count[l - 1]) << 1
    for sym in range(lengths.size):  # symbol order = canonical tiebreak
        l = int(lengths[sym])
        if l:
            codes[sym] = next_code[l]
            next_code[l] += 1
    return codes


def _check_offsets_u32(offsets: np.ndarray) -> None:
    """Reject payload offsets the uint32 header field cannot represent.

    The stream header stores per-chunk byte offsets as uint32; streams
    whose payload exceeds ``2**32 - 1`` bytes must fail loudly instead
    of silently wrapping into a decodable-but-wrong header.
    """
    if offsets.size and int(offsets[-1]) > 0xFFFFFFFF:
        raise ValueError(
            f"payload of {int(offsets[-1])} bytes exceeds the uint32 "
            "chunk-offset range; split the input before encoding"
        )


class HuffmanCodec:
    """Byte-alphabet canonical Huffman codec with chunked streams."""

    def __init__(self, chunk_symbols: int = DEFAULT_CHUNK_SYMBOLS) -> None:
        if chunk_symbols < 1:
            raise ValueError("chunk_symbols must be >= 1")
        self.chunk_symbols = int(chunk_symbols)

    # -- encode ---------------------------------------------------------
    def encode(
        self, data: np.ndarray | bytes, freqs: np.ndarray | None = None
    ) -> bytes:
        """Word-packed chunked encode (byte-identical to the seed encoder).

        Each symbol's canonical code is shifted into its destination
        64-bit stream lane and the per-lane contributions are OR-merged
        in one pass (:func:`repro.lossless.bitio.pack_sorted_canonical_bits`)
        — the NumPy analogue of the chunk-parallel word-merge GPU Huffman
        encoders use — instead of scattering individual bits.

        ``freqs``, when given, must be ``np.bincount(data, minlength=256)``
        (callers that already histogrammed the buffer, e.g. the hybrid
        selector, pass it through to skip the second scan). A histogram
        whose total disagrees with ``data.size`` is rejected; a wrong
        distribution with the right total would silently produce a
        corrupt stream, so only trusted callers should pass it.
        """
        return self._encode_impl(data, freqs, fast=True)

    def encode_reference(
        self, data: np.ndarray | bytes, freqs: np.ndarray | None = None
    ) -> bytes:
        """Seed encoder: per-bit scatter packing.

        Retained for equivalence tests and the ``bench_hotpaths``
        baseline; production callers use :meth:`encode`.
        """
        return self._encode_impl(data, freqs, fast=False)

    def _encode_impl(
        self, data: np.ndarray | bytes, freqs: np.ndarray | None, fast: bool
    ) -> bytes:
        data = np.frombuffer(bytes(data), dtype=np.uint8) if isinstance(
            data, (bytes, bytearray)
        ) else np.ascontiguousarray(data, dtype=np.uint8)
        n = data.size
        if freqs is None:
            freqs = np.bincount(data, minlength=256)
        else:
            freqs = np.asarray(freqs, dtype=np.int64)
            if freqs.shape != (256,):
                raise ValueError("freqs must be a 256-entry histogram")
            if int(freqs.sum()) != n:
                raise ValueError(
                    "freqs does not histogram data: totals disagree"
                )
        lengths_table = build_code_lengths(freqs)
        codes_table = canonical_codes(lengths_table)
        header_head = struct.pack(
            _HEADER_FMT, _MAGIC, n, self.chunk_symbols,
            int(lengths_table.max()) if n else 0,
        )
        if n == 0:
            return header_head + lengths_table.tobytes() + struct.pack("<I", 0)

        # One fused gather per symbol — length in the high half, code in
        # the low half of a single int64 LUT entry (codes fit 16 bits) —
        # instead of separate length and code table gathers.
        fused_table = (lengths_table.astype(np.int64) << 32) | codes_table.astype(
            np.int64
        )
        sym_fused = fused_table[data]
        sym_lengths = sym_fused >> 32
        sym_codes = (sym_fused & 0xFFFFFFFF).view(np.uint64)
        chunk = self.chunk_symbols
        n_chunks = -(-n // chunk)
        starts = np.arange(n_chunks) * chunk
        chunk_bits = np.add.reduceat(sym_lengths, starts)
        chunk_bytes = (chunk_bits + 7) >> 3
        offsets = np.zeros(n_chunks + 1, dtype=np.int64)
        np.cumsum(chunk_bytes, out=offsets[1:])
        _check_offsets_u32(offsets)

        # Exclusive prefix of code lengths = in-stream bit cursor before
        # rebasing; computed with one cumsum into a preallocated buffer.
        prefix = np.empty(n, dtype=np.int64)
        prefix[0] = 0
        np.cumsum(sym_lengths[:-1], out=prefix[1:])
        counts = np.diff(np.append(starts, n))
        # Chunk payloads are byte-aligned: each symbol's stream position
        # is its in-chunk bit prefix rebased to the chunk's byte offset.
        positions = np.add(
            prefix, np.repeat(offsets[:-1] * 8 - prefix[starts], counts),
            out=prefix,
        )
        if fast:
            # Canonical codes are already masked to their lengths and
            # positions are nondecreasing, so the trusted packer applies;
            # sym_codes/positions are packing-only temporaries, so the
            # kernel may consume them in place.
            payload = pack_sorted_canonical_bits(
                sym_codes, sym_lengths, positions, int(offsets[-1] * 8),
                consume=True,
            )
        else:
            payload = pack_varlen_bits_reference(
                sym_codes, sym_lengths, positions, int(offsets[-1] * 8)
            )
        offsets32 = offsets.astype(np.uint32)
        return (
            header_head
            + lengths_table.tobytes()
            + struct.pack("<I", n_chunks)
            + offsets32.tobytes()
            + payload.tobytes()
        )

    # -- decode ---------------------------------------------------------
    def _parse_stream(self, blob: bytes):
        """Header + tables + payload view shared by both decode paths."""
        head_size = struct.calcsize(_HEADER_FMT)
        if len(blob) < head_size + 256 + 4:
            raise ValueError("truncated Huffman stream")
        magic, n, chunk, max_len = struct.unpack_from(_HEADER_FMT, blob, 0)
        if magic != _MAGIC:
            raise ValueError("not a Huffman stream")
        off = head_size
        lengths_table = np.frombuffer(blob, dtype=np.uint8,
                                      count=256, offset=off).copy()
        off += 256
        (n_chunks,) = struct.unpack_from("<I", blob, off)
        off += 4
        if n == 0:
            return n, chunk, max_len, lengths_table, 0, None, None
        offsets = np.frombuffer(blob, dtype=np.uint32,
                                count=n_chunks + 1, offset=off).astype(np.int64)
        off += 4 * (n_chunks + 1)
        payload = np.frombuffer(blob, dtype=np.uint8, offset=off)
        if n_chunks and int(offsets.max()) > payload.size:
            # A consistent header's chunk offsets all land inside the
            # payload; catching truncation here keeps the decode loops
            # free of per-step bounds clamping.
            raise ValueError("truncated Huffman stream")
        return n, chunk, max_len, lengths_table, n_chunks, offsets, payload

    def decode(self, blob: bytes) -> np.ndarray:
        """Lockstep chunked decode, one 64-bit window gather per round.

        Each round decodes several symbols in every chunk (the
        per-thread-block loop of a GPU decoder): a single fancy-index
        gather materializes one unaligned 64-bit window per chunk from a
        byte-stride view of the zero-padded payload (byteswapped once,
        up front, to MSB-first), and since a 64-bit window starting at
        the cursor's byte always covers ``1 + (57 - max_len)//max_len``
        worst-case codes, each gathered window is re-shifted in place to
        peel that many symbols before the next gather. All per-round
        temporaries are allocated once and reused through ``out=``
        kernels, and the symbol/length LUTs are fused into one uint16
        table so each symbol costs a single gather. Steps past a short
        final chunk read zero padding and are discarded. Byte-identical
        to :meth:`decode_reference`.
        """
        parsed = self._parse_stream(blob)
        n, chunk, max_len, lengths_table, n_chunks, offsets, payload = parsed
        if n == 0:
            return np.empty(0, dtype=np.uint8)

        codes_table = canonical_codes(lengths_table)
        lut_sym, lut_len = self._build_lut(lengths_table, codes_table, max_len)
        # Fused LUT: high byte = code length, low byte = symbol.
        lut16 = (lut_len.astype(np.uint16) << 8) | lut_sym.astype(np.uint16)

        steps = min(chunk, n)
        # Symbols safely decodable from one 64-bit window: symbol s needs
        # bits [r + sum(l_1..l_s), +max_len) with r <= 7, l_i <= max_len.
        per_gather = 1 + (64 - 7 - max_len) // max_len
        # Pad so unclamped cursors (which advance past ragged chunk tails
        # by <= max_len bits/step) always have a full window to read.
        # The windows stay a zero-copy byte-strided view (materializing
        # them would transiently cost ~8 bytes per payload byte); each
        # round byteswaps only its small gathered slice.
        extra = ((steps * max_len + 7) >> 3) + 8
        windows = sliding_windows_u64(payload, extra=extra)

        # Signed lane state: a lane's shift may legitimately go negative
        # after its final symbol of a round (int64 makes that harmless);
        # a symbol is extracted only while every lane's shift is still
        # provably >= 0 at use time.
        shift_base = np.int64(64 - max_len)
        mask = np.int64((1 << max_len) - 1)
        cursors = (offsets[:-1] * 8).astype(np.int64)
        out16 = np.empty((n_chunks, chunk), dtype=np.uint16)
        byte_idx = np.empty(n_chunks, dtype=np.int64)
        shift = np.empty(n_chunks, dtype=np.int64)
        val = np.empty(n_chunks, dtype=np.int64)
        comb = np.empty(n_chunks, dtype=np.uint16)
        lens = np.empty(n_chunks, dtype=np.uint16)
        step = 0
        while step < steps:
            np.right_shift(cursors, 3, out=byte_idx)
            # Fancy indexing, not take(out=): np.take's buffered path on
            # the byte-strided source is ~60x slower than this gather.
            # The int64 view makes the arithmetic shift below type-clean;
            # sign-extension only pollutes bits the mask discards.
            win = windows[byte_idx]
            if NEEDS_BYTESWAP:
                win.byteswap(inplace=True)  # MSB-first window values
            win = win.view(np.int64)
            np.bitwise_and(cursors, 7, out=shift)
            np.subtract(shift_base, shift, out=shift)
            peel = min(per_gather, steps - step)
            while peel > 0:
                for _ in range(peel):
                    np.right_shift(win, shift, out=val)
                    np.bitwise_and(val, mask, out=val)
                    np.take(lut16, val, out=comb)
                    out16[:, step] = comb
                    np.right_shift(comb, 8, out=lens)
                    np.subtract(shift, lens, out=shift, casting="unsafe")
                    np.add(cursors, lens, out=cursors, casting="unsafe")
                    step += 1
                if step >= steps:
                    break
                # Short codes rarely exhaust the window in `per_gather`
                # worst-case peels: keep peeling from the same gather
                # while the tightest lane still has a full-length code
                # (min//max_len more subtractions provably stay valid).
                peel = min(int(shift.min()) // max_len + 1, steps - step)
        return (out16 & np.uint16(0xFF)).astype(np.uint8).reshape(-1)[:n]

    def decode_reference(self, blob: bytes) -> np.ndarray:
        """Seed lockstep decoder: eight byte gathers per step.

        Retained for equivalence tests and the ``bench_hotpaths``
        baseline; production callers use :meth:`decode`.
        """
        parsed = self._parse_stream(blob)
        n, chunk, max_len, lengths_table, n_chunks, offsets, payload = parsed
        if n == 0:
            return np.empty(0, dtype=np.uint8)

        codes_table = canonical_codes(lengths_table)
        lut_sym, lut_len = self._build_lut(lengths_table, codes_table, max_len)

        cursors = offsets[:-1] * 8
        out = np.empty((n_chunks, chunk), dtype=np.uint8)
        padded = np.zeros(payload.size + 8, dtype=np.uint8)
        padded[: payload.size] = payload
        steps = min(chunk, n)
        shift_base = np.uint64(64 - max_len)
        mask = np.uint64((1 << max_len) - 1)
        for step in range(steps):
            byte_idx = np.minimum(cursors >> 3, payload.size)
            window = np.zeros(n_chunks, dtype=np.uint64)
            for k in range(8):
                window |= padded[byte_idx + k].astype(np.uint64) << np.uint64(
                    8 * (7 - k)
                )
            vals = (window >> (shift_base - (cursors & 7).astype(np.uint64))) \
                & mask
            out[:, step] = lut_sym[vals]
            cursors = cursors + lut_len[vals]
        return out.reshape(-1)[:n]

    @staticmethod
    def _build_lut(
        lengths_table: np.ndarray, codes_table: np.ndarray, max_len: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flat prefix LUT: any max_len-bit window -> (symbol, length)."""
        if max_len < 1 or max_len > MAX_CODE_LENGTH:
            raise ValueError(f"corrupt stream: max_len={max_len}")
        size = 1 << max_len
        lut_sym = np.zeros(size, dtype=np.uint8)
        lut_len = np.ones(size, dtype=np.int64)
        for sym in np.flatnonzero(lengths_table):
            l = int(lengths_table[sym])
            base = int(codes_table[sym]) << (max_len - l)
            lut_sym[base : base + (1 << (max_len - l))] = sym
            lut_len[base : base + (1 << (max_len - l))] = l
        return lut_sym, lut_len


_DEFAULT_CODEC = HuffmanCodec()


def huffman_encode(
    data: np.ndarray | bytes, freqs: np.ndarray | None = None
) -> bytes:
    """Encode bytes with the default chunked canonical Huffman codec.

    ``freqs``, when given, must be ``np.bincount(data, minlength=256)``;
    it lets callers that already histogrammed the buffer (the hybrid
    selector) skip the encoder's second scan.
    """
    return _DEFAULT_CODEC.encode(data, freqs=freqs)


def huffman_decode(blob: bytes) -> np.ndarray:
    """Decode a stream produced by :func:`huffman_encode`."""
    return _DEFAULT_CODEC.decode(blob)


def estimate_huffman_ratio(
    data: np.ndarray, freqs: np.ndarray | None = None
) -> float:
    """Cheap, accurate Huffman CR predictor (Section 5.2).

    Builds the histogram and optimal code lengths, then computes the
    exact payload bits plus header overhead — no encoding performed.
    Pass ``freqs = np.bincount(data, minlength=256)`` to reuse a
    histogram computed elsewhere (the hybrid selector shares one pass
    between this estimate and the eventual encode).
    """
    data = np.ascontiguousarray(data, dtype=np.uint8)
    if data.size == 0:
        return 1.0
    if freqs is None:
        freqs = np.bincount(data, minlength=256)
    lengths = build_code_lengths(freqs)
    payload_bits = int(np.sum(freqs * lengths.astype(np.int64)))
    n_chunks = -(-data.size // DEFAULT_CHUNK_SYMBOLS)
    header_bytes = struct.calcsize(_HEADER_FMT) + 256 + 4 * (n_chunks + 2)
    est_bytes = header_bytes + ((payload_bits + 7) >> 3) + n_chunks
    return data.size / est_bytes
