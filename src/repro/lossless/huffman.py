"""Canonical Huffman coding with a GPU-style chunked stream layout.

Built from scratch (tree construction, length limiting, canonical code
assignment) over the byte alphabet. The stream is divided into fixed-size
*symbol chunks*, each starting at a byte boundary with its offset in the
header — exactly how GPU Huffman decoders (e.g. Tian et al., IPDPS'21)
expose block-level parallelism. Decoding walks all chunks in lockstep
with vectorized gathers, the NumPy analogue of one thread block per
chunk.

Code lengths are limited to :data:`MAX_CODE_LENGTH` so the decoder can
use a flat prefix LUT of ``2^maxlen`` entries.
"""

from __future__ import annotations

import heapq
import struct

import numpy as np

from repro.lossless.bitio import pack_varlen_bits, peek_bits

MAX_CODE_LENGTH = 16
DEFAULT_CHUNK_SYMBOLS = 1024

_MAGIC = b"HUF1"
_HEADER_FMT = "<4sQIB"


def build_code_lengths(
    freqs: np.ndarray, max_length: int = MAX_CODE_LENGTH
) -> np.ndarray:
    """Huffman code lengths per symbol (0 for absent symbols).

    Standard heap construction followed by Kraft-sum repair to honor
    *max_length* (increment the deepest sub-limit codes until the Kraft
    inequality holds, then greedily shorten where slack remains).
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    if freqs.ndim != 1 or freqs.size > 256:
        raise ValueError("freqs must be 1-D with at most 256 symbols")
    if freqs.size and int(freqs.min()) < 0:
        raise ValueError("frequencies must be nonnegative")
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    present = np.flatnonzero(freqs)
    if present.size == 0:
        return lengths
    if present.size == 1:
        lengths[present[0]] = 1
        return lengths

    # Heap of (freq, tiebreak, node-id); parents recorded for depth walk.
    heap = [(int(freqs[s]), int(s), int(i)) for i, s in enumerate(present)]
    heapq.heapify(heap)
    parent: list[int] = [-1] * present.size
    counter = present.size
    while len(heap) > 1:
        f1, _, n1 = heapq.heappop(heap)
        f2, _, n2 = heapq.heappop(heap)
        parent.append(-1)
        parent[n1] = counter
        parent[n2] = counter
        heapq.heappush(heap, (f1 + f2, 256 + counter, counter))
        counter += 1
    depths = np.zeros(present.size, dtype=np.int64)
    for leaf in range(present.size):
        node, d = leaf, 0
        while parent[node] != -1:
            node = parent[node]
            d += 1
        depths[leaf] = d

    depths = _limit_lengths(depths, np.asarray(freqs[present]), max_length)
    lengths[present] = depths.astype(np.uint8)
    return lengths


def _limit_lengths(
    depths: np.ndarray, freqs: np.ndarray, max_length: int
) -> np.ndarray:
    """Clamp code lengths to *max_length* while keeping Kraft ≤ 1."""
    if max_length < 1:
        raise ValueError("max_length must be >= 1")
    depths = np.minimum(depths, max_length).astype(np.int64)
    if depths.size > (1 << max_length):
        raise ValueError("alphabet too large for max_length")
    unit = 1 << max_length  # Kraft capacity in 2^-max_length units
    used = int(np.sum(1 << (max_length - depths)))
    order = np.argsort(-depths * (10**12) - freqs)  # deepest, rarest first
    while used > unit:
        # Lengthen the deepest sub-limit code; costs least entropy.
        candidates = np.flatnonzero(depths < max_length)
        pick = candidates[np.argmax(depths[candidates])]
        used -= 1 << (max_length - depths[pick] - 1)
        depths[pick] += 1
    # Tighten: shorten the most frequent codes while slack allows.
    for idx in np.argsort(-freqs):
        while depths[idx] > 1:
            gain = 1 << (max_length - depths[idx])
            if used + gain > unit:
                break
            used += gain
            depths[idx] -= 1
    del order
    return depths


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Canonical code values per symbol from code lengths."""
    lengths = np.asarray(lengths, dtype=np.int64)
    max_len = int(lengths.max()) if lengths.size else 0
    codes = np.zeros(lengths.size, dtype=np.uint64)
    if max_len == 0:
        return codes
    bl_count = np.bincount(lengths, minlength=max_len + 1)
    bl_count[0] = 0
    next_code = np.zeros(max_len + 1, dtype=np.int64)
    for l in range(1, max_len + 1):
        next_code[l] = (next_code[l - 1] + bl_count[l - 1]) << 1
    for sym in range(lengths.size):  # symbol order = canonical tiebreak
        l = int(lengths[sym])
        if l:
            codes[sym] = next_code[l]
            next_code[l] += 1
    return codes


class HuffmanCodec:
    """Byte-alphabet canonical Huffman codec with chunked streams."""

    def __init__(self, chunk_symbols: int = DEFAULT_CHUNK_SYMBOLS) -> None:
        if chunk_symbols < 1:
            raise ValueError("chunk_symbols must be >= 1")
        self.chunk_symbols = int(chunk_symbols)

    # -- encode ---------------------------------------------------------
    def encode(self, data: np.ndarray | bytes) -> bytes:
        data = np.frombuffer(bytes(data), dtype=np.uint8) if isinstance(
            data, (bytes, bytearray)
        ) else np.ascontiguousarray(data, dtype=np.uint8)
        n = data.size
        freqs = np.bincount(data, minlength=256)
        lengths_table = build_code_lengths(freqs)
        codes_table = canonical_codes(lengths_table)
        header_head = struct.pack(
            _HEADER_FMT, _MAGIC, n, self.chunk_symbols,
            int(lengths_table.max()) if n else 0,
        )
        if n == 0:
            return header_head + lengths_table.tobytes() + struct.pack("<I", 0)

        sym_lengths = lengths_table[data].astype(np.int64)
        sym_codes = codes_table[data]
        chunk = self.chunk_symbols
        n_chunks = -(-n // chunk)
        starts = np.arange(n_chunks) * chunk
        chunk_bits = np.add.reduceat(sym_lengths, starts)
        chunk_bytes = (chunk_bits + 7) >> 3
        offsets = np.zeros(n_chunks + 1, dtype=np.int64)
        np.cumsum(chunk_bytes, out=offsets[1:])

        prefix = np.cumsum(sym_lengths) - sym_lengths
        counts = np.diff(np.append(starts, n))
        within = prefix - np.repeat(prefix[starts], counts)
        positions = np.repeat(offsets[:-1] * 8, counts) + within
        payload = pack_varlen_bits(
            sym_codes, sym_lengths, positions, int(offsets[-1] * 8)
        )
        offsets32 = offsets.astype(np.uint32)
        return (
            header_head
            + lengths_table.tobytes()
            + struct.pack("<I", n_chunks)
            + offsets32.tobytes()
            + payload.tobytes()
        )

    # -- decode ---------------------------------------------------------
    def decode(self, blob: bytes) -> np.ndarray:
        head_size = struct.calcsize(_HEADER_FMT)
        magic, n, chunk, max_len = struct.unpack_from(_HEADER_FMT, blob, 0)
        if magic != _MAGIC:
            raise ValueError("not a Huffman stream")
        off = head_size
        lengths_table = np.frombuffer(blob, dtype=np.uint8,
                                      count=256, offset=off).copy()
        off += 256
        (n_chunks,) = struct.unpack_from("<I", blob, off)
        off += 4
        if n == 0:
            return np.empty(0, dtype=np.uint8)
        offsets = np.frombuffer(blob, dtype=np.uint32,
                                count=n_chunks + 1, offset=off).astype(np.int64)
        off += 4 * (n_chunks + 1)
        payload = np.frombuffer(blob, dtype=np.uint8, offset=off)

        codes_table = canonical_codes(lengths_table)
        lut_sym, lut_len = self._build_lut(lengths_table, codes_table, max_len)

        cursors = offsets[:-1] * 8
        out = np.empty((n_chunks, chunk), dtype=np.uint8)
        # Lockstep decode: one step decodes one symbol in every chunk
        # (the per-thread-block loop of a GPU decoder). Steps past a
        # short final chunk read zero padding and are discarded.
        padded = np.zeros(payload.size + 8, dtype=np.uint8)
        padded[: payload.size] = payload
        steps = min(chunk, n)
        shift_base = np.uint64(64 - max_len)
        mask = np.uint64((1 << max_len) - 1)
        for step in range(steps):
            byte_idx = np.minimum(cursors >> 3, payload.size)
            window = np.zeros(n_chunks, dtype=np.uint64)
            for k in range(8):
                window |= padded[byte_idx + k].astype(np.uint64) << np.uint64(
                    8 * (7 - k)
                )
            vals = (window >> (shift_base - (cursors & 7).astype(np.uint64))) \
                & mask
            out[:, step] = lut_sym[vals]
            cursors = cursors + lut_len[vals]
        return out.reshape(-1)[:n]

    @staticmethod
    def _build_lut(
        lengths_table: np.ndarray, codes_table: np.ndarray, max_len: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flat prefix LUT: any max_len-bit window -> (symbol, length)."""
        if max_len < 1 or max_len > MAX_CODE_LENGTH:
            raise ValueError(f"corrupt stream: max_len={max_len}")
        size = 1 << max_len
        lut_sym = np.zeros(size, dtype=np.uint8)
        lut_len = np.ones(size, dtype=np.int64)
        for sym in np.flatnonzero(lengths_table):
            l = int(lengths_table[sym])
            base = int(codes_table[sym]) << (max_len - l)
            lut_sym[base : base + (1 << (max_len - l))] = sym
            lut_len[base : base + (1 << (max_len - l))] = l
        return lut_sym, lut_len


_DEFAULT_CODEC = HuffmanCodec()


def huffman_encode(data: np.ndarray | bytes) -> bytes:
    """Encode bytes with the default chunked canonical Huffman codec."""
    return _DEFAULT_CODEC.encode(data)


def huffman_decode(blob: bytes) -> np.ndarray:
    """Decode a stream produced by :func:`huffman_encode`."""
    return _DEFAULT_CODEC.decode(blob)


def estimate_huffman_ratio(data: np.ndarray) -> float:
    """Cheap, accurate Huffman CR predictor (Section 5.2).

    Builds the histogram and optimal code lengths, then computes the
    exact payload bits plus header overhead — no encoding performed.
    """
    data = np.ascontiguousarray(data, dtype=np.uint8)
    if data.size == 0:
        return 1.0
    freqs = np.bincount(data, minlength=256)
    lengths = build_code_lengths(freqs)
    payload_bits = int(np.sum(freqs * lengths.astype(np.int64)))
    n_chunks = -(-data.size // DEFAULT_CHUNK_SYMBOLS)
    header_bytes = struct.calcsize(_HEADER_FMT) + 256 + 4 * (n_chunks + 2)
    est_bytes = header_bytes + ((payload_bits + 7) >> 3) + n_chunks
    return data.size / est_bytes
