"""Byte run-length encoding (paper Section 5.1).

Low-order merged bitplanes are dominated by long zero runs; RLE captures
that structured sparsity with far less compute than entropy coding. Runs
are stored as parallel (value: uint8, length: uint32) arrays — both the
encoder (boundary detection via ``diff``) and the decoder (``repeat``)
are single vectorized passes, mirroring the scan-based GPU formulation.
"""

from __future__ import annotations

import struct

import numpy as np

_MAGIC = b"RLE1"
_HEADER_FMT = "<4sQQ"

#: Run lengths are uint32; longer runs split (never hit in practice for
#: the bitplane payloads this library produces, but kept correct anyway).
_MAX_RUN = (1 << 32) - 1


def run_boundaries(data: np.ndarray) -> np.ndarray:
    """Indices where a new byte run starts (index 0 excluded).

    The single scan both the encoder and the CR estimator need; callers
    that do both (the hybrid selector) compute it once and pass it to
    each via their ``boundaries`` parameter.
    """
    data = np.ascontiguousarray(data, dtype=np.uint8)
    return np.flatnonzero(data[1:] != data[:-1]) + 1


def rle_encode(
    data: np.ndarray | bytes, boundaries: np.ndarray | None = None
) -> bytes:
    """Encode bytes as (value, run-length) pairs.

    ``boundaries``, when given, must be ``run_boundaries(data)`` —
    trusted callers reuse the estimator's scan instead of re-detecting
    run starts.
    """
    data = np.frombuffer(bytes(data), dtype=np.uint8) if isinstance(
        data, (bytes, bytearray)
    ) else np.ascontiguousarray(data, dtype=np.uint8)
    n = data.size
    if n == 0:
        return struct.pack(_HEADER_FMT, _MAGIC, 0, 0)
    if boundaries is None:
        boundaries = run_boundaries(data)
    starts = np.concatenate(([0], boundaries))
    run_lengths = np.diff(np.append(starts, n)).astype(np.int64)
    values = data[starts]
    if int(run_lengths.max()) > _MAX_RUN:
        # Split oversized runs into uint32-sized pieces.
        pieces = -(-run_lengths // _MAX_RUN)
        values = np.repeat(values, pieces)
        split = []
        for length, count in zip(run_lengths, pieces):
            split.extend([_MAX_RUN] * (count - 1))
            split.append(length - _MAX_RUN * (count - 1))
        run_lengths = np.asarray(split, dtype=np.int64)
    header = struct.pack(_HEADER_FMT, _MAGIC, n, values.size)
    return header + values.tobytes() + run_lengths.astype(np.uint32).tobytes()


def rle_decode(blob: bytes) -> np.ndarray:
    """Decode a stream produced by :func:`rle_encode`."""
    head = struct.calcsize(_HEADER_FMT)
    magic, n, n_runs = struct.unpack_from(_HEADER_FMT, blob, 0)
    if magic != _MAGIC:
        raise ValueError("not an RLE stream")
    if n == 0:
        return np.empty(0, dtype=np.uint8)
    values = np.frombuffer(blob, dtype=np.uint8, count=n_runs, offset=head)
    lengths = np.frombuffer(
        blob, dtype=np.uint32, count=n_runs, offset=head + n_runs
    )
    out = np.repeat(values, lengths.astype(np.int64))
    if out.size != n:
        raise ValueError("corrupt RLE stream: run lengths do not sum to size")
    return out


def estimate_rle_ratio(
    data: np.ndarray, boundaries: np.ndarray | None = None
) -> float:
    """Cheap RLE CR predictor: count run boundaries, cost 5 bytes/run.

    Matches the paper's estimator — a single scan marking run starts,
    summed to the run count, each run charged its fixed value byte plus
    length field. Pass ``boundaries = run_boundaries(data)`` to reuse a
    scan computed elsewhere (the hybrid selector shares one pass between
    this estimate and the eventual encode).
    """
    data = np.ascontiguousarray(data, dtype=np.uint8)
    if data.size == 0:
        return 1.0
    n_runs = 1 + (
        int(boundaries.size) if boundaries is not None
        else int(np.count_nonzero(data[1:] != data[:-1]))
    )
    est_bytes = struct.calcsize(_HEADER_FMT) + 5 * n_runs
    return data.size / est_bytes
