"""Vectorized variable-length bit packing and random-access bit peeking.

These are the NumPy counterparts of the bit-fiddling inner loops of GPU
entropy coders: :func:`pack_varlen_bits` merges all symbols' codes into
64-bit stream words in one vectorized pass (the chunk-parallel word-merge
of GPU Huffman encoders), and :func:`peek_bits` gathers fixed-width
windows at arbitrary (vectorized) bit cursors — the primitive that lets
many chunks decode in lockstep.

The packer's word-packed layout: bit position ``p`` lives in 64-bit lane
``p >> 6``. A code ending at in-lane bit offset ``e = (p & 63) + len``
contributes ``code << (64 - e)`` to its lane when it fits (``e <= 64``),
else it splits into ``code >> (e - 64)`` for the lane and
``code << (128 - e)`` for the next one. Per-lane contributions are
OR-merged with one ``np.bitwise_or.reduceat`` over the lane-change
boundaries; since disjoint codes can cross any given lane boundary at
most once, the spill contributions have *unique* target lanes and
scatter directly. The seed per-bit formulation (one output element per
code *bit*) is retained as :func:`pack_varlen_bits_reference` for
equivalence tests and the ``bench_hotpaths`` baseline.

Stream bit order is MSB-first: bit position ``p`` lives in byte ``p >> 3``
at in-byte position ``7 - (p & 7)``.
"""

from __future__ import annotations

import sys

import numpy as np

#: peek window is a big-endian uint64, so width + in-byte shift <= 64.
MAX_PEEK_WIDTH = 56

#: Native-endian window entries need a swap to read MSB-first on
#: little-endian hosts; big-endian hosts read them MSB-first already.
NEEDS_BYTESWAP = sys.byteorder == "little"


def _merge_codes_into_lanes(
    codes: np.ndarray, lengths: np.ndarray, positions: np.ndarray,
    lanes: np.ndarray, consume: bool = False,
) -> None:
    """OR all codes into the 64-bit *lanes* array (trusted inner kernel).

    Preconditions (validated by :func:`pack_varlen_bits`, guaranteed by
    construction in :meth:`HuffmanCodec.encode`): ``codes`` hold only
    their low ``lengths`` bits, ``lengths`` are integers in [1, 64],
    ``positions`` are nondecreasing int64 with disjoint in-range bit
    targets. With ``consume=True`` the kernel shifts ``codes`` and
    rebases ``positions`` in place instead of allocating copies — the
    encoder's per-call temporaries are the dominant cost at this point,
    every element array here is O(stream) bytes.
    """
    lane = positions >> 6
    if consume:
        off_end = np.bitwise_and(positions, 63, out=positions)
    else:
        off_end = positions & 63
    off_end += lengths  # in-lane end offset, [1, 127]
    spill = np.flatnonzero(off_end > 64)
    if spill.size:
        # A lane boundary is a single bit position, so at most one code
        # crosses it: spill targets are unique and scatter directly.
        c_s = codes[spill]
        e_s = off_end[spill]
        lanes[lane[spill] + 1] |= c_s << (128 - e_s).astype(np.uint64)
    left = np.subtract(64, off_end, out=off_end if consume else None)
    np.maximum(left, 0, out=left)
    if consume:
        vals = np.left_shift(codes, left.view(np.uint64), out=codes)
    else:
        vals = codes << left.view(np.uint64)
    if spill.size:
        vals[spill] = c_s >> (e_s - 64).astype(np.uint64)
    starts = np.concatenate(
        ([0], np.flatnonzero(lane[1:] != lane[:-1]) + 1)
    )
    lanes[lane[starts]] |= np.bitwise_or.reduceat(vals, starts)


def _lanes_to_stream(lanes: np.ndarray, n_bytes_out: int) -> np.ndarray:
    """Native 64-bit lanes -> MSB-first uint8 stream of *n_bytes_out*."""
    if NEEDS_BYTESWAP:
        lanes.byteswap(inplace=True)
    return lanes.view(np.uint8)[:n_bytes_out]


def pack_sorted_canonical_bits(
    codes: np.ndarray, lengths: np.ndarray, positions: np.ndarray,
    total_bits: int, consume: bool = False,
) -> np.ndarray:
    """Trusted fast path of :func:`pack_varlen_bits` — no validation.

    Callers (the Huffman encoder) guarantee: ``codes`` are uint64 holding
    only their low ``lengths`` bits (canonical codes are), ``lengths``
    are integers in [1, 64], ``positions`` are nondecreasing int64 with
    all code bits inside ``[0, total_bits)``. Out-of-range positions
    still fault loudly (NumPy bounds-checks the lane scatter) but skip
    the descriptive :class:`ValueError` of the public wrapper.
    ``consume=True`` additionally lets the kernel clobber ``codes`` and
    ``positions`` instead of allocating stream-sized copies.
    """
    n_bits_out = int(total_bits)
    n_bytes_out = -(-n_bits_out // 8)
    lanes = np.zeros(-(-n_bytes_out // 8), dtype=np.uint64)
    if codes.size:
        _merge_codes_into_lanes(codes, lengths, positions, lanes,
                                consume=consume)
    return _lanes_to_stream(lanes, n_bytes_out)


def pack_varlen_bits(
    codes: np.ndarray, lengths: np.ndarray, positions: np.ndarray,
    total_bits: int,
) -> np.ndarray:
    """Scatter variable-length codes into a packed MSB-first bitstream.

    ``codes[i]`` (its low ``lengths[i]`` bits, MSB emitted first) is
    written starting at bit ``positions[i]``. Caller guarantees the
    target ranges are disjoint (any order). Returns the packed uint8
    buffer of ``ceil(total_bits / 8)`` bytes. Byte-identical to
    :func:`pack_varlen_bits_reference`, but word-packed: two lane-aligned
    64-bit contributions per symbol instead of one output element per
    code *bit*.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    positions = np.asarray(positions, dtype=np.int64)
    if not (codes.shape == lengths.shape == positions.shape):
        raise ValueError("codes, lengths, positions must align")
    if lengths.size and int(lengths.min()) < 0:
        raise ValueError("lengths must be nonnegative")
    if lengths.size and int(lengths.max()) > 64:
        raise ValueError("lengths must be <= 64 (codes are uint64)")
    n_bits_out = int(total_bits)
    n_bytes_out = -(-n_bits_out // 8)
    lanes = np.zeros(-(-n_bytes_out // 8), dtype=np.uint64)
    if codes.size:
        keep = lengths > 0
        if not keep.all():  # zero-length symbols contribute no bits
            codes, lengths, positions = (
                codes[keep], lengths[keep], positions[keep]
            )
    if codes.size:
        if int(positions.min()) < 0:
            raise ValueError("bit positions must be nonnegative")
        if int((positions + lengths).max()) > n_bits_out:
            raise ValueError("code bits exceed total_bits")
        if np.any(positions[1:] < positions[:-1]):
            order = np.argsort(positions, kind="stable")
            codes, lengths, positions = (
                codes[order], lengths[order], positions[order]
            )
        # Mask to the low `length` bits; `(2^(l-1) - 1)*2 + 1 = 2^l - 1`
        # stays inside uint64 for l = 64 (a plain `1 << l` would not).
        one = np.uint64(1)
        l_u = lengths.astype(np.uint64)
        codes = codes & (
            ((one << (l_u - one)) - one) * np.uint64(2) + one
        )
        _merge_codes_into_lanes(codes, lengths, positions, lanes)
    return _lanes_to_stream(lanes, n_bytes_out)


def pack_varlen_bits_reference(
    codes: np.ndarray, lengths: np.ndarray, positions: np.ndarray,
    total_bits: int,
) -> np.ndarray:
    """Seed per-bit packer: one scattered output element per code bit.

    Retained for equivalence tests and the ``bench_hotpaths`` baseline;
    production callers use :func:`pack_varlen_bits`. Allocates several
    O(total_bits) int64 temporaries, which is exactly what the
    word-packed fast path avoids.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    positions = np.asarray(positions, dtype=np.int64)
    if not (codes.shape == lengths.shape == positions.shape):
        raise ValueError("codes, lengths, positions must align")
    if lengths.size and int(lengths.min()) < 0:
        raise ValueError("lengths must be nonnegative")
    n_bits_out = int(total_bits)
    bits = np.zeros(-(-n_bits_out // 8) * 8, dtype=np.uint8)
    if codes.size:
        reps = np.repeat(np.arange(codes.size), lengths)
        # j-th bit of symbol i (MSB first) = (code >> (len-1-j)) & 1
        offset_in_code = (
            np.arange(reps.size)
            - np.repeat(np.cumsum(lengths) - lengths, lengths)
        )
        shift = (lengths[reps] - 1 - offset_in_code).astype(np.uint64)
        bitvals = ((codes[reps] >> shift) & np.uint64(1)).astype(np.uint8)
        target = positions[reps] + offset_in_code
        if target.size and int(target.max()) >= n_bits_out:
            raise ValueError("code bits exceed total_bits")
        bits[target] = bitvals
    return np.packbits(bits)[: -(-n_bits_out // 8)]


def sliding_windows_u64(stream: np.ndarray, extra: int = 0) -> np.ndarray:
    """Every 8-byte MSB-first window of *stream* as one strided gather.

    Returns a read-only uint64 array ``w`` of ``stream.size + extra + 1``
    entries where ``w[i]`` is bytes ``i … i+7`` of the zero-padded
    stream interpreted big-endian — i.e. bit ``p`` of the stream is bit
    ``63 - (p - 8*i)`` of ``w[i]`` for any ``i <= p//8``. ``extra``
    extends the valid window range past the stream end (all-zero
    windows) so cursors that legitimately run past ragged tails need no
    clamping. Built as a byte-stride
    :func:`numpy.lib.stride_tricks.as_strided` view over one padded
    copy, so materializing a window for every cursor is a single
    fancy-index gather instead of eight byte gathers. Entries are read
    native-endian; callers byteswap gathered slices on little-endian
    hosts (big-endian hosts read MSB-first natively).
    """
    if extra < 0:
        raise ValueError("extra must be >= 0")
    stream = np.ascontiguousarray(stream, dtype=np.uint8)
    pad_len = stream.size + extra + 8
    pad_len += (-pad_len) % 8  # uint64-viewable length
    padded = np.zeros(pad_len, dtype=np.uint8)
    padded[: stream.size] = stream
    windows = np.lib.stride_tricks.as_strided(
        padded.view(np.uint64),
        shape=(stream.size + extra + 1,),
        strides=(1,),
        writeable=False,
    )
    return windows


def peek_bits(
    stream: np.ndarray, bit_positions: np.ndarray, width: int
) -> np.ndarray:
    """Read ``width`` bits (MSB-first) at each cursor, vectorized.

    Cursors at or beyond the stream end read zeros (the stream is
    virtually zero-padded), which lets lockstep chunk decoding run
    uniformly past ragged chunk tails. One 64-bit strided gather per
    cursor (see :func:`sliding_windows_u64`), not eight byte gathers.
    """
    if not 1 <= width <= MAX_PEEK_WIDTH:
        raise ValueError(f"width must be in [1, {MAX_PEEK_WIDTH}]")
    stream = np.asarray(stream, dtype=np.uint8)
    pos = np.asarray(bit_positions, dtype=np.int64)
    if pos.size and int(pos.min()) < 0:
        raise ValueError("bit positions must be nonnegative")
    windows = sliding_windows_u64(stream)
    byte_idx = np.minimum(pos >> 3, stream.size)  # clamp fully-past reads
    shift = (pos & 7).astype(np.uint64)
    window = windows[byte_idx]
    if NEEDS_BYTESWAP:
        window.byteswap(inplace=True)
    mask = np.uint64((1 << width) - 1)
    return (window >> (np.uint64(64 - width) - shift)) & mask
