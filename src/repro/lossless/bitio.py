"""Vectorized variable-length bit packing and random-access bit peeking.

These are the NumPy counterparts of the bit-fiddling inner loops of GPU
entropy coders: :func:`pack_varlen_bits` writes all symbols' codes in one
vectorized scatter, and :func:`peek_bits` gathers fixed-width windows at
arbitrary (vectorized) bit cursors — the primitive that lets many chunks
decode in lockstep.

Stream bit order is MSB-first: bit position ``p`` lives in byte ``p >> 3``
at in-byte position ``7 - (p & 7)``.
"""

from __future__ import annotations

import sys

import numpy as np

#: peek window is a big-endian uint64, so width + in-byte shift <= 64.
MAX_PEEK_WIDTH = 56

#: Native-endian window entries need a swap to read MSB-first on
#: little-endian hosts; big-endian hosts read them MSB-first already.
NEEDS_BYTESWAP = sys.byteorder == "little"


def pack_varlen_bits(
    codes: np.ndarray, lengths: np.ndarray, positions: np.ndarray,
    total_bits: int,
) -> np.ndarray:
    """Scatter variable-length codes into a packed MSB-first bitstream.

    ``codes[i]`` (its low ``lengths[i]`` bits, MSB emitted first) is
    written starting at bit ``positions[i]``. Caller guarantees the
    target ranges are disjoint. Returns the packed uint8 buffer of
    ``ceil(total_bits / 8)`` bytes.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    positions = np.asarray(positions, dtype=np.int64)
    if not (codes.shape == lengths.shape == positions.shape):
        raise ValueError("codes, lengths, positions must align")
    if lengths.size and int(lengths.min()) < 0:
        raise ValueError("lengths must be nonnegative")
    n_bits_out = int(total_bits)
    bits = np.zeros(-(-n_bits_out // 8) * 8, dtype=np.uint8)
    if codes.size:
        reps = np.repeat(np.arange(codes.size), lengths)
        # j-th bit of symbol i (MSB first) = (code >> (len-1-j)) & 1
        offset_in_code = (
            np.arange(reps.size)
            - np.repeat(np.cumsum(lengths) - lengths, lengths)
        )
        shift = (lengths[reps] - 1 - offset_in_code).astype(np.uint64)
        bitvals = ((codes[reps] >> shift) & np.uint64(1)).astype(np.uint8)
        target = positions[reps] + offset_in_code
        if target.size and int(target.max()) >= n_bits_out:
            raise ValueError("code bits exceed total_bits")
        bits[target] = bitvals
    return np.packbits(bits)[: -(-n_bits_out // 8)]


def sliding_windows_u64(stream: np.ndarray, extra: int = 0) -> np.ndarray:
    """Every 8-byte MSB-first window of *stream* as one strided gather.

    Returns a read-only uint64 array ``w`` of ``stream.size + extra + 1``
    entries where ``w[i]`` is bytes ``i … i+7`` of the zero-padded
    stream interpreted big-endian — i.e. bit ``p`` of the stream is bit
    ``63 - (p - 8*i)`` of ``w[i]`` for any ``i <= p//8``. ``extra``
    extends the valid window range past the stream end (all-zero
    windows) so cursors that legitimately run past ragged tails need no
    clamping. Built as a byte-stride
    :func:`numpy.lib.stride_tricks.as_strided` view over one padded
    copy, so materializing a window for every cursor is a single
    fancy-index gather instead of eight byte gathers. Entries are read
    native-endian; callers byteswap gathered slices on little-endian
    hosts (big-endian hosts read MSB-first natively).
    """
    if extra < 0:
        raise ValueError("extra must be >= 0")
    stream = np.ascontiguousarray(stream, dtype=np.uint8)
    pad_len = stream.size + extra + 8
    pad_len += (-pad_len) % 8  # uint64-viewable length
    padded = np.zeros(pad_len, dtype=np.uint8)
    padded[: stream.size] = stream
    windows = np.lib.stride_tricks.as_strided(
        padded.view(np.uint64),
        shape=(stream.size + extra + 1,),
        strides=(1,),
        writeable=False,
    )
    return windows


def peek_bits(
    stream: np.ndarray, bit_positions: np.ndarray, width: int
) -> np.ndarray:
    """Read ``width`` bits (MSB-first) at each cursor, vectorized.

    Cursors at or beyond the stream end read zeros (the stream is
    virtually zero-padded), which lets lockstep chunk decoding run
    uniformly past ragged chunk tails. One 64-bit strided gather per
    cursor (see :func:`sliding_windows_u64`), not eight byte gathers.
    """
    if not 1 <= width <= MAX_PEEK_WIDTH:
        raise ValueError(f"width must be in [1, {MAX_PEEK_WIDTH}]")
    stream = np.asarray(stream, dtype=np.uint8)
    pos = np.asarray(bit_positions, dtype=np.int64)
    if pos.size and int(pos.min()) < 0:
        raise ValueError("bit positions must be nonnegative")
    windows = sliding_windows_u64(stream)
    byte_idx = np.minimum(pos >> 3, stream.size)  # clamp fully-past reads
    shift = (pos & 7).astype(np.uint64)
    window = windows[byte_idx]
    if NEEDS_BYTESWAP:
        window.byteswap(inplace=True)
    mask = np.uint64((1 << width) - 1)
    return (window >> (np.uint64(64 - width) - shift)) & mask
