"""Shared entropy coding of quantization-code integer arrays.

SZ-family and MGARD-family compressors end in the same place: an array
of small signed integers (quantization codes) with occasional large
outliers. This module zigzag-maps them to unsigned and splits each code
into low/high bytes coded as two Huffman streams (the high-byte stream
is near-constant zero for well-predicted data and compresses to almost
nothing); codes above 16 bits escape to a verbatim outlier table — the
standard "codes + unpredictable values" layout.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.lossless.huffman import (
    estimate_huffman_ratio,
    huffman_decode,
    huffman_encode,
)
from repro.lossless.rle import estimate_rle_ratio, rle_decode, rle_encode

_MAGIC = b"INTC"
_HEADER_FMT = "<4sQQQ"
_ESCAPE16 = (1 << 16) - 1  # lo=0xFF, hi=0xFF marks an outlier


def _encode_stream(data: np.ndarray) -> bytes:
    """Code one byte stream with the better of Huffman and RLE.

    High-byte streams are usually constant zero, where RLE costs a few
    dozen bytes versus Huffman's 1-bit-per-symbol floor.
    """
    if estimate_rle_ratio(data) > estimate_huffman_ratio(data):
        return b"R" + rle_encode(data)
    return b"H" + huffman_encode(data)


def _decode_stream(blob: bytes) -> np.ndarray:
    tag, payload = blob[:1], blob[1:]
    if tag == b"R":
        return rle_decode(payload)
    if tag == b"H":
        return huffman_decode(payload)
    raise ValueError(f"unknown int-codec stream tag {tag!r}")


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed to unsigned: 0,-1,1,-2,2 → 0,1,2,3,4."""
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def zigzag_decode(codes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    u = np.asarray(codes, dtype=np.uint64)
    return ((u >> np.uint64(1)).astype(np.int64)
            ^ -(u & np.uint64(1)).astype(np.int64))


def encode_int_array(values: np.ndarray) -> bytes:
    """Compress a signed integer array (quantization codes)."""
    values = np.ascontiguousarray(values, dtype=np.int64).reshape(-1)
    zz = zigzag_encode(values)
    small = zz < _ESCAPE16
    codes16 = np.where(small, zz, _ESCAPE16).astype(np.uint64)
    lo = (codes16 & np.uint64(0xFF)).astype(np.uint8)
    hi = (codes16 >> np.uint64(8)).astype(np.uint8)
    outliers = values[~small]
    lo_blob = _encode_stream(lo)
    hi_blob = _encode_stream(hi)
    header = struct.pack(
        _HEADER_FMT, _MAGIC, values.size, outliers.size, len(lo_blob)
    )
    return (header + outliers.astype("<i8").tobytes() + lo_blob + hi_blob)


def decode_int_array(blob: bytes) -> np.ndarray:
    """Inverse of :func:`encode_int_array`."""
    head = struct.calcsize(_HEADER_FMT)
    if len(blob) < head:
        raise ValueError("not an int-codec stream (truncated header)")
    magic, n, n_out, lo_len = struct.unpack_from(_HEADER_FMT, blob, 0)
    if magic != _MAGIC:
        raise ValueError("not an int-codec stream")
    outliers = np.frombuffer(blob, dtype="<i8", count=n_out, offset=head)
    off = head + 8 * n_out
    lo = _decode_stream(blob[off : off + lo_len])
    hi = _decode_stream(blob[off + lo_len:])
    if lo.size != n or hi.size != n:
        raise ValueError("corrupt int-codec stream: size mismatch")
    codes16 = lo.astype(np.uint64) | (hi.astype(np.uint64) << np.uint64(8))
    values = zigzag_decode(codes16)
    escaped = codes16 == _ESCAPE16
    if int(np.count_nonzero(escaped)) != n_out:
        raise ValueError("corrupt int-codec stream: outlier count mismatch")
    values[escaped] = outliers
    return values
