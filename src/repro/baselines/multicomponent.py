"""The multi-component progressive framework (Magri & Lindstrom).

Progressiveness from *any* error-bounded compressor: compress the data
at a loose bound, then compress the residual at a tighter bound, and so
on with geometrically decaying bounds. Retrieval fetches components in
order until the last component's bound meets the tolerance; summing the
decoded components reconstructs the data to that bound.

This is the family behind the paper's M-ZFP-GPU / M-MGARD / M-SZ3 /
M-ZFP-CPU baselines. Its weakness — exactly the one the paper exploits —
is that residuals of error-bounded compressors are noise-like, so the
deep components compress poorly and both size and (de)compression time
balloon at tight tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import check_dtype_floating


@dataclass
class Component:
    """One compressed residual layer."""

    blob: bytes
    error_bound: float  # guaranteed (or measured) L∞ of the residual

    @property
    def nbytes(self) -> int:
        return len(self.blob)


@dataclass
class ComponentStream:
    """A refactored multi-component representation."""

    shape: tuple[int, ...]
    dtype: np.dtype
    components: list[Component] = field(default_factory=list)

    def total_bytes(self) -> int:
        return sum(c.nbytes for c in self.components)

    def bytes_for_tolerance(self, tolerance: float) -> int:
        """Bytes fetched to reach *tolerance* (all if unreachable)."""
        total = 0
        for c in self.components:
            total += c.nbytes
            if c.error_bound <= tolerance:
                break
        return total


class MultiComponentProgressive:
    """Progressive compression over an error-bounded codec backend.

    ``codec`` must expose ``compress(data, error_bound=...)`` and
    ``decompress(blob)``; fixed-rate backends (ZFP-GPU style) instead
    take a rate schedule and record measured errors.
    """

    def __init__(
        self,
        codec,
        initial_relative_bound: float = 0.1,
        decay: float = 8.0,
        num_components: int = 8,
    ) -> None:
        if initial_relative_bound <= 0:
            raise ValueError("initial_relative_bound must be > 0")
        if decay <= 1:
            raise ValueError("decay must be > 1")
        if num_components < 1:
            raise ValueError("num_components must be >= 1")
        self.codec = codec
        self.initial_relative_bound = initial_relative_bound
        self.decay = decay
        self.num_components = num_components

    def refactor(
        self, data: np.ndarray, rate_schedule: list[float] | None = None
    ) -> ComponentStream:
        """Build the component stack.

        ``rate_schedule`` switches to fixed-rate components (bits per
        value per component) for backends without error-bounded modes.
        """
        check_dtype_floating(data)
        stream = ComponentStream(shape=data.shape, dtype=data.dtype)
        residual = np.asarray(data, dtype=np.float64)
        value_range = float(np.max(data) - np.min(data)) if data.size else 0.0
        if value_range == 0.0:
            # Constant field: one component at a bound limited only by
            # the quantizer's dynamic range.
            max_abs = float(np.max(np.abs(residual))) if residual.size else 0.0
            tiny = max(1e-12, 1e-9 * max_abs)
            blob = self.codec.compress(
                residual.astype(data.dtype), error_bound=tiny
            ) if rate_schedule is None else self.codec.compress(
                residual.astype(data.dtype), rate_bits=rate_schedule[0]
            )
            stream.components.append(Component(blob, tiny))
            return stream

        if rate_schedule is None:
            bound = self.initial_relative_bound * value_range
            for _ in range(self.num_components):
                blob = self.codec.compress(
                    residual.astype(data.dtype), error_bound=bound
                )
                decoded = self.codec.decompress(blob).astype(np.float64)
                stream.components.append(Component(blob, bound))
                residual = residual - decoded
                bound /= self.decay
        else:
            for rate in rate_schedule:
                blob = self.codec.compress(
                    residual.astype(data.dtype), rate_bits=rate
                )
                decoded = self.codec.decompress(blob).astype(np.float64)
                residual = residual - decoded
                measured = float(np.max(np.abs(residual)))
                stream.components.append(Component(blob, measured))
        return stream

    def retrieve(
        self, stream: ComponentStream, tolerance: float
    ) -> tuple[np.ndarray, int, float]:
        """(reconstruction, fetched_bytes, achieved_bound) at *tolerance*.

        Components are fetched and summed in order until one's bound
        meets the tolerance; if none does, everything is used and the
        deepest bound is reported.
        """
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        if not stream.components:
            raise ValueError("empty component stream")
        total = np.zeros(stream.shape, dtype=np.float64)
        fetched = 0
        achieved = float("inf")
        for c in stream.components:
            total += self.codec.decompress(c.blob).astype(np.float64)
            fetched += c.nbytes
            achieved = c.error_bound
            if achieved <= tolerance:
                break
        return total.astype(stream.dtype), fetched, achieved
