"""ZFP-like transform-based block codec (fixed-rate and fixed-accuracy).

Follows ZFP's structure — independent 4³ blocks, per-block exponent
alignment to fixed point, a separable invertible integer lifting
transform for decorrelation, negabinary mapping, and most-significant-
first bitplane truncation. Two simplifications versus ZFP proper, both
noted in EXPERIMENTS.md: the lifting is a two-level Haar-style scheme
(exactly invertible, near-orthogonal) rather than ZFP's 4-point
transform, and truncated planes are stored raw instead of
group-tested/embedded coded. Rate-distortion *shape* (error halving per
extra plane, block-local adaptation) matches; absolute ratios are a
little worse.

The fixed-accuracy mode verifies per-block errors after truncation and
adds planes where needed, so its bound is enforced by construction.
"""

from __future__ import annotations

import math
import struct

import numpy as np

from repro.util.validation import check_dtype_floating

_MAGIC = b"ZFPL"
_HEADER_FMT = "<4sBB3IdB"
_NEGA_MASK = np.uint64(0xAAAAAAAAAAAAAAAA)
_BLOCK = 4
_BLOCK_VALUES = _BLOCK ** 3

#: Fixed-point bits by dtype; 4 bits of headroom cover transform growth.
_PRECISION = {np.dtype(np.float32): 26, np.dtype(np.float64): 48}
_HEADROOM = 4


# ---------------------------------------------------------------------
# Blocking
# ---------------------------------------------------------------------
def _blockize(data: np.ndarray) -> tuple[np.ndarray, tuple[int, int, int]]:
    """Split a 3-D array into (n_blocks, 4, 4, 4), edge-padded."""
    shape = data.shape
    padded_shape = tuple(-(-s // _BLOCK) * _BLOCK for s in shape)
    padded = np.zeros(padded_shape, dtype=np.float64)
    padded[: shape[0], : shape[1], : shape[2]] = data
    # Edge-pad so boundary blocks stay smooth (ZFP pads similarly).
    for ax, s in enumerate(shape):
        if padded_shape[ax] != s:
            sl_src = [slice(None)] * 3
            sl_dst = [slice(None)] * 3
            sl_src[ax] = slice(s - 1, s)
            sl_dst[ax] = slice(s, padded_shape[ax])
            padded[tuple(sl_dst)] = padded[tuple(sl_src)]
    b0, b1, b2 = (ps // _BLOCK for ps in padded_shape)
    blocks = (
        padded.reshape(b0, _BLOCK, b1, _BLOCK, b2, _BLOCK)
        .transpose(0, 2, 4, 1, 3, 5)
        .reshape(-1, _BLOCK, _BLOCK, _BLOCK)
    )
    return blocks, padded_shape


def _unblockize(
    blocks: np.ndarray,
    padded_shape: tuple[int, int, int],
    shape: tuple[int, int, int],
) -> np.ndarray:
    b0, b1, b2 = (ps // _BLOCK for ps in padded_shape)
    padded = (
        blocks.reshape(b0, b1, b2, _BLOCK, _BLOCK, _BLOCK)
        .transpose(0, 3, 1, 4, 2, 5)
        .reshape(padded_shape)
    )
    return padded[: shape[0], : shape[1], : shape[2]]


# ---------------------------------------------------------------------
# Invertible integer lifting along one length-4 axis
# ---------------------------------------------------------------------
def _lift_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    d = b - a
    s = a + (d >> 1)
    return s, d


def _unlift_pair(s: np.ndarray, d: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = s - (d >> 1)
    return a, a + d


def _forward_axis(v: np.ndarray, axis: int) -> np.ndarray:
    v = np.moveaxis(v, axis, -1).copy()
    s0, d0 = _lift_pair(v[..., 0], v[..., 1])
    s1, d1 = _lift_pair(v[..., 2], v[..., 3])
    ss, dd = _lift_pair(s0, s1)
    out = np.stack([ss, dd, d0, d1], axis=-1)
    return np.moveaxis(out, -1, axis)


def _inverse_axis(v: np.ndarray, axis: int) -> np.ndarray:
    v = np.moveaxis(v, axis, -1)
    ss, dd, d0, d1 = v[..., 0], v[..., 1], v[..., 2], v[..., 3]
    s0, s1 = _unlift_pair(ss, dd)
    a0, a1 = _unlift_pair(s0, d0)
    a2, a3 = _unlift_pair(s1, d1)
    out = np.stack([a0, a1, a2, a3], axis=-1)
    return np.moveaxis(out, -1, axis)


def _forward_transform(ints: np.ndarray) -> np.ndarray:
    for axis in (1, 2, 3):
        ints = _forward_axis(ints, axis)
    return ints


def _inverse_transform(ints: np.ndarray) -> np.ndarray:
    for axis in (3, 2, 1):
        ints = _inverse_axis(ints, axis)
    return ints


# ---------------------------------------------------------------------
# Negabinary and plane truncation
# ---------------------------------------------------------------------
def _to_negabinary(v: np.ndarray) -> np.ndarray:
    u = v.astype(np.int64).view(np.uint64)
    return (u + _NEGA_MASK) ^ _NEGA_MASK


def _from_negabinary(nb: np.ndarray) -> np.ndarray:
    u = (nb ^ _NEGA_MASK) - _NEGA_MASK
    return u.view(np.int64)


def _truncate_planes(
    nb: np.ndarray, width: int, keep: np.ndarray
) -> np.ndarray:
    """Zero all but the top *keep* planes of *width*-bit negabinary codes.

    ``keep`` is per-block (broadcast across the 64 coefficients).
    """
    drop = np.maximum(width - keep, 0).astype(np.uint64)
    mask = np.where(
        drop >= 64, np.uint64(0), (~np.uint64(0)) << drop
    )
    return nb & mask.reshape(-1, 1, 1, 1)


# ---------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------
class ZfpCodec:
    """ZFP-like codec with ``mode="fixed_rate"`` or ``"fixed_accuracy"``."""

    name = "ZFP"

    def __init__(self, mode: str = "fixed_accuracy") -> None:
        if mode not in ("fixed_rate", "fixed_accuracy"):
            raise ValueError(
                "mode must be fixed_rate or fixed_accuracy, got "
                f"{mode!r}"
            )
        self.mode = mode

    # -- shared core ------------------------------------------------------
    def _prepare(self, data: np.ndarray):
        check_dtype_floating(data)
        if data.ndim != 3:
            raise ValueError("ZfpCodec expects 3-D data")
        precision = _PRECISION[np.dtype(data.dtype)]
        blocks, padded_shape = _blockize(np.asarray(data, dtype=np.float64))
        max_abs = np.max(np.abs(blocks), axis=(1, 2, 3))
        exponents = np.zeros(blocks.shape[0], dtype=np.int32)
        nonzero = max_abs > 0
        exponents[nonzero] = (
            np.floor(np.log2(max_abs[nonzero])).astype(np.int32) + 1
        )
        scale = np.exp2(precision - exponents.astype(np.float64))
        ints = np.round(
            blocks * scale.reshape(-1, 1, 1, 1)
        ).astype(np.int64)
        coeffs = _forward_transform(ints)
        nb = _to_negabinary(coeffs)
        return blocks, padded_shape, exponents, nb, precision

    def _reconstruct_blocks(
        self, nb: np.ndarray, exponents: np.ndarray, precision: int
    ) -> np.ndarray:
        coeffs = _from_negabinary(nb)
        ints = _inverse_transform(coeffs)
        scale = np.exp2(exponents.astype(np.float64) - precision)
        return ints.astype(np.float64) * scale.reshape(-1, 1, 1, 1)

    # -- compression --------------------------------------------------------
    def compress(
        self,
        data: np.ndarray,
        error_bound: float | None = None,
        rate_bits: float | None = None,
    ) -> bytes:
        """Compress in the configured mode.

        ``fixed_accuracy`` needs *error_bound* (absolute L∞, enforced by
        per-block verification); ``fixed_rate`` needs *rate_bits* (bits
        per value).
        """
        blocks, padded_shape, exponents, nb, precision = self._prepare(data)
        width = precision + _HEADROOM
        n_blocks = nb.shape[0]

        if self.mode == "fixed_rate":
            if rate_bits is None or rate_bits <= 0:
                raise ValueError("fixed_rate mode requires rate_bits > 0")
            k = int(min(width, max(1, round(rate_bits))))
            keep = np.full(n_blocks, k, dtype=np.int64)
        else:
            if error_bound is None or error_bound <= 0:
                raise ValueError(
                    "fixed_accuracy mode requires error_bound > 0"
                )
            keep = self._solve_accuracy(
                blocks, exponents, nb, precision, error_bound
            )

        payload = self._pack_planes(nb, keep, width)
        achieved = float(
            np.max(
                np.abs(
                    blocks
                    - self._reconstruct_blocks(
                        _truncate_planes(nb, width, keep), exponents,
                        precision,
                    )
                )
            )
        ) if n_blocks else 0.0
        is64 = 1 if data.dtype == np.float64 else 0
        header = struct.pack(
            _HEADER_FMT, _MAGIC, is64,
            0 if self.mode == "fixed_rate" else 1,
            *data.shape, achieved, precision,
        )
        keep_blob = keep.astype(np.uint8).tobytes()
        exp_blob = exponents.astype("<i4").tobytes()
        return header + keep_blob + exp_blob + payload

    def _solve_accuracy(
        self, blocks, exponents, nb, precision, error_bound
    ) -> np.ndarray:
        """Per-block plane counts meeting the bound, by verification."""
        width = precision + _HEADROOM
        n_blocks = nb.shape[0]
        # Initial guess: planes above the tolerance's bit position.
        guess = exponents.astype(np.int64) + _HEADROOM - (
            math.floor(math.log2(error_bound)) if error_bound > 0 else 0
        )
        keep = np.clip(guess, 0, width)
        for _ in range(width + 1):
            rec = self._reconstruct_blocks(
                _truncate_planes(nb, width, keep), exponents, precision
            )
            err = np.max(np.abs(blocks - rec), axis=(1, 2, 3))
            bad = err > error_bound
            if not bad.any():
                break
            keep = np.where(bad & (keep < width), keep + 1, keep)
        return keep

    @staticmethod
    def _pack_planes(nb, keep, width) -> bytes:
        """Pack each block's top *keep* planes, grouped by plane count."""
        n_blocks = nb.shape[0]
        flat = nb.reshape(n_blocks, _BLOCK_VALUES)
        segments: list[bytes] = []
        for k in np.unique(keep):
            idx = np.flatnonzero(keep == k)
            if k == 0:
                continue
            sel = flat[idx]  # (cnt, 64) uint64
            shifts = (width - 1 - np.arange(int(k))).astype(np.uint64)
            bits = (
                (sel[:, None, :] >> shifts[None, :, None]) & np.uint64(1)
            ).astype(np.uint8)
            segments.append(np.packbits(bits.reshape(len(idx), -1),
                                        axis=1).tobytes())
        return b"".join(segments)

    # -- decompression --------------------------------------------------------
    def decompress(self, blob: bytes) -> np.ndarray:
        head = struct.calcsize(_HEADER_FMT)
        magic, is64, _mode_id, n0, n1, n2, _achieved, precision = \
            struct.unpack_from(_HEADER_FMT, blob, 0)
        if magic != _MAGIC:
            raise ValueError("not a ZFP-like stream")
        shape = (n0, n1, n2)
        padded_shape = tuple(-(-s // _BLOCK) * _BLOCK for s in shape)
        n_blocks = int(np.prod([ps // _BLOCK for ps in padded_shape]))
        width = precision + _HEADROOM
        keep = np.frombuffer(blob, dtype=np.uint8, count=n_blocks,
                             offset=head).astype(np.int64)
        off = head + n_blocks
        exponents = np.frombuffer(blob, dtype="<i4", count=n_blocks,
                                  offset=off).astype(np.int32)
        off += 4 * n_blocks
        payload = np.frombuffer(blob, dtype=np.uint8, offset=off)

        nb = np.zeros((n_blocks, _BLOCK_VALUES), dtype=np.uint64)
        cursor = 0
        for k in np.unique(keep):
            idx = np.flatnonzero(keep == k)
            if k == 0:
                continue
            row_bytes = -(-int(k) * _BLOCK_VALUES // 8)
            seg = payload[cursor : cursor + row_bytes * idx.size]
            cursor += row_bytes * idx.size
            bits = np.unpackbits(
                seg.reshape(idx.size, row_bytes), axis=1,
                count=int(k) * _BLOCK_VALUES,
            ).reshape(idx.size, int(k), _BLOCK_VALUES)
            shifts = (width - 1 - np.arange(int(k))).astype(np.uint64)
            vals = np.zeros((idx.size, _BLOCK_VALUES), dtype=np.uint64)
            for p in range(int(k)):
                vals |= bits[:, p, :].astype(np.uint64) << shifts[p]
            nb[idx] = vals
        blocks = self._reconstruct_blocks(
            nb.reshape(n_blocks, _BLOCK, _BLOCK, _BLOCK), exponents,
            precision,
        )
        data = _unblockize(blocks, padded_shape, shape)
        return data.astype(np.float64 if is64 else np.float32)

    @staticmethod
    def achieved_error(blob: bytes) -> float:
        """The measured max error recorded at compression time."""
        _, _, _, _, _, _, achieved, _ = struct.unpack_from(
            _HEADER_FMT, blob, 0
        )
        return achieved
