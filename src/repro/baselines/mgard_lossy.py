"""MGARD as a classic single-error-bound lossy compressor.

Uses the same multilevel decomposition substrate as HP-MDR but follows
the original MGARD pipeline: decompose, quantize each level uniformly
with a level-aware bin width, entropy-code the quantization codes. The
bin widths split the error budget across levels by the rigorous L∞
amplification weights, so ``|x - x̂| ≤ error_bound`` always holds —
the guarantee the multi-component framework builds on.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baselines.intcodec import decode_int_array, encode_int_array
from repro.decompose import MultilevelTransform
from repro.decompose.norms import level_error_weights
from repro.util.serialize import pack_arrays, unpack_arrays
from repro.util.validation import check_dtype_floating

_MAGIC = b"MGLC"
_HEADER_FMT = "<4sB3IdH"


class MgardLossyCodec:
    """Single-error-bound MGARD compression."""

    name = "MGARD"

    def __init__(self, mode: str = "hierarchical") -> None:
        self.mode = mode

    def compress(self, data: np.ndarray, error_bound: float) -> bytes:
        """Compress with absolute L∞ bound *error_bound*."""
        check_dtype_floating(data)
        if error_bound <= 0:
            raise ValueError("error_bound must be > 0")
        if data.ndim != 3:
            raise ValueError("MgardLossyCodec expects 3-D data")
        transform = MultilevelTransform(data.shape, mode=self.mode)
        weights = level_error_weights(transform)
        levels = transform.extract_levels(transform.decompose(data))
        budget = error_bound / sum(weights)
        payloads = []
        for coeff, w in zip(levels, weights):
            bin_width = 2.0 * (budget / w)
            q = np.round(coeff / bin_width).astype(np.int64)
            payloads.append(
                np.frombuffer(encode_int_array(q), dtype=np.uint8)
            )
        is64 = 1 if data.dtype == np.float64 else 0
        header = struct.pack(
            _HEADER_FMT, _MAGIC, is64, *data.shape, error_bound,
            len(payloads),
        )
        return header + pack_arrays(payloads)

    def decompress(self, blob: bytes) -> np.ndarray:
        """Recover data within the recorded error bound."""
        head = struct.calcsize(_HEADER_FMT)
        magic, is64, n0, n1, n2, eb, n_levels = struct.unpack_from(
            _HEADER_FMT, blob, 0
        )
        if magic != _MAGIC:
            raise ValueError("not an MGARD-lossy stream")
        transform = MultilevelTransform((n0, n1, n2), mode=self.mode)
        weights = level_error_weights(transform)
        if len(weights) != n_levels:
            raise ValueError("level count mismatch in MGARD-lossy stream")
        budget = eb / sum(weights)
        payloads = unpack_arrays(blob[head:])
        levels = []
        for payload, w in zip(payloads, weights):
            q = decode_int_array(bytes(payload))
            bin_width = 2.0 * (budget / w)
            levels.append(q.astype(np.float64) * bin_width)
        data = transform.recompose(transform.assemble_levels(levels))
        return data.astype(np.float64 if is64 else np.float32)
