"""The MDR baseline: the original CPU progressive method's configuration.

Algorithmically MDR and HP-MDR share the multilevel-decomposition +
bitplane structure (HP-MDR "composes PMGARD"); what distinguishes the
baseline is its configuration and execution profile:

* per-bitplane entropy coding with no hybrid selection (every plane is
  entropy-coded regardless of benefit — smallest retrieval size,
  slowest codec path);
* no plane grouping (group size 1: finest granularity, most segments);
* the natural-order locality encoding a sequential CPU produces;
* CPU execution, which the benchmarks time with the CPU cost model.

Retrieval sizes produced by this baseline are the paper's "best
compressibility" reference that HP-MDR trades a few percent against
(Fig. 8b, Fig. 11).
"""

from __future__ import annotations

import numpy as np

from repro.core.reconstruct import ReconstructionResult, Reconstructor
from repro.core.refactor import RefactorConfig, Refactorer
from repro.core.stream import RefactoredField
from repro.lossless.hybrid import HybridConfig


class MdrCpuBaseline:
    """MDR as configured in its original CPU implementation."""

    name = "MDR"

    def __init__(self, shape: tuple[int, ...]) -> None:
        config = RefactorConfig(
            design="locality_block",
            hybrid=HybridConfig(
                group_size=1,
                size_threshold=0,
                # An always-compress threshold: any ratio > ~0 accepts
                # the entropy coder, matching MDR's unconditional
                # per-plane compression.
                cr_threshold=1e-9,
            ),
        )
        self._refactorer = Refactorer(shape, config)

    def refactor(self, data: np.ndarray, name: str = "var") -> RefactoredField:
        """Refactor with MDR's per-plane, always-entropy-coded layout."""
        return self._refactorer.refactor(data, name=name)

    def retrieve(
        self, field: RefactoredField, tolerance: float
    ) -> ReconstructionResult:
        """Tolerance-driven retrieval (same guarantees as HP-MDR)."""
        return Reconstructor(field).reconstruct(tolerance=tolerance)
