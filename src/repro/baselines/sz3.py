"""SZ3-like prediction-based error-bounded compressor.

Follows the SZ family structure — predictor, linear quantization,
entropy coding — using cuSZ's *dual-quantization* formulation so the
hot loops are fully parallel (the GPU-shaped variant the paper's
multi-component baselines would use): values are quantized first
(``q = round(x / 2eb)``), then the 3-D Lorenzo predictor runs on the
*integer* codes, making prediction exact and the ``|x - x̂| ≤ eb``
guarantee unconditional.

Simplification vs SZ3 proper: only the Lorenzo predictor is provided
(SZ3's spline interpolation predictor is omitted); noted in
EXPERIMENTS.md.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baselines.intcodec import decode_int_array, encode_int_array
from repro.util.validation import check_dtype_floating

_MAGIC = b"SZ3L"
_HEADER_FMT = "<4sB3Id"


def _lorenzo_forward(q: np.ndarray) -> np.ndarray:
    """N-D Lorenzo residual = successive first differences per axis."""
    d = q
    for axis in range(q.ndim):
        d = np.diff(d, axis=axis, prepend=0)
    return d


def _lorenzo_inverse(d: np.ndarray) -> np.ndarray:
    """Inverse Lorenzo = cumulative sums per axis (reverse order)."""
    q = d
    for axis in range(d.ndim - 1, -1, -1):
        q = np.cumsum(q, axis=axis)
    return q


class Sz3Codec:
    """Error-bounded compression with dual-quantized Lorenzo."""

    name = "SZ3"

    def compress(self, data: np.ndarray, error_bound: float) -> bytes:
        """Compress with absolute L∞ bound *error_bound*."""
        check_dtype_floating(data)
        if error_bound <= 0:
            raise ValueError("error_bound must be > 0")
        if data.ndim != 3:
            raise ValueError("Sz3Codec expects 3-D data")
        max_abs = float(np.max(np.abs(data))) if data.size else 0.0
        if max_abs / (2.0 * error_bound) > 2.0 ** 60:
            raise ValueError(
                "error_bound too small for the data's dynamic range "
                "(quantization codes would overflow int64)"
            )
        q = np.round(
            data.astype(np.float64) / (2.0 * error_bound)
        ).astype(np.int64)
        codes = _lorenzo_forward(q)
        payload = encode_int_array(codes)
        is64 = 1 if data.dtype == np.float64 else 0
        header = struct.pack(
            _HEADER_FMT, _MAGIC, is64, *data.shape, error_bound
        )
        return header + payload

    def decompress(self, blob: bytes) -> np.ndarray:
        """Recover data within the recorded error bound."""
        head = struct.calcsize(_HEADER_FMT)
        magic, is64, n0, n1, n2, eb = struct.unpack_from(_HEADER_FMT, blob, 0)
        if magic != _MAGIC:
            raise ValueError("not an SZ3-like stream")
        codes = decode_int_array(blob[head:]).reshape(n0, n1, n2)
        q = _lorenzo_inverse(codes)
        data = q.astype(np.float64) * (2.0 * eb)
        return data.astype(np.float64 if is64 else np.float32)
