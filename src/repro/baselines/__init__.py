"""Comparator implementations (paper Section 7.1.2).

The paper's evaluation pits HP-MDR against the MDR CPU baseline and the
multi-component progressive framework of Magri & Lindstrom backed by
four error-bounded compressors. All comparators are built from scratch
here in their real algorithmic families:

* :mod:`~repro.baselines.zfp` — ZFP-like block-transform codec
  (4³ blocks, per-block exponent alignment, invertible integer lifting,
  negabinary bitplane truncation) with fixed-rate and fixed-accuracy
  modes;
* :mod:`~repro.baselines.sz3` — SZ3-like prediction codec with cuSZ's
  dual-quantization Lorenzo (fully parallel, exact error bound) and
  Huffman-coded quantization codes;
* :mod:`~repro.baselines.mgard_lossy` — single-error-bound MGARD:
  multilevel decomposition + level-aware quantization + Huffman;
* :mod:`~repro.baselines.multicomponent` — the progressive framework:
  iteratively compress residuals with decaying error bounds, fetch
  components until the target tolerance holds;
* :mod:`~repro.baselines.mdr_cpu` — the MDR baseline: the same
  refactoring algorithms configured as the original CPU implementation
  (per-plane entropy coding, no hybrid selection, no pipelining).
"""

from repro.baselines.mdr_cpu import MdrCpuBaseline
from repro.baselines.mgard_lossy import MgardLossyCodec
from repro.baselines.multicomponent import (
    ComponentStream,
    MultiComponentProgressive,
)
from repro.baselines.sz3 import Sz3Codec
from repro.baselines.zfp import ZfpCodec

__all__ = [
    "ZfpCodec",
    "Sz3Codec",
    "MgardLossyCodec",
    "MultiComponentProgressive",
    "ComponentStream",
    "MdrCpuBaseline",
]
