"""Analytic kernel cost model — regenerates the paper's performance shapes.

Every kernel time is ``max(memory_time, compute_time) / occupancy +
launch_overhead``, with the three bitplane designs differing exactly
where the paper says they differ:

* locality block — strided loads (encode) / scattered stores (decode)
  divide effective bandwidth; parallelism is ``N/B`` threads;
* register shuffling — fully coalesced but pays per-bit inter-thread
  communication cycles (per instruction variant; decoding requires the
  inverse bit exchange, a ``decode_comm_multiplier`` heavier); AMD adds
  contention that grows with input size (Fig. 6's MI250X droop);
* register block — coalesced and communication-free; ILP from the
  register-resident block keeps it saturated at lower occupancy.

Codec kernels (Huffman / RLE / Direct Copy) are modeled as fractions of
device bandwidth calibrated to the paper's measured Fig. 8 throughputs;
the *hybrid* codec's throughput is not a constant but emerges from the
actual per-method byte mix our Algorithm 2 implementation selects.

Device coefficient values are calibrated to the paper's reported ratios
(see EXPERIMENTS.md); the formulas themselves are the mechanism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bitplane.encoding import DESIGNS, SHUFFLE_VARIANTS
from repro.gpu.device import DeviceSpec

#: Per-bit baseline work of bitplane encoding (extract/position/store).
_BASE_BIT_CYCLES = 3.5

#: Codec throughput as a fraction of device memory bandwidth, calibrated
#: to the H100 measurements in the paper's Section 7.2.2 (Huffman 5.7 /
#: 4.8 GB/s, RLE 44.4 / 6.4 GB/s, DC near-copy speed).
_GPU_CODEC_EFF = {
    ("huffman", "compress"): 5.7 / 3350.0,
    ("huffman", "decompress"): 4.8 / 3350.0,
    ("rle", "compress"): 44.4 / 3350.0,
    ("rle", "decompress"): 6.4 / 3350.0,
    ("direct", "compress"): 110.0 / 3350.0,
    ("direct", "decompress"): 110.0 / 3350.0,
}

#: CPU codecs run at a larger fraction of their (much smaller) bandwidth
#: — multithreaded CPU entropy coders are bandwidth-starved, not
#: latency-starved.
_CPU_CODEC_EFF = {
    ("huffman", "compress"): 0.004,
    ("huffman", "decompress"): 0.005,
    ("rle", "compress"): 0.05,
    ("rle", "decompress"): 0.05,
    ("direct", "compress"): 0.25,
    ("direct", "decompress"): 0.25,
}


@dataclass(frozen=True)
class KernelCost:
    """A modeled kernel execution."""

    seconds: float
    bytes_processed: int

    @property
    def throughput_gbps(self) -> float:
        return self.bytes_processed / self.seconds / 1e9 if self.seconds else 0.0

    def __add__(self, other: "KernelCost") -> "KernelCost":
        return KernelCost(
            self.seconds + other.seconds,
            self.bytes_processed + other.bytes_processed,
        )


class CostModel:
    """Kernel-time estimates for one device."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    # -- helpers ---------------------------------------------------------
    def _mem_time(self, nbytes: float) -> float:
        return nbytes / (self.device.memory_bandwidth_gbps * 1e9)

    def _compute_time(self, ops: float) -> float:
        return ops / self.device.peak_lane_ops_per_s

    def _occupancy(self, threads: float, ilp: float = 1.0) -> float:
        return min(1.0, threads * ilp / self.device.resident_threads)

    def _finish(self, seconds: float, nbytes: int) -> KernelCost:
        return KernelCost(
            seconds + self.device.kernel_launch_us * 1e-6, nbytes
        )

    def _shuffle_bit_cycles(self, variant: str, num_elements: int) -> float:
        """Per-bit cycles of one shuffle-variant encode step."""
        d = self.device
        log_w = math.log2(max(d.warp_size, 2))
        if variant == "ballot":
            comm = d.shuffle_cost_cycles
        elif variant == "match_any":
            comm = d.shuffle_cost_cycles + 0.5
        elif variant == "shift":
            comm = 0.8 * log_w * d.shuffle_cost_cycles * 0.5
        elif variant == "reduce_add":
            if not d.has_reduce_unit:
                raise ValueError(
                    f"reduce_add is not implemented on {d.name} "
                    "(no hardware reduction unit)"
                )
            comm = 0.65 * d.shuffle_cost_cycles
        else:
            raise ValueError(
                f"variant must be one of {SHUFFLE_VARIANTS}, got {variant!r}"
            )
        # AMD communication contention grows with input size (Fig. 6).
        comm *= 1.0 + d.comm_contention * (num_elements / float(1 << 24))
        return _BASE_BIT_CYCLES + comm

    # -- bitplane kernels -------------------------------------------------
    def bitplane_encode(
        self,
        num_elements: int,
        num_bitplanes: int = 32,
        design: str = "register_block",
        variant: str = "ballot",
        elem_bytes: int = 4,
    ) -> KernelCost:
        """Modeled encode kernel (Fig. 6 / Fig. 7 forward direction)."""
        if design not in DESIGNS:
            raise ValueError(f"design must be one of {DESIGNS}")
        if num_elements <= 0:
            raise ValueError("num_elements must be > 0")
        n, b = num_elements, num_bitplanes
        in_bytes = n * elem_bytes
        out_bytes = n * (b + 1) / 8.0
        alu = self._compute_time(2.0 * n * b)

        if design == "register_block":
            mem = self._mem_time(in_bytes + out_bytes)
            occ = self._occupancy(n / b, ilp=4.0)
            t = max(mem, alu) / occ
        elif design == "locality_block":
            mem = self._mem_time(
                in_bytes * self.device.load_stride_penalty + out_bytes
            )
            occ = self._occupancy(n / b, ilp=1.0)
            t = max(mem, alu) / occ
        else:  # register_shuffle
            mem = self._mem_time(in_bytes + out_bytes)
            cycles = self._shuffle_bit_cycles(variant, n)
            comm = self._compute_time(n * b * cycles / 2.0)
            occ = self._occupancy(float(n), ilp=1.0)
            t = max(mem, alu + comm) / occ
        return self._finish(t, int(in_bytes))

    def bitplane_decode(
        self,
        num_elements: int,
        num_bitplanes: int = 32,
        design: str = "register_block",
        variant: str = "ballot",
        elem_bytes: int = 4,
    ) -> KernelCost:
        """Modeled decode kernel (Fig. 6 / Fig. 7 reverse direction)."""
        if design not in DESIGNS:
            raise ValueError(f"design must be one of {DESIGNS}")
        if num_elements <= 0:
            raise ValueError("num_elements must be > 0")
        n, b = num_elements, num_bitplanes
        plane_bytes = n * (b + 1) / 8.0
        out_bytes = n * elem_bytes
        alu = self._compute_time(2.0 * n * b)

        if design == "register_block":
            mem = self._mem_time(plane_bytes + out_bytes)
            occ = self._occupancy(n / b, ilp=4.0)
            t = max(mem, alu) / occ
        elif design == "locality_block":
            mem = self._mem_time(
                plane_bytes
                + out_bytes * self.device.store_scatter_penalty
            )
            occ = self._occupancy(n / b, ilp=1.0)
            t = max(mem, alu) / occ
        else:  # register_shuffle: inverse bit exchange is heavier
            mem = self._mem_time(plane_bytes + out_bytes)
            cycles = self._shuffle_bit_cycles(variant, n)
            cycles *= self.device.decode_comm_multiplier
            comm = self._compute_time(n * b * cycles / 2.0)
            occ = self._occupancy(float(n), ilp=1.0)
            t = max(mem, alu + comm) / occ
        return self._finish(t, int(out_bytes))

    # -- lossless codec kernels -------------------------------------------
    def lossless(
        self, method: str, nbytes: int, direction: str = "compress"
    ) -> KernelCost:
        """Modeled codec kernel over *nbytes* of (un)compressed planes."""
        if direction not in ("compress", "decompress"):
            raise ValueError("direction must be compress or decompress")
        table = (
            _GPU_CODEC_EFF if self.device.kind == "gpu" else _CPU_CODEC_EFF
        )
        try:
            eff = table[(method, direction)]
        except KeyError:
            raise ValueError(f"unknown lossless method {method!r}") from None
        throughput = self.device.memory_bandwidth_gbps * eff * 1e9
        return self._finish(nbytes / throughput, nbytes)

    def lossless_mix(
        self, bytes_by_method: dict[str, int], direction: str = "compress"
    ) -> KernelCost:
        """Aggregate codec time for a hybrid group mix (Fig. 8).

        The hybrid strategy's throughput is an emergent harmonic mean of
        its members weighted by the byte mix Algorithm 2 actually chose.
        """
        total = KernelCost(0.0, 0)
        for method, nbytes in sorted(bytes_by_method.items()):
            if nbytes:
                total = total + self.lossless(method, nbytes, direction)
        return total

    # -- multilevel transform kernels ---------------------------------------
    #: GPU-MGARD's measured gap from a pure streaming pass: per-axis
    #: interpolation + correction solves, coarse-level kernels too small
    #: to fill the device, and grid-processing bookkeeping.
    TRANSFORM_PASS_OVERHEAD = 8.0

    def decompose(
        self, num_elements: int, elem_bytes: int, ndim: int, levels: int
    ) -> KernelCost:
        """Multilevel decomposition: one read+write pass per axis per
        level, with geometrically shrinking level extents."""
        nbytes = num_elements * elem_bytes
        geo = sum((0.5 ** d) ** lv for d in (ndim,) for lv in range(max(levels, 1)))
        passes = 2.0 * ndim * geo * self.TRANSFORM_PASS_OVERHEAD
        t = self._mem_time(nbytes * passes)
        t += levels * ndim * self.device.kernel_launch_us * 1e-6
        return KernelCost(t + self.device.kernel_launch_us * 1e-6, nbytes)

    def recompose(
        self, num_elements: int, elem_bytes: int, ndim: int, levels: int
    ) -> KernelCost:
        """Recomposition mirrors decomposition's traffic."""
        return self.decompose(num_elements, elem_bytes, ndim, levels)

    # -- QoI kernels ----------------------------------------------------
    def qoi_error_estimate(
        self, num_elements: int, num_vars: int, elem_bytes: int = 8
    ) -> KernelCost:
        """Pointwise interval evaluation + max-reduction: streaming."""
        nbytes = num_elements * elem_bytes * (num_vars + 1)
        return self._finish(self._mem_time(nbytes * 2.0), nbytes)

    # -- data movement ----------------------------------------------------
    def dma(self, nbytes: int) -> float:
        """Host<->device copy seconds on one DMA engine."""
        return nbytes / (self.device.link_bandwidth_gbps * 1e9)

    def host_copy(self, nbytes: int) -> float:
        """Host-side (de)serialization memcpy seconds."""
        host_bw = max(self.device.memory_bandwidth_gbps * 0.05, 20.0)
        return nbytes / (host_bw * 1e9)
