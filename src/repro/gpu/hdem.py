"""Host-Device Execution Model (HDEM, paper Section 6.1).

One GPU exposes three concurrently usable engines: two DMA engines
(host→device and device→host copies) and one compute engine. Mixed
copy-compute stages (lossless codecs with internal (de)serialization —
the paper's yellow boxes) are exclusive: they may not overlap any other
task. :class:`HostDeviceModel` bundles a device spec, its cost model,
and an event simulator over the HDEM engine set.
"""

from __future__ import annotations

from repro.gpu.costmodel import CostModel
from repro.gpu.device import DeviceSpec
from repro.gpu.events import EventSimulator, Task, Timeline, serial_makespan

#: The HDEM engine names (Fig. 4 color coding).
H2D = "h2d"  # green: host-to-device DMA
D2H = "d2h"  # red: device-to-host DMA
COMPUTE = "compute"  # blue: kernels

HDEM_ENGINES = (H2D, D2H, COMPUTE)


class HostDeviceModel:
    """A simulated device with HDEM semantics."""

    def __init__(
        self,
        device: DeviceSpec,
        link_bandwidth_override_gbps: float | None = None,
    ) -> None:
        self.device = device
        self.cost = CostModel(device)
        self.simulator = EventSimulator(list(HDEM_ENGINES))
        if link_bandwidth_override_gbps is not None:
            if link_bandwidth_override_gbps <= 0:
                raise ValueError("link bandwidth override must be > 0")
        self._link_override = link_bandwidth_override_gbps

    @property
    def link_bandwidth_gbps(self) -> float:
        """Per-direction DMA bandwidth, possibly derated for contention."""
        if self._link_override is not None:
            return min(self._link_override, self.device.link_bandwidth_gbps)
        return self.device.link_bandwidth_gbps

    def dma_seconds(self, nbytes: int) -> float:
        """One-direction copy time on a (possibly contended) link."""
        return nbytes / (self.link_bandwidth_gbps * 1e9)

    def run(self, tasks: list[Task]) -> Timeline:
        """Schedule a task DAG on the HDEM engines and validate it."""
        timeline = self.simulator.run(tasks)
        timeline.validate(tasks)
        return timeline

    def serial_time(self, tasks: list[Task]) -> float:
        """The non-pipelined execution time of the same tasks."""
        return serial_makespan(tasks)
