"""Discrete-event task scheduler for modeled pipelines.

A :class:`Task` runs on one named engine for a fixed duration after its
dependencies finish; *exclusive* tasks (the paper's yellow copy-compute
mixed stages) cannot overlap anything on any engine. The scheduler is a
deterministic greedy list scheduler without backfilling — each ready
task is appended at the earliest feasible time — which matches how a
stream/queue-based GPU runtime executes a static DAG.

:class:`Timeline` records the schedule and validates the resource and
dependency constraints (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Task:
    """One pipeline stage instance."""

    name: str
    engine: str
    duration: float
    deps: tuple[str, ...] = ()
    exclusive: bool = False

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task {self.name}: duration must be >= 0")


@dataclass(frozen=True)
class ScheduledTask:
    name: str
    engine: str
    start: float
    end: float
    exclusive: bool


@dataclass
class Timeline:
    """A complete schedule."""

    tasks: dict[str, ScheduledTask] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return max((t.end for t in self.tasks.values()), default=0.0)

    def engine_busy_time(self, engine: str) -> float:
        return sum(
            t.end - t.start for t in self.tasks.values() if t.engine == engine
        )

    def validate(self, tasks: list[Task]) -> None:
        """Raise if the schedule violates any constraint."""
        by_name = {t.name: t for t in tasks}
        if set(by_name) != set(self.tasks):
            raise ValueError("timeline does not cover the task set")
        for t in tasks:
            sched = self.tasks[t.name]
            for dep in t.deps:
                if self.tasks[dep].end > sched.start + 1e-12:
                    raise ValueError(
                        f"dependency violated: {dep} ends after "
                        f"{t.name} starts"
                    )
        entries = sorted(self.tasks.values(), key=lambda s: s.start)
        for i, a in enumerate(entries):
            for b in entries[i + 1:]:
                if b.start >= a.end - 1e-12:
                    break
                overlap = min(a.end, b.end) - max(a.start, b.start)
                if overlap <= 1e-12:
                    continue
                if a.engine == b.engine:
                    raise ValueError(
                        f"engine overlap on {a.engine}: {a.name} / {b.name}"
                    )
                if a.exclusive or b.exclusive:
                    raise ValueError(
                        f"exclusive-task overlap: {a.name} / {b.name}"
                    )


class EventSimulator:
    """Greedy list scheduler over a fixed engine set."""

    def __init__(self, engines: list[str]) -> None:
        if not engines:
            raise ValueError("at least one engine required")
        self.engines = list(dict.fromkeys(engines))

    def run(self, tasks: list[Task]) -> Timeline:
        """Schedule *tasks*; returns a validated-constructible timeline."""
        by_name = {t.name: t for t in tasks}
        if len(by_name) != len(tasks):
            raise ValueError("duplicate task names")
        for t in tasks:
            if t.engine not in self.engines:
                raise ValueError(
                    f"task {t.name}: unknown engine {t.engine!r}"
                )
            for dep in t.deps:
                if dep not in by_name:
                    raise ValueError(f"task {t.name}: unknown dep {dep!r}")

        engine_free = {e: 0.0 for e in self.engines}
        done: dict[str, float] = {}
        timeline = Timeline()
        remaining = list(tasks)  # insertion order is the tiebreak
        guard = 0
        while remaining:
            guard += 1
            if guard > len(tasks) * (len(tasks) + 1):
                raise ValueError("dependency cycle detected")
            # Ready tasks: all deps scheduled.
            ready = [t for t in remaining if all(d in done for d in t.deps)]
            if not ready:
                raise ValueError("dependency cycle detected")
            # Earliest-feasible-start greedy choice.
            def feasible_start(t: Task) -> float:
                dep_ready = max((done[d] for d in t.deps), default=0.0)
                if t.exclusive:
                    return max(dep_ready, *engine_free.values())
                return max(dep_ready, engine_free[t.engine])

            chosen = min(ready, key=lambda t: (feasible_start(t),
                                               remaining.index(t)))
            start = feasible_start(chosen)
            end = start + chosen.duration
            if chosen.exclusive:
                for e in engine_free:
                    engine_free[e] = end
            else:
                engine_free[chosen.engine] = end
            done[chosen.name] = end
            timeline.tasks[chosen.name] = ScheduledTask(
                chosen.name, chosen.engine, start, end, chosen.exclusive
            )
            remaining.remove(chosen)
        return timeline


def serial_makespan(tasks: list[Task]) -> float:
    """Makespan when nothing overlaps (the non-pipelined baseline)."""
    return sum(t.duration for t in tasks)
