"""Simulated GPU substrate (the hardware HP-MDR was evaluated on).

No GPU is available in this reproduction, so the paper's performance
results are regenerated from an analytic device model rather than
hard-coded: :class:`~repro.gpu.device.DeviceSpec` captures the handful of
architectural parameters the paper's arguments rest on (memory bandwidth,
coalescing penalty, warp width, shuffle cost, reduction-unit presence,
DMA link speed), and :mod:`~repro.gpu.costmodel` turns those into kernel
times via the same mechanisms the paper reasons with — occupancy,
coalesced vs strided access, inter-thread communication counts.

:mod:`~repro.gpu.events` is a small discrete-event scheduler and
:mod:`~repro.gpu.hdem` instantiates the paper's Host-Device Execution
Model (two DMA engines + one compute engine) on top of it; the pipeline
package builds Figure 4's task DAGs against these engines.

See DESIGN.md ("Substitutions") for why this preserves the paper's
relative results.
"""

from repro.gpu.device import (
    CPU_EPYC_64,
    CPU_XEON_32,
    DEVICES,
    H100,
    MI250X,
    DeviceSpec,
    get_device,
)
from repro.gpu.events import EventSimulator, Task, Timeline
from repro.gpu.hdem import HDEM_ENGINES, HostDeviceModel

__all__ = [
    "DeviceSpec",
    "DEVICES",
    "H100",
    "MI250X",
    "CPU_EPYC_64",
    "CPU_XEON_32",
    "get_device",
    "Task",
    "Timeline",
    "EventSimulator",
    "HostDeviceModel",
    "HDEM_ENGINES",
]
