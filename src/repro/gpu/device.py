"""Device specifications for the platforms in the paper's evaluation.

Most parameters are public-datasheet figures (bandwidths, CU counts,
warp widths, clocks). The behavioural coefficients — ``load_stride_penalty``,
``store_scatter_penalty``, ``decode_comm_multiplier``, ``comm_contention``
— play exactly the roles the paper's Section 4 analysis assigns them
(uncoalesced loads hurt the locality-block design, scatter stores hurt
its decoder, inter-thread communication hurts the shuffle design and
contends harder on AMD at large inputs); their *values* are calibrated
so the cost model reproduces the paper's reported speedup ratios, as
documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters consumed by the kernel cost model."""

    name: str
    kind: str  # "gpu" or "cpu"
    memory_bandwidth_gbps: float  # device memory (HBM / DDR)
    link_bandwidth_gbps: float  # host<->device per DMA direction
    compute_units: int  # SMs / CUs / cores
    warp_size: int
    clock_ghz: float
    lanes_per_unit: int  # SIMT lanes (GPU) or SIMD width (CPU)
    load_stride_penalty: float  # strided-load bandwidth divisor
    store_scatter_penalty: float  # scattered-store bandwidth divisor
    shuffle_cost_cycles: float  # one warp-shuffle instruction
    decode_comm_multiplier: float  # shuffle decode comm vs encode comm
    has_reduce_unit: bool  # hardware warp reduction (H100 yes)
    comm_contention: float  # shuffle slowdown per 2^24 elements (AMD)
    kernel_launch_us: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in ("gpu", "cpu"):
            raise ValueError(f"kind must be gpu or cpu, got {self.kind!r}")
        for attr in ("memory_bandwidth_gbps", "link_bandwidth_gbps",
                     "compute_units", "warp_size", "clock_ghz",
                     "lanes_per_unit", "load_stride_penalty",
                     "store_scatter_penalty"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be > 0")

    @property
    def peak_lane_ops_per_s(self) -> float:
        """Aggregate scalar-op issue rate across all lanes."""
        return self.compute_units * self.lanes_per_unit * self.clock_ghz * 1e9

    @property
    def resident_threads(self) -> int:
        """Threads needed to saturate the device (occupancy knee)."""
        # ~16 resident warps per unit hide latency on modern GPUs;
        # CPUs saturate at one hardware thread per core.
        if self.kind == "gpu":
            return self.compute_units * self.warp_size * 16
        return self.compute_units


#: NVIDIA H100 SXM (Talapas GPU nodes): 3.35 TB/s HBM3, 132 SMs,
#: hardware warp reduction (__reduce_add_sync).
H100 = DeviceSpec(
    name="H100", kind="gpu",
    memory_bandwidth_gbps=3350.0, link_bandwidth_gbps=55.0,
    compute_units=132, warp_size=32, clock_ghz=1.76, lanes_per_unit=128,
    load_stride_penalty=3.25, store_scatter_penalty=8.5,
    shuffle_cost_cycles=2.0, decode_comm_multiplier=12.3,
    has_reduce_unit=True, comm_contention=0.0,
)

#: AMD MI250X, one GCD (Frontier): 1.6 TB/s HBM2e, 110 CUs, wavefront 64,
#: no reduction unit, shuffle contention grows with input (Fig. 6).
MI250X = DeviceSpec(
    name="MI250X", kind="gpu",
    memory_bandwidth_gbps=1600.0, link_bandwidth_gbps=36.0,
    compute_units=110, warp_size=64, clock_ghz=1.7, lanes_per_unit=64,
    load_stride_penalty=3.25, store_scatter_penalty=15.8,
    shuffle_cost_cycles=3.0, decode_comm_multiplier=19.0,
    has_reduce_unit=False, comm_contention=0.35,
)

#: 64-core AMD EPYC (Frontier host), used for the paper's CPU baselines.
CPU_EPYC_64 = DeviceSpec(
    name="EPYC-64", kind="cpu",
    memory_bandwidth_gbps=205.0, link_bandwidth_gbps=205.0,
    compute_units=64, warp_size=1, clock_ghz=2.0, lanes_per_unit=8,
    load_stride_penalty=2.0, store_scatter_penalty=3.0,
    shuffle_cost_cycles=10.0, decode_comm_multiplier=2.0,
    has_reduce_unit=False, comm_contention=0.0, kernel_launch_us=0.5,
)

#: 2x24-core Xeon restricted to 32 OpenMP threads (paper Fig. 11 setup).
CPU_XEON_32 = DeviceSpec(
    name="Xeon-32", kind="cpu",
    memory_bandwidth_gbps=150.0, link_bandwidth_gbps=150.0,
    compute_units=32, warp_size=1, clock_ghz=2.4, lanes_per_unit=8,
    load_stride_penalty=2.0, store_scatter_penalty=3.0,
    shuffle_cost_cycles=10.0, decode_comm_multiplier=2.0,
    has_reduce_unit=False, comm_contention=0.0, kernel_launch_us=0.5,
)

DEVICES: dict[str, DeviceSpec] = {
    d.name: d for d in (H100, MI250X, CPU_EPYC_64, CPU_XEON_32)
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by name with a helpful error."""
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(DEVICES)}"
        ) from None
