"""Execute real per-subdomain work in pipeline-DAG order.

Python/NumPy has no true engine concurrency, so the executor runs the
actual callables sequentially in a valid topological order while the
simulated timeline accounts for the concurrency a real HDEM device
would achieve — results are real, wall-clock is modeled. This keeps the
functional pipeline (used by examples and tests) and the performance
pipeline (used by the Fig. 9 benchmarks) in one code path.
"""

from __future__ import annotations

from typing import Any, Callable

import networkx as nx

from repro.gpu.events import Task, Timeline
from repro.gpu.hdem import HostDeviceModel


class PipelinedExecutor:
    """Run task actions in dependency order under a modeled timeline."""

    def __init__(self, model: HostDeviceModel) -> None:
        self.model = model

    def execute(
        self,
        tasks: list[Task],
        actions: dict[str, Callable[[], Any]] | None = None,
    ) -> tuple[Timeline, dict[str, Any]]:
        """Schedule *tasks*; run each task's action when its deps are done.

        ``actions`` maps task names to zero-argument callables; tasks
        without an action are timing-only. Returns the validated
        timeline and the action results by task name.
        """
        actions = actions or {}
        unknown = set(actions) - {t.name for t in tasks}
        if unknown:
            raise ValueError(f"actions for unknown tasks: {sorted(unknown)}")
        timeline = self.model.run(tasks)

        graph = nx.DiGraph()
        graph.add_nodes_from(t.name for t in tasks)
        for t in tasks:
            for d in t.deps:
                graph.add_edge(d, t.name)
        results: dict[str, Any] = {}
        for name in nx.topological_sort(graph):
            action = actions.get(name)
            if action is not None:
                results[name] = action()
        return timeline, results
