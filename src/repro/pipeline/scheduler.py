"""Stage costs and pipelined-vs-serial speedup evaluation (Fig. 9).

``StageCosts`` captures one sub-domain's five stage durations; the
``*_stage_costs`` helpers derive them from the kernel cost model plus
the *actual* compressed sizes and codec mix the hybrid compressor chose
for that sub-domain — so pipeline speedups respond to real data
characteristics, not canned numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.hdem import HostDeviceModel


@dataclass(frozen=True)
class StageCosts:
    """Per-sub-domain stage durations in seconds."""

    input_s: float
    kernel_s: float
    lossless_s: float
    serialize_s: float
    output_s: float

    def __post_init__(self) -> None:
        for name in ("input_s", "kernel_s", "lossless_s", "serialize_s",
                     "output_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def total(self) -> float:
        return (self.input_s + self.kernel_s + self.lossless_s
                + self.serialize_s + self.output_s)


def refactor_stage_costs(
    model: HostDeviceModel,
    num_elements: int,
    elem_bytes: int,
    ndim: int,
    num_levels: int,
    num_bitplanes: int,
    compressed_bytes: int,
    bytes_by_method: dict[str, int],
    design: str = "register_block",
) -> StageCosts:
    """Stage durations for refactoring one sub-domain."""
    raw_bytes = num_elements * elem_bytes
    plane_bytes = sum(bytes_by_method.values())
    kernel = (
        model.cost.decompose(num_elements, elem_bytes, ndim, num_levels)
        .seconds
        + model.cost.bitplane_encode(
            num_elements, num_bitplanes, design=design,
            elem_bytes=elem_bytes,
        ).seconds
    )
    lossless = model.cost.lossless_mix(bytes_by_method, "compress").seconds
    return StageCosts(
        input_s=model.dma_seconds(raw_bytes),
        kernel_s=kernel,
        lossless_s=lossless,
        serialize_s=model.cost.host_copy(max(compressed_bytes, plane_bytes // 8)),
        output_s=model.dma_seconds(compressed_bytes),
    )


def reconstruct_stage_costs(
    model: HostDeviceModel,
    num_elements: int,
    elem_bytes: int,
    ndim: int,
    num_levels: int,
    num_bitplanes: int,
    fetched_bytes: int,
    bytes_by_method: dict[str, int],
    design: str = "register_block",
) -> StageCosts:
    """Stage durations for reconstructing one sub-domain."""
    raw_bytes = num_elements * elem_bytes
    kernel = (
        model.cost.recompose(num_elements, elem_bytes, ndim, num_levels)
        .seconds
        + model.cost.bitplane_decode(
            num_elements, num_bitplanes, design=design,
            elem_bytes=elem_bytes,
        ).seconds
    )
    lossless = model.cost.lossless_mix(bytes_by_method, "decompress").seconds
    return StageCosts(
        input_s=model.dma_seconds(fetched_bytes),
        kernel_s=kernel,
        lossless_s=lossless,
        serialize_s=model.cost.host_copy(fetched_bytes),
        output_s=model.dma_seconds(raw_bytes),
    )


def pipeline_speedup(
    model: HostDeviceModel,
    stages: list[StageCosts],
    direction: str = "refactor",
) -> tuple[float, float, float]:
    """(serial_seconds, pipelined_seconds, speedup) for a stage list.

    The serial time executes the same tasks as a strict chain; the
    pipelined time schedules Fig. 4's DAG on the HDEM engines.
    """
    # Local import: dag.py imports StageCosts from this module.
    from repro.pipeline.dag import (
        build_reconstruct_dag,
        build_refactor_dag,
        serial_chain,
    )

    if direction == "refactor":
        dag = build_refactor_dag(stages, pipelined=True)
        base = build_refactor_dag(stages, pipelined=False)
    elif direction == "reconstruct":
        dag = build_reconstruct_dag(stages, pipelined=True)
        base = build_reconstruct_dag(stages, pipelined=False)
    else:
        raise ValueError("direction must be refactor or reconstruct")
    pipelined = model.run(dag).makespan
    serial = model.run(serial_chain(base)).makespan
    if pipelined <= 0:
        return serial, pipelined, 1.0
    return serial, pipelined, serial / pipelined
