"""Staged pipeline runtime for real progressive retrieval (Fig. 4).

The seed :mod:`repro.pipeline.dag`/:mod:`~repro.pipeline.scheduler`
modules model the paper's reconstruction pipeline — per sub-domain
``I_i → X_i → R_i → O_i`` with the pipelined dependencies
``X_{i-1} → I_i`` (prefetch delayed past the exclusive lossless stage)
and ``X_{i+1} → O_i`` — on simulated HDEM engines. This module runs the
same discipline on the *actual* retrieval stack, where the stages map
onto host-side resources instead of DMA engines:

=================  ====================================================
Fig. 4 stage       Retrieval runtime stage
=================  ====================================================
``I`` (input)      segment fetch: store I/O through the lazy field's
                   resolver (:class:`~repro.core.service.SegmentCache`,
                   :class:`~repro.core.faults.ResilientReader`), run on
                   this pipeline's small fetch thread pool
``X`` (lossless)   plane-group decompress + bitplane injection, on the
                   caller thread or the host's
                   :class:`~repro.core._pool.WorkerPoolMixin` pool
                   (the ``ExecutionBackend`` seam)
``R``/``O``        recompose + commit of the decoded block into the
                   stitched output, on the caller thread
=================  ====================================================

The window rules implement the DAG edges: a work item's fetch may start
while earlier items decode (``X_{i-1} → I_i`` — the fetch stage runs at
most ``window`` items ahead, bounding resident fetched-but-undecoded
data at O(window)), and commits retire in order as decodes complete
(``X_{i+1} → O_i``). The runtime never reorders *store accesses* within
a work item: each item's fetch is one sequential chain in the
sequential path's exact key order, so seeded fault schedules
(:class:`~repro.core.faults.FaultInjectingStore` draws are keyed on
per-key access counts) replay identically pipelined or not — the
foundation of the chaos-parity guarantee. A stage failure drains the
in-flight window and then surfaces on the earliest item, exactly where
the sequential fan-out would have raised it.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from queue import Empty, Queue

from repro.core._pool import track_thread_pool
from repro.core.errors import StoreError


def _fetch_level_chain(reconstructor, jobs, ready) -> None:
    """Fetch stage of one untiled step: a single sequential chain.

    Walks the step's levels ascending (groups ascending within each) —
    the sequential decode pass's exact store-access order — reporting
    each level's completion into the bounded *ready* queue, whose
    ``maxsize`` keeps the chain at most ``window`` levels ahead of the
    decode stage. A :class:`~repro.core.errors.StoreError` truncates
    the chain exactly where the sequential path would stop and travels
    to the decode loop as that level's outcome, so ``on_fault``
    semantics (and per-key store access counts) are unchanged.
    """
    for job in jobs:
        idx = job[0]
        try:
            reconstructor.fetch_level_groups(idx, job[2])
        except StoreError as exc:
            ready.put((idx, exc))
            return
        ready.put((idx, None))


class _LevelWindowRunner:
    """``level_runner`` for :meth:`Reconstructor.decode_step`.

    Drives one untiled step with its fetch chain on the pipeline's
    fetch pool while the caller thread decodes levels in order as their
    segments land — the ``X_{i-1} → I_i`` overlap within a step,
    generalizing the service's fire-and-forget next-group prefetch
    into a scheduled window.
    """

    def __init__(self, pipeline: "RetrievalPipeline", reconstructor):
        self._pipeline = pipeline
        self._reconstructor = reconstructor

    def __call__(self, jobs, decode_level):
        ready: Queue = Queue(maxsize=self._pipeline.window)
        chain = self._pipeline._fetch_executor().submit(
            _fetch_level_chain, self._reconstructor, jobs, ready
        )
        fetched: dict[int, BaseException | None] = {}
        try:
            outcomes = []
            for job in jobs:
                idx = job[0]
                while idx not in fetched:
                    i, err = ready.get()
                    fetched[i] = err
                err = fetched[idx]
                if err is not None:
                    # Raise at the level the sequential pass would have
                    # faulted on; decode_step's on_fault policy takes
                    # over (degrade re-runs the committed, store-free
                    # refinement). Levels decoded before this point did
                    # no harm: nothing commits until the step succeeds.
                    raise err
                outcomes.append(decode_level(job))
            return outcomes
        finally:
            # Drain: the chain must not outlive the step. It can be
            # blocked on the bounded queue, so keep consuming until it
            # settles; its exception (if any) is retrieved to keep the
            # executor quiet — StoreErrors already travel via `ready`.
            while not chain.done():
                try:
                    entry = ready.get(timeout=0.05)
                    fetched[entry[0]] = entry[1]
                except Empty:
                    pass
            chain.exception()


class RetrievalPipeline:
    """Bounded-window fetch/decode/commit driver for retrieval steps.

    Owns a small dedicated fetch thread pool (store I/O blocks on the
    network/disk and releases the GIL, so a couple of fetch workers
    overlap many tiles' latency) and the in-flight window bound.
    Decode placement follows the host's execution backend: the caller
    thread (serial) or the host's worker pool (threads); the process
    backend keeps its own worker-resident overlap and does not route
    through this class.

    One instance is reusable across steps and sessions;
    :meth:`close` tears the fetch pool down (idempotent). Thread
    safety: the fetch pool handle is guarded by the instance lock;
    ``window``/``fetch_workers`` are immutable after construction.
    """

    def __init__(self, window: int = 4, fetch_workers: int = 2) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if fetch_workers < 1:
            raise ValueError("fetch_workers must be >= 1")
        self.window = int(window)
        self.fetch_workers = int(fetch_workers)
        self._lock = threading.Lock()
        self._fetch_pool: ThreadPoolExecutor | None = None

    def _fetch_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._fetch_pool is None:
                pool = ThreadPoolExecutor(max_workers=self.fetch_workers)
                track_thread_pool(pool)
                self._fetch_pool = pool
            return self._fetch_pool

    def level_runner(self, reconstructor) -> _LevelWindowRunner:
        """A ``decode_step`` level runner bound to this pipeline."""
        return _LevelWindowRunner(self, reconstructor)

    def run(
        self,
        items,
        fetch,
        decode,
        commit=None,
        decode_pool=None,
        decode_workers: int = 1,
    ) -> list:
        """Stream *items* through ``fetch → decode → commit``.

        ``fetch(item)`` runs on this pipeline's fetch pool, at most
        ``window`` items in flight (fetched or decoding, not yet
        committed) — stage contract: capture expected store faults in
        the returned outcome rather than raising, so they surface in
        item order at decode time. ``decode(item, fetched)`` runs on
        the caller thread, or on *decode_pool* with up to
        *decode_workers* concurrent decodes when given. ``commit(item,
        decoded)`` always runs on the caller thread (output writes stay
        single-threaded); its return value, when a commit hook is
        given, replaces the stored result — letting the caller retire
        bulky decoded blocks immediately instead of retaining them.

        Results keep item order. An exception from any stage stops new
        work, drains the in-flight window, and propagates — because
        items are retired strictly in item order, the first exception
        raised is the earliest item's failure, matching the sequential
        fan-out's failure choice.
        """
        items = list(items)
        results: list = [None] * len(items)
        pool = self._fetch_executor()
        fetches: deque = deque()  # (index, future), item order
        decodes: deque = deque()  # (index, future), item order
        cursor = 0
        held = 0  # head popped off `fetches`, decoding on this thread
        if decode_pool is None:
            decode_workers = 1

        def refill() -> None:
            nonlocal cursor
            while (
                cursor < len(items)
                and len(fetches) + len(decodes) + held < self.window
            ):
                fetches.append((cursor, pool.submit(fetch, items[cursor])))
                cursor += 1

        def retire(index: int, value) -> None:
            if commit is not None:
                value = commit(items[index], value)
            results[index] = value

        try:
            refill()
            while fetches:
                index, fut = fetches.popleft()
                fetched = fut.result()
                if decode_pool is None:
                    held = 1
                    refill()  # fetch ahead while this item decodes
                    retire(index, decode(items[index], fetched))
                    held = 0
                    refill()  # window == 1: no fetch-ahead slot existed
                    continue
                decodes.append(
                    (index, decode_pool.submit(decode, items[index], fetched))
                )
                refill()
                while decodes and (
                    decodes[0][1].done() or len(decodes) >= decode_workers
                ):
                    i, dfut = decodes.popleft()
                    retire(i, dfut.result())
                    refill()
            while decodes:
                i, dfut = decodes.popleft()
                retire(i, dfut.result())
        except BaseException:
            # Drain the window before propagating: no stage may outlive
            # the step (a fetch landing after the caller moved on would
            # race the session's next step).
            for _, fut in fetches:
                fut.cancel()
            for _, fut in fetches:
                try:
                    fut.result()
                except BaseException:
                    pass  # drained failures surface via the primary error
            for _, dfut in decodes:
                try:
                    dfut.result()
                except BaseException:
                    pass  # drained failures surface via the primary error
            raise
        return results

    def close(self) -> None:
        """Shut down the fetch pool (idempotent)."""
        with self._lock:
            pool, self._fetch_pool = self._fetch_pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "RetrievalPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def pipelined_reconstruct(
    reconstructor,
    pipeline: RetrievalPipeline,
    tolerance: float | None = None,
    relative: bool = False,
    plan=None,
    on_fault: str = "raise",
):
    """One pipelined progressive step on an untiled ``Reconstructor``.

    Equivalent to ``reconstructor.reconstruct(...)`` — bit-identical
    results, counters, and fault semantics — with the step's segment
    fetches running one level ahead of decode through *pipeline*'s
    window (see :class:`_LevelWindowRunner`).
    """
    if on_fault not in ("raise", "degrade"):
        raise ValueError(
            f"on_fault must be 'raise' or 'degrade', got {on_fault!r}"
        )
    step = reconstructor.plan_step(tolerance, relative=relative, plan=plan)
    return reconstructor.decode_step(
        step,
        on_fault=on_fault,
        level_runner=pipeline.level_runner(reconstructor),
    )


__all__ = [
    "RetrievalPipeline",
    "pipelined_reconstruct",
]
