"""Pipeline optimization (paper Section 6.1) and multi-GPU scaling.

Large datasets are processed as sub-domains that stream through the
HDEM engines; Figure 4's dependency DAGs let input prefetch, kernels,
and output copies overlap while keeping the exclusive (yellow) lossless
stages correct. This package provides:

* :mod:`~repro.pipeline.dag` — the exact Fig. 4(a)/(b) DAG builders for
  refactoring and reconstruction, plus their serial baselines;
* :mod:`~repro.pipeline.scheduler` — stage-cost derivation from the
  kernel cost model and pipelined-vs-serial speedup evaluation (Fig. 9);
* :mod:`~repro.pipeline.executor` — runs *real* per-subdomain work in
  DAG order while accounting simulated time (results are real, timing
  is modeled);
* :mod:`~repro.pipeline.multigpu` — single-node weak scaling with host
  link contention and barrier overhead (Fig. 10, Fig. 14);
* :mod:`~repro.pipeline.retrieval` — the Fig. 4 stage discipline run on
  the *real* retrieval stack: bounded-window fetch/decode/recompose
  overlap for tiled and untiled progressive steps, bit-identical to the
  sequential paths.
"""

from repro.pipeline.dag import (
    build_reconstruct_dag,
    build_refactor_dag,
    serial_chain,
)
from repro.pipeline.executor import PipelinedExecutor
from repro.pipeline.multigpu import (
    FRONTIER_NODE,
    TALAPAS_NODE,
    NodeSpec,
    weak_scaling,
)
from repro.pipeline.retrieval import (
    RetrievalPipeline,
    pipelined_reconstruct,
)
from repro.pipeline.scheduler import (
    StageCosts,
    pipeline_speedup,
    reconstruct_stage_costs,
    refactor_stage_costs,
)

__all__ = [
    "build_refactor_dag",
    "build_reconstruct_dag",
    "serial_chain",
    "StageCosts",
    "refactor_stage_costs",
    "reconstruct_stage_costs",
    "pipeline_speedup",
    "PipelinedExecutor",
    "RetrievalPipeline",
    "pipelined_reconstruct",
    "NodeSpec",
    "TALAPAS_NODE",
    "FRONTIER_NODE",
    "weak_scaling",
]
