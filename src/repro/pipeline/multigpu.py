"""Single-node multi-GPU weak scaling (Fig. 10) and GPU-vs-CPU retrieval
comparison (Fig. 14).

Each GPU runs its own HDEM pipeline on a fixed-size shard (weak
scaling). Two node-level effects bound the efficiency, exactly the ones
the paper's numbers reflect:

* host-link contention — the node's aggregate host memory/IO bandwidth
  caps the sum of per-GPU DMA streams, so each GPU's effective link is
  ``min(link, host_total / num_gpus)``;
* synchronization — a per-step barrier whose cost grows with the GPU
  count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpu.device import CPU_EPYC_64, H100, MI250X, DeviceSpec
from repro.gpu.hdem import HostDeviceModel
from repro.pipeline.scheduler import StageCosts, pipeline_speedup


@dataclass(frozen=True)
class NodeSpec:
    """One compute node of the evaluation systems."""

    name: str
    device: DeviceSpec
    max_gpus: int
    host_link_total_gbps: float  # aggregate host<->devices bandwidth
    barrier_us_per_step: float = 40.0

    def __post_init__(self) -> None:
        if self.max_gpus < 1:
            raise ValueError("max_gpus must be >= 1")
        if self.host_link_total_gbps <= 0:
            raise ValueError("host_link_total_gbps must be > 0")


#: Talapas GPU node: 4x H100; host fabric + barrier calibrated to the
#: paper's ~95% weak-scaling efficiency at 4 GPUs.
TALAPAS_NODE = NodeSpec("Talapas-H100", H100, 4, 195.0,
                        barrier_us_per_step=60.0)

#: Frontier node: 8 MI250X GCDs; calibrated to ~89% at 8 GCDs.
FRONTIER_NODE = NodeSpec("Frontier-MI250X", MI250X, 8, 190.0,
                         barrier_us_per_step=110.0)

#: Frontier host CPU (the paper's 64-core comparison partner in Fig. 14).
FRONTIER_CPU = CPU_EPYC_64


@dataclass
class ScalingPoint:
    """One weak-scaling measurement."""

    num_gpus: int
    makespan_s: float
    throughput_gbps: float
    speedup: float
    efficiency: float


def effective_link_gbps(node: NodeSpec, num_gpus: int) -> float:
    """Per-GPU DMA bandwidth under host-link contention."""
    if not 1 <= num_gpus <= node.max_gpus:
        raise ValueError(
            f"num_gpus must be in [1, {node.max_gpus}] for {node.name}"
        )
    return min(
        node.device.link_bandwidth_gbps,
        node.host_link_total_gbps / num_gpus,
    )


def model_for(node: NodeSpec, num_gpus: int) -> HostDeviceModel:
    """HDEM model of one GPU within an *num_gpus*-wide node run."""
    return HostDeviceModel(
        node.device,
        link_bandwidth_override_gbps=effective_link_gbps(node, num_gpus),
    )


def weak_scaling(
    node: NodeSpec,
    stages: list[StageCosts],
    per_gpu_bytes: int,
    gpu_counts: list[int] | None = None,
    direction: str = "refactor",
) -> list[ScalingPoint]:
    """Weak-scaling sweep: fixed per-GPU work, growing GPU count.

    ``stages`` describe one GPU's sub-domain pipeline at *uncontended*
    link bandwidth; DMA-bound stages stretch as contention grows.
    Returns one point per count with throughput, speedup vs 1 GPU, and
    efficiency vs ideal.
    """
    counts = gpu_counts or list(range(1, node.max_gpus + 1))
    base_link = node.device.link_bandwidth_gbps
    points: list[ScalingPoint] = []
    base_makespan: float | None = None
    for k in counts:
        link = effective_link_gbps(node, k)
        stretch = base_link / link
        scaled = [
            StageCosts(
                input_s=s.input_s * stretch,
                kernel_s=s.kernel_s,
                lossless_s=s.lossless_s,
                serialize_s=s.serialize_s,
                output_s=s.output_s * stretch,
            )
            for s in stages
        ]
        model = model_for(node, k)
        _, pipelined, _ = pipeline_speedup(model, scaled, direction)
        barrier = node.barrier_us_per_step * 1e-6 * math.log2(k + 1)
        makespan = pipelined + barrier * len(stages)
        if base_makespan is None:
            base_makespan = makespan
        total_bytes = per_gpu_bytes * k
        speedup = base_makespan / makespan * k
        points.append(
            ScalingPoint(
                num_gpus=k,
                makespan_s=makespan,
                throughput_gbps=total_bytes / makespan / 1e9,
                speedup=speedup,
                efficiency=speedup / k,
            )
        )
    return points
