"""Figure 4's task DAGs for pipelined refactoring and reconstruction.

Refactoring, per sub-domain ``i`` (engine in parentheses):

    I_i (h2d)  — copy input sub-domain to device           [green]
    D_i (comp) — multilevel decomposition + bitplane encode [blue]
    Z_i (excl) — hybrid lossless compression                [yellow]
    S_i (h2d)  — serialization / metadata embedding         [uses DMA]
    O_i (d2h)  — copy refactored output to host             [red]

Chain ``I→D→Z→S→O`` plus the paper's two pipelining dependencies:
``I_{i+1} → Z_i`` (the prefetch, overlapped with D_i, must land before
the exclusive lossless stage) and ``S_{i-1} → I_{i+1}`` (a prefetch may
start only once the DMA engine is free after the previous
serialization — which also bounds prefetch depth to the triple-buffer
set). Output copies overlap the next sub-domain's kernels.

Reconstruction, per sub-domain ``i``:

    I_i (h2d)  — copy refactored input to device
    X_i (excl) — deserialization + lossless decompression   [yellow]
    R_i (comp) — bitplane decode + multilevel recomposition
    O_i (d2h)  — copy reconstructed data to host

Chain ``I→X→R→O`` plus ``X_i → I_{i+1}`` (delay prefetch past the
yellow stage) and ``X_{i+1} → O_i`` (delay the store of iteration ``i``
until the next yellow stage is done, overlapping it with ``R_{i+1}``).
"""

from __future__ import annotations

import networkx as nx

from repro.gpu.events import Task
from repro.gpu.hdem import COMPUTE, D2H, H2D
from repro.pipeline.scheduler import StageCosts


def build_refactor_dag(
    stages: list[StageCosts], pipelined: bool = True
) -> list[Task]:
    """Fig. 4(a): the refactoring pipeline over *stages* sub-domains."""
    tasks: list[Task] = []
    for i, s in enumerate(stages):
        deps_i: list[str] = []
        if pipelined and i > 1:
            deps_i = [f"S{i-2}"]  # buffer reuse bounds prefetch depth
        if not pipelined and i > 0:
            deps_i = [f"O{i-1}"]
        tasks.append(Task(f"I{i}", H2D, s.input_s, tuple(deps_i)))
        tasks.append(Task(f"D{i}", COMPUTE, s.kernel_s, (f"I{i}",)))
        z_deps = [f"D{i}"]
        if pipelined and i + 1 < len(stages):
            z_deps.append(f"I{i+1}")  # prefetch before the yellow stage
        tasks.append(
            Task(f"Z{i}", COMPUTE, s.lossless_s, tuple(z_deps),
                 exclusive=True)
        )
        tasks.append(Task(f"S{i}", H2D, s.serialize_s, (f"Z{i}",)))
        tasks.append(Task(f"O{i}", D2H, s.output_s, (f"S{i}",)))
    _check_acyclic(tasks)
    return tasks


def build_reconstruct_dag(
    stages: list[StageCosts], pipelined: bool = True
) -> list[Task]:
    """Fig. 4(b): the reconstruction pipeline over *stages* sub-domains."""
    tasks: list[Task] = []
    for i, s in enumerate(stages):
        deps_i: list[str] = [f"X{i-1}"] if (pipelined and i > 0) else []
        if not pipelined and i > 0:
            deps_i = [f"O{i-1}"]
        tasks.append(Task(f"I{i}", H2D, s.input_s, tuple(deps_i)))
        tasks.append(
            Task(f"X{i}", COMPUTE, s.lossless_s, (f"I{i}",), exclusive=True)
        )
        tasks.append(Task(f"R{i}", COMPUTE, s.kernel_s, (f"X{i}",)))
        o_deps = [f"R{i}"]
        if pipelined and i + 1 < len(stages):
            o_deps.append(f"X{i+1}")
        tasks.append(Task(f"O{i}", D2H, s.output_s, tuple(o_deps)))
    _check_acyclic(tasks)
    return tasks


def serial_chain(tasks: list[Task]) -> list[Task]:
    """Rewrite a DAG as a strict serial chain (the no-pipeline baseline).

    Keeps engines and durations; every task depends on the previous one
    in list order, so nothing overlaps.
    """
    out: list[Task] = []
    prev: str | None = None
    for t in tasks:
        deps = (prev,) if prev is not None else ()
        out.append(
            Task(t.name, t.engine, t.duration, deps, exclusive=t.exclusive)
        )
        prev = t.name
    return out


def _check_acyclic(tasks: list[Task]) -> None:
    graph = nx.DiGraph()
    graph.add_nodes_from(t.name for t in tasks)
    for t in tasks:
        for d in t.deps:
            graph.add_edge(d, t.name)
    if not nx.is_directed_acyclic_graph(graph):
        cycle = nx.find_cycle(graph)
        raise ValueError(f"pipeline DAG has a cycle: {cycle}")


def critical_path_seconds(tasks: list[Task]) -> float:
    """Length of the dependency-only critical path (a lower bound on any
    schedule's makespan)."""
    graph = nx.DiGraph()
    durations = {t.name: t.duration for t in tasks}
    graph.add_nodes_from(durations)
    for t in tasks:
        for d in t.deps:
            graph.add_edge(d, t.name)
    longest: dict[str, float] = {}
    for node in nx.topological_sort(graph):
        preds = [longest[p] for p in graph.predecessors(node)]
        longest[node] = durations[node] + max(preds, default=0.0)
    return max(longest.values(), default=0.0)
