"""Tests for vectorized bit packing/peeking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lossless.bitio import MAX_PEEK_WIDTH, pack_varlen_bits, peek_bits


class TestPackVarlen:
    def test_single_code(self):
        out = pack_varlen_bits(
            np.array([0b101], dtype=np.uint64),
            np.array([3]),
            np.array([0]),
            3,
        )
        assert out[0] == 0b10100000

    def test_adjacent_codes(self):
        out = pack_varlen_bits(
            np.array([0b1, 0b01, 0b111], dtype=np.uint64),
            np.array([1, 2, 3]),
            np.array([0, 1, 3]),
            6,
        )
        assert out[0] == 0b10111100

    def test_positions_with_gap(self):
        out = pack_varlen_bits(
            np.array([0b11], dtype=np.uint64),
            np.array([2]),
            np.array([8]),
            10,
        )
        assert out.tolist() == [0, 0b11000000]

    def test_empty(self):
        out = pack_varlen_bits(
            np.empty(0, np.uint64), np.empty(0, int), np.empty(0, int), 0
        )
        assert out.size == 0

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            pack_varlen_bits(
                np.array([1], dtype=np.uint64),
                np.array([4]),
                np.array([0]),
                3,
            )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pack_varlen_bits(
                np.array([1], dtype=np.uint64),
                np.array([1, 2]),
                np.array([0]),
                8,
            )


class TestPeekBits:
    def test_reads_back_packed(self):
        stream = np.array([0b10110100, 0b01000000], dtype=np.uint8)
        assert peek_bits(stream, np.array([0]), 4)[0] == 0b1011
        assert peek_bits(stream, np.array([4]), 4)[0] == 0b0100
        assert peek_bits(stream, np.array([6]), 4)[0] == 0b0001

    def test_cross_byte_boundary(self):
        stream = np.array([0xFF, 0x00, 0xFF], dtype=np.uint8)
        assert peek_bits(stream, np.array([4]), 16)[0] == 0xF00F

    def test_past_end_reads_zero(self):
        stream = np.array([0xFF], dtype=np.uint8)
        assert peek_bits(stream, np.array([100]), 8)[0] == 0
        assert peek_bits(stream, np.array([6]), 8)[0] == 0b11000000

    def test_vectorized_positions(self):
        stream = np.array([0b10101010], dtype=np.uint8)
        vals = peek_bits(stream, np.arange(8), 1)
        assert vals.tolist() == [1, 0, 1, 0, 1, 0, 1, 0]

    def test_width_validation(self):
        stream = np.zeros(4, dtype=np.uint8)
        with pytest.raises(ValueError):
            peek_bits(stream, np.array([0]), 0)
        with pytest.raises(ValueError):
            peek_bits(stream, np.array([0]), MAX_PEEK_WIDTH + 1)

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            peek_bits(np.zeros(4, np.uint8), np.array([-1]), 4)


@settings(max_examples=50, deadline=None)
@given(
    lengths=st.lists(st.integers(1, 24), min_size=1, max_size=200),
    seed=st.integers(0, 2**31),
)
def test_property_pack_then_peek_roundtrip(lengths, seed):
    """Packing codes back-to-back then peeking each one recovers it."""
    rng = np.random.default_rng(seed)
    lengths = np.asarray(lengths, dtype=np.int64)
    codes = np.array(
        [int(rng.integers(0, 1 << l)) for l in lengths], dtype=np.uint64
    )
    positions = np.cumsum(lengths) - lengths
    total = int(lengths.sum())
    stream = pack_varlen_bits(codes, lengths, positions, total)
    for code, length, pos in zip(codes, lengths, positions):
        got = peek_bits(stream, np.array([pos]), int(length))[0]
        assert got == code
