"""Tests for sub-domain tiling (the large-data streaming path)."""

import numpy as np
import pytest

from repro.core.refactor import RefactorConfig
from repro.core.tiling import (
    TiledReconstructor,
    TiledRefactorer,
    plan_tiles,
)
from repro.data import generators as gen


@pytest.fixture(scope="module")
def field():
    return gen.gaussian_random_field((20, 24, 28), -2.5, seed=9,
                                     dtype=np.float64)


class TestPlanTiles:
    def test_exact_cover(self):
        tiles = plan_tiles((16, 16), (8, 8))
        assert len(tiles) == 4
        covered = np.zeros((16, 16), dtype=int)
        for t in tiles:
            covered[t.slices()] += 1
        assert np.all(covered == 1)

    def test_ragged_cover(self):
        tiles = plan_tiles((10, 7), (4, 4))
        covered = np.zeros((10, 7), dtype=int)
        for t in tiles:
            covered[t.slices()] += 1
        assert np.all(covered == 1)
        shapes = {t.shape for t in tiles}
        assert (2, 3) in shapes  # boundary remainder tile

    def test_single_tile(self):
        tiles = plan_tiles((8, 8), (16, 16))
        assert len(tiles) == 1
        assert tiles[0].shape == (8, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_tiles((8, 8), (4,))
        with pytest.raises(ValueError):
            plan_tiles((8, 8), (0, 4))


class TestTiledPipeline:
    def test_roundtrip_error_control(self, field):
        refac = TiledRefactorer((12, 12, 12))
        tiled = refac.refactor(field)
        recon = TiledReconstructor(tiled)
        for tol in (1e-1, 1e-3, 1e-5):
            data, bound = recon.reconstruct(tolerance=tol)
            actual = float(np.max(np.abs(data - field)))
            assert bound <= tol
            assert actual <= tol

    def test_relative_tolerance(self, field):
        refac = TiledRefactorer((12, 12, 12))
        tiled = refac.refactor(field)
        recon = TiledReconstructor(tiled)
        data, _ = recon.reconstruct(tolerance=1e-3, relative=True)
        actual = float(np.max(np.abs(data - field)))
        assert actual <= 1e-3 * tiled.value_range

    def test_progressive_increments(self, field):
        refac = TiledRefactorer((12, 12, 12))
        tiled = refac.refactor(field)
        recon = TiledReconstructor(tiled)
        recon.reconstruct(tolerance=1e-1)
        coarse_bytes = recon.fetched_bytes
        recon.reconstruct(tolerance=1e-4)
        assert recon.fetched_bytes > coarse_bytes

    def test_tile_count_and_naming(self, field):
        refac = TiledRefactorer((12, 12, 12))
        tiled = refac.refactor(field, name="rho")
        assert len(tiled.fields) == 2 * 2 * 3
        assert tiled.fields[0].name.startswith("rho.T")

    def test_boundary_tiles_share_refactorers(self, field):
        refac = TiledRefactorer((12, 12, 12))
        refac.refactor(field)
        # 20x24x28 with 12^3 tiles -> shapes {12,8}x{12}x{12,4} etc.
        assert len(refac._refactorers) <= 8

    def test_matches_untiled_guarantee(self, field):
        """Tiled and untiled reconstructions both honor the same bound
        (values differ — different hierarchies — but both are valid)."""
        from repro.core.refactor import refactor
        from repro.core.reconstruct import reconstruct

        tiled = TiledRefactorer((12, 12, 12)).refactor(field)
        data_t, _ = TiledReconstructor(tiled).reconstruct(tolerance=1e-3)
        data_u = reconstruct(refactor(field), tolerance=1e-3).data
        assert np.max(np.abs(data_t - field)) <= 1e-3
        assert np.max(np.abs(data_u - field)) <= 1e-3

    def test_config_threads_through(self, field):
        refac = TiledRefactorer(
            (12, 12, 12), RefactorConfig(signed_encoding="negabinary")
        )
        tiled = refac.refactor(field)
        assert tiled.fields[0].levels[0].signed_encoding == "negabinary"
        data, bound = TiledReconstructor(tiled).reconstruct(tolerance=1e-2)
        assert np.max(np.abs(data - field)) <= 1e-2

    def test_rejects_integer_data(self):
        with pytest.raises(TypeError):
            TiledRefactorer((4, 4)).refactor(np.zeros((8, 8), dtype=int))
