"""Tests for sub-domain tiling (the large-data streaming path)."""

import numpy as np
import pytest

from repro.core.refactor import RefactorConfig
from repro.core.tiling import (
    TiledReconstructor,
    TiledRefactorer,
    plan_tiles,
)
from repro.data import generators as gen


@pytest.fixture(scope="module")
def field():
    return gen.gaussian_random_field((20, 24, 28), -2.5, seed=9,
                                     dtype=np.float64)


class TestPlanTiles:
    def test_exact_cover(self):
        tiles = plan_tiles((16, 16), (8, 8))
        assert len(tiles) == 4
        covered = np.zeros((16, 16), dtype=int)
        for t in tiles:
            covered[t.slices()] += 1
        assert np.all(covered == 1)

    def test_ragged_cover(self):
        tiles = plan_tiles((10, 7), (4, 4))
        covered = np.zeros((10, 7), dtype=int)
        for t in tiles:
            covered[t.slices()] += 1
        assert np.all(covered == 1)
        shapes = {t.shape for t in tiles}
        assert (2, 3) in shapes  # boundary remainder tile

    def test_single_tile(self):
        tiles = plan_tiles((8, 8), (16, 16))
        assert len(tiles) == 1
        assert tiles[0].shape == (8, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_tiles((8, 8), (4,))
        with pytest.raises(ValueError):
            plan_tiles((8, 8), (0, 4))


class TestTiledPipeline:
    def test_roundtrip_error_control(self, field):
        refac = TiledRefactorer((12, 12, 12))
        tiled = refac.refactor(field)
        recon = TiledReconstructor(tiled)
        for tol in (1e-1, 1e-3, 1e-5):
            data, bound = recon.reconstruct(tolerance=tol)
            actual = float(np.max(np.abs(data - field)))
            assert bound <= tol
            assert actual <= tol

    def test_relative_tolerance(self, field):
        refac = TiledRefactorer((12, 12, 12))
        tiled = refac.refactor(field)
        recon = TiledReconstructor(tiled)
        data, _ = recon.reconstruct(tolerance=1e-3, relative=True)
        actual = float(np.max(np.abs(data - field)))
        assert actual <= 1e-3 * tiled.value_range

    def test_progressive_increments(self, field):
        refac = TiledRefactorer((12, 12, 12))
        tiled = refac.refactor(field)
        recon = TiledReconstructor(tiled)
        recon.reconstruct(tolerance=1e-1)
        coarse_bytes = recon.fetched_bytes
        recon.reconstruct(tolerance=1e-4)
        assert recon.fetched_bytes > coarse_bytes

    def test_tile_count_and_naming(self, field):
        refac = TiledRefactorer((12, 12, 12))
        tiled = refac.refactor(field, name="rho")
        assert len(tiled.fields) == 2 * 2 * 3
        assert tiled.fields[0].name.startswith("rho.T")

    def test_boundary_tiles_share_refactorers(self, field):
        refac = TiledRefactorer((12, 12, 12))
        refac.refactor(field)
        # 20x24x28 with 12^3 tiles -> shapes {12,8}x{12}x{12,4} etc.
        assert len(refac._refactorers) <= 8

    def test_matches_untiled_guarantee(self, field):
        """Tiled and untiled reconstructions both honor the same bound
        (values differ — different hierarchies — but both are valid)."""
        from repro.core.refactor import refactor
        from repro.core.reconstruct import reconstruct

        tiled = TiledRefactorer((12, 12, 12)).refactor(field)
        data_t, _ = TiledReconstructor(tiled).reconstruct(tolerance=1e-3)
        data_u = reconstruct(refactor(field), tolerance=1e-3).data
        assert np.max(np.abs(data_t - field)) <= 1e-3
        assert np.max(np.abs(data_u - field)) <= 1e-3

    def test_config_threads_through(self, field):
        refac = TiledRefactorer(
            (12, 12, 12), RefactorConfig(signed_encoding="negabinary")
        )
        tiled = refac.refactor(field)
        assert tiled.fields[0].levels[0].signed_encoding == "negabinary"
        data, bound = TiledReconstructor(tiled).reconstruct(tolerance=1e-2)
        assert np.max(np.abs(data - field)) <= 1e-2

    def test_rejects_integer_data(self):
        with pytest.raises(TypeError):
            TiledRefactorer((4, 4)).refactor(np.zeros((8, 8), dtype=int))

    def test_rejects_non_finite_data(self):
        """NaN/inf input would poison value_range (and through it every
        relative retrieval); reject it at refactor time."""
        bad = np.zeros((8, 8))
        bad[3, 4] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            TiledRefactorer((4, 4)).refactor(bad)
        bad[3, 4] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            TiledRefactorer((4, 4)).refactor(bad)

    def test_rejects_relative_without_tolerance(self, field):
        tiled = TiledRefactorer((12, 12, 12)).refactor(field)
        with pytest.raises(ValueError, match="relative"):
            TiledReconstructor(tiled).reconstruct(relative=True)

    def test_rejects_non_finite_tolerance(self, field):
        tiled = TiledRefactorer((12, 12, 12)).refactor(field)
        recon = TiledReconstructor(tiled)
        for bad in (float("nan"), float("inf"), -1.0):
            with pytest.raises(ValueError):
                recon.reconstruct(tolerance=bad)

    def test_constant_field_relative_short_circuits(self):
        """value_range == 0: relative requests resolve to the documented
        near-lossless path instead of an unreachable absolute 0."""
        const = np.full((8, 8), 3.25)
        tiled = TiledRefactorer((4, 4)).refactor(const)
        data, _ = TiledReconstructor(tiled).reconstruct(
            tolerance=1e-3, relative=True
        )
        near_lossless, _ = TiledReconstructor(tiled).reconstruct()
        assert np.array_equal(data, near_lossless)

    def test_rejects_negative_workers(self, field):
        with pytest.raises(ValueError):
            TiledRefactorer((12, 12, 12), num_workers=-1)
        tiled = TiledRefactorer((12, 12, 12)).refactor(field)
        with pytest.raises(ValueError):
            TiledReconstructor(tiled, num_workers=-1)


class TestParallelTiles:
    """The worker-pool fan-out must be invisible in the outputs."""

    def test_parallel_refactor_bit_identical(self, field):
        seq = TiledRefactorer((12, 12, 12)).refactor(field, name="v")
        with TiledRefactorer((12, 12, 12), num_workers=4) as refac:
            par = refac.refactor(field, name="v")
        assert [t.index for t in par.tiles] == [t.index for t in seq.tiles]
        assert all(
            a.to_bytes() == b.to_bytes()
            for a, b in zip(seq.fields, par.fields)
        )

    def test_parallel_reconstruct_bit_identical(self, field):
        tiled = TiledRefactorer((12, 12, 12)).refactor(field)
        serial = TiledReconstructor(tiled)
        with TiledReconstructor(tiled, num_workers=4) as parallel:
            for tol in (1e-1, 1e-4):
                data_s, bound_s = serial.reconstruct(tolerance=tol)
                data_p, bound_p = parallel.reconstruct(tolerance=tol)
                assert np.array_equal(data_s, data_p)
                assert bound_s == bound_p

    def test_close_tears_down_cached_refactorer_pools(self, field):
        from repro.core.refactor import RefactorConfig

        # Pinned to the thread backend: this is a white-box test of
        # the cached refactorers' *thread* pools (a REPRO_BACKEND
        # override would otherwise route around them).
        with TiledRefactorer(
            (12, 12, 12),
            RefactorConfig(num_workers=2, backend="threads:2"),
            num_workers=2, backend="threads:2",
        ) as refac:
            refac.refactor(field)
            assert any(
                r._pool is not None for r in refac._refactorers.values()
            )
        assert refac._pool is None
        assert all(
            r._pool is None for r in refac._refactorers.values()
        )

    def test_parallel_region_bit_identical(self, field):
        tiled = TiledRefactorer((12, 12, 12)).refactor(field)
        region = ((3, 17), (6, 22), (0, 16))
        data_s, _ = TiledReconstructor(tiled).reconstruct(
            tolerance=1e-3, region=region
        )
        with TiledReconstructor(tiled, num_workers=3) as parallel:
            data_p, _ = parallel.reconstruct(tolerance=1e-3, region=region)
        assert np.array_equal(data_s, data_p)


class TestLazyConstruction:
    """Per-tile reconstructors (and decode state) build on first touch."""

    def test_no_reconstructors_until_touched(self, field):
        tiled = TiledRefactorer((12, 12, 12)).refactor(field)
        recon = TiledReconstructor(tiled)
        assert recon.touched_tiles == []
        assert recon.decode_state_bytes() == 0

    def test_region_instantiates_only_overlapping_tiles(self, field):
        tiled = TiledRefactorer((12, 12, 12)).refactor(field)
        recon = TiledReconstructor(tiled)
        recon.reconstruct(tolerance=1e-2,
                          region=((0, 8), (0, 8), (0, 8)))
        assert recon.touched_tiles == [0]
        recon.reconstruct(tolerance=1e-2)  # full domain touches the rest
        assert recon.touched_tiles == list(range(len(tiled.tiles)))

    def test_reconstructor_rejects_mismatched_shared_transform(self):
        """Every geometry knob — including min_size, which changes the
        corner shapes — must match for a shared transform."""
        from repro.core.reconstruct import Reconstructor
        from repro.core.refactor import refactor
        from repro.decompose import MultilevelTransform

        f = refactor(np.linspace(0.0, 1.0, 64))
        good = MultilevelTransform(
            f.shape, num_levels=f.num_levels, mode=f.mode,
            min_size=f.min_size,
        )
        Reconstructor(f, transform=good).reconstruct(tolerance=1e-3)
        bad = MultilevelTransform(
            f.shape, num_levels=f.num_levels, mode=f.mode, min_size=2
        )
        with pytest.raises(ValueError, match="min_size"):
            Reconstructor(f, transform=bad)

    def test_same_shape_tiles_share_transforms(self, field):
        tiled = TiledRefactorer((12, 12, 12)).refactor(field)
        # Pinned serial: the memo under test lives in the parent's
        # reconstructors (process workers keep their own per-session
        # memo, exercised by tests/test_backends.py).
        recon = TiledReconstructor(tiled, backend="serial")
        recon.reconstruct(tolerance=1e-2)
        # 20x24x28 over 12^3 tiles yields at most 8 distinct shapes but
        # 12 tiles; the transform memo must not exceed the shape count.
        assert len(recon._transforms) <= 8
        shapes = {tuple(f.shape) for f in tiled.fields}
        assert len(recon._transforms) == len(shapes)
