"""Tests for the discrete-event scheduler and HDEM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.device import H100
from repro.gpu.events import EventSimulator, Task, serial_makespan
from repro.gpu.hdem import HDEM_ENGINES, HostDeviceModel


def sim():
    return EventSimulator(["a", "b"])


class TestTask:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Task("t", "a", -1.0)


class TestScheduler:
    def test_single_task(self):
        tl = sim().run([Task("t", "a", 2.0)])
        assert tl.makespan == 2.0
        assert tl.tasks["t"].start == 0.0

    def test_independent_tasks_overlap(self):
        tl = sim().run([Task("x", "a", 1.0), Task("y", "b", 1.0)])
        assert tl.makespan == 1.0

    def test_same_engine_serializes(self):
        tl = sim().run([Task("x", "a", 1.0), Task("y", "a", 1.0)])
        assert tl.makespan == 2.0

    def test_dependency_ordering(self):
        tl = sim().run([
            Task("x", "a", 1.0),
            Task("y", "b", 1.0, deps=("x",)),
        ])
        assert tl.tasks["y"].start == 1.0

    def test_exclusive_blocks_everything(self):
        tasks = [
            Task("x", "a", 1.0),
            Task("e", "b", 1.0, exclusive=True),
            Task("y", "a", 1.0),
        ]
        tl = sim().run(tasks)
        tl.validate(tasks)
        e = tl.tasks["e"]
        for name in ("x", "y"):
            t = tl.tasks[name]
            assert t.end <= e.start + 1e-12 or t.start >= e.end - 1e-12

    def test_cycle_detected(self):
        with pytest.raises(ValueError, match="cycle"):
            sim().run([
                Task("x", "a", 1.0, deps=("y",)),
                Task("y", "a", 1.0, deps=("x",)),
            ])

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            sim().run([Task("x", "c", 1.0)])

    def test_unknown_dep(self):
        with pytest.raises(ValueError, match="dep"):
            sim().run([Task("x", "a", 1.0, deps=("ghost",))])

    def test_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            sim().run([Task("x", "a", 1.0), Task("x", "b", 1.0)])

    def test_serial_makespan(self):
        tasks = [Task("x", "a", 1.5), Task("y", "b", 2.5)]
        assert serial_makespan(tasks) == 4.0

    def test_validate_catches_engine_overlap(self):
        tasks = [Task("x", "a", 1.0), Task("y", "a", 1.0)]
        tl = sim().run(tasks)
        bad = type(tl.tasks["y"])("y", "a", 0.5, 1.5, False)
        tl.tasks["y"] = bad
        with pytest.raises(ValueError, match="overlap"):
            tl.validate(tasks)


class TestHDEM:
    def test_engines(self):
        assert set(HDEM_ENGINES) == {"h2d", "d2h", "compute"}

    def test_run_validates(self):
        model = HostDeviceModel(H100)
        tasks = [
            Task("in", "h2d", 1e-3),
            Task("k", "compute", 2e-3, deps=("in",)),
            Task("out", "d2h", 1e-3, deps=("k",)),
        ]
        tl = model.run(tasks)
        assert tl.makespan == pytest.approx(4e-3)

    def test_link_override_caps(self):
        model = HostDeviceModel(H100, link_bandwidth_override_gbps=10.0)
        assert model.link_bandwidth_gbps == 10.0
        assert model.dma_seconds(10**10) == pytest.approx(1.0)

    def test_link_override_cannot_exceed_device(self):
        model = HostDeviceModel(H100, link_bandwidth_override_gbps=999.0)
        assert model.link_bandwidth_gbps == H100.link_bandwidth_gbps

    def test_invalid_override(self):
        with pytest.raises(ValueError):
            HostDeviceModel(H100, link_bandwidth_override_gbps=0.0)


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_tasks=st.integers(1, 25),
)
def test_property_random_dags_schedule_validly(seed, n_tasks):
    """Hypothesis: random DAGs produce valid schedules whose makespan is
    bounded by [critical path, serial sum]."""
    rng = np.random.default_rng(seed)
    engines = ["e0", "e1", "e2"]
    tasks = []
    for i in range(n_tasks):
        n_deps = int(rng.integers(0, min(i, 3) + 1))
        deps = tuple(
            f"t{j}" for j in rng.choice(i, size=n_deps, replace=False)
        ) if i else ()
        tasks.append(
            Task(
                f"t{i}",
                engines[int(rng.integers(0, 3))],
                float(rng.uniform(0.1, 2.0)),
                deps,
                exclusive=bool(rng.random() < 0.2),
            )
        )
    simulator = EventSimulator(engines)
    tl = simulator.run(tasks)
    tl.validate(tasks)
    assert tl.makespan <= serial_makespan(tasks) + 1e-9
    assert tl.makespan >= max(t.duration for t in tasks) - 1e-9
