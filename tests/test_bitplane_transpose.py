"""Property tests: the single-pass bit-matrix transpose is bit-identical
to the per-plane reference, across designs, signed encodings, ragged
sizes, and truncated-plane decodes — the portability guarantee the
vectorized fast path must preserve."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitplane import register_block
from repro.bitplane.encoding import (
    DESIGNS,
    decode_bitplanes,
    encode_bitplanes,
    extract_code_planes,
    extract_code_planes_reference,
    extract_planes,
    extract_planes_reference,
    inject_code_planes,
    inject_code_planes_reference,
    inject_planes,
    inject_planes_reference,
)
from repro.bitplane.transpose import (
    planes_to_words,
    transpose_8x8_tiles,
    words_to_planes,
)

#: Sizes straddling every alignment boundary the kernels care about:
#: byte packing (8), uint64 lanes (64), and the warp*B tile (32*B).
RAGGED_SIZES = (1, 7, 8, 9, 63, 64, 65, 255, 256, 1000, 32 * 20 + 13)


def _random_fixed_point(n, width, seed):
    rng = np.random.default_rng(seed)
    mags = rng.integers(0, 1 << min(width, 62), n).astype(np.uint64)
    signs = rng.integers(0, 2, n).astype(np.uint8)
    return signs, mags


class TestTransposeMatchesReference:
    @pytest.mark.parametrize("n", RAGGED_SIZES)
    @pytest.mark.parametrize("width", [1, 2, 7, 8, 9, 20, 32, 53, 60])
    def test_extract_bit_identical(self, n, width):
        signs, mags = _random_fixed_point(n, width, seed=n * 61 + width)
        ref = extract_planes_reference(signs, mags, width)
        fast = extract_planes(signs, mags, width)
        assert len(ref) == len(fast)
        for a, b in zip(ref, fast):
            assert a.tobytes() == b.tobytes()

    @pytest.mark.parametrize("n", RAGGED_SIZES)
    @pytest.mark.parametrize("width", [1, 8, 20, 32, 60])
    def test_inject_matches_reference_at_every_truncation(self, n, width):
        signs, mags = _random_fixed_point(n, width, seed=n * 7 + width)
        planes = extract_planes_reference(signs, mags, width)
        for k in range(0, width + 2):
            s_ref, m_ref = inject_planes_reference(planes[:k], n, width)
            s_fast, m_fast = inject_planes(planes[:k], n, width)
            np.testing.assert_array_equal(s_ref, s_fast)
            np.testing.assert_array_equal(m_ref, m_fast)

    @pytest.mark.parametrize("n", RAGGED_SIZES)
    @pytest.mark.parametrize("width", [1, 9, 34, 62, 64])
    def test_code_planes_bit_identical(self, n, width):
        rng = np.random.default_rng(n * 3 + width)
        codes = rng.integers(0, 1 << min(width, 62), n).astype(np.uint64)
        ref = extract_code_planes_reference(codes, width)
        fast = extract_code_planes(codes, width)
        for a, b in zip(ref, fast):
            assert a.tobytes() == b.tobytes()
        for k in (0, 1, width // 2, width):
            np.testing.assert_array_equal(
                inject_code_planes_reference(ref[:k], n, width),
                inject_code_planes(fast[:k], n, width),
            )

    def test_empty_input(self):
        planes = extract_planes(
            np.zeros(0, np.uint8), np.zeros(0, np.uint64), 8
        )
        assert len(planes) == 9 and all(p.size == 0 for p in planes)
        s, m = inject_planes(planes, 0, 8)
        assert s.size == 0 and m.size == 0

    def test_too_many_planes_rejected(self):
        planes = extract_planes(
            np.zeros(1, np.uint8), np.zeros(1, np.uint64), 2
        )
        with pytest.raises(ValueError):
            inject_planes(planes + [planes[-1]], 1, 2)
        with pytest.raises(ValueError):
            inject_code_planes([planes[0]] * 3, 1, 2)

    def test_bad_widths_rejected(self):
        with pytest.raises(ValueError):
            words_to_planes(np.zeros(4, np.uint64), 0)
        with pytest.raises(ValueError):
            words_to_planes(np.zeros(4, np.uint64), 65)
        with pytest.raises(ValueError):
            planes_to_words([], 4, 0)

    def test_wrong_plane_size_rejected(self):
        with pytest.raises(ValueError):
            planes_to_words([np.zeros(3, np.uint8)], 100, 8)


class Test8x8Tiles:
    def test_transpose_is_involution(self):
        rng = np.random.default_rng(0)
        lanes = rng.integers(0, 1 << 63, 1000).astype(np.uint64)
        np.testing.assert_array_equal(
            transpose_8x8_tiles(transpose_8x8_tiles(lanes)), lanes
        )

    def test_single_bit_lands_transposed(self):
        for j in range(8):
            for s in range(8):
                lane = np.array([np.uint64(1) << np.uint64(8 * j + s)])
                out = transpose_8x8_tiles(lane)
                assert out[0] == np.uint64(1) << np.uint64(8 * s + j)


class TestEndToEndAcrossDesignsAndEncodings:
    @pytest.mark.parametrize("design", DESIGNS)
    @pytest.mark.parametrize("encoding", ["sign_magnitude", "negabinary"])
    @pytest.mark.parametrize("n", [1, 37, 1024 + 17, 32 * 32 * 3 + 5])
    def test_roundtrip_and_partial_decode(self, design, encoding, n):
        rng = np.random.default_rng(n)
        data = rng.standard_normal(n).astype(np.float32)
        stream = encode_bitplanes(
            data, 32, design=design, signed_encoding=encoding
        )
        for k in (0, 1, 5, stream.num_planes // 2, stream.num_planes):
            rec = decode_bitplanes(stream, k)
            bound = stream.error_bound(k)
            assert np.max(np.abs(rec.astype(np.float64) - data)) \
                <= bound * (1 + 1e-12) + 1e-30

    @pytest.mark.parametrize("encoding", ["sign_magnitude", "negabinary"])
    def test_designs_decode_identically(self, encoding):
        data = np.random.default_rng(5).standard_normal(2048) \
            .astype(np.float32)
        streams = [
            encode_bitplanes(data, 32, design=d, signed_encoding=encoding)
            for d in DESIGNS
        ]
        for k in (0, 3, 17, streams[0].num_planes):
            decoded = [decode_bitplanes(s, k) for s in streams]
            np.testing.assert_array_equal(decoded[0], decoded[1])
            np.testing.assert_array_equal(decoded[0], decoded[2])


class TestPermutationCache:
    def test_cache_hit_returns_same_readonly_array(self):
        register_block.clear_permutation_cache()
        first = register_block.tile_permutation(777, 16, warp_size=32)
        second = register_block.tile_permutation(777, 16, warp_size=32)
        assert first is second
        assert not first.flags.writeable
        inv1 = register_block.inverse_tile_permutation(777, 16, warp_size=32)
        inv2 = register_block.inverse_tile_permutation(777, 16, warp_size=32)
        assert inv1 is inv2
        assert not inv1.flags.writeable
        info = register_block.permutation_cache_info()
        assert info["forward"].hits >= 2  # second call + inverse's reuse
        assert info["inverse"].hits >= 1
        np.testing.assert_array_equal(first[inv1], np.arange(777))

    def test_cached_values_still_correct_permutations(self):
        register_block.clear_permutation_cache()
        for n, b, w in [(1000, 8, 32), (1000, 8, 32), (513, 4, 16)]:
            perm = register_block.tile_permutation(n, b, warp_size=w)
            assert np.array_equal(np.sort(perm), np.arange(n))


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 500),
    width=st.integers(1, 60),
    truncate=st.integers(0, 61),
    seed=st.integers(0, 2**31),
)
def test_property_transpose_roundtrips_like_reference(
    n, width, truncate, seed
):
    """Hypothesis: fast extract/inject == reference at any truncation."""
    signs, mags = _random_fixed_point(n, width, seed)
    ref_planes = extract_planes_reference(signs, mags, width)
    fast_planes = extract_planes(signs, mags, width)
    for a, b in zip(ref_planes, fast_planes):
        assert a.tobytes() == b.tobytes()
    k = min(truncate, width + 1)
    s_ref, m_ref = inject_planes_reference(ref_planes[:k], n, width)
    s_fast, m_fast = inject_planes(fast_planes[:k], n, width)
    np.testing.assert_array_equal(s_ref, s_fast)
    np.testing.assert_array_equal(m_ref, m_fast)
