"""Tests for the Huffman, RLE, and Direct-Copy codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.lossless.direct import direct_decode, direct_encode
from repro.lossless.huffman import (
    HuffmanCodec,
    build_code_lengths,
    canonical_codes,
    estimate_huffman_ratio,
    huffman_decode,
    huffman_encode,
)
from repro.lossless.rle import estimate_rle_ratio, rle_decode, rle_encode


def skewed_bytes(n, seed=0, zeros=0.8):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, n).astype(np.uint8)
    mask = rng.random(n) < zeros
    data[mask] = 0
    return data


class TestCodeLengths:
    def test_kraft_inequality(self):
        rng = np.random.default_rng(0)
        freqs = rng.integers(0, 1000, 256)
        lengths = build_code_lengths(freqs)
        present = lengths[lengths > 0].astype(np.int64)
        assert np.sum(2.0 ** (-present)) <= 1.0 + 1e-12

    def test_two_symbols(self):
        freqs = np.zeros(256, dtype=np.int64)
        freqs[7] = 10
        freqs[9] = 1
        lengths = build_code_lengths(freqs)
        assert lengths[7] == 1 and lengths[9] == 1

    def test_single_symbol(self):
        freqs = np.zeros(256, dtype=np.int64)
        freqs[42] = 5
        lengths = build_code_lengths(freqs)
        assert lengths[42] == 1
        assert np.count_nonzero(lengths) == 1

    def test_empty(self):
        assert np.all(build_code_lengths(np.zeros(256, dtype=np.int64)) == 0)

    def test_max_length_respected_pathological(self):
        # Fibonacci-like frequencies force deep trees without limiting.
        freqs = np.zeros(64, dtype=np.int64)
        a, b = 1, 1
        for i in range(40):
            freqs[i] = a
            a, b = b, a + b
        lengths = build_code_lengths(freqs, max_length=16)
        present = lengths[lengths > 0].astype(np.int64)
        assert present.max() <= 16
        assert np.sum(2.0 ** (-present)) <= 1.0 + 1e-12

    def test_frequent_symbols_get_short_codes(self):
        freqs = np.zeros(256, dtype=np.int64)
        freqs[0] = 1000
        freqs[1:11] = 1
        lengths = build_code_lengths(freqs)
        assert lengths[0] < lengths[5]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            build_code_lengths(np.array([-1, 2]))


class TestCanonicalCodes:
    def test_prefix_free(self):
        rng = np.random.default_rng(1)
        freqs = rng.integers(0, 100, 256)
        lengths = build_code_lengths(freqs)
        codes = canonical_codes(lengths)
        entries = [
            (int(codes[s]), int(lengths[s]))
            for s in np.flatnonzero(lengths)
        ]
        as_bits = [format(c, f"0{l}b") for c, l in entries]
        for i, a in enumerate(as_bits):
            for j, b in enumerate(as_bits):
                if i != j:
                    assert not b.startswith(a)

    def test_ordering_canonical(self):
        lengths = np.zeros(4, dtype=np.uint8)
        lengths[:] = [2, 1, 3, 3]
        codes = canonical_codes(lengths)
        # canonical: shorter codes numerically precede when left-aligned
        assert codes[1] == 0b0
        assert codes[0] == 0b10
        assert codes[2] == 0b110
        assert codes[3] == 0b111


class TestHuffmanRoundtrip:
    @pytest.mark.parametrize("n", [0, 1, 2, 100, 1023, 1024, 1025, 10000])
    def test_sizes(self, n):
        data = skewed_bytes(n, seed=n)
        decoded = huffman_decode(huffman_encode(data))
        np.testing.assert_array_equal(decoded, data)

    def test_uniform_data(self):
        data = np.full(5000, 7, dtype=np.uint8)
        blob = huffman_encode(data)
        np.testing.assert_array_equal(huffman_decode(blob), data)
        assert len(blob) < data.size  # ~1 bit per symbol + header

    def test_random_data_roundtrip(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 256, 8192).astype(np.uint8)
        np.testing.assert_array_equal(
            huffman_decode(huffman_encode(data)), data
        )

    def test_compresses_skewed_data(self):
        data = skewed_bytes(1 << 16, seed=3, zeros=0.95)
        assert len(huffman_encode(data)) < data.size // 2

    def test_accepts_bytes_input(self):
        blob = huffman_encode(b"hello world" * 100)
        assert bytes(huffman_decode(blob)) == b"hello world" * 100

    def test_custom_chunk_size(self):
        codec = HuffmanCodec(chunk_symbols=64)
        data = skewed_bytes(1000, seed=4)
        np.testing.assert_array_equal(codec.decode(codec.encode(data)), data)

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            huffman_decode(b"JUNK" + b"\0" * 300)

    def test_invalid_chunk_symbols(self):
        with pytest.raises(ValueError):
            HuffmanCodec(chunk_symbols=0)


class TestHuffmanEstimate:
    def test_estimate_close_to_actual(self):
        data = skewed_bytes(1 << 16, seed=5, zeros=0.9)
        est = estimate_huffman_ratio(data)
        actual = data.size / len(huffman_encode(data))
        assert abs(est - actual) / actual < 0.05

    def test_empty(self):
        assert estimate_huffman_ratio(np.empty(0, np.uint8)) == 1.0


class TestRle:
    def test_roundtrip_runs(self):
        data = np.repeat(
            np.array([0, 3, 0, 7, 7], dtype=np.uint8), [100, 5, 200, 1, 9]
        )
        np.testing.assert_array_equal(rle_decode(rle_encode(data)), data)

    def test_roundtrip_no_runs(self):
        data = np.arange(256, dtype=np.uint8)
        np.testing.assert_array_equal(rle_decode(rle_encode(data)), data)

    def test_empty(self):
        assert rle_decode(rle_encode(np.empty(0, np.uint8))).size == 0

    def test_compresses_zero_heavy(self):
        data = np.zeros(1 << 16, dtype=np.uint8)
        assert len(rle_encode(data)) < 64

    def test_estimate_close_to_actual(self):
        data = np.repeat(
            np.arange(50, dtype=np.uint8), np.full(50, 100)
        )
        est = estimate_rle_ratio(data)
        actual = data.size / len(rle_encode(data))
        assert abs(est - actual) / actual < 0.1

    def test_bytes_input(self):
        blob = rle_encode(b"aaaabbb")
        assert bytes(rle_decode(blob)) == b"aaaabbb"

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            rle_decode(b"XXXX" + b"\0" * 16)


class TestDirect:
    def test_roundtrip(self):
        data = np.arange(100, dtype=np.uint8)
        np.testing.assert_array_equal(direct_decode(direct_encode(data)), data)

    def test_empty(self):
        assert direct_decode(direct_encode(b"")).size == 0

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            direct_decode(b"YYYY" + b"\0" * 8)

    def test_truncated(self):
        blob = direct_encode(np.arange(10, dtype=np.uint8))
        with pytest.raises(ValueError):
            direct_decode(blob[:-2])


@settings(max_examples=30, deadline=None)
@given(
    data=hnp.arrays(
        dtype=np.uint8, shape=st.integers(0, 3000),
        elements=st.integers(0, 255),
    )
)
def test_property_all_codecs_roundtrip(data):
    """Hypothesis: every codec is lossless on arbitrary byte content."""
    np.testing.assert_array_equal(huffman_decode(huffman_encode(data)), data)
    np.testing.assert_array_equal(rle_decode(rle_encode(data)), data)
    np.testing.assert_array_equal(direct_decode(direct_encode(data)), data)
