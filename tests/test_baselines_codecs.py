"""Tests for the ZFP-like, SZ3-like, and MGARD-lossy codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.intcodec import (
    decode_int_array,
    encode_int_array,
    zigzag_decode,
    zigzag_encode,
)
from repro.baselines.mgard_lossy import MgardLossyCodec
from repro.baselines.sz3 import Sz3Codec, _lorenzo_forward, _lorenzo_inverse
from repro.baselines.zfp import (
    ZfpCodec,
    _forward_transform,
    _from_negabinary,
    _inverse_transform,
    _to_negabinary,
)
from repro.data import generators as gen


def smooth_field(shape=(16, 16, 16), seed=0, dtype=np.float32):
    return gen.gaussian_random_field(shape, -3.0, seed=seed, dtype=dtype)


class TestIntCodec:
    def test_zigzag_roundtrip(self):
        v = np.array([0, -1, 1, -2, 2, 12345, -98765], dtype=np.int64)
        np.testing.assert_array_equal(zigzag_decode(zigzag_encode(v)), v)

    def test_zigzag_known(self):
        np.testing.assert_array_equal(
            zigzag_encode(np.array([0, -1, 1, -2, 2])), [0, 1, 2, 3, 4]
        )

    def test_roundtrip_with_outliers(self):
        rng = np.random.default_rng(0)
        v = rng.integers(-50, 50, 5000)
        v[::97] = rng.integers(-10**9, 10**9, v[::97].size)
        np.testing.assert_array_equal(
            decode_int_array(encode_int_array(v)), v
        )

    def test_empty(self):
        assert decode_int_array(encode_int_array(np.array([], int))).size == 0

    def test_compresses_small_codes(self):
        v = np.zeros(1 << 16, dtype=np.int64)
        assert len(encode_int_array(v)) < (1 << 16) // 4

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            decode_int_array(b"XXXX" + b"\0" * 20)


class TestSz3:
    def test_lorenzo_inverse(self):
        rng = np.random.default_rng(1)
        q = rng.integers(-100, 100, (7, 8, 9))
        np.testing.assert_array_equal(
            _lorenzo_inverse(_lorenzo_forward(q)), q
        )

    @pytest.mark.parametrize("eb", [1e-1, 1e-3, 1e-5])
    def test_error_bound_exact(self, eb):
        data = smooth_field(seed=2)
        codec = Sz3Codec()
        rec = codec.decompress(codec.compress(data, eb))
        # float32 output adds at most half an ulp of cast rounding on
        # top of the codec's float64 guarantee.
        allowance = float(np.spacing(np.float32(np.max(np.abs(data)))))
        assert np.max(np.abs(rec.astype(np.float64)
                             - data.astype(np.float64))) \
            <= eb * (1 + 1e-9) + allowance

    def test_error_bound_too_small_rejected(self):
        data = smooth_field(seed=2)
        with pytest.raises(ValueError, match="too small"):
            Sz3Codec().compress(data, 1e-30)

    def test_smooth_data_compresses(self):
        data = smooth_field((24, 24, 24), seed=3)
        blob = Sz3Codec().compress(data, 1e-2 * float(np.ptp(data)))
        assert len(blob) < data.nbytes / 3

    def test_tighter_bound_bigger(self):
        data = smooth_field(seed=4)
        sizes = [
            len(Sz3Codec().compress(data, eb)) for eb in (1e-1, 1e-3, 1e-5)
        ]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_float64(self):
        data = smooth_field(seed=5, dtype=np.float64)
        rec = Sz3Codec().decompress(Sz3Codec().compress(data, 1e-4))
        assert rec.dtype == np.float64
        assert np.max(np.abs(rec - data)) <= 1e-4

    def test_validation(self):
        codec = Sz3Codec()
        with pytest.raises(ValueError):
            codec.compress(smooth_field(), 0.0)
        with pytest.raises(ValueError):
            codec.compress(np.zeros((4, 4), dtype=np.float32), 1e-3)
        with pytest.raises(ValueError):
            codec.decompress(b"ZZZZ" + b"\0" * 40)


class TestMgardLossy:
    @pytest.mark.parametrize("eb", [1e-1, 1e-3])
    @pytest.mark.parametrize("mode", ["hierarchical", "mgard"])
    def test_error_bound(self, eb, mode):
        data = smooth_field((17, 16, 15), seed=6, dtype=np.float64)
        codec = MgardLossyCodec(mode=mode)
        rec = codec.decompress(codec.compress(data, eb))
        assert np.max(np.abs(rec - data)) <= eb * (1 + 1e-9)

    def test_compresses(self):
        data = smooth_field((24, 24, 24), seed=7)
        blob = MgardLossyCodec().compress(data, 1e-2 * float(np.ptp(data)))
        assert len(blob) < data.nbytes / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MgardLossyCodec().compress(smooth_field(), -1.0)
        with pytest.raises(ValueError):
            MgardLossyCodec().decompress(b"YYYY" + b"\0" * 40)


class TestZfpTransform:
    def test_integer_lifting_exact_inverse(self):
        rng = np.random.default_rng(8)
        ints = rng.integers(-(2**40), 2**40, (50, 4, 4, 4))
        np.testing.assert_array_equal(
            _inverse_transform(_forward_transform(ints)), ints
        )

    def test_negabinary_roundtrip(self):
        rng = np.random.default_rng(9)
        v = rng.integers(-(2**50), 2**50, 1000)
        np.testing.assert_array_equal(
            _from_negabinary(_to_negabinary(v)), v
        )

    def test_transform_decorrelates_constant_block(self):
        # A constant block transforms to a single DC coefficient.
        const = np.full((1, 4, 4, 4), 12345, dtype=np.int64)
        t = _forward_transform(const)
        assert abs(int(t[0, 0, 0, 0]) - 12345) <= 4  # floor-lifting drift
        details = t.ravel()[1:]
        assert np.max(np.abs(details)) <= 2

    def test_transform_sparsifies_ramp(self):
        # A linear ramp should leave most coefficients small relative
        # to the input magnitude (energy compaction).
        ramp = np.arange(64, dtype=np.int64).reshape(1, 4, 4, 4) * 1000
        t = _forward_transform(ramp)
        small = np.abs(t) < 1000
        assert int(np.count_nonzero(small)) >= 32


class TestZfpCodec:
    @pytest.mark.parametrize("eb", [1e-1, 1e-3])
    def test_fixed_accuracy_bound(self, eb):
        data = smooth_field(seed=10)
        codec = ZfpCodec(mode="fixed_accuracy")
        blob = codec.compress(data, error_bound=eb)
        rec = codec.decompress(blob)
        assert np.max(np.abs(rec.astype(np.float64)
                             - data.astype(np.float64))) <= eb * (1 + 1e-9)
        assert ZfpCodec.achieved_error(blob) <= eb * (1 + 1e-9)

    def test_fixed_rate_size(self):
        data = smooth_field((16, 16, 16), seed=11)
        codec = ZfpCodec(mode="fixed_rate")
        blob = codec.compress(data, rate_bits=8)
        # 8 bits/value plane payload + per-block headers
        payload_bound = data.size + 5 * (data.size // 64) + 64
        assert len(blob) <= payload_bound + 64

    def test_fixed_rate_error_decreases_with_rate(self):
        data = smooth_field(seed=12)
        codec = ZfpCodec(mode="fixed_rate")
        errs = []
        for rate in (4, 8, 16):
            rec = codec.decompress(codec.compress(data, rate_bits=rate))
            errs.append(float(np.max(np.abs(
                rec.astype(np.float64) - data.astype(np.float64)))))
        assert errs[0] > errs[1] > errs[2]

    def test_nondyadic_shape(self):
        data = smooth_field((13, 10, 17), seed=13, dtype=np.float64)
        codec = ZfpCodec(mode="fixed_accuracy")
        rec = codec.decompress(codec.compress(data, error_bound=1e-3))
        assert rec.shape == data.shape
        assert np.max(np.abs(rec - data)) <= 1e-3 * (1 + 1e-9)

    def test_zero_field(self):
        data = np.zeros((8, 8, 8), dtype=np.float32)
        codec = ZfpCodec(mode="fixed_accuracy")
        rec = codec.decompress(codec.compress(data, error_bound=1e-6))
        np.testing.assert_array_equal(rec, data)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZfpCodec(mode="psychic")
        codec = ZfpCodec(mode="fixed_rate")
        with pytest.raises(ValueError):
            codec.compress(smooth_field(), error_bound=1e-3)  # needs rate
        codec2 = ZfpCodec(mode="fixed_accuracy")
        with pytest.raises(ValueError):
            codec2.compress(smooth_field())  # needs error_bound
        with pytest.raises(ValueError):
            codec2.decompress(b"QQQQ" + b"\0" * 64)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500), eb_exp=st.integers(-4, -1))
def test_property_all_codecs_honor_bounds(seed, eb_exp):
    """Hypothesis: every error-bounded codec honors its bound."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((9, 9, 9)).astype(np.float32)
    eb = 10.0 ** eb_exp
    for codec in (Sz3Codec(), MgardLossyCodec(),
                  ZfpCodec(mode="fixed_accuracy")):
        if isinstance(codec, ZfpCodec):
            blob = codec.compress(data, error_bound=eb)
        else:
            blob = codec.compress(data, eb)
        rec = codec.decompress(blob)
        err = np.max(np.abs(rec.astype(np.float64)
                            - data.astype(np.float64)))
        # float32 output adds at most one ulp of cast rounding.
        allowance = float(np.spacing(np.float32(np.max(np.abs(data)))))
        assert err <= eb * (1 + 1e-6) + allowance, type(codec).__name__
