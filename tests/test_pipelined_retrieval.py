"""Pipelined progressive retrieval: differential + runtime tests.

The pipelined paths (``repro.pipeline.retrieval`` and its wiring into
``TiledReconstructor``/``ServiceSession``/``TiledServiceSession``) claim
*bit-identical* results, counters, and fault semantics versus the
sequential paths — only wall-clock may differ. This suite proves the
claim differentially, `test_backends.py`-style: same inputs through both
paths, byte-for-byte comparison of data and accounting, across decode
backends and under seeded store faults. Runtime-level tests cover the
bounded window, in-order commits, and failure draining directly.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.faults import FaultInjectingStore
from repro.core.refactor import refactor
from repro.core.reconstruct import Reconstructor
from repro.core.service import RetrievalService, _store_bears_latency
from repro.core.store import (
    DirectoryStore,
    MemoryStore,
    open_field,
    open_tiled_field,
    store_field,
    store_tiled_field,
)
from repro.core.tiling import TiledReconstructor, TiledRefactorer
from repro.data import generators as gen
from repro.pipeline.retrieval import RetrievalPipeline, pipelined_reconstruct

pytestmark = pytest.mark.backend

STAIRCASE = [1e-1, 3e-2, 1e-2, 3e-3, None]
ROI = (slice(4, 30), slice(2, 26), None)


@pytest.fixture(scope="module")
def data():
    return gen.gaussian_random_field((36, 36, 36), -2.0, seed=17,
                                     dtype=np.float32)


@pytest.fixture(scope="module")
def reference_field(data):
    return refactor(data, name="vx")


@pytest.fixture(scope="module")
def reference_tiled(data):
    return TiledRefactorer((12, 12, 12)).refactor(data, name="rho")


def _fresh_store(reference_field):
    store = MemoryStore()
    store_field(store, reference_field)
    return store


def _fresh_tiled_store(reference_tiled):
    store = MemoryStore()
    store_tiled_field(store, reference_tiled)
    return store


def _result_stats(result):
    return (
        result.fetched_bytes, result.incremental_bytes, result.cold_bytes,
        result.cache_hit_bytes, result.decoded_groups,
        result.decoded_planes, result.error_bound, result.degraded,
        tuple(result.failed_groups or ()),
    )


def _tiled_stats(recon):
    io = recon.aggregate_io_counters()
    dc = recon.aggregate_decode_counters()
    return (
        recon.fetched_bytes, io.segment_reads, io.cold_bytes,
        io.cache_hit_bytes, dc.groups_decoded, dc.planes_decoded,
        dc.level_decodes, dc.level_reuses,
    )


# -- runtime unit tests -----------------------------------------------------

class TestRetrievalPipelineRuntime:
    @pytest.mark.parametrize("kwargs", [
        {"window": 0}, {"window": -1},
        {"fetch_workers": 0}, {"fetch_workers": -2},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetrievalPipeline(**kwargs)

    def test_results_keep_item_order(self):
        with RetrievalPipeline(window=3, fetch_workers=2) as pipe:
            out = pipe.run(
                range(10), fetch=lambda i: i * 10,
                decode=lambda i, f: f + i,
            )
        assert out == [i * 11 for i in range(10)]

    def test_commit_return_value_replaces_result(self):
        sink = []
        with RetrievalPipeline(window=2) as pipe:
            out = pipe.run(
                range(5), fetch=lambda i: i, decode=lambda i, f: f * 2,
                commit=lambda i, v: sink.append(v),
            )
        assert sink == [0, 2, 4, 6, 8]  # committed in item order
        assert out == [None] * 5  # bulky blocks retired, not retained

    def test_window_bounds_fetched_but_undecoded(self):
        lock = threading.Lock()
        inflight = {"now": 0, "max": 0}

        def fetch(i):
            with lock:
                inflight["now"] += 1
                inflight["max"] = max(inflight["max"], inflight["now"])
            return i

        def decode(i, fetched):
            with lock:
                inflight["now"] -= 1
            return fetched

        with RetrievalPipeline(window=3, fetch_workers=3) as pipe:
            pipe.run(range(20), fetch=fetch, decode=decode)
        assert inflight["max"] <= 3

    def test_earliest_failure_wins_and_window_drains(self):
        committed = []

        def fetch(i):
            if i == 4:
                raise RuntimeError("fetch 4")
            return i

        def decode(i, fetched):
            if i == 2:
                raise RuntimeError("decode 2")
            return fetched

        with RetrievalPipeline(window=4, fetch_workers=2) as pipe:
            with pytest.raises(RuntimeError, match="decode 2"):
                pipe.run(range(8), fetch=fetch, decode=decode,
                         commit=lambda i, v: committed.append(i) or v)
        assert committed == [0, 1]  # strictly in-order up to the fault

    def test_close_is_idempotent_and_pipeline_reusable_until_closed(self):
        pipe = RetrievalPipeline(window=2)
        assert pipe.run([1, 2], fetch=lambda i: i,
                        decode=lambda i, f: f) == [1, 2]
        assert pipe.run([3], fetch=lambda i: i,
                        decode=lambda i, f: f) == [3]
        pipe.close()
        pipe.close()


# -- untiled differential ---------------------------------------------------

class TestUntiledPipelinedParity:
    def test_staircase_bit_identical_with_counters(self, reference_field):
        seq = Reconstructor(open_field(_fresh_store(reference_field), "vx"))
        ref = [seq.reconstruct(tolerance=t) for t in STAIRCASE]
        pip = Reconstructor(open_field(_fresh_store(reference_field), "vx"))
        with RetrievalPipeline(window=3, fetch_workers=2) as pipe:
            got = [pipelined_reconstruct(pip, pipe, tolerance=t)
                   for t in STAIRCASE]
        for a, b in zip(ref, got):
            assert np.array_equal(a.data, b.data)
            assert _result_stats(a) == _result_stats(b)

    @pytest.mark.parent_store_mutation
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_degrade_resume_parity_under_faults(self, reference_field,
                                                seed):
        def staircase(pipelined):
            flaky = FaultInjectingStore(
                _fresh_store(reference_field), transient_rate=0.0,
                seed=seed,
            )
            recon = Reconstructor(open_field(flaky, "vx"))
            flaky.transient_rate = 0.30  # index read stays clean
            pipe = (RetrievalPipeline(window=3, fetch_workers=2)
                    if pipelined else None)
            out = []
            for t in STAIRCASE:
                if pipelined:
                    res = pipelined_reconstruct(recon, pipe, tolerance=t,
                                                on_fault="degrade")
                else:
                    res = recon.reconstruct(tolerance=t,
                                            on_fault="degrade")
                out.append((res.data.copy(), _result_stats(res)))
            flaky.transient_rate = 0.0  # store recovers: resume cleanly
            final = recon.reconstruct()
            out.append((final.data.copy(), _result_stats(final)))
            if pipe is not None:
                pipe.close()
            return out

        for (da, sa), (db, sb) in zip(staircase(False), staircase(True)):
            assert np.array_equal(da, db)
            assert sa == sb


# -- tiled differential -----------------------------------------------------

class TestTiledPipelinedParity:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", 0), ("threads:2", 2), ("processes:2", 2),
    ])
    def test_roi_staircase_bit_identical(self, reference_tiled, backend,
                                         workers):
        def staircase(pipelined):
            recon = TiledReconstructor(
                open_tiled_field(_fresh_tiled_store(reference_tiled),
                                 "rho"),
                num_workers=workers, backend=backend,
                pipelined=pipelined, pipeline_window=3, fetch_workers=2,
            )
            out = [recon.reconstruct(tolerance=t, region=ROI)
                   for t in STAIRCASE]
            stats = _tiled_stats(recon)
            recon.close()
            return out, stats

        (ref, ref_stats), (got, got_stats) = (staircase(False),
                                              staircase(True))
        for a, b in zip(ref, got):
            assert np.array_equal(a.data, b.data)
            assert a.error_bound == b.error_bound
        assert ref_stats == got_stats

    def test_single_tile_step_stays_sequential(self, reference_tiled):
        # One-tile regions bypass the window (nothing to overlap) but
        # must still return the exact sequential answer.
        recon = TiledReconstructor(
            open_tiled_field(_fresh_tiled_store(reference_tiled), "rho"),
            pipelined=True,
        )
        seq = TiledReconstructor(
            open_tiled_field(_fresh_tiled_store(reference_tiled), "rho"),
        )
        one_tile = (slice(0, 8), slice(0, 8), slice(0, 8))
        a = recon.reconstruct(tolerance=1e-2, region=one_tile)
        b = seq.reconstruct(tolerance=1e-2, region=one_tile)
        assert np.array_equal(a.data, b.data)
        recon.close()
        seq.close()

    def test_per_call_override_beats_instance_flag(self, reference_tiled):
        recon = TiledReconstructor(
            open_tiled_field(_fresh_tiled_store(reference_tiled), "rho"),
            pipelined=False,
        )
        seq = TiledReconstructor(
            open_tiled_field(_fresh_tiled_store(reference_tiled), "rho"),
        )
        a = recon.reconstruct(tolerance=1e-2, pipelined=True)
        b = seq.reconstruct(tolerance=1e-2)
        assert np.array_equal(a.data, b.data)
        assert _tiled_stats(recon) == _tiled_stats(seq)
        recon.close()
        seq.close()

    @pytest.mark.parametrize("kwargs", [
        {"pipeline_window": 0}, {"fetch_workers": 0},
    ])
    def test_rejects_bad_pipeline_parameters(self, reference_tiled,
                                             kwargs):
        with pytest.raises(ValueError):
            TiledReconstructor(
                open_tiled_field(_fresh_tiled_store(reference_tiled),
                                 "rho"),
                pipelined=True, **kwargs,
            )

    @pytest.mark.parent_store_mutation
    @pytest.mark.parametrize("seed", [5, 23])
    def test_degrade_parity_identical_failed_tiles(self, reference_tiled,
                                                   seed):
        def staircase(pipelined):
            flaky = FaultInjectingStore(
                _fresh_tiled_store(reference_tiled), transient_rate=0.0,
                seed=seed,
            )
            recon = TiledReconstructor(
                open_tiled_field(flaky, "rho"), pipelined=pipelined,
                pipeline_window=3, fetch_workers=2,
            )
            flaky.transient_rate = 0.25  # index reads stay clean
            out = []
            for t in STAIRCASE:
                res = recon.reconstruct(tolerance=t, region=ROI,
                                        on_fault="degrade")
                out.append((res.data.copy(), res.error_bound,
                            res.degraded, res.failed_tiles,
                            res.failed_groups))
            flaky.transient_rate = 0.0
            final = recon.reconstruct(region=ROI)
            out.append((final.data.copy(), final.error_bound,
                        final.degraded, final.failed_tiles,
                        final.failed_groups))
            stats = _tiled_stats(recon)
            recon.close()
            return out, stats

        (ref, ref_stats), (got, got_stats) = (staircase(False),
                                              staircase(True))
        for a, b in zip(ref, got):
            assert np.array_equal(a[0], b[0])
            assert a[1:] == b[1:]  # bound + degraded/failed-tile sets
        assert ref_stats == got_stats


# -- service wiring ---------------------------------------------------------

class TestServicePipelined:
    def test_latency_detection_picks_the_default(self, tmp_path):
        assert _store_bears_latency(DirectoryStore(tmp_path / "s"))
        assert not _store_bears_latency(MemoryStore())
        assert _store_bears_latency(
            FaultInjectingStore(MemoryStore(), latency_s=0.01)
        )
        # wrapper passthrough: a fault layer over a latency-bearing
        # store still reads as latency-bearing
        assert _store_bears_latency(
            FaultInjectingStore(DirectoryStore(tmp_path / "t"))
        )

    def test_session_defaults_follow_store(self, reference_field,
                                           reference_tiled, tmp_path):
        store = DirectoryStore(tmp_path / "store")
        store_field(store, reference_field)
        store_tiled_field(store, reference_tiled)
        svc = RetrievalService(store)
        assert svc.session("vx").pipelined
        assert svc.tiled_session("rho").reconstructor.pipelined
        mem_svc = RetrievalService(_fresh_store(reference_field))
        assert not mem_svc.session("vx").pipelined
        assert not mem_svc.session("vx", pipelined=True).pipelined is False
        svc.close()
        mem_svc.close()

    def test_pipelined_session_parity_with_cache_counters(
        self, reference_field
    ):
        seq_svc = RetrievalService(_fresh_store(reference_field))
        pip_svc = RetrievalService(_fresh_store(reference_field))
        seq = seq_svc.session("vx", pipelined=False)
        pip = pip_svc.session("vx", pipelined=True)
        for t in STAIRCASE:
            a = seq.reconstruct(tolerance=t)
            b = pip.reconstruct(tolerance=t)
            assert np.array_equal(a.data, b.data)
            assert _result_stats(a) == _result_stats(b)
        assert (seq_svc.cache.stats()["misses"]
                == pip_svc.cache.stats()["misses"])
        seq_svc.close()
        pip_svc.close()

    def test_prefetch_hits_are_counted(self, reference_field):
        svc = RetrievalService(_fresh_store(reference_field),
                               prefetch=True, num_workers=1)
        session = svc.session("vx", pipelined=False)
        session.reconstruct(tolerance=STAIRCASE[0])
        svc.drain_prefetch()  # let the next-group warms land
        session.reconstruct(tolerance=STAIRCASE[2])
        stats = svc.stats()
        assert stats["prefetch_hits"] >= 1
        assert stats["prefetch_hits"] <= stats["prefetch_requests"]
        svc.close()

    def test_resident_keys_are_skipped_not_refetched(self,
                                                     reference_field):
        svc = RetrievalService(_fresh_store(reference_field),
                               prefetch=True, num_workers=1)
        session = svc.session("vx", pipelined=False)
        session.reconstruct(tolerance=STAIRCASE[0])
        svc.drain_prefetch()
        # Re-enqueue a key that is already resident: the warm must
        # skip it without touching the cache hit/miss counters.
        key = next(iter(svc.cache._entries))
        before = svc.cache.stats()
        svc._enqueue_prefetch([key])
        svc.drain_prefetch()
        after = svc.cache.stats()
        assert svc.stats()["prefetch_skipped"] >= 1
        assert (before["hits"], before["misses"]) == (after["hits"],
                                                      after["misses"])
        svc.close()

    def test_cancel_stale_prefetches_pulls_queued_warms(
        self, reference_field
    ):
        svc = RetrievalService(_fresh_store(reference_field),
                               prefetch=True, num_workers=1)
        gate = threading.Event()
        # Occupy the only prefetch worker so queued warms cannot start.
        blocker = svc._worker_pool().submit(gate.wait)
        svc._enqueue_prefetch(["vx/stale/0", "vx/stale/1"])
        cancelled = svc.cancel_stale_prefetches(
            ["vx/stale/0", "vx/stale/1", "vx/never/queued"]
        )
        gate.set()
        blocker.result()
        assert cancelled == 2
        stats = svc.stats()
        assert stats["prefetch_cancelled"] == 2
        assert stats["prefetch_failures"] == 0  # cancelled ≠ failed
        svc.drain_prefetch()  # cancelled futures must not raise here
        svc.close()

    def test_tiled_session_pipelined_parity(self, reference_tiled):
        seq_svc = RetrievalService(_fresh_tiled_store(reference_tiled),
                                   prefetch=True, num_workers=1)
        pip_svc = RetrievalService(_fresh_tiled_store(reference_tiled),
                                   prefetch=True, num_workers=1)
        seq = seq_svc.tiled_session("rho", pipelined=False)
        pip = pip_svc.tiled_session("rho", pipelined=True)
        for t in STAIRCASE:
            a = seq.reconstruct(tolerance=t, region=ROI)
            b = pip.reconstruct(tolerance=t, region=ROI)
            assert np.array_equal(a.data, b.data)
            assert a.error_bound == b.error_bound
        seq_svc.drain_prefetch()
        pip_svc.drain_prefetch()
        assert seq.stats() == pip.stats()
        seq_svc.close()
        pip_svc.close()
