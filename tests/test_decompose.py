"""Tests for the multilevel decomposition substrate."""

import numpy as np
import pytest

from repro.decompose import (
    LevelGeometry,
    MultilevelTransform,
    coarse_size,
    compose_error_bound,
    level_error_weights,
    num_levels_for_shape,
)
from repro.decompose.norms import pointwise_error_bound


class TestGrid:
    def test_coarse_size(self):
        assert coarse_size(9) == 5
        assert coarse_size(8) == 4
        assert coarse_size(2) == 1
        assert coarse_size(1) == 1

    def test_coarse_size_rejects_zero(self):
        with pytest.raises(ValueError):
            coarse_size(0)

    def test_num_levels_dyadic(self):
        assert num_levels_for_shape((64,), min_size=4) == 4
        assert num_levels_for_shape((65,), min_size=4) == 4

    def test_num_levels_small_shape(self):
        assert num_levels_for_shape((5,), min_size=4) == 0

    def test_level_geometry_corner_shapes(self):
        geo = LevelGeometry((16, 16), 2)
        assert geo.corner_shapes() == [(16, 16), (8, 8), (4, 4)]

    def test_level_geometry_nondyadic(self):
        geo = LevelGeometry((17, 10), 1)
        assert geo.corner_shapes() == [(17, 10), (9, 5)]

    def test_too_many_levels_rejected(self):
        with pytest.raises(ValueError):
            LevelGeometry((8,), 5)

    def test_level_indices_partition(self):
        geo = LevelGeometry((16, 16), 2)
        indices = geo.level_indices()
        combined = np.concatenate(indices)
        assert combined.size == 16 * 16
        assert np.unique(combined).size == 16 * 16

    def test_level_sizes_sum(self):
        geo = LevelGeometry((16, 8, 8), 1)
        assert sum(geo.level_sizes()) == 16 * 8 * 8

    def test_axes_stop_halving_below_threshold(self):
        geo = LevelGeometry((32, 6), 2, min_size=4)
        # The size-6 axis (< 2*min_size) must never halve.
        assert geo.corner_shapes() == [(32, 6), (16, 6), (8, 6)]
        assert geo.halved_axes(0) == [0]


def fields(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape)


class TestRoundTrip:
    @pytest.mark.parametrize("mode", ["hierarchical", "mgard"])
    @pytest.mark.parametrize(
        "shape", [(33,), (32,), (17, 12), (16, 16), (9, 8, 11), (16, 16, 16)]
    )
    def test_exact_inverse(self, mode, shape):
        t = MultilevelTransform(shape, mode=mode)
        u = fields(shape)
        rec = t.recompose(t.decompose(u))
        np.testing.assert_allclose(rec, u, rtol=0, atol=1e-10)

    @pytest.mark.parametrize("mode", ["hierarchical", "mgard"])
    def test_float32_input_roundtrip(self, mode):
        t = MultilevelTransform((16, 16), mode=mode)
        u = fields((16, 16)).astype(np.float32)
        rec = t.recompose(t.decompose(u))
        np.testing.assert_allclose(rec, u, rtol=0, atol=1e-5)

    def test_zero_levels_is_identity(self):
        t = MultilevelTransform((8, 8), num_levels=0)
        u = fields((8, 8))
        np.testing.assert_array_equal(t.decompose(u), u)

    def test_shape_mismatch_raises(self):
        t = MultilevelTransform((8, 8))
        with pytest.raises(ValueError):
            t.decompose(fields((8, 9)))

    def test_integer_input_rejected(self):
        t = MultilevelTransform((8, 8))
        with pytest.raises(TypeError):
            t.decompose(np.zeros((8, 8), dtype=np.int32))

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            MultilevelTransform((8, 8), mode="wavelet")


class TestCoefficientStructure:
    def test_constant_field_has_zero_details(self):
        t = MultilevelTransform((17, 17), mode="hierarchical")
        coeffs = t.decompose(np.full((17, 17), 3.25))
        levels = t.extract_levels(coeffs)
        for detail in levels[1:]:
            np.testing.assert_allclose(detail, 0.0, atol=1e-12)
        np.testing.assert_allclose(levels[0], 3.25)

    def test_linear_field_has_zero_interior_details(self):
        # Linear functions are reproduced exactly by linear interpolation
        # on odd-size grids (every odd node has both neighbors).
        t = MultilevelTransform((33,), mode="hierarchical")
        u = np.linspace(0.0, 1.0, 33)
        levels = t.extract_levels(t.decompose(u))
        for detail in levels[1:]:
            np.testing.assert_allclose(detail, 0.0, atol=1e-12)

    def test_extract_assemble_roundtrip(self):
        t = MultilevelTransform((16, 12))
        coeffs = t.decompose(fields((16, 12)))
        levels = t.extract_levels(coeffs)
        back = t.assemble_levels(levels)
        np.testing.assert_array_equal(back, coeffs)

    def test_assemble_rejects_wrong_sizes(self):
        t = MultilevelTransform((16, 12))
        levels = [np.zeros(s) for s in t.level_sizes()]
        levels[0] = np.zeros(levels[0].size + 1)
        with pytest.raises(ValueError):
            t.assemble_levels(levels)

    def test_mgard_details_smaller_on_smooth_field(self):
        # The L2 correction should not hurt detail magnitudes much, and
        # truncation error should be comparable or better for smooth data.
        shape = (65,)
        x = np.linspace(0, 4 * np.pi, shape[0])
        u = np.sin(x)
        for mode in ("hierarchical", "mgard"):
            t = MultilevelTransform(shape, mode=mode)
            levels = t.extract_levels(t.decompose(u))
            # Detail magnitudes must decay from coarse to fine levels for
            # smooth data (second-order interpolation error).
            assert np.max(np.abs(levels[-1])) < np.max(np.abs(levels[1]))


class TestErrorWeights:
    @pytest.mark.parametrize("mode", ["hierarchical", "mgard"])
    def test_weights_positive(self, mode):
        t = MultilevelTransform((17, 17), mode=mode)
        w = level_error_weights(t)
        assert len(w) == t.num_coefficient_sets
        assert all(x >= 1.0 - 1e-12 for x in w)

    def test_hierarchical_weights_cached(self):
        t = MultilevelTransform((16, 16))
        assert level_error_weights(t) == level_error_weights(t)

    @pytest.mark.parametrize("mode", ["hierarchical", "mgard"])
    @pytest.mark.parametrize("shape", [(33,), (16, 16), (9, 10, 11)])
    def test_bound_holds_for_random_coefficient_noise(self, mode, shape):
        """The core guarantee: perturbing coefficients within per-level
        bounds never moves the reconstruction by more than the composed
        bound."""
        rng = np.random.default_rng(42)
        t = MultilevelTransform(shape, mode=mode)
        u = rng.standard_normal(shape)
        coeffs = t.decompose(u)
        levels = t.extract_levels(coeffs)
        level_errors = [10.0 ** rng.uniform(-3, 0) for _ in levels]
        noisy = [
            lv + rng.uniform(-e, e, size=lv.shape)
            for lv, e in zip(levels, level_errors)
        ]
        rec = t.recompose(t.assemble_levels(noisy))
        bound = compose_error_bound(t, level_errors)
        actual = np.max(np.abs(rec - u))
        assert actual <= bound * (1 + 1e-9)

    def test_pointwise_bound_dominates(self):
        rng = np.random.default_rng(3)
        t = MultilevelTransform((17, 17))
        u = rng.standard_normal((17, 17))
        levels = t.extract_levels(t.decompose(u))
        level_errors = [0.1] * len(levels)
        noisy = [
            lv + rng.uniform(-0.1, 0.1, size=lv.shape) for lv in levels
        ]
        rec = t.recompose(t.assemble_levels(noisy))
        pw = pointwise_error_bound(t, level_errors)
        assert np.all(np.abs(rec - u) <= pw + 1e-9)
        assert np.max(pw) <= compose_error_bound(t, level_errors) + 1e-9

    def test_compose_bound_rejects_wrong_length(self):
        t = MultilevelTransform((16, 16))
        with pytest.raises(ValueError):
            compose_error_bound(t, [0.1])

    def test_recompose_absolute_rejects_negative(self):
        t = MultilevelTransform((16, 16))
        with pytest.raises(ValueError):
            t.recompose_absolute(np.full((16, 16), -1.0))
