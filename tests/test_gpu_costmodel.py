"""Tests for device specs and the kernel cost model.

The ratio assertions mirror the paper's headline kernel results with
generous tolerances — the model must land in the right regime, not on
exact decimals.
"""

import pytest

from repro.gpu.costmodel import CostModel, KernelCost
from repro.gpu.device import (
    CPU_EPYC_64,
    H100,
    MI250X,
    DeviceSpec,
    get_device,
)

N_LARGE = 1 << 26  # saturating input size


@pytest.fixture(scope="module")
def h100():
    return CostModel(H100)


@pytest.fixture(scope="module")
def mi250x():
    return CostModel(MI250X)


class TestDeviceSpec:
    def test_registry(self):
        assert get_device("H100") is H100
        with pytest.raises(KeyError):
            get_device("TPU")

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad", kind="fpga", memory_bandwidth_gbps=1,
                link_bandwidth_gbps=1, compute_units=1, warp_size=1,
                clock_ghz=1, lanes_per_unit=1, load_stride_penalty=1,
                store_scatter_penalty=1, shuffle_cost_cycles=1,
                decode_comm_multiplier=1, has_reduce_unit=False,
                comm_contention=0,
            )

    def test_resident_threads(self):
        assert H100.resident_threads == 132 * 32 * 16
        assert CPU_EPYC_64.resident_threads == 64


class TestKernelCost:
    def test_throughput(self):
        c = KernelCost(seconds=2.0, bytes_processed=4 * 10**9)
        assert c.throughput_gbps == pytest.approx(2.0)

    def test_add(self):
        c = KernelCost(1.0, 100) + KernelCost(2.0, 200)
        assert c.seconds == 3.0 and c.bytes_processed == 300


def encode_tp(model, design, n=N_LARGE, variant="ballot"):
    return model.bitplane_encode(n, 32, design=design,
                                 variant=variant).throughput_gbps


def decode_tp(model, design, n=N_LARGE, variant="ballot"):
    return model.bitplane_decode(n, 32, design=design,
                                 variant=variant).throughput_gbps


class TestDesignRatios:
    """Fig. 7 headline ratios (±35% tolerance)."""

    @pytest.mark.parametrize("model_name", ["h100", "mi250x"])
    def test_register_block_beats_locality_encode_2x(self, model_name,
                                                     request):
        model = request.getfixturevalue(model_name)
        ratio = encode_tp(model, "register_block") / encode_tp(
            model, "locality_block")
        assert 2.1 * 0.65 <= ratio <= 2.1 * 1.35

    def test_register_block_beats_locality_decode_h100(self, h100):
        ratio = decode_tp(h100, "register_block") / decode_tp(
            h100, "locality_block")
        assert 4.7 * 0.65 <= ratio <= 4.7 * 1.35

    def test_register_block_beats_locality_decode_mi250x(self, mi250x):
        ratio = decode_tp(mi250x, "register_block") / decode_tp(
            mi250x, "locality_block")
        assert 8.3 * 0.65 <= ratio <= 8.3 * 1.35

    @pytest.mark.parametrize("model_name", ["h100", "mi250x"])
    def test_locality_beats_shuffle_encode(self, model_name, request):
        model = request.getfixturevalue(model_name)
        ratio = encode_tp(model, "locality_block") / encode_tp(
            model, "register_shuffle")
        assert 1.4 * 0.6 <= ratio <= 1.4 * 1.5

    def test_locality_beats_shuffle_decode_h100(self, h100):
        ratio = decode_tp(h100, "locality_block") / decode_tp(
            h100, "register_shuffle")
        assert 3.2 * 0.6 <= ratio <= 3.2 * 1.5

    def test_locality_beats_shuffle_decode_mi250x(self, mi250x):
        ratio = decode_tp(mi250x, "locality_block") / decode_tp(
            mi250x, "register_shuffle")
        assert 6.6 * 0.6 <= ratio <= 6.6 * 1.5

    def test_throughput_rises_with_input_then_saturates(self, h100):
        tps = [
            encode_tp(h100, "register_block", n=1 << e)
            for e in (14, 18, 24, 26)
        ]
        assert tps[0] < tps[1] < tps[2]
        assert tps[3] <= tps[2] * 1.15  # saturated past 2^24


class TestShuffleVariants:
    """Fig. 6: instruction-variant ordering."""

    def test_reduce_add_best_on_h100(self, h100):
        tps = {
            v: encode_tp(h100, "register_shuffle", variant=v)
            for v in ("ballot", "shift", "match_any", "reduce_add")
        }
        assert tps["reduce_add"] == max(tps.values())
        gain = tps["reduce_add"] / tps["ballot"]
        assert 1.05 <= gain <= 1.35  # "up to 15%" improvement

    def test_reduce_add_unavailable_on_mi250x(self, mi250x):
        with pytest.raises(ValueError, match="reduce_add"):
            encode_tp(mi250x, "register_shuffle", variant="reduce_add")

    def test_ballot_best_on_mi250x(self, mi250x):
        tps = {
            v: encode_tp(mi250x, "register_shuffle", variant=v)
            for v in ("ballot", "shift", "match_any")
        }
        assert tps["ballot"] == max(tps.values())

    def test_mi250x_ballot_degrades_at_large_sizes(self, mi250x):
        small = encode_tp(mi250x, "register_shuffle", n=1 << 22)
        large = encode_tp(mi250x, "register_shuffle", n=1 << 26)
        assert large < small

    def test_h100_no_contention_degradation(self, h100):
        small = encode_tp(h100, "register_shuffle", n=1 << 22)
        large = encode_tp(h100, "register_shuffle", n=1 << 26)
        assert large >= small * 0.95

    def test_unknown_variant(self, h100):
        with pytest.raises(ValueError):
            h100.bitplane_encode(1024, 32, design="register_shuffle",
                                 variant="psychic")


class TestLosslessModel:
    def test_huffman_calibration(self, h100):
        c = h100.lossless("huffman", 1 << 30, "compress")
        assert c.throughput_gbps == pytest.approx(5.7, rel=0.05)

    def test_rle_faster_than_huffman(self, h100):
        rle = h100.lossless("rle", 1 << 30, "compress")
        huff = h100.lossless("huffman", 1 << 30, "compress")
        assert rle.seconds < huff.seconds

    def test_direct_fastest(self, h100):
        dc = h100.lossless("direct", 1 << 30, "decompress")
        rle = h100.lossless("rle", 1 << 30, "decompress")
        assert dc.seconds < rle.seconds

    def test_mix_weighted(self, h100):
        mix = h100.lossless_mix(
            {"huffman": 1 << 28, "direct": 1 << 28}, "compress"
        )
        pure_h = h100.lossless("huffman", 1 << 29, "compress")
        pure_d = h100.lossless("direct", 1 << 29, "compress")
        assert pure_d.seconds < mix.seconds < pure_h.seconds

    def test_unknown_method(self, h100):
        with pytest.raises(ValueError):
            h100.lossless("zstd", 100, "compress")
        with pytest.raises(ValueError):
            h100.lossless("huffman", 100, "inflate")

    def test_cpu_much_slower(self, h100):
        cpu = CostModel(CPU_EPYC_64)
        g = h100.lossless("huffman", 1 << 30, "decompress").seconds
        c = cpu.lossless("huffman", 1 << 30, "decompress").seconds
        assert c > 3 * g


class TestTransformAndQoI:
    def test_decompose_bandwidth_bound(self, h100):
        c = h100.decompose(1 << 27, 4, 3, 5)
        # multi-pass streaming with GPU-MGARD's pass overhead: a modest
        # multiple of one memory sweep
        sweep = (1 << 27) * 4 / (H100.memory_bandwidth_gbps * 1e9)
        assert sweep < c.seconds < 100 * sweep

    def test_qoi_kernel_scales_with_vars(self, h100):
        three = h100.qoi_error_estimate(1 << 24, 3)
        six = h100.qoi_error_estimate(1 << 24, 6)
        assert six.seconds > three.seconds

    def test_dma(self, h100):
        assert h100.dma(55 * 10**9) == pytest.approx(1.0, rel=0.01)

    def test_validation(self, h100):
        with pytest.raises(ValueError):
            h100.bitplane_encode(0, 32)
        with pytest.raises(ValueError):
            h100.bitplane_encode(100, 32, design="hologram")
