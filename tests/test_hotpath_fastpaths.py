"""Fast-path behavior introduced by the hot-loop PR: vectorized Huffman
decode equivalence, worker-pool determinism, and zero-copy
deserialization."""

import numpy as np
import pytest

from repro.bitplane.encoding import BitplaneStream, encode_bitplanes
from repro.core.reconstruct import Reconstructor, reconstruct
from repro.core.refactor import RefactorConfig, Refactorer
from repro.core.stream import RefactoredField
from repro.lossless.bitio import peek_bits, sliding_windows_u64
from repro.lossless.huffman import HuffmanCodec
from repro.lossless.hybrid import CompressedGroup


class TestHuffmanFastDecode:
    @pytest.mark.parametrize("n", [0, 1, 5, 1023, 1024, 1025, 4096 + 7])
    @pytest.mark.parametrize("spread", [1, 5, 256])
    def test_fast_decode_matches_reference(self, n, spread):
        rng = np.random.default_rng(n * 3 + spread)
        data = rng.integers(0, spread, n).astype(np.uint8)
        codec = HuffmanCodec()
        blob = codec.encode(data)
        fast = codec.decode(blob)
        ref = codec.decode_reference(blob)
        np.testing.assert_array_equal(fast, ref)
        np.testing.assert_array_equal(fast, data)

    @pytest.mark.parametrize("chunk", [1, 7, 100, 4096])
    def test_nondefault_chunk_sizes(self, chunk):
        rng = np.random.default_rng(chunk)
        data = rng.integers(0, 17, 5000).astype(np.uint8)
        codec = HuffmanCodec(chunk_symbols=chunk)
        blob = codec.encode(data)
        np.testing.assert_array_equal(codec.decode(blob), data)
        np.testing.assert_array_equal(codec.decode_reference(blob), data)

    def test_constant_data_max_skew(self):
        codec = HuffmanCodec()
        data = np.zeros(10000, dtype=np.uint8)
        blob = codec.encode(data)
        np.testing.assert_array_equal(codec.decode(blob), data)

    def test_full_alphabet_max_code_length(self):
        rng = np.random.default_rng(1)
        # Skewed full-byte alphabet drives code lengths to the limit.
        data = np.minimum(
            (rng.exponential(8.0, 200000)).astype(np.int64), 255
        ).astype(np.uint8)
        codec = HuffmanCodec()
        blob = codec.encode(data)
        np.testing.assert_array_equal(
            codec.decode(blob), codec.decode_reference(blob)
        )


class TestSlidingWindows:
    def test_windows_cover_stream_and_padding(self):
        stream = np.arange(1, 11, dtype=np.uint8)
        w = sliding_windows_u64(stream, extra=4)
        assert w.shape == (15,)
        assert not w.flags.writeable
        expect0 = int.from_bytes(bytes(range(1, 9)), "little")
        assert int(w[0]) == expect0
        assert int(w[10]) == 0  # fully past the end: zero padding

    def test_peek_bits_matches_manual_windows(self):
        rng = np.random.default_rng(3)
        stream = rng.integers(0, 256, 500).astype(np.uint8)
        pos = rng.integers(0, 8 * stream.size + 64, 300)
        for width in (1, 8, 13, 56):
            got = peek_bits(stream, pos, width)
            padded = np.zeros(stream.size + 8, np.uint8)
            padded[: stream.size] = stream
            byte_idx = np.minimum(pos >> 3, stream.size)
            window = np.zeros(pos.shape, np.uint64)
            for k in range(8):
                window |= padded[byte_idx + k].astype(np.uint64) \
                    << np.uint64(8 * (7 - k))
            exp = (
                window >> (np.uint64(64 - width)
                           - (pos & 7).astype(np.uint64))
            ) & np.uint64((1 << width) - 1)
            np.testing.assert_array_equal(got, exp)


class TestWorkerPool:
    @pytest.fixture(scope="class")
    def data(self):
        return np.random.default_rng(0).standard_normal(
            (24, 24, 24)
        ).astype(np.float32)

    def test_parallel_refactor_bitwise_equals_serial(self, data):
        serial = Refactorer(data.shape, RefactorConfig()).refactor(data)
        parallel = Refactorer(
            data.shape, RefactorConfig(num_workers=4)
        ).refactor(data)
        assert serial.to_bytes() == parallel.to_bytes()

    def test_parallel_reconstruct_equals_serial(self, data):
        field = Refactorer(data.shape, RefactorConfig()).refactor(data)
        serial = Reconstructor(field).reconstruct(1e-3)
        parallel = Reconstructor(field, num_workers=4).reconstruct(1e-3)
        np.testing.assert_array_equal(serial.data, parallel.data)
        assert serial.error_bound == parallel.error_bound

    def test_single_level_group_parallel_equals_serial(self, data):
        """With one level the pool drops down to plane groups; output is
        still bitwise identical to the serial pipeline."""
        config = RefactorConfig(num_levels=1)
        serial = Refactorer(data.shape, config).refactor(data)
        parallel = Refactorer(
            data.shape, RefactorConfig(num_levels=1, num_workers=4)
        ).refactor(data)
        assert serial.to_bytes() == parallel.to_bytes()

    def test_one_shot_wrapper_accepts_workers(self, data):
        field = Refactorer(data.shape, RefactorConfig()).refactor(data)
        res = reconstruct(field, 1e-2, num_workers=2)
        assert np.max(np.abs(res.data - data)) <= res.error_bound + 1e-12

    def test_invalid_workers_rejected(self, data):
        with pytest.raises(ValueError):
            RefactorConfig(num_workers=-1)
        field = Refactorer(data.shape, RefactorConfig()).refactor(data)
        with pytest.raises(ValueError):
            Reconstructor(field, num_workers=-1)


class TestZeroCopyDeserialization:
    def test_bitplane_stream_planes_view_source_buffer(self):
        data = np.random.default_rng(2).standard_normal(300) \
            .astype(np.float32)
        blob = encode_bitplanes(data, 16).to_bytes()
        stream = BitplaneStream.from_bytes(blob)
        # Views, not copies: read-only and byte-identical to reserialize.
        assert all(not p.flags.writeable for p in stream.planes)
        assert stream.to_bytes() == blob

    def test_compressed_group_payload_views_source_buffer(self):
        from repro.lossless.direct import direct_encode

        payload = direct_encode(np.arange(64, dtype=np.uint8))
        group = CompressedGroup(
            method="direct", payload=payload,
            plane_sizes=(64,), first_plane=0,
        )
        blob = group.to_bytes()
        restored = CompressedGroup.from_bytes(blob)
        assert isinstance(restored.payload, memoryview)
        assert restored.to_bytes() == blob

    def test_refactored_field_roundtrip_is_byte_stable(self):
        data = np.random.default_rng(4).standard_normal(
            (16, 16, 16)
        ).astype(np.float32)
        field = Refactorer(data.shape, RefactorConfig()).refactor(data)
        blob = field.to_bytes()
        restored = RefactoredField.from_bytes(blob)
        assert restored.to_bytes() == blob
        rec = Reconstructor(restored).reconstruct()
        assert np.max(np.abs(rec.data - data)) <= rec.error_bound + 1e-12
