"""Tests for QoI expression trees and interval arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qoi.expressions import (
    absval,
    const,
    estimate_qoi_error,
    pointwise_qoi_error,
    sqrt,
    square,
    v_total,
    var,
)


def grids(seed=0, n=200):
    rng = np.random.default_rng(seed)
    return {
        "vx": rng.standard_normal(n),
        "vy": rng.standard_normal(n),
        "vz": rng.standard_normal(n),
    }


class TestEvaluate:
    def test_var_and_const(self):
        v = var("x")
        assert np.allclose(v.evaluate({"x": np.array([1.0, 2.0])}), [1, 2])
        assert const(3.0).evaluate({}) == 3.0

    def test_arithmetic_sugar(self):
        x, y = var("x"), var("y")
        expr = 2 * x + y - 1
        out = expr.evaluate({"x": np.array([1.0]), "y": np.array([3.0])})
        assert out[0] == 4.0

    def test_neg(self):
        out = (-var("x")).evaluate({"x": np.array([2.0])})
        assert out[0] == -2.0

    def test_v_total(self):
        vals = grids()
        vt = v_total()
        expected = np.sqrt(vals["vx"]**2 + vals["vy"]**2 + vals["vz"]**2)
        np.testing.assert_allclose(vt.evaluate(vals), expected)

    def test_missing_variable(self):
        with pytest.raises(KeyError):
            var("q").evaluate({"x": np.zeros(3)})

    def test_sqrt_rejects_negative(self):
        with pytest.raises(ValueError):
            sqrt(var("x")).evaluate({"x": np.array([-1.0])})

    def test_variables_set(self):
        assert v_total().variables() == {"vx", "vy", "vz"}
        assert (var("a") * var("b") + 1).variables() == {"a", "b"}


class TestIntervals:
    def test_var_interval(self):
        lo, hi = var("x").interval({"x": np.array([1.0])}, {"x": 0.25})
        assert lo[0] == 0.75 and hi[0] == 1.25

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            var("x").interval({"x": np.zeros(1)}, {"x": -0.1})

    def test_square_straddles_zero(self):
        lo, hi = square(var("x")).interval(
            {"x": np.array([0.1])}, {"x": 0.5}
        )
        assert lo[0] == 0.0
        assert hi[0] == pytest.approx(0.36)

    def test_mul_interval_signs(self):
        expr = var("x") * var("y")
        lo, hi = expr.interval(
            {"x": np.array([-1.0]), "y": np.array([2.0])},
            {"x": 0.5, "y": 0.5},
        )
        # x in [-1.5,-0.5], y in [1.5,2.5] -> product in [-3.75,-0.75]
        assert lo[0] == pytest.approx(-3.75)
        assert hi[0] == pytest.approx(-0.75)

    def test_abs_interval(self):
        lo, hi = absval(var("x")).interval(
            {"x": np.array([-0.2])}, {"x": 0.5}
        )
        assert lo[0] == 0.0
        assert hi[0] == pytest.approx(0.7)

    def test_sqrt_clamps_negative_lower(self):
        lo, hi = sqrt(var("x")).interval({"x": np.array([0.01])}, {"x": 0.1})
        assert lo[0] == 0.0
        assert hi[0] == pytest.approx(np.sqrt(0.11))


class TestErrorEstimation:
    def test_zero_bounds_zero_error(self):
        vals = grids()
        assert estimate_qoi_error(v_total(), vals,
                                  {k: 0.0 for k in vals}) == 0.0

    def test_estimate_is_max_of_pointwise(self):
        vals = grids()
        bounds = {k: 0.01 for k in vals}
        pw = pointwise_qoi_error(v_total(), vals, bounds)
        assert estimate_qoi_error(v_total(), vals, bounds) == np.max(pw)

    def test_estimate_monotone_in_bounds(self):
        vals = grids()
        e1 = estimate_qoi_error(v_total(), vals, {k: 0.01 for k in vals})
        e2 = estimate_qoi_error(v_total(), vals, {k: 0.1 for k in vals})
        assert e1 < e2

    def test_sound_against_sampled_perturbations(self):
        """The interval bound must dominate any actual perturbation
        within the per-variable boxes."""
        rng = np.random.default_rng(5)
        vals = grids(seed=5)
        bounds = {k: 0.05 for k in vals}
        vt = v_total()
        base = vt.evaluate(vals)
        pw = pointwise_qoi_error(vt, vals, bounds)
        for _ in range(20):
            pert = {
                k: v + rng.uniform(-bounds[k], bounds[k], v.shape)
                for k, v in vals.items()
            }
            moved = np.abs(vt.evaluate(pert) - base)
            assert np.all(moved <= pw + 1e-12)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    eb=st.floats(1e-6, 1.0),
)
def test_property_interval_soundness_vtotal(seed, eb):
    """Hypothesis: worst-case corner perturbations never exceed the
    interval estimate for V_total."""
    rng = np.random.default_rng(seed)
    vals = {k: rng.standard_normal(50) for k in ("vx", "vy", "vz")}
    bounds = {k: eb for k in vals}
    vt = v_total()
    base = vt.evaluate(vals)
    pw = pointwise_qoi_error(vt, vals, bounds)
    for signs in ((1, 1, 1), (-1, -1, -1), (1, -1, 1)):
        pert = {
            k: v + s * eb
            for (k, v), s in zip(sorted(vals.items()), signs)
        }
        moved = np.abs(vt.evaluate(pert) - base)
        assert np.all(moved <= pw * (1 + 1e-9) + 1e-12)
