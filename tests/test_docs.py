"""Doctest runs for the user-facing documentation.

The README quickstart and the ``repro`` package docstring must execute
verbatim — documentation that drifts from the API fails CI here.
"""

import doctest
from pathlib import Path

import repro

REPO_ROOT = Path(__file__).resolve().parents[1]

DOCTEST_FLAGS = doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS


def test_readme_quickstart_runs_verbatim():
    readme = REPO_ROOT / "README.md"
    assert readme.exists(), "README.md missing from repo root"
    result = doctest.testfile(
        str(readme), module_relative=False, optionflags=DOCTEST_FLAGS,
        verbose=False,
    )
    assert result.attempted > 0, "README quickstart has no doctest examples"
    assert result.failed == 0

def test_package_docstring_quickstart():
    finder = doctest.DocTestFinder(exclude_empty=True)
    runner = doctest.DocTestRunner(optionflags=DOCTEST_FLAGS)
    tests = [t for t in finder.find(repro, name="repro") if t.examples]
    assert tests, "repro package docstring lost its quickstart example"
    for t in tests:
        runner.run(t)
    assert runner.failures == 0


def test_architecture_doc_exists_and_maps_modules():
    doc = REPO_ROOT / "docs" / "architecture.md"
    assert doc.exists(), "docs/architecture.md missing"
    text = doc.read_text()
    for anchor in ("bitplane", "qoi", "planner", "hdem", "service"):
        assert anchor in text.lower(), f"architecture.md lacks {anchor!r}"
