"""Tests for the multi-component progressive framework and MDR baseline."""

import numpy as np
import pytest

from repro.baselines.mdr_cpu import MdrCpuBaseline
from repro.baselines.multicomponent import (
    ComponentStream,
    MultiComponentProgressive,
)
from repro.baselines.sz3 import Sz3Codec
from repro.baselines.zfp import ZfpCodec
from repro.core.refactor import refactor
from repro.core.reconstruct import reconstruct
from repro.data import generators as gen


@pytest.fixture(scope="module")
def data():
    return gen.gaussian_random_field((14, 15, 16), -2.5, seed=20,
                                     dtype=np.float64)


class TestMultiComponent:
    def test_tolerance_met(self, data):
        mc = MultiComponentProgressive(Sz3Codec(), num_components=6)
        stream = mc.refactor(data)
        for tol_rel in (1e-1, 1e-3, 1e-4):
            tol = tol_rel * float(np.ptp(data))
            rec, fetched, achieved = mc.retrieve(stream, tol)
            if achieved <= tol:  # reachable within the component stack
                assert np.max(np.abs(rec - data)) <= tol * (1 + 1e-9)
            assert fetched > 0

    def test_progressive_sizes_monotone(self, data):
        mc = MultiComponentProgressive(Sz3Codec(), num_components=6)
        stream = mc.refactor(data)
        rng = float(np.ptp(data))
        sizes = [
            stream.bytes_for_tolerance(t * rng)
            for t in (1e-1, 1e-2, 1e-3, 1e-4)
        ]
        assert all(a <= b for a, b in zip(sizes, sizes[1:]))

    def test_residual_compression_degrades(self, data):
        """The framework's known weakness: deeper components compress
        worse (closer to incompressible noise)."""
        mc = MultiComponentProgressive(Sz3Codec(), num_components=5)
        stream = mc.refactor(data)
        sizes = [c.nbytes for c in stream.components]
        assert sizes[-1] > sizes[0]

    def test_fixed_rate_backend(self, data):
        mc = MultiComponentProgressive(ZfpCodec(mode="fixed_rate"))
        stream = mc.refactor(data.astype(np.float32),
                             rate_schedule=[4, 8, 12])
        assert len(stream.components) == 3
        errs = [c.error_bound for c in stream.components]
        assert errs[0] > errs[-1]

    def test_constant_field(self):
        const = np.full((8, 8, 8), 2.5, dtype=np.float32)
        mc = MultiComponentProgressive(Sz3Codec())
        stream = mc.refactor(const)
        rec, _, achieved = mc.retrieve(stream, 1e-6)
        np.testing.assert_allclose(rec, const, atol=1e-6)
        assert achieved <= 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiComponentProgressive(Sz3Codec(), initial_relative_bound=0)
        with pytest.raises(ValueError):
            MultiComponentProgressive(Sz3Codec(), decay=1.0)
        with pytest.raises(ValueError):
            MultiComponentProgressive(Sz3Codec(), num_components=0)
        mc = MultiComponentProgressive(Sz3Codec())
        with pytest.raises(ValueError):
            mc.retrieve(ComponentStream((1,), np.dtype(np.float32)), 1e-3)


class TestMdrBaseline:
    def test_error_control(self, data):
        baseline = MdrCpuBaseline(data.shape)
        field = baseline.refactor(data)
        for tol in (1e-2, 1e-4):
            result = baseline.retrieve(field, tol)
            assert np.max(np.abs(result.data - data)) <= tol

    def test_finer_granularity_than_hpmdr(self, data):
        baseline = MdrCpuBaseline(data.shape)
        field = baseline.refactor(data)
        hp = refactor(data)
        # Per-plane groups -> strictly more segments than grouped planes.
        assert sum(lv.num_groups for lv in field.levels) > sum(
            lv.num_groups for lv in hp.levels
        )

    def test_hybrid_payload_no_worse_than_always_entropy(self, data):
        """The hybrid selector approximately minimizes size per group:
        its payload must not exceed the always-entropy-code strategy's
        (which expands on incompressible middle planes) — and stays
        within the few-percent envelope of Fig. 8b overall."""
        from repro.bitplane import encode_bitplanes
        from repro.lossless.hybrid import HybridConfig, compress_planes

        planes = encode_bitplanes(
            data.astype(np.float32).ravel(), 32
        ).planes
        always = compress_planes(
            planes, HybridConfig(group_size=4, size_threshold=0,
                                 cr_threshold=1e-9)
        )
        hybrid = compress_planes(planes, HybridConfig(group_size=4))
        always_payload = sum(g.compressed_size for g in always)
        hybrid_payload = sum(g.compressed_size for g in hybrid)
        assert hybrid_payload <= always_payload * 1.01
