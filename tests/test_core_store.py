"""Tests for segment stores and the store-backed load path."""

import numpy as np
import pytest

from repro.core.refactor import refactor
from repro.core.reconstruct import Reconstructor, reconstruct
from repro.core.store import (
    DirectoryStore,
    MemoryStore,
    load_field,
    segment_key,
    store_field,
)
from repro.data import generators as gen


@pytest.fixture(scope="module")
def small_field():
    data = gen.gaussian_random_field((12, 12, 12), -2.0, seed=4,
                                     dtype=np.float64)
    return data, refactor(data, name="vel_x")


class TestSegmentKey:
    def test_format(self):
        assert segment_key("rho", 2, 7) == "rho.L2.G7"

    def test_rejects_slash(self):
        with pytest.raises(ValueError):
            segment_key("a/b", 0, 0)


class TestMemoryStore:
    def test_put_get(self):
        s = MemoryStore()
        s.put("k", b"abc")
        assert s.get("k") == b"abc"
        assert "k" in s
        assert s.reads == 1 and s.writes == 1

    def test_missing_key(self):
        with pytest.raises(KeyError):
            MemoryStore().get("nope")

    def test_total_bytes(self):
        s = MemoryStore()
        s.put("a", b"xx")
        s.put("b", b"yyy")
        assert s.total_bytes() == 5
        assert s.size_of("b") == 3


class TestDirectoryStore:
    def test_put_get_roundtrip(self, tmp_path):
        s = DirectoryStore(tmp_path / "store")
        s.put("seg1", b"hello")
        assert s.get("seg1") == b"hello"
        assert s.bytes_read == 5

    def test_manifest_persists(self, tmp_path):
        root = tmp_path / "store"
        s1 = DirectoryStore(root)
        s1.put("seg", b"data")
        s2 = DirectoryStore(root)
        assert s2.keys() == ["seg"]
        assert s2.size_of("seg") == 4

    def test_missing_key(self, tmp_path):
        with pytest.raises(KeyError):
            DirectoryStore(tmp_path / "s").get("ghost")

    def test_io_time_estimate(self, tmp_path):
        s = DirectoryStore(tmp_path / "s", file_open_latency_s=1e-3)
        s.put("a", b"x" * 1000)
        s.get("a")
        t = s.io_time_estimate(bandwidth_gbps=1.0)
        assert t == pytest.approx(1e-3 + 1000 / 1e9)

    def test_validates_latency(self, tmp_path):
        with pytest.raises(ValueError):
            DirectoryStore(tmp_path / "s", file_open_latency_s=-1)

    def test_validates_bandwidth(self, tmp_path):
        s = DirectoryStore(tmp_path / "s")
        with pytest.raises(ValueError):
            s.io_time_estimate(bandwidth_gbps=0)


class TestStoreField:
    def test_store_creates_one_segment_per_group(self, small_field):
        _, f = small_field
        store = MemoryStore()
        store_field(store, f)
        n_groups = sum(lv.num_groups for lv in f.levels)
        assert len(store.keys()) == n_groups + 1  # + index

    def test_load_full_matches_direct(self, small_field):
        data, f = small_field
        store = MemoryStore()
        store_field(store, f)
        loaded = load_field(store, "vel_x")
        r1 = reconstruct(loaded, tolerance=1e-4)
        assert np.max(np.abs(r1.data - data)) <= 1e-4

    def test_load_partial_prefix(self, small_field):
        data, f = small_field
        store = MemoryStore()
        store_field(store, f)
        want = [min(1, lv.num_groups) for lv in f.levels]
        loaded = load_field(store, "vel_x", groups_per_level=want)
        assert [lv.num_groups for lv in loaded.levels] == want
        # Coarse reconstruction from the partial field still works.
        recon = Reconstructor(loaded)
        r = recon.reconstruct(tolerance=1e300)
        assert r.data.shape == data.shape

    def test_small_files_effect(self, small_field, tmp_path):
        """More segments fetched -> more modeled I/O latency — the
        mechanism behind the paper's Fig. 14 end-to-end gap."""
        _, f = small_field
        store = DirectoryStore(tmp_path / "s", file_open_latency_s=1e-3)
        store_field(store, f)
        store.reads = store.bytes_read = 0
        load_field(store, "vel_x", groups_per_level=[1] * len(f.levels))
        t_few = store.io_time_estimate()
        store.reads = store.bytes_read = 0
        load_field(store, "vel_x")
        t_all = store.io_time_estimate()
        assert t_all > t_few
