"""Property-style round-trip suite for the word-packed encode engine.

The PR-3 invariants: the word-packed fast packer is byte-identical to
the retained per-bit reference packer, `HuffmanCodec.encode` built on it
is byte-identical to `encode_reference` (and hence to the seed encoder),
and every fast-encoded stream decodes with both the fast and reference
decoders — across random alphabets, code lengths 1..16, chunk sizes
{1, 7, 1024}, empty and single-symbol inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lossless.bitio import (
    pack_sorted_canonical_bits,
    pack_varlen_bits,
    pack_varlen_bits_reference,
)
from repro.lossless.huffman import (
    HuffmanCodec,
    _check_offsets_u32,
    build_code_lengths,
    canonical_codes,
    huffman_decode,
    huffman_encode,
)

CHUNK_SIZES = (1, 7, 1024)


def random_alphabet_data(rng, n, alphabet_size):
    """Skewed draw over a random subset of the byte alphabet."""
    symbols = rng.choice(256, size=alphabet_size, replace=False)
    weights = rng.random(alphabet_size) ** 3 + 1e-3
    return rng.choice(
        symbols, size=n, p=weights / weights.sum()
    ).astype(np.uint8)


class TestEncodeMatchesReference:
    @pytest.mark.parametrize("chunk_symbols", CHUNK_SIZES)
    @pytest.mark.parametrize("n", [0, 1, 2, 6, 7, 8, 100, 1024, 5000])
    def test_sizes_and_chunks(self, chunk_symbols, n):
        rng = np.random.default_rng(n * 31 + chunk_symbols)
        data = random_alphabet_data(rng, n, alphabet_size=12)
        codec = HuffmanCodec(chunk_symbols=chunk_symbols)
        fast = codec.encode(data)
        ref = codec.encode_reference(data)
        assert fast == ref
        np.testing.assert_array_equal(codec.decode(fast), data)
        np.testing.assert_array_equal(codec.decode_reference(fast), data)

    @pytest.mark.parametrize("chunk_symbols", CHUNK_SIZES)
    def test_single_symbol_alphabet(self, chunk_symbols):
        codec = HuffmanCodec(chunk_symbols=chunk_symbols)
        data = np.full(777, 42, dtype=np.uint8)
        fast = codec.encode(data)
        assert fast == codec.encode_reference(data)
        np.testing.assert_array_equal(codec.decode(fast), data)
        np.testing.assert_array_equal(codec.decode_reference(fast), data)

    def test_empty_input(self):
        codec = HuffmanCodec()
        blob = codec.encode(np.empty(0, dtype=np.uint8))
        assert blob == codec.encode_reference(np.empty(0, dtype=np.uint8))
        assert codec.decode(blob).size == 0

    def test_max_length_codes(self):
        """Fibonacci frequencies force the 16-bit length limit."""
        counts = [1, 1]
        while len(counts) < 22:
            counts.append(counts[-1] + counts[-2])
        data = np.repeat(
            np.arange(len(counts), dtype=np.uint8), counts
        )
        np.random.default_rng(5).shuffle(data)
        lengths = build_code_lengths(np.bincount(data, minlength=256))
        assert int(lengths.max()) == 16  # the property this test needs
        codec = HuffmanCodec()
        fast = codec.encode(data)
        assert fast == codec.encode_reference(data)
        np.testing.assert_array_equal(codec.decode(fast), data)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(0, 4000),
    alphabet_size=st.integers(1, 256),
    chunk_symbols=st.sampled_from(CHUNK_SIZES),
    seed=st.integers(0, 2**31),
)
def test_property_encode_roundtrip(n, alphabet_size, chunk_symbols, seed):
    """Random alphabets: fast == reference, decodes with both decoders."""
    rng = np.random.default_rng(seed)
    data = random_alphabet_data(rng, n, alphabet_size)
    codec = HuffmanCodec(chunk_symbols=chunk_symbols)
    fast = codec.encode(data)
    assert fast == codec.encode_reference(data)
    np.testing.assert_array_equal(codec.decode(fast), data)
    np.testing.assert_array_equal(codec.decode_reference(fast), data)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31), n=st.integers(1, 2000))
def test_property_trusted_packer_matches_reference(seed, n):
    """Canonical Huffman code streams: trusted packer == per-bit packer."""
    rng = np.random.default_rng(seed)
    data = random_alphabet_data(rng, n, alphabet_size=int(rng.integers(1, 40)))
    lengths_table = build_code_lengths(np.bincount(data, minlength=256))
    codes_table = canonical_codes(lengths_table)
    sym_lengths = lengths_table.astype(np.int64)[data]
    sym_codes = codes_table[data]
    positions = np.cumsum(sym_lengths) - sym_lengths
    total = int(sym_lengths.sum())
    ref = pack_varlen_bits_reference(sym_codes, sym_lengths, positions, total)
    fast = pack_sorted_canonical_bits(
        sym_codes.copy(), sym_lengths, positions.copy(), total, consume=True
    )
    assert fast.tobytes() == ref.tobytes()


class TestOffsetGuard:
    def test_wrapping_offsets_rejected(self):
        with pytest.raises(ValueError, match="uint32"):
            _check_offsets_u32(np.array([0, 2**32], dtype=np.int64))

    def test_boundary_offset_accepted(self):
        _check_offsets_u32(np.array([0, 2**32 - 1], dtype=np.int64))
        _check_offsets_u32(np.empty(0, dtype=np.int64))


class TestFreqsParameter:
    def test_shared_histogram_is_byte_identical(self):
        rng = np.random.default_rng(7)
        data = random_alphabet_data(rng, 4096, alphabet_size=20)
        freqs = np.bincount(data, minlength=256)
        assert huffman_encode(data, freqs=freqs) == huffman_encode(data)
        np.testing.assert_array_equal(
            huffman_decode(huffman_encode(data, freqs=freqs)), data
        )

    def test_wrong_total_rejected(self):
        data = np.ones(100, dtype=np.uint8)
        with pytest.raises(ValueError, match="histogram data"):
            huffman_encode(data, freqs=np.zeros(256, dtype=np.int64))

    def test_wrong_shape_rejected(self):
        data = np.ones(4, dtype=np.uint8)
        with pytest.raises(ValueError, match="256-entry"):
            huffman_encode(data, freqs=np.array([4], dtype=np.int64))


class TestPublicPackerFastPath:
    """`pack_varlen_bits` fast path against the retained reference."""

    def test_unsorted_positions(self):
        rng = np.random.default_rng(11)
        lengths = rng.integers(1, 17, 200)
        positions = np.cumsum(lengths) - lengths
        codes = rng.integers(0, 1 << 16, 200, dtype=np.uint64)
        total = int(lengths.sum())
        perm = rng.permutation(200)
        fast = pack_varlen_bits(
            codes[perm], lengths[perm], positions[perm], total
        )
        ref = pack_varlen_bits_reference(
            codes[perm], lengths[perm], positions[perm], total
        )
        assert fast.tobytes() == ref.tobytes()

    def test_unmasked_code_high_bits_ignored(self):
        """Bits above each code's length must not leak into the stream."""
        out = pack_varlen_bits(
            np.array([0xFFFFFFFFFFFFFFFF], dtype=np.uint64),
            np.array([3]),
            np.array([2]),
            8,
        )
        assert out[0] == 0b00111000

    def test_length_64_codes(self):
        codes = np.array([0xDEADBEEFCAFEF00D, 0x0123456789ABCDEF],
                         dtype=np.uint64)
        lengths = np.array([64, 64])
        positions = np.array([3, 67])
        fast = pack_varlen_bits(codes, lengths, positions, 131)
        ref = pack_varlen_bits_reference(codes, lengths, positions, 131)
        assert fast.tobytes() == ref.tobytes()

    def test_length_above_64_rejected(self):
        with pytest.raises(ValueError, match="<= 64"):
            pack_varlen_bits(
                np.array([1], dtype=np.uint64), np.array([65]),
                np.array([0]), 128,
            )

    def test_zero_length_symbols_skipped(self):
        args = (
            np.array([5, 3, 5], dtype=np.uint64),
            np.array([0, 2, 0]),
            np.array([9, 1, 40]),  # zero-length targets may sit anywhere
            8,
        )
        fast = pack_varlen_bits(*args)
        ref = pack_varlen_bits_reference(*args)
        assert fast.tobytes() == ref.tobytes()
        assert fast[0] == 0b01100000


@settings(max_examples=60, deadline=None)
@given(
    lengths=st.lists(st.integers(0, 64), min_size=1, max_size=300),
    gap_seed=st.integers(0, 2**31),
)
def test_property_fast_packer_matches_reference(lengths, gap_seed):
    """Disjoint codes at arbitrary gaps: fast == per-bit reference."""
    rng = np.random.default_rng(gap_seed)
    lengths = np.asarray(lengths, dtype=np.int64)
    gaps = rng.integers(0, 9, lengths.size)
    positions = np.cumsum(lengths + gaps) - lengths
    total = int(positions[-1] + lengths[-1])
    codes = rng.integers(0, 1 << 62, lengths.size, dtype=np.uint64)
    fast = pack_varlen_bits(codes, lengths, positions, total)
    ref = pack_varlen_bits_reference(codes, lengths, positions, total)
    assert fast.tobytes() == ref.tobytes()
