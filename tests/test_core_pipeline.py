"""Integration tests for the refactor → reconstruct pipeline.

These exercise the paper's central guarantee: reconstructing to any
requested L∞ tolerance never exceeds it, while fetched bytes shrink as
tolerances loosen and grow monotonically under progressive refinement.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Reconstructor,
    RefactorConfig,
    RefactoredField,
    Refactorer,
)
from repro.core.refactor import default_bitplanes, refactor
from repro.core.reconstruct import reconstruct
from repro.data import generators as gen
from repro.lossless.hybrid import HybridConfig


@pytest.fixture(scope="module")
def field3d():
    data = gen.gaussian_random_field((17, 18, 19), -2.5, seed=1,
                                     dtype=np.float64)
    return data, refactor(data)


class TestRefactorer:
    def test_default_bitplanes(self):
        assert default_bitplanes(np.float32) == 32
        assert default_bitplanes(np.float64) == 52

    def test_shape_mismatch(self):
        r = Refactorer((8, 8))
        with pytest.raises(ValueError):
            r.refactor(np.zeros((8, 9), dtype=np.float32))

    def test_rejects_bad_design(self):
        with pytest.raises(ValueError):
            RefactorConfig(design="quantum")

    def test_rejects_bad_planes(self):
        with pytest.raises(ValueError):
            RefactorConfig(num_bitplanes=0)

    def test_level_count(self, field3d):
        _, f = field3d
        assert len(f.levels) == f.num_levels + 1
        assert len(f.level_weights) == len(f.levels)

    def test_level_sizes_partition_field(self, field3d):
        data, f = field3d
        assert sum(lv.num_elements for lv in f.levels) == data.size

    def test_reusable_across_fields(self):
        r = Refactorer((16, 16))
        a = gen.gaussian_random_field((16, 16, 1), seed=1)[:, :, 0]
        b = gen.gaussian_random_field((16, 16, 1), seed=2)[:, :, 0]
        fa, fb = r.refactor(a), r.refactor(b)
        assert fa.levels[0].max_abs != fb.levels[0].max_abs


class TestErrorControl:
    @pytest.mark.parametrize("tol", [1e-1, 1e-2, 1e-3, 1e-4, 1e-5])
    def test_tolerance_honored_absolute(self, field3d, tol):
        data, f = field3d
        result = reconstruct(f, tolerance=tol)
        actual = np.max(np.abs(result.data - data))
        assert result.error_bound <= tol
        assert actual <= tol

    def test_tolerance_honored_relative(self, field3d):
        data, f = field3d
        result = reconstruct(f, tolerance=1e-3, relative=True)
        actual = np.max(np.abs(result.data - data))
        assert actual <= 1e-3 * f.value_range

    def test_near_lossless_full_fetch(self, field3d):
        data, f = field3d
        result = reconstruct(f, tolerance=None)
        actual = np.max(np.abs(result.data - data))
        assert actual <= result.error_bound
        assert actual < 1e-9 * f.value_range  # near-lossless

    def test_actual_error_below_bound_always(self, field3d):
        data, f = field3d
        for tol in (0.5, 1e-2, 1e-4):
            r = reconstruct(f, tolerance=tol)
            assert np.max(np.abs(r.data - data)) <= r.error_bound

    def test_bytes_monotone_in_tolerance(self, field3d):
        _, f = field3d
        sizes = [
            reconstruct(f, tolerance=t).fetched_bytes
            for t in (1e-1, 1e-2, 1e-3, 1e-4)
        ]
        assert all(a <= b for a, b in zip(sizes, sizes[1:]))

    @pytest.mark.parametrize("mode", ["hierarchical", "mgard"])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_modes_and_dtypes(self, mode, dtype):
        data = gen.gaussian_random_field((12, 13, 14), -2.0, seed=3,
                                         dtype=dtype)
        f = refactor(data, RefactorConfig(mode=mode))
        tol = 1e-3
        r = reconstruct(f, tolerance=tol)
        assert np.max(np.abs(r.data.astype(np.float64)
                             - data.astype(np.float64))) <= tol

    def test_zero_field(self):
        data = np.zeros((8, 8), dtype=np.float32)
        f = refactor(data)
        r = reconstruct(f, tolerance=1e-6)
        np.testing.assert_array_equal(r.data, data)
        assert r.error_bound == 0.0


class TestProgressive:
    def test_incremental_bytes_sum_to_total(self, field3d):
        _, f = field3d
        recon = Reconstructor(f)
        results = recon.progressive([1e-1, 1e-2, 1e-3, 1e-4])
        total = sum(r.incremental_bytes for r in results)
        assert total == results[-1].fetched_bytes

    def test_refinement_never_unfetches(self, field3d):
        _, f = field3d
        recon = Reconstructor(f)
        prev = None
        for tol in (1e-1, 1e-3, 1e-5):
            r = recon.reconstruct(tolerance=tol)
            if prev is not None:
                assert all(
                    a >= b
                    for a, b in zip(r.plan.groups_per_level,
                                    prev.plan.groups_per_level)
                )
            prev = r

    def test_progressive_matches_fresh_error(self, field3d):
        """Progressively refined reconstruction meets each tolerance just
        like a fresh reconstruction would."""
        data, f = field3d
        recon = Reconstructor(f)
        for tol in (1e-1, 1e-2, 1e-4):
            r = recon.reconstruct(tolerance=tol)
            assert np.max(np.abs(r.data - data)) <= tol

    def test_looser_tolerance_after_tight_is_free(self, field3d):
        _, f = field3d
        recon = Reconstructor(f)
        recon.reconstruct(tolerance=1e-4)
        r = recon.reconstruct(tolerance=1e-1)
        assert r.incremental_bytes == 0

    def test_bitrate_property(self, field3d):
        _, f = field3d
        r = reconstruct(f, tolerance=1e-2)
        assert r.bitrate == pytest.approx(
            8.0 * r.fetched_bytes / np.prod(f.shape)
        )


class TestDesignPortability:
    @pytest.mark.parametrize("design", ["locality_block", "register_shuffle",
                                        "register_block"])
    def test_all_designs_meet_tolerance(self, design):
        data = gen.gaussian_random_field((10, 11, 12), -2.0, seed=7)
        f = refactor(data, RefactorConfig(design=design))
        r = reconstruct(f, tolerance=1e-3)
        assert np.max(np.abs(r.data.astype(np.float64)
                             - data.astype(np.float64))) <= 1e-3

    def test_designs_decode_identically(self):
        """Portability: reconstructed values do not depend on the design
        used to produce the stream."""
        data = gen.gaussian_random_field((10, 11, 12), -2.0, seed=8)
        results = []
        for design in ("locality_block", "register_block"):
            f = refactor(data, RefactorConfig(design=design))
            results.append(reconstruct(f, tolerance=1e-3).data)
        np.testing.assert_array_equal(results[0], results[1])


class TestSerialization:
    def test_field_roundtrip(self, field3d):
        data, f = field3d
        f2 = RefactoredField.from_bytes(f.to_bytes())
        assert f2.shape == f.shape
        assert f2.dtype == f.dtype
        assert f2.level_weights == f.level_weights
        r1 = reconstruct(f, tolerance=1e-3)
        r2 = reconstruct(f2, tolerance=1e-3)
        np.testing.assert_array_equal(r1.data, r2.data)

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            RefactoredField.from_bytes(b"XXXX\x01\x00" + b"\0" * 40)

    def test_total_bytes_close_to_serialized(self, field3d):
        _, f = field3d
        assert f.total_bytes() <= len(f.to_bytes())


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 1000),
    tol_exp=st.integers(-5, -1),
)
def test_property_error_control(seed, tol_exp):
    """Hypothesis: error control holds on random fields and tolerances."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((9, 10, 11))
    f = refactor(data)
    tol = 10.0 ** tol_exp
    r = reconstruct(f, tolerance=tol)
    assert np.max(np.abs(r.data - data)) <= tol
