"""Tests for the hybrid lossless strategy (Algorithm 2)."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.bitplane import encode_bitplanes
from repro.lossless.hybrid import (
    _ENCODERS,
    CompressedGroup,
    HybridConfig,
    _select_and_encode,
    _select_method,
    compress_planes,
    decompress_groups,
    estimate_group_ratios,
)


def bitplanes_of(n=4096, seed=0, dtype=np.float32):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(n).astype(dtype)
    return encode_bitplanes(data, 32).planes


class TestConfig:
    def test_defaults(self):
        cfg = HybridConfig()
        assert cfg.group_size == 4
        assert cfg.cr_threshold == 1.0

    @pytest.mark.parametrize(
        "kwargs", [{"group_size": 0}, {"size_threshold": -1},
                   {"cr_threshold": 0.0}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            HybridConfig(**kwargs)


class TestCompressPlanes:
    def test_group_count(self):
        planes = bitplanes_of()
        groups = compress_planes(planes, HybridConfig(group_size=4))
        assert len(groups) == -(-len(planes) // 4)

    def test_roundtrip_all_groups(self):
        planes = bitplanes_of()
        groups = compress_planes(planes)
        recovered = decompress_groups(groups)
        assert len(recovered) == len(planes)
        for a, b in zip(planes, recovered):
            np.testing.assert_array_equal(a, b)

    def test_partial_decompress(self):
        planes = bitplanes_of()
        groups = compress_planes(planes, HybridConfig(group_size=4))
        recovered = decompress_groups(groups, num_groups=2)
        assert len(recovered) == 8
        for a, b in zip(planes[:8], recovered):
            np.testing.assert_array_equal(a, b)

    def test_high_order_planes_entropy_coded(self):
        """Leading magnitude planes of Gaussian data are zero-dominated,
        so Algorithm 2 must pick an entropy codec for them."""
        planes = bitplanes_of(n=1 << 15)
        groups = compress_planes(planes, HybridConfig())
        assert groups[0].method in ("huffman", "rle")
        assert groups[0].compressed_size < groups[0].original_size

    def test_middle_planes_of_float64_direct(self):
        """For float64 sources the sub-leading planes are incoherent
        noise below the signal's mantissa structure — DC is selected."""
        planes = bitplanes_of(n=1 << 15, dtype=np.float64)
        groups = compress_planes(planes, HybridConfig())
        methods = [g.method for g in groups]
        assert "direct" in methods[1:]

    def test_float32_trailing_planes_compressible(self):
        """float32 inputs only carry 24 mantissa bits, so the trailing
        fixed-point planes are zero-heavy and entropy coding wins — a
        real effect of exponent alignment the hybrid must exploit."""
        planes = bitplanes_of(n=1 << 15, dtype=np.float32)
        groups = compress_planes(planes, HybridConfig())
        assert groups[-1].method == "huffman"
        assert groups[-1].compressed_size < groups[-1].original_size

    def test_small_groups_forced_direct(self):
        planes = bitplanes_of(n=64)
        groups = compress_planes(
            planes, HybridConfig(size_threshold=10**6)
        )
        assert all(g.method == "direct" for g in groups)

    def test_higher_threshold_means_less_entropy_coding(self):
        planes = bitplanes_of(n=1 << 14)
        low = compress_planes(planes, HybridConfig(cr_threshold=1.0))
        high = compress_planes(planes, HybridConfig(cr_threshold=4.0))
        def entropy_count(groups):
            return sum(g.method != "direct" for g in groups)
        assert entropy_count(high) <= entropy_count(low)

    def test_higher_threshold_larger_output(self):
        planes = bitplanes_of(n=1 << 14)
        sizes = []
        for rc in (1.0, 4.0):
            groups = compress_planes(planes, HybridConfig(cr_threshold=rc))
            sizes.append(sum(g.compressed_size for g in groups))
        assert sizes[0] <= sizes[1]

    def test_group_size_one(self):
        planes = bitplanes_of(n=512)
        groups = compress_planes(planes, HybridConfig(group_size=1))
        assert len(groups) == len(planes)
        recovered = decompress_groups(groups)
        for a, b in zip(planes, recovered):
            np.testing.assert_array_equal(a, b)


class TestSharedScans:
    """The single-pass selector must match the naive double-scan logic."""

    @staticmethod
    def naive_select(merged, config):
        """The seed double-scan formulation of Algorithm 2's decision."""
        from repro.lossless.huffman import estimate_huffman_ratio
        from repro.lossless.rle import estimate_rle_ratio
        if merged.size <= config.size_threshold:
            return "direct"
        if estimate_huffman_ratio(merged) > config.cr_threshold:
            return "huffman"
        if estimate_rle_ratio(merged) > config.cr_threshold:
            return "rle"
        return "direct"

    @pytest.mark.parametrize("seed,dtype", [(0, np.float32),
                                            (1, np.float64),
                                            (2, np.float32)])
    def test_select_and_encode_matches_naive(self, seed, dtype):
        planes = bitplanes_of(n=1 << 13, seed=seed, dtype=dtype)
        config = HybridConfig()
        for start in range(0, len(planes), config.group_size):
            merged = np.concatenate(
                [p.reshape(-1) for p in
                 planes[start : start + config.group_size]]
            )
            method, payload = _select_and_encode(merged, config)
            assert method == self.naive_select(merged, config)
            assert method == _select_method(merged, config)
            assert payload == _ENCODERS[method](merged)

    def test_estimate_group_ratios_with_shared_histogram(self):
        planes = bitplanes_of(n=1 << 12)
        merged = np.concatenate([p.reshape(-1) for p in planes[:4]])
        freqs = np.bincount(merged, minlength=256)
        assert estimate_group_ratios(merged, freqs=freqs) == \
            estimate_group_ratios(merged)

    def test_pool_output_identical_to_serial(self):
        planes = bitplanes_of(n=1 << 14)
        serial = compress_planes(planes)
        with ThreadPoolExecutor(max_workers=4) as pool:
            pooled = compress_planes(planes, pool=pool)
        assert len(serial) == len(pooled)
        for a, b in zip(serial, pooled):
            assert a.method == b.method
            assert a.first_plane == b.first_plane
            assert a.plane_sizes == b.plane_sizes
            assert bytes(a.payload) == bytes(b.payload)

    def test_pool_roundtrip(self):
        planes = bitplanes_of(n=1 << 13, seed=9)
        with ThreadPoolExecutor(max_workers=3) as pool:
            groups = compress_planes(planes, pool=pool)
        for a, b in zip(planes, decompress_groups(groups)):
            np.testing.assert_array_equal(a, b)


class TestGroupSerialization:
    def test_roundtrip(self):
        planes = bitplanes_of(n=2048)
        groups = compress_planes(planes)
        for g in groups:
            g2 = CompressedGroup.from_bytes(g.to_bytes())
            assert g2.method == g.method
            assert g2.plane_sizes == g.plane_sizes
            assert g2.first_plane == g.first_plane
            assert g2.payload == g.payload

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            CompressedGroup.from_bytes(b"ZZZZ" + b"\0" * 32)

    def test_truncated_payload(self):
        g = compress_planes(bitplanes_of(n=256))[0]
        with pytest.raises(ValueError):
            CompressedGroup.from_bytes(g.to_bytes()[:-4])

    def test_corrupt_size_detected(self):
        g = compress_planes(bitplanes_of(n=256))[0]
        bad = CompressedGroup(
            method=g.method,
            payload=g.payload,
            plane_sizes=tuple(s + 1 for s in g.plane_sizes),
            first_plane=0,
        )
        with pytest.raises(ValueError):
            decompress_groups([bad])
