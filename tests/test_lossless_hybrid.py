"""Tests for the hybrid lossless strategy (Algorithm 2)."""

import numpy as np
import pytest

from repro.bitplane import encode_bitplanes
from repro.lossless.hybrid import (
    CompressedGroup,
    HybridConfig,
    compress_planes,
    decompress_groups,
)


def bitplanes_of(n=4096, seed=0, dtype=np.float32):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(n).astype(dtype)
    return encode_bitplanes(data, 32).planes


class TestConfig:
    def test_defaults(self):
        cfg = HybridConfig()
        assert cfg.group_size == 4
        assert cfg.cr_threshold == 1.0

    @pytest.mark.parametrize(
        "kwargs", [{"group_size": 0}, {"size_threshold": -1},
                   {"cr_threshold": 0.0}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            HybridConfig(**kwargs)


class TestCompressPlanes:
    def test_group_count(self):
        planes = bitplanes_of()
        groups = compress_planes(planes, HybridConfig(group_size=4))
        assert len(groups) == -(-len(planes) // 4)

    def test_roundtrip_all_groups(self):
        planes = bitplanes_of()
        groups = compress_planes(planes)
        recovered = decompress_groups(groups)
        assert len(recovered) == len(planes)
        for a, b in zip(planes, recovered):
            np.testing.assert_array_equal(a, b)

    def test_partial_decompress(self):
        planes = bitplanes_of()
        groups = compress_planes(planes, HybridConfig(group_size=4))
        recovered = decompress_groups(groups, num_groups=2)
        assert len(recovered) == 8
        for a, b in zip(planes[:8], recovered):
            np.testing.assert_array_equal(a, b)

    def test_high_order_planes_entropy_coded(self):
        """Leading magnitude planes of Gaussian data are zero-dominated,
        so Algorithm 2 must pick an entropy codec for them."""
        planes = bitplanes_of(n=1 << 15)
        groups = compress_planes(planes, HybridConfig())
        assert groups[0].method in ("huffman", "rle")
        assert groups[0].compressed_size < groups[0].original_size

    def test_middle_planes_of_float64_direct(self):
        """For float64 sources the sub-leading planes are incoherent
        noise below the signal's mantissa structure — DC is selected."""
        planes = bitplanes_of(n=1 << 15, dtype=np.float64)
        groups = compress_planes(planes, HybridConfig())
        methods = [g.method for g in groups]
        assert "direct" in methods[1:]

    def test_float32_trailing_planes_compressible(self):
        """float32 inputs only carry 24 mantissa bits, so the trailing
        fixed-point planes are zero-heavy and entropy coding wins — a
        real effect of exponent alignment the hybrid must exploit."""
        planes = bitplanes_of(n=1 << 15, dtype=np.float32)
        groups = compress_planes(planes, HybridConfig())
        assert groups[-1].method == "huffman"
        assert groups[-1].compressed_size < groups[-1].original_size

    def test_small_groups_forced_direct(self):
        planes = bitplanes_of(n=64)
        groups = compress_planes(
            planes, HybridConfig(size_threshold=10**6)
        )
        assert all(g.method == "direct" for g in groups)

    def test_higher_threshold_means_less_entropy_coding(self):
        planes = bitplanes_of(n=1 << 14)
        low = compress_planes(planes, HybridConfig(cr_threshold=1.0))
        high = compress_planes(planes, HybridConfig(cr_threshold=4.0))
        def entropy_count(groups):
            return sum(g.method != "direct" for g in groups)
        assert entropy_count(high) <= entropy_count(low)

    def test_higher_threshold_larger_output(self):
        planes = bitplanes_of(n=1 << 14)
        sizes = []
        for rc in (1.0, 4.0):
            groups = compress_planes(planes, HybridConfig(cr_threshold=rc))
            sizes.append(sum(g.compressed_size for g in groups))
        assert sizes[0] <= sizes[1]

    def test_group_size_one(self):
        planes = bitplanes_of(n=512)
        groups = compress_planes(planes, HybridConfig(group_size=1))
        assert len(groups) == len(planes)
        recovered = decompress_groups(groups)
        for a, b in zip(planes, recovered):
            np.testing.assert_array_equal(a, b)


class TestGroupSerialization:
    def test_roundtrip(self):
        planes = bitplanes_of(n=2048)
        groups = compress_planes(planes)
        for g in groups:
            g2 = CompressedGroup.from_bytes(g.to_bytes())
            assert g2.method == g.method
            assert g2.plane_sizes == g.plane_sizes
            assert g2.first_plane == g.first_plane
            assert g2.payload == g.payload

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            CompressedGroup.from_bytes(b"ZZZZ" + b"\0" * 32)

    def test_truncated_payload(self):
        g = compress_planes(bitplanes_of(n=256))[0]
        with pytest.raises(ValueError):
            CompressedGroup.from_bytes(g.to_bytes()[:-4])

    def test_corrupt_size_detected(self):
        g = compress_planes(bitplanes_of(n=256))[0]
        bad = CompressedGroup(
            method=g.method,
            payload=g.payload,
            plane_sizes=tuple(s + 1 for s in g.plane_sizes),
            first_plane=0,
        )
        with pytest.raises(ValueError):
            decompress_groups([bad])
